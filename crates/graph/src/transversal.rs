//! Static pre-pivoting: maximum-transversal and weighted row matching.
//!
//! Sympiler's LU contract is **static diagonal pivoting** — the pivot
//! of column `j` is whatever lands on position `(j, j)`, decided at
//! compile time, never searched for at run time. That contract is a
//! hard error on matrices whose diagonal is *structurally* zero
//! (saddle-point/KKT systems, circuit matrices with voltage sources),
//! even though the matrices themselves are perfectly factorizable
//! after a row permutation. This module computes that permutation at
//! inspection time, the same compile-time trick SuperLU-style solvers
//! use to make static pivoting safe:
//!
//! * [`maximum_transversal`] — MC21-style augmenting-path matching on
//!   the bipartite row/column graph of the pattern (Duff 1981; the
//!   algorithm of CSparse's `cs_maxtrans`). Pattern-only: produces a
//!   row permutation `P` (`rowp[new] = old`) such that `P·A` has a
//!   **structurally** zero-free diagonal, or reports the structural
//!   rank when no perfect matching exists.
//! * [`weighted_matching`] — an MC64-like weighted variant (Duff &
//!   Koster 2001) that maximizes the **product of diagonal
//!   magnitudes**: shortest augmenting paths under log-scaled costs
//!   `c(i, j) = log max_r |a(r, j)| − log |a(i, j)|` with dual
//!   potentials, so the matched diagonal is not just nonzero but
//!   numerically large — the stability story for static pivoting.
//! * [`compute_pre_pivot`] — the [`PrePivot`] knob's dispatcher, the
//!   pre-pivoting analogue of [`crate::ordering::compute_ordering`].
//!   Returns `None` when nothing needs to move (the identity-matching
//!   fast path), so downstream plans bake no row map at all.
//!
//! Everything here is resolved **once per pattern** at inspection
//! time; the numeric phase reads the caller's original matrix through
//! gather maps and never re-permutes anything — zero per-factorization
//! cost, exactly like the fill-reducing orderings.
//!
//! The permutation convention matches the rest of the workspace:
//! `rowp[new] = old`, i.e. `(P·A)[new, :] = A[rowp[new], :]`, and
//! `(P·A)[j, j] = A[rowp[j], j]` is the matched diagonal entry.

use sympiler_sparse::{CscMatrix, SparseError};

/// Static pre-pivoting strategy for the LU pipeline, chosen once at
/// compile (inspection) time — the row-permutation analogue of the
/// fill-reducing [`crate::ordering::Ordering`] knob.
///
/// ```
/// use sympiler_graph::transversal::{compute_pre_pivot, PrePivot};
/// use sympiler_sparse::TripletMatrix;
///
/// // [[0, 2], [3, 0]] — structurally zero diagonal, but factorizable
/// // after swapping the rows.
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(1, 0, 3.0);
/// t.push(0, 1, 2.0);
/// let a = t.to_csc().unwrap();
///
/// let rowp = compute_pre_pivot(&a, PrePivot::Transversal)
///     .expect("a perfect matching exists")
///     .expect("the identity is not a transversal here");
/// assert_eq!(rowp, vec![1, 0]); // P·A = [[3, 0], [0, 2]]
///
/// // An already zero-free diagonal takes the identity fast path.
/// let id = sympiler_sparse::CscMatrix::identity(4);
/// assert!(compute_pre_pivot(&id, PrePivot::Transversal).unwrap().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrePivot {
    /// No pre-pivoting: the compiled pattern must already carry a
    /// usable diagonal (the historical contract). Structurally zero
    /// diagonals surface as zero-pivot errors from the numeric phase.
    #[default]
    Off,
    /// Maximum transversal (MC21): pattern-only augmenting-path
    /// matching. Guarantees a structurally zero-free diagonal — the
    /// cheapest unblocking for patterns whose values are well scaled.
    Transversal,
    /// Weighted matching (MC64-like): maximize the product of diagonal
    /// magnitudes via shortest augmenting paths on log-scaled costs.
    /// Strictly stronger than [`PrePivot::Transversal`] numerically
    /// (the matched diagonal is large, not merely nonzero) at a higher
    /// — still one-time — inspection cost. Unlike the transversal it
    /// reads values, so explicitly stored zeros are not matchable.
    WeightedMatching,
}

impl PrePivot {
    /// Short stable name, for tables, reports, and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            PrePivot::Off => "off",
            PrePivot::Transversal => "transversal",
            PrePivot::WeightedMatching => "weighted",
        }
    }

    /// All pre-pivot variants, in report order.
    pub const ALL: [PrePivot; 3] = [
        PrePivot::Off,
        PrePivot::Transversal,
        PrePivot::WeightedMatching,
    ];
}

/// Count the structurally present entries on the main diagonal of `a`
/// — `n` minus the number of columns a static diagonal pivot cannot
/// serve. The quantity [`compute_pre_pivot`] exists to drive to `n`.
/// (The complement of
/// [`sympiler_sparse::ops::structurally_zero_diagonals`], the one
/// diagonal-census implementation.)
pub fn structural_diag_count(a: &CscMatrix) -> usize {
    a.n_cols().min(a.n_rows()) - sympiler_sparse::ops::structurally_zero_diagonals(a)
}

/// The structural rank of `a`: the size of a maximum row/column
/// matching of its pattern (well-defined for rectangular matrices
/// too). Equal to `n` exactly when a perfect transversal exists (the
/// precondition for any static-pivot LU on a square pattern).
pub fn structural_rank(a: &CscMatrix) -> usize {
    let mut m = Matcher::new(a);
    m.run_cheap_diagonal();
    for j in 0..a.n_cols() {
        if m.col_match[j] == NONE {
            m.augment(j);
        }
    }
    m.matched
}

/// Maximum-transversal row matching (MC21 / `cs_maxtrans` style):
/// returns `rowp` with `rowp[new] = old` such that `P·A` has a
/// structurally zero-free diagonal, i.e. `A[rowp[j], j]` is stored for
/// every `j`.
///
/// Deterministic: columns are processed in order and each column's
/// pattern is scanned ascending, with a cheap-assignment pass that
/// prefers the diagonal itself — so a matrix whose diagonal is already
/// structurally full matches to the identity without any search.
///
/// # Errors
/// [`SparseError::StructurallySingular`] when no perfect matching
/// exists (the matrix is structurally rank-deficient; no row
/// permutation can make static pivoting work).
///
/// # Panics
/// If `a` is not square (the LU pipeline's contract).
pub fn maximum_transversal(a: &CscMatrix) -> Result<Vec<usize>, SparseError> {
    assert!(a.is_square(), "transversal requires a square matrix");
    let n = a.n_cols();
    let mut m = Matcher::new(a);
    m.run_cheap_diagonal();
    for j in 0..n {
        if m.col_match[j] == NONE {
            m.augment(j);
        }
    }
    if m.matched < n {
        return Err(SparseError::StructurallySingular {
            n,
            structural_rank: m.matched,
        });
    }
    Ok(m.col_match)
}

/// Weighted row matching (MC64-like): a perfect matching maximizing
/// `∏_j |A[rowp[j], j]|`, computed by shortest augmenting paths with
/// dual potentials on the costs `c(i, j) = log₂ max_r |A[r, j]| −
/// log₂ |A[i, j]|` (all `≥ 0`, zero on each column's largest entry).
/// Returns `rowp` with `rowp[new] = old`, like
/// [`maximum_transversal`].
///
/// Explicitly stored **zero values** carry infinite cost (a zero can
/// never be a pivot), so this variant is sensitive to values where the
/// plain transversal is pattern-only.
///
/// # Errors
/// [`SparseError::StructurallySingular`] when no perfect matching over
/// the numerically nonzero entries exists.
///
/// # Panics
/// If `a` is not square.
pub fn weighted_matching(a: &CscMatrix) -> Result<Vec<usize>, SparseError> {
    weighted_matching_full(a).map(|full| full.rowp)
}

/// A weighted matching plus the MC64 row/column scalings derived from
/// its dual potentials: `Dr[i] = 2^u[i]`, `Dc[j] = 2^(v[j] − lmax_j)`
/// (original, unpermuted coordinates). The scaled matrix
/// `Dr·A·Dc` has every entry `≤ 1` in magnitude and every matched
/// diagonal exactly `±1` — Duff & Koster's job 5, the preconditioner
/// that makes static pivoting numerically safe rather than merely
/// structurally possible.
#[derive(Debug, Clone)]
pub struct ScaledMatching {
    /// The matching as a row permutation, `rowp[new] = old` — exactly
    /// what [`weighted_matching`] returns.
    pub rowp: Vec<usize>,
    /// Row scaling `Dr`, indexed by original row.
    pub row_scale: Vec<f64>,
    /// Column scaling `Dc`, indexed by original column.
    pub col_scale: Vec<f64>,
}

impl ScaledMatching {
    /// `|Dr[i] · a · Dc[j]|` of a stored entry — the magnitude the
    /// scaled factorization actually sees.
    pub fn scaled_abs(&self, i: usize, j: usize, value: f64) -> f64 {
        (self.row_scale[i] * value * self.col_scale[j]).abs()
    }
}

/// [`weighted_matching`] plus the scalings its dual potentials encode
/// — one search, both artifacts. See [`ScaledMatching`].
///
/// # Errors
/// [`SparseError::StructurallySingular`] as for [`weighted_matching`].
///
/// # Panics
/// If `a` is not square.
pub fn weighted_matching_scaled(a: &CscMatrix) -> Result<ScaledMatching, SparseError> {
    let full = weighted_matching_full(a)?;
    let n = a.n_cols();
    let mut row_scale = vec![1.0f64; n];
    let mut col_scale = vec![1.0f64; n];
    for i in 0..n {
        // u[i] + v[j] ≤ c(i,j) = lmax_j − log2|a_ij| (tight on matched
        // edges), so 2^u[i] · |a_ij| · 2^(v[j] − lmax_j) ≤ 1.
        row_scale[i] = f64::exp2(full.u[i]);
        col_scale[i] = f64::exp2(full.v[i] - full.lmax[i]);
        debug_assert!(
            row_scale[i].is_finite() && row_scale[i] > 0.0,
            "row dual overflowed"
        );
        debug_assert!(
            col_scale[i].is_finite() && col_scale[i] > 0.0,
            "column dual overflowed"
        );
    }
    Ok(ScaledMatching {
        rowp: full.rowp,
        row_scale,
        col_scale,
    })
}

/// The matching plus its raw dual state: row potentials `u`, column
/// potentials `v`, and the per-column max log-magnitude `lmax` the
/// costs were normalized by.
struct WeightedMatchingFull {
    rowp: Vec<usize>,
    u: Vec<f64>,
    v: Vec<f64>,
    lmax: Vec<f64>,
}

fn weighted_matching_full(a: &CscMatrix) -> Result<WeightedMatchingFull, SparseError> {
    assert!(a.is_square(), "weighted matching requires a square matrix");
    let n = a.n_cols();
    // Per-entry costs, per column: c = lmax_j - log2|a_ij| >= 0.
    // Column-major alongside the CSC values; f64::INFINITY marks
    // numerically zero entries (unmatchable).
    let mut cost = vec![f64::INFINITY; a.nnz()];
    let mut lmax_by_col = vec![0.0f64; n];
    for j in 0..n {
        let lo = a.col_ptr()[j];
        let vals = a.col_values(j);
        let lmax = vals
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs().log2())
            .fold(f64::NEG_INFINITY, f64::max);
        if lmax == f64::NEG_INFINITY {
            // Every stored value in this column is zero: no pivot can
            // ever serve it.
            return Err(SparseError::StructurallySingular {
                n,
                structural_rank: structural_rank_nonzero(a),
            });
        }
        lmax_by_col[j] = lmax;
        for (p, v) in vals.iter().enumerate() {
            if *v != 0.0 {
                cost[lo + p] = lmax - v.abs().log2();
            }
        }
    }

    const UNVISITED: usize = usize::MAX;
    let mut row_match = vec![NONE; n]; // row -> col
    let mut col_match = vec![NONE; n]; // col -> row
    let mut u = vec![0.0f64; n]; // row duals
    let mut v = vec![0.0f64; n]; // col duals
    let mut dist = vec![f64::INFINITY; n]; // tentative path cost per row
    let mut pred = vec![0usize; n]; // column we reached each row from
    let mut stamp = vec![UNVISITED; n]; // per-phase visit marks (rows)
    let mut done = vec![UNVISITED; n]; // per-phase finalized marks
    let mut heap: std::collections::BinaryHeap<HeapEntry> = std::collections::BinaryHeap::new();
    let mut touched_rows: Vec<usize> = Vec::new();
    let mut tree_cols: Vec<usize> = Vec::new();

    for j0 in 0..n {
        heap.clear();
        touched_rows.clear();
        tree_cols.clear();
        // Dijkstra over alternating paths from column j0 to the
        // nearest unmatched row, on reduced costs (nonnegative by the
        // dual invariant u[i] + v[j] <= c(i, j)).
        let mut j = j0;
        let mut lsp = 0.0f64; // path cost to the tree column `j`
        let isap; // the unmatched row the shortest path ends at
        let lsap; // its path cost
        loop {
            tree_cols.push(j);
            let lo = a.col_ptr()[j];
            for (p, &i) in a.col_rows(j).iter().enumerate() {
                if done[i] == j0 {
                    continue;
                }
                let c = cost[lo + p];
                if c == f64::INFINITY {
                    continue;
                }
                let nd = lsp + c - u[i] - v[j];
                if stamp[i] != j0 {
                    stamp[i] = j0;
                    dist[i] = nd;
                    pred[i] = j;
                    touched_rows.push(i); // first touch this phase only
                    heap.push(HeapEntry { cost: nd, row: i });
                } else if nd < dist[i] {
                    dist[i] = nd;
                    pred[i] = j;
                    heap.push(HeapEntry { cost: nd, row: i });
                }
            }
            // Extract the closest not-yet-finalized row.
            let next = loop {
                match heap.pop() {
                    None => {
                        return Err(SparseError::StructurallySingular {
                            n,
                            structural_rank: structural_rank_nonzero(a),
                        });
                    }
                    Some(e) if done[e.row] == j0 || e.cost > dist[e.row] => continue,
                    Some(e) => break e,
                }
            };
            let i = next.row;
            done[i] = j0;
            if row_match[i] == NONE {
                isap = i;
                lsap = next.cost;
                break;
            }
            j = row_match[i];
            lsp = next.cost;
        }
        // Dual update: finalized rows move by their slack to the path.
        for &i in &touched_rows {
            if done[i] == j0 && i != isap {
                u[i] += dist[i] - lsap;
            }
        }
        // Augment along the predecessor chain.
        let mut i = isap;
        loop {
            let pj = pred[i];
            let prev = col_match[pj];
            col_match[pj] = i;
            row_match[i] = pj;
            if pj == j0 {
                break;
            }
            i = prev;
        }
        // Restore tightness on the tree's matched edges:
        // v[j] = c(i, j) - u[i] for the (possibly new) match of j.
        for &tj in &tree_cols {
            let i = col_match[tj];
            debug_assert_ne!(i, NONE, "tree columns are matched after augmenting");
            let lo = a.col_ptr()[tj];
            let p = a
                .col_rows(tj)
                .binary_search(&i)
                .expect("matched entry is stored");
            v[tj] = cost[lo + p] - u[i];
        }
    }
    Ok(WeightedMatchingFull {
        rowp: col_match,
        u,
        v,
        lmax: lmax_by_col,
    })
}

/// Structural rank counting only numerically nonzero entries — the
/// rank the weighted matching actually works with when reporting a
/// singular input.
fn structural_rank_nonzero(a: &CscMatrix) -> usize {
    // Build a pattern-only matrix of the nonzero values and reuse the
    // unweighted matcher. One-time error path: clarity over speed.
    let n = a.n_cols();
    let mut t = sympiler_sparse::TripletMatrix::with_capacity(n, n, a.nnz());
    for j in 0..n {
        for (i, val) in a.col_iter(j) {
            if val != 0.0 {
                t.push(i, j, 1.0);
            }
        }
    }
    match t.to_csc() {
        Ok(pat) => structural_rank(&pat),
        Err(_) => 0,
    }
}

/// Resolve the [`PrePivot`] knob for `a`: `None` when no row needs to
/// move — [`PrePivot::Off`], or a matching that comes back as the
/// identity (in particular, [`PrePivot::Transversal`] on any matrix
/// whose diagonal is already structurally full — the fast path costs
/// one O(nnz-of-diagonal) scan and no search at all). Otherwise
/// `Some(rowp)` with `rowp[new] = old`, always a valid permutation.
///
/// # Errors
/// [`SparseError::StructurallySingular`] when the requested matching
/// does not exist; see [`maximum_transversal`] / [`weighted_matching`].
///
/// # Panics
/// If `a` is not square.
pub fn compute_pre_pivot(
    a: &CscMatrix,
    pre_pivot: PrePivot,
) -> Result<Option<Vec<usize>>, SparseError> {
    assert!(a.is_square(), "pre-pivoting requires a square matrix");
    let n = a.n_cols();
    let rowp = match pre_pivot {
        PrePivot::Off => return Ok(None),
        PrePivot::Transversal => {
            if structural_diag_count(a) == n {
                // Already zero-free: the identity is a maximum
                // transversal, nothing to bake.
                return Ok(None);
            }
            maximum_transversal(a)?
        }
        // No structural fast path: the weighted matching may prefer
        // off-diagonal entries even when the diagonal is full.
        PrePivot::WeightedMatching => weighted_matching(a)?,
    };
    Ok(if rowp.iter().enumerate().all(|(new, &old)| new == old) {
        None
    } else {
        Some(rowp)
    })
}

const NONE: usize = usize::MAX;

/// Min-heap entry for the weighted matching's Dijkstra; ties break on
/// the row index so the search is deterministic.
#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    row: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the cheapest row.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.row.cmp(&self.row))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The MC21 augmenting-path state, shared by [`structural_rank`] and
/// [`maximum_transversal`]. Ported from the iterative formulation of
/// CSparse's `cs_maxtrans` (Davis 2006): an explicit column stack with
/// per-column pattern cursors, plus the "cheap assignment" shortcut
/// that matches each column to its first unmatched row before any
/// backtracking search runs.
struct Matcher<'a> {
    a: &'a CscMatrix,
    /// `col_match[j]` = matched row of column `j` (`rowp[j]`).
    col_match: Vec<usize>,
    /// `row_match[i]` = column matched to row `i`.
    row_match: Vec<usize>,
    /// Cheap-assignment cursor per column (never rewinds).
    cheap: Vec<usize>,
    /// Visit stamps per column, keyed by the root column of the phase.
    visited: Vec<usize>,
    /// DFS stacks: columns, chosen rows, pattern cursors.
    js: Vec<usize>,
    is_: Vec<usize>,
    ps: Vec<usize>,
    matched: usize,
}

impl<'a> Matcher<'a> {
    fn new(a: &'a CscMatrix) -> Self {
        let n = a.n_cols();
        Matcher {
            a,
            col_match: vec![NONE; n],
            // Row-indexed state sizes by n_rows so the matcher (and
            // with it `structural_rank`) is rectangular-safe.
            row_match: vec![NONE; a.n_rows()],
            cheap: a.col_ptr()[..n].to_vec(),
            visited: vec![NONE; n],
            js: vec![0; n],
            is_: vec![0; n],
            ps: vec![0; n],
            matched: 0,
        }
    }

    /// Seed the matching with every structurally present diagonal
    /// entry. This biases the result toward the identity (fewer moved
    /// rows) and makes the full-diagonal case an O(n) no-op.
    fn run_cheap_diagonal(&mut self) {
        for j in 0..self.a.n_cols() {
            if self.a.col_rows(j).binary_search(&j).is_ok() {
                self.col_match[j] = j;
                self.row_match[j] = j;
                self.matched += 1;
            }
        }
    }

    /// Try to augment the matching from unmatched column `j0`.
    fn augment(&mut self, j0: usize) {
        let col_ptr = self.a.col_ptr();
        let row_idx = self.a.row_idx();
        let mut head = 0usize;
        self.js[0] = j0;
        let mut found = false;
        loop {
            let j = self.js[head];
            if self.visited[j] != j0 {
                self.visited[j] = j0;
                // Cheap assignment: first unmatched row of column j.
                let mut p = self.cheap[j];
                while p < col_ptr[j + 1] {
                    let i = row_idx[p];
                    p += 1;
                    if self.row_match[i] == NONE {
                        self.is_[head] = i;
                        found = true;
                        break;
                    }
                }
                self.cheap[j] = p;
                if found {
                    break;
                }
                self.ps[head] = col_ptr[j];
            }
            // Depth-first: follow a matched row to its column.
            let mut advanced = false;
            let mut p = self.ps[head];
            while p < col_ptr[j + 1] {
                let i = row_idx[p];
                p += 1;
                let jm = self.row_match[i];
                debug_assert_ne!(jm, NONE, "cheap pass would have taken it");
                if self.visited[jm] == j0 {
                    continue;
                }
                self.ps[head] = p;
                self.is_[head] = i;
                head += 1;
                self.js[head] = jm;
                advanced = true;
                break;
            }
            if advanced {
                continue;
            }
            self.ps[head] = p;
            if head == 0 {
                break; // no augmenting path from j0
            }
            head -= 1;
        }
        if found {
            // Flip the alternating path: every (row, column) pair on
            // the stack becomes a matched edge.
            for h in (0..=head).rev() {
                self.row_match[self.is_[h]] = self.js[h];
                self.col_match[self.js[h]] = self.is_[h];
            }
            self.matched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::{gen, ops, TripletMatrix};

    fn assert_perm(perm: &[usize], n: usize) {
        assert!(ops::inverse_permutation(perm).is_ok());
        assert_eq!(perm.len(), n);
    }

    fn assert_zero_free_diag(a: &CscMatrix, rowp: &[usize]) {
        let b = ops::permute_rows(a, rowp).unwrap();
        for j in 0..b.n_cols() {
            assert!(
                b.col_rows(j).binary_search(&j).is_ok(),
                "column {j} diagonal still structurally zero"
            );
        }
    }

    #[test]
    fn full_diagonal_matches_identity() {
        let a = gen::circuit_unsym(60, 4, 2, 3);
        let rowp = maximum_transversal(&a).unwrap();
        assert_eq!(rowp, (0..60).collect::<Vec<_>>());
        assert!(compute_pre_pivot(&a, PrePivot::Transversal)
            .unwrap()
            .is_none());
        assert_eq!(structural_diag_count(&a), 60);
        assert_eq!(structural_rank(&a), 60);
    }

    #[test]
    fn off_is_none() {
        let a = gen::random_unsym(10, 2, 1);
        assert!(compute_pre_pivot(&a, PrePivot::Off).unwrap().is_none());
    }

    #[test]
    fn cyclic_shift_recovered() {
        // A[i, j] nonzero only for i = (j + 1) mod n: the only perfect
        // matching maps column j to row j + 1 mod n.
        let n = 7;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push((j + 1) % n, j, 1.0 + j as f64);
        }
        let a = t.to_csc().unwrap();
        assert_eq!(structural_diag_count(&a), 0);
        for f in [maximum_transversal, weighted_matching] {
            let rowp = f(&a).unwrap();
            assert_perm(&rowp, n);
            for (j, &r) in rowp.iter().enumerate() {
                assert_eq!(r, (j + 1) % n);
            }
            assert_zero_free_diag(&a, &rowp);
        }
    }

    #[test]
    fn zero_diag_circuits_match_completely() {
        for seed in 0..5u64 {
            let a = gen::circuit_zero_diag(80, 4, 2, seed);
            assert!(structural_diag_count(&a) < 80, "generator must zero diags");
            for pp in [PrePivot::Transversal, PrePivot::WeightedMatching] {
                let rowp = compute_pre_pivot(&a, pp)
                    .unwrap()
                    .expect("zero diagonals force a non-identity matching");
                assert_perm(&rowp, 80);
                assert_zero_free_diag(&a, &rowp);
            }
        }
    }

    #[test]
    fn weighted_matching_maximizes_diagonal_product() {
        // The weighted matching's diagonal product must beat (or tie)
        // both the plain transversal's and — on full-diagonal inputs —
        // the identity's.
        let log_prod = |a: &CscMatrix, rowp: &[usize]| -> f64 {
            (0..a.n_cols())
                .map(|j| a.get(rowp[j], j).abs().log2())
                .sum()
        };
        for seed in 0..4u64 {
            let a = gen::circuit_zero_diag(60, 4, 1, seed);
            let t = maximum_transversal(&a).unwrap();
            let w = weighted_matching(&a).unwrap();
            assert!(
                log_prod(&a, &w) >= log_prod(&a, &t) - 1e-9,
                "seed {seed}: weighted product must dominate the transversal's"
            );
        }
        // Diagonally dominant: the identity is optimal, and the
        // weighted matching must find a product at least as large.
        let a = gen::circuit_unsym(50, 4, 2, 9);
        let w = weighted_matching(&a).unwrap();
        let id: Vec<usize> = (0..50).collect();
        assert!(log_prod(&a, &w) >= log_prod(&a, &id) - 1e-9);
    }

    #[test]
    fn weighted_prefers_large_entries() {
        // [[1e-8, 1], [1, 1e-8]]: both diagonals exist, but the
        // off-diagonal pairing has product 1 vs 1e-16 — the weighted
        // matching must swap, while the transversal's fast path keeps
        // the (structurally fine) identity.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1e-8);
        t.push(1, 1, 1e-8);
        t.push(1, 0, 1.0);
        t.push(0, 1, 1.0);
        let a = t.to_csc().unwrap();
        assert!(compute_pre_pivot(&a, PrePivot::Transversal)
            .unwrap()
            .is_none());
        let w = compute_pre_pivot(&a, PrePivot::WeightedMatching)
            .unwrap()
            .expect("swap is strictly better");
        assert_eq!(w, vec![1, 0]);
    }

    #[test]
    fn mc64_scaling_bounds_entries_and_units_the_matched_diagonal() {
        // The duals' promise: Dr·A·Dc has every entry ≤ 1 and every
        // matched diagonal exactly 1 — on the zero-diagonal circuits
        // the pre-pivot exists for, and on a benign full-diagonal one.
        let mats = [
            gen::circuit_zero_diag(60, 4, 2, 3),
            gen::circuit_zero_diag(80, 4, 2, 11),
            gen::saddle_point_2x2(40, 8, 5),
            gen::circuit_unsym(50, 4, 2, 9),
        ];
        for a in &mats {
            let n = a.n_cols();
            let sm = weighted_matching_scaled(a).unwrap();
            assert_eq!(
                sm.rowp,
                weighted_matching(a).unwrap(),
                "scaled variant must return the same matching"
            );
            assert_eq!(sm.row_scale.len(), n);
            assert_eq!(sm.col_scale.len(), n);
            for j in 0..n {
                for (i, v) in a.col_iter(j) {
                    if v != 0.0 {
                        let s = sm.scaled_abs(i, j, v);
                        assert!(s <= 1.0 + 1e-9, "entry ({i}, {j}) scaled to {s} > 1");
                    }
                }
                let i = sm.rowp[j];
                let s = sm.scaled_abs(i, j, a.get(i, j));
                assert!(
                    (s - 1.0).abs() < 1e-9,
                    "matched diagonal of column {j} scaled to {s}, not 1"
                );
            }
        }
    }

    #[test]
    fn structurally_singular_reports_rank() {
        // Column 2 is empty: structural rank 3 of n = 4.
        let mut t = TripletMatrix::new(4, 4);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(3, 3, 1.0);
        t.push(2, 0, 1.0); // row 2 touches only column 0
        let a = t.to_csc().unwrap();
        assert_eq!(structural_rank(&a), 3);
        for pp in [PrePivot::Transversal, PrePivot::WeightedMatching] {
            match compute_pre_pivot(&a, pp) {
                Err(SparseError::StructurallySingular { n, structural_rank }) => {
                    assert_eq!((n, structural_rank), (4, 3), "{pp:?}");
                }
                other => panic!("{pp:?}: expected StructurallySingular, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicated_column_pattern_is_singular() {
        // Two columns whose patterns are the same single row: no
        // perfect matching even though every column is nonempty.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 2, 3.0);
        t.push(2, 2, 4.0);
        let a = t.to_csc().unwrap();
        assert!(matches!(
            maximum_transversal(&a),
            Err(SparseError::StructurallySingular {
                n: 3,
                structural_rank: 2
            })
        ));
    }

    #[test]
    fn explicit_zero_values_block_weighted_only() {
        // Diagonal stored but numerically zero, with nonzero
        // off-diagonals forming a perfect matching: the pattern-only
        // transversal happily keeps the identity, the weighted
        // matching must route around the zeros.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(1, 1, 0.0);
        t.push(1, 0, 2.0);
        t.push(0, 1, 3.0);
        let a = t.to_csc().unwrap();
        assert!(compute_pre_pivot(&a, PrePivot::Transversal)
            .unwrap()
            .is_none());
        let w = weighted_matching(&a).unwrap();
        assert_eq!(w, vec![1, 0]);
        // All-zero values: even the weighted matching must give up,
        // with the numeric structural rank in the error.
        let mut t2 = TripletMatrix::new(2, 2);
        t2.push(0, 0, 0.0);
        t2.push(1, 1, 1.0);
        t2.push(1, 0, 0.0);
        let a2 = t2.to_csc().unwrap();
        assert!(matches!(
            weighted_matching(&a2),
            Err(SparseError::StructurallySingular {
                n: 2,
                structural_rank: 1
            })
        ));
    }

    #[test]
    fn saddle_point_suite_generator_matches() {
        let a = gen::saddle_point_2x2(40, 8, 5);
        assert_eq!(a.n_cols(), 48);
        assert_eq!(
            structural_diag_count(&a),
            40,
            "constraint block has no diagonal"
        );
        for pp in [PrePivot::Transversal, PrePivot::WeightedMatching] {
            let rowp = compute_pre_pivot(&a, pp).unwrap().expect("must permute");
            assert_perm(&rowp, 48);
            assert_zero_free_diag(&a, &rowp);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = gen::circuit_zero_diag(100, 4, 2, 7);
        assert_eq!(
            maximum_transversal(&a).unwrap(),
            maximum_transversal(&a).unwrap()
        );
        assert_eq!(
            weighted_matching(&a).unwrap(),
            weighted_matching(&a).unwrap()
        );
    }

    #[test]
    fn one_by_one_and_empty() {
        let a = CscMatrix::identity(1);
        assert_eq!(maximum_transversal(&a).unwrap(), vec![0]);
        assert_eq!(weighted_matching(&a).unwrap(), vec![0]);
        let e = CscMatrix::zeros(0, 0);
        assert!(maximum_transversal(&e).unwrap().is_empty());
        assert!(weighted_matching(&e).unwrap().is_empty());
        assert_eq!(structural_rank(&e), 0);
    }

    #[test]
    fn structural_rank_handles_rectangular_patterns() {
        // 3x2 with entries at (2, 0) and (0, 1): rank 2. The
        // row-indexed matcher state must size by n_rows, not n_cols.
        let mut t = TripletMatrix::new(3, 2);
        t.push(2, 0, 1.0);
        t.push(0, 1, 1.0);
        let a = t.to_csc().unwrap();
        assert_eq!(structural_rank(&a), 2);
        assert_eq!(structural_diag_count(&a), 0);
        // Wide: 2x3, two matchable columns out of three.
        let mut w = TripletMatrix::new(2, 3);
        w.push(0, 0, 1.0);
        w.push(0, 1, 1.0);
        w.push(1, 2, 1.0);
        let b = w.to_csc().unwrap();
        assert_eq!(structural_rank(&b), 2);
        assert_eq!(structural_diag_count(&b), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PrePivot::Off.label(), "off");
        assert_eq!(PrePivot::Transversal.label(), "transversal");
        assert_eq!(PrePivot::WeightedMatching.label(), "weighted");
        assert_eq!(PrePivot::default(), PrePivot::Off);
        assert_eq!(PrePivot::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let _ = maximum_transversal(&CscMatrix::zeros(3, 2));
    }
}
