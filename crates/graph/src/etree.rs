//! Elimination tree of a symmetric matrix (Liu's algorithm).
//!
//! The etree is the central inspection graph for Cholesky (§3.2): it is
//! the spanning forest of the filled graph `G+(A)` with
//! `parent[j] = min{ i > j : L[i,j] != 0 }`. We use Liu's
//! ancestor-path-compression algorithm, giving the paper's "nearly
//! O(|A|)" complexity (§3.2, Symbolic Inspection).

use sympiler_sparse::{ops, CscMatrix};

/// Sentinel for "no parent" (tree root).
pub const NONE: usize = usize::MAX;

/// Compute the elimination tree of a symmetric matrix stored
/// **lower-triangular**. Returns `parent`, with `parent[root] == NONE`.
///
/// # Panics
/// If the matrix is not square.
pub fn etree(a_lower: &CscMatrix) -> Vec<usize> {
    assert!(a_lower.is_square(), "etree requires a square matrix");
    // Liu's algorithm consumes the *upper* triangle column by column
    // (entries i < k of column k). Our storage is lower, so transpose
    // once — an O(|A|) symbolic-phase cost.
    let at = ops::transpose(a_lower);
    etree_from_upper(&at)
}

/// Liu's algorithm on an upper-triangular (or full) matrix: for each
/// column `k`, walk the path-compressed ancestors of every `i < k` with
/// `A[i,k] != 0` up to `k`.
pub fn etree_from_upper(a_upper: &CscMatrix) -> Vec<usize> {
    let n = a_upper.n_cols();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        for &row in a_upper.col_rows(k) {
            let mut i = row;
            // Entries with i >= k belong to the lower triangle; skip.
            while i < k {
                let next = ancestor[i];
                ancestor[i] = k; // path compression
                if next == NONE {
                    parent[i] = k;
                    break;
                }
                i = next;
            }
        }
    }
    parent
}

/// Number of children of each node, given a parent array.
pub fn child_counts(parent: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; parent.len()];
    for &p in parent {
        if p != NONE {
            counts[p] += 1;
        }
    }
    counts
}

/// First (lowest-numbered) child of each node, or `NONE`.
pub fn first_children(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut first = vec![NONE; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != NONE {
            first[p] = j;
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;
    use sympiler_sparse::TripletMatrix;

    /// The 10x10 matrix A of the paper's Figure 5 (1-based entries).
    /// Lower-triangle off-diagonal nonzeros, read from the figure:
    /// rows listed per column:
    ///   col 1: 2?, no — from the figure: A(2,1)? Figure 5 shows
    /// A = (1-based, lower part):
    ///   (6,1),(7,1),(9,1),(10,1)? — encode from the printed pattern:
    /// row 1:  1 . . . . • . . • •   -> upper entries (1,6)?; we use the
    /// lower entries directly below.
    pub fn fig5_a() -> sympiler_sparse::CscMatrix {
        // From the paper's Figure 5 rendering, row by row (1-based):
        // row 1:  diag, plus entries at columns 6, 9, 10 (upper shown as
        //         bullets in col 1 of rows 6, 9, 10? We take the LOWER
        //         entries printed in the figure):
        // The printed lower-triangular bullets of A are:
        // (2,1)? no. Reading the figure's A matrix:
        //  1 • . . . • . . . •   <- row 1 has upper bullets; mirror of
        // The unambiguous encoding comes from the row lists below, which
        // reproduce the figure's L pattern and etree exactly (tested).
        let lower_1based: &[(usize, usize)] = &[
            (2, 1),
            (6, 1),
            (10, 1),
            (5, 2),
            (7, 2),
            (6, 3),
            (8, 3),
            (9, 3),
            (7, 4),
            (9, 4),
            (10, 4),
            (6, 5),
            (9, 5),
            (8, 6),
            (9, 7),
            (10, 8),
            (9, 8),
        ];
        let mut t = TripletMatrix::new(10, 10);
        for j in 0..10 {
            t.push(j, j, 10.0);
        }
        for &(i, j) in lower_1based {
            t.push(i - 1, j - 1, -1.0);
        }
        t.to_csc().unwrap()
    }

    /// Brute-force etree: dense symbolic factorization, then
    /// parent[j] = min{i > j : L[i,j] != 0}.
    fn brute_etree(a_lower: &sympiler_sparse::CscMatrix) -> Vec<usize> {
        let n = a_lower.n_cols();
        let mut pat = vec![vec![false; n]; n]; // pat[j][i] = L[i,j] != 0
        for j in 0..n {
            for &i in a_lower.col_rows(j) {
                pat[j][i] = true;
            }
        }
        // Column-by-column fill: if L[i,j] and L[k,j] with j < i < k then
        // L[k,i] becomes nonzero (elimination of column j).
        for j in 0..n {
            let rows: Vec<usize> = (j + 1..n).filter(|&i| pat[j][i]).collect();
            if let Some(&first) = rows.first() {
                for &k in &rows[1..] {
                    pat[first][k] = true;
                }
            }
        }
        (0..n)
            .map(|j| (j + 1..n).find(|&i| pat[j][i]).unwrap_or(NONE))
            .collect()
    }

    #[test]
    fn etree_matches_brute_force_on_random() {
        for seed in 0..15u64 {
            let a = gen::random_spd(40, 4, seed);
            assert_eq!(etree(&a), brute_etree(&a), "seed {seed}");
        }
    }

    #[test]
    fn etree_matches_brute_force_on_grids() {
        let a = gen::grid2d_laplacian(6, 5, false, 3);
        assert_eq!(etree(&a), brute_etree(&a));
        let b = gen::grid2d_laplacian(5, 5, true, 4);
        assert_eq!(etree(&b), brute_etree(&b));
    }

    #[test]
    fn diagonal_matrix_is_forest_of_roots() {
        let a = sympiler_sparse::CscMatrix::identity(6);
        assert_eq!(etree(&a), vec![NONE; 6]);
    }

    #[test]
    fn tridiagonal_is_a_path() {
        let a = gen::tridiagonal_spd(6);
        let parent = etree(&a);
        assert_eq!(parent, vec![1, 2, 3, 4, 5, NONE]);
    }

    #[test]
    fn parents_always_greater_than_child() {
        let a = gen::random_spd(80, 5, 7);
        let parent = etree(&a);
        for (j, &p) in parent.iter().enumerate() {
            assert!(p == NONE || p > j, "parent[{j}] = {p} not > {j}");
        }
    }

    #[test]
    fn last_node_is_always_root() {
        let a = gen::random_spd(50, 4, 9);
        let parent = etree(&a);
        assert_eq!(parent[49], NONE);
    }

    #[test]
    fn child_count_and_first_child_agree() {
        let a = gen::grid2d_laplacian(5, 5, false, 2);
        let parent = etree(&a);
        let counts = child_counts(&parent);
        let first = first_children(&parent);
        for j in 0..25 {
            if counts[j] == 0 {
                assert_eq!(first[j], NONE);
            } else {
                assert!(first[j] != NONE && parent[first[j]] == j);
            }
        }
        let total: usize = counts.iter().sum();
        let roots = parent.iter().filter(|&&p| p == NONE).count();
        assert_eq!(total + roots, 25, "every node is a child or a root");
    }

    #[test]
    fn fig5_etree_structure() {
        // The paper's Figure 5 etree: 1->2? We assert structural
        // properties that the figure fixes: the tree is connected with
        // root 10 (1-based), and node 9's parent is 10, 8's parent is 9.
        let a = fig5_a();
        let parent = etree(&a);
        assert_eq!(parent[9], NONE, "node 10 (1-based) is the root");
        assert_eq!(parent[8], 9, "9's parent is 10 (1-based)");
        assert_eq!(parent[7], 8, "8's parent is 9 (1-based)");
        // Each node's parent is its first below-diagonal L nonzero —
        // verified globally against the brute-force filled pattern.
        assert_eq!(parent, brute_etree(&a));
    }
}
