//! Reverse Cuthill–McKee ordering.
//!
//! The paper does not prescribe a fill-reducing ordering; its libraries
//! run "recommended default configuration". Offline we need *some*
//! shared ordering so that grid and irregular problems factor at laptop
//! scale — RCM is simple, deterministic, and applied identically to
//! every engine, so relative comparisons (the paper's claims) are
//! unaffected. See DESIGN.md §6.
//!
//! RCM is also wired into the LU compile pipeline's ordering knob
//! ([`crate::ordering::Ordering::Rcm`]) as the cheap symmetric-pattern
//! alternative. Note its limits there: for **unsymmetric** LU it
//! operates on the symmetrized pattern `|A| + |Aᵀ|`, which throws away
//! exactly the asymmetry that governs LU fill (the right structure is
//! the column intersection graph of `AᵀA`), and a minimal *bandwidth*
//! still fills the entire band during factorization. Expect
//! [`crate::ordering::Ordering::Colamd`] to dominate it on circuit-like
//! and randomly structured systems; RCM earns its keep on nearly
//! symmetric banded operators where its locality is the whole story.

use sympiler_sparse::{ops, CscMatrix};

/// Compute an RCM ordering of a symmetric matrix stored
/// lower-triangular. Returns `perm` with `perm[new] = old`, directly
/// usable with [`sympiler_sparse::ops::permute_sym`].
pub fn rcm_ordering(a_lower: &CscMatrix) -> Vec<usize> {
    assert!(a_lower.is_square(), "rcm requires a square matrix");
    let n = a_lower.n_cols();
    if n == 0 {
        return Vec::new();
    }
    // Full symmetric adjacency for neighbor scans.
    let full = ops::symmetrize_from_lower(a_lower)
        .expect("rcm requires lower-triangular symmetric storage");
    let degree: Vec<usize> = (0..n).map(|j| full.col_nnz(j)).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut frontier: Vec<usize> = Vec::new();
    let mut next_frontier: Vec<usize> = Vec::new();

    loop {
        // Start node: unvisited node of minimum degree (cheap
        // pseudo-peripheral heuristic).
        let start = match (0..n).filter(|&j| !visited[j]).min_by_key(|&j| degree[j]) {
            Some(s) => s,
            None => break,
        };
        let root = pseudo_peripheral(&full, start, &visited);
        // BFS, visiting neighbors in increasing-degree order.
        visited[root] = true;
        order.push(root);
        frontier.clear();
        frontier.push(root);
        while !frontier.is_empty() {
            next_frontier.clear();
            for &v in frontier.iter() {
                let mut neigh: Vec<usize> = full
                    .col_rows(v)
                    .iter()
                    .copied()
                    .filter(|&u| u != v && !visited[u])
                    .collect();
                neigh.sort_unstable_by_key(|&u| (degree[u], u));
                for u in neigh {
                    if !visited[u] {
                        visited[u] = true;
                        order.push(u);
                        next_frontier.push(u);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next_frontier);
        }
    }
    order.reverse(); // the "reverse" in RCM
    order
}

/// Find a pseudo-peripheral node: repeat BFS from the farthest
/// minimum-degree node of the last level until eccentricity stops
/// growing.
fn pseudo_peripheral(full: &CscMatrix, start: usize, visited: &[bool]) -> usize {
    let n = full.n_cols();
    let mut root = start;
    let mut last_ecc = 0usize;
    let mut level = vec![usize::MAX; n];
    for _ in 0..4 {
        // Bounded iterations; converges in 2-3 in practice.
        level.fill(usize::MAX);
        level[root] = 0;
        let mut frontier = vec![root];
        let mut ecc = 0;
        let mut last_level: Vec<usize> = vec![root];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in full.col_rows(v) {
                    if u != v && !visited[u] && level[u] == usize::MAX {
                        level[u] = level[v] + 1;
                        ecc = ecc.max(level[u]);
                        next.push(u);
                    }
                }
            }
            if !next.is_empty() {
                last_level = next.clone();
            }
            frontier = next;
        }
        if ecc <= last_ecc {
            break;
        }
        last_ecc = ecc;
        root = *last_level
            .iter()
            .min_by_key(|&&u| full.col_nnz(u))
            .unwrap_or(&root);
    }
    root
}

/// Semi-bandwidth of a symmetric matrix stored lower-triangular:
/// `max_j (max_row(col j) - j)`.
pub fn semi_bandwidth(a_lower: &CscMatrix) -> usize {
    (0..a_lower.n_cols())
        .filter_map(|j| a_lower.col_rows(j).last().map(|&i| i - j))
        .max()
        .unwrap_or(0)
}

/// Apply RCM to a matrix and return the permuted matrix (lower storage)
/// together with the permutation used.
pub fn rcm_permute(a_lower: &CscMatrix) -> (CscMatrix, Vec<usize>) {
    let perm = rcm_ordering(a_lower);
    let full = ops::symmetrize_from_lower(a_lower).expect("requires lower storage");
    let permuted = ops::permute_sym(&full, &perm).expect("valid permutation");
    (ops::extract_lower(&permuted), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn rcm_is_a_permutation() {
        let a = gen::circuit_like(80, 4, 3, 1);
        let perm = rcm_ordering(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..80).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_grid() {
        // Shuffle a grid, then check RCM recovers a small bandwidth.
        let a = gen::grid2d_laplacian(12, 12, false, 2);
        let full = ops::symmetrize_from_lower(&a).unwrap();
        // A deterministic "bad" permutation: bit-reversal-ish stride.
        let n = 144;
        let bad: Vec<usize> = (0..n).map(|i| (i * 89) % n).collect();
        let shuffled = ops::extract_lower(&ops::permute_sym(&full, &bad).unwrap());
        let before = semi_bandwidth(&shuffled);
        let (rcm_matrix, _) = rcm_permute(&shuffled);
        let after = semi_bandwidth(&rcm_matrix);
        assert!(
            after < before / 2,
            "rcm should cut bandwidth: before={before}, after={after}"
        );
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two disjoint blocks.
        let mut t = sympiler_sparse::TripletMatrix::new(6, 6);
        for j in 0..6 {
            t.push(j, j, 4.0);
        }
        t.push(1, 0, -1.0);
        t.push(4, 3, -1.0);
        let a = t.to_csc().unwrap();
        let perm = rcm_ordering(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_permute_preserves_symmetry_and_values() {
        let a = gen::random_spd(40, 4, 7);
        let (p, perm) = rcm_permute(&a);
        assert!(p.is_lower_storage());
        assert_eq!(p.nnz(), a.nnz(), "permutation preserves nnz");
        // Diagonal multiset is preserved.
        let mut d1: Vec<f64> = (0..40).map(|j| a.get(j, j)).collect();
        let mut d2: Vec<f64> = (0..40).map(|j| p.get(j, j)).collect();
        d1.sort_by(f64::total_cmp);
        d2.sort_by(f64::total_cmp);
        assert_eq!(d1, d2);
        assert_eq!(perm.len(), 40);
    }

    #[test]
    fn bandwidth_of_tridiagonal_is_one() {
        let a = gen::tridiagonal_spd(10);
        assert_eq!(semi_bandwidth(&a), 1);
    }

    #[test]
    fn empty_matrix() {
        let a = sympiler_sparse::CscMatrix::zeros(0, 0);
        assert!(rcm_ordering(&a).is_empty());
    }
}
