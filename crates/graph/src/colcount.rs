//! Column counts of the Cholesky factor `L`.
//!
//! `ColCount(A)` is one of the two inputs to the Cholesky VS-Block
//! inspector (Table 1: inspection graph = etree + ColCount(A)). The
//! counts drive supernode detection and the paper's BLAS-switch
//! threshold ("the average column-count is used to decide when to
//! switch to BLAS routines", §4.2).

use crate::etree::etree;
use crate::symbolic::SymbolicFactor;
use sympiler_sparse::{ops, CscMatrix};

/// Column counts of `L` (including the diagonal), computed without
/// materializing the full pattern: counts the ereach of every row.
/// `O(|L|)` time, `O(n)` extra memory.
pub fn col_counts(a_lower: &CscMatrix) -> Vec<usize> {
    let parent = etree(a_lower);
    col_counts_with_etree(a_lower, &parent)
}

/// As [`col_counts`], reusing a precomputed etree.
pub fn col_counts_with_etree(a_lower: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = a_lower.n_cols();
    let at = ops::transpose(a_lower);
    let mut counts = vec![1usize; n]; // diagonals
    let mut ws = crate::ereach::EreachWorkspace::new(n);
    let mut row = Vec::new();
    for k in 0..n {
        crate::ereach::ereach_into(&at, k, parent, &mut ws, &mut row);
        for &j in &row {
            counts[j] += 1;
        }
    }
    counts
}

/// Column counts read off a completed symbolic factorization.
pub fn col_counts_from_symbolic(sym: &SymbolicFactor) -> Vec<usize> {
    (0..sym.n).map(|j| sym.col_count(j)).collect()
}

/// Average column count — the paper's supernodal / BLAS heuristic input.
pub fn average_col_count(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().sum::<usize>() as f64 / counts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::symbolic_cholesky;
    use sympiler_sparse::gen;

    #[test]
    fn counts_match_symbolic_pattern() {
        for seed in 0..8u64 {
            let a = gen::random_spd(45, 4, seed);
            let counts = col_counts(&a);
            let sym = symbolic_cholesky(&a);
            assert_eq!(counts, col_counts_from_symbolic(&sym), "seed {seed}");
        }
    }

    #[test]
    fn counts_on_grid_match() {
        let a = gen::grid2d_laplacian(6, 5, true, 2);
        let counts = col_counts(&a);
        let sym = symbolic_cholesky(&a);
        assert_eq!(counts, col_counts_from_symbolic(&sym));
    }

    #[test]
    fn tridiagonal_counts() {
        let a = gen::tridiagonal_spd(7);
        let counts = col_counts(&a);
        assert_eq!(counts, vec![2, 2, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn identity_counts_are_one() {
        let a = CscMatrix::identity(5);
        assert_eq!(col_counts(&a), vec![1; 5]);
    }

    #[test]
    fn average() {
        assert_eq!(average_col_count(&[2, 2, 2, 2, 2, 2, 1]), 13.0 / 7.0);
        assert_eq!(average_col_count(&[]), 0.0);
    }

    #[test]
    fn sum_of_counts_is_l_nnz() {
        let a = gen::circuit_like(50, 4, 2, 3);
        let counts = col_counts(&a);
        let sym = symbolic_cholesky(&a);
        assert_eq!(counts.iter().sum::<usize>(), sym.l_nnz());
    }
}
