//! Row sparsity patterns of `L` via elimination-tree up-traversal —
//! the Cholesky **prune-set** inspector of the paper (§3.2, Table 1:
//! inspection graph = etree + SP(A), strategy = up-traversal,
//! inspection set = SP(L_j) per row).
//!
//! `ereach(A, k)` returns the column indices `j < k` with `L[k,j] != 0`,
//! i.e. exactly the columns whose updates column `k`'s factorization
//! consumes in left-looking Cholesky (Figure 4's `PruneSet`). The
//! traversal walks up the etree from each nonzero of `A(0..k, k)` until
//! it hits an already-marked node, giving a cost proportional to the
//! row's nonzero count — "nearly O(|A|)" across all rows (§3.2).

use crate::etree::NONE;
use sympiler_sparse::{ops, CscMatrix};

/// Reusable workspace for [`ereach_into`].
#[derive(Debug, Clone, Default)]
pub struct EreachWorkspace {
    /// Mark array: `mark[i] == stamp` means visited for the current row.
    mark: Vec<usize>,
    stamp: usize,
    /// Scratch stack for one upward path.
    path: Vec<usize>,
}

impl EreachWorkspace {
    pub fn new(n: usize) -> Self {
        Self {
            mark: vec![0; n],
            stamp: 0,
            path: Vec::with_capacity(32),
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
    }
}

/// Compute the pattern of row `k` of `L` (excluding the diagonal) for
/// the symmetric matrix whose **upper triangle** is `a_upper`
/// (i.e. `transpose(a_lower)`). Allocating convenience wrapper.
pub fn ereach(a_upper: &CscMatrix, k: usize, parent: &[usize]) -> Vec<usize> {
    let mut ws = EreachWorkspace::new(a_upper.n_cols());
    let mut out = Vec::new();
    ereach_into(a_upper, k, parent, &mut ws, &mut out);
    out
}

/// As [`ereach`], writing into `out` (cleared first) and reusing `ws`.
///
/// The output is in **topological order with respect to the etree**
/// (every node precedes its ancestors within the same path), which is a
/// valid execution order for the left-looking update loop.
pub fn ereach_into(
    a_upper: &CscMatrix,
    k: usize,
    parent: &[usize],
    ws: &mut EreachWorkspace,
    out: &mut Vec<usize>,
) {
    let n = a_upper.n_cols();
    assert!(k < n, "row {k} out of range {n}");
    ws.ensure(n);
    ws.stamp += 1;
    let stamp = ws.stamp;
    out.clear();
    ws.mark[k] = stamp; // never include k itself
    for &i in a_upper.col_rows(k) {
        if i >= k {
            continue; // lower/diagonal entries when given full storage
        }
        // Walk up the tree from i until a marked node, collecting the
        // path, then emit it in root-ward order *after* reversing so the
        // deepest (smallest) column comes first.
        let mut x = i;
        ws.path.clear();
        while x != NONE && x < k && ws.mark[x] != stamp {
            ws.path.push(x);
            ws.mark[x] = stamp;
            x = parent[x];
        }
        // The path runs child -> ancestor; children must execute first,
        // so append as collected.
        out.extend(ws.path.iter().copied());
    }
    // A canonical, fully sorted order is also topological for an etree
    // (ancestors have larger indices), and makes downstream merging and
    // testing deterministic.
    out.sort_unstable();
}

/// All row patterns of `L`: returns `(row_ptr, row_idx)` in CSR-like
/// form over rows `0..n` (diagonal excluded). This is the full
/// prune-set table the Sympiler Cholesky inspector precomputes, so the
/// numeric phase never calls `ereach` (§4.2: "the reach function ... is
/// removed from the numeric code").
pub fn row_patterns(a_lower: &CscMatrix, parent: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let at = ops::transpose(a_lower);
    let n = a_lower.n_cols();
    let mut ws = EreachWorkspace::new(n);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut row_idx = Vec::new();
    let mut scratch = Vec::new();
    row_ptr.push(0);
    for k in 0..n {
        ereach_into(&at, k, parent, &mut ws, &mut scratch);
        row_idx.extend_from_slice(&scratch);
        row_ptr.push(row_idx.len());
    }
    (row_ptr, row_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::etree;
    use sympiler_sparse::gen;

    /// Dense symbolic factorization for cross-checking row patterns.
    fn brute_l_pattern(a_lower: &CscMatrix) -> Vec<Vec<bool>> {
        let n = a_lower.n_cols();
        let mut pat = vec![vec![false; n]; n]; // pat[j][i] = L[i,j] != 0
        for j in 0..n {
            for &i in a_lower.col_rows(j) {
                pat[j][i] = true;
            }
        }
        for j in 0..n {
            let rows: Vec<usize> = (j + 1..n).filter(|&i| pat[j][i]).collect();
            if let Some(&first) = rows.first() {
                for &k in &rows[1..] {
                    pat[first][k] = true;
                }
            }
        }
        pat
    }

    #[test]
    fn ereach_matches_brute_force() {
        for seed in 0..10u64 {
            let a = gen::random_spd(35, 4, seed);
            let parent = etree(&a);
            let at = ops::transpose(&a);
            let pat = brute_l_pattern(&a);
            for k in 0..35 {
                let r = ereach(&at, k, &parent);
                let expect: Vec<usize> = (0..k).filter(|&j| pat[j][k]).collect();
                assert_eq!(r, expect, "row {k}, seed {seed}");
            }
        }
    }

    #[test]
    fn ereach_on_grid() {
        let a = gen::grid2d_laplacian(5, 4, false, 1);
        let parent = etree(&a);
        let at = ops::transpose(&a);
        let pat = brute_l_pattern(&a);
        for k in 0..20 {
            let r = ereach(&at, k, &parent);
            let expect: Vec<usize> = (0..k).filter(|&j| pat[j][k]).collect();
            assert_eq!(r, expect, "row {k}");
        }
    }

    #[test]
    fn first_row_is_empty() {
        let a = gen::random_spd(20, 3, 2);
        let parent = etree(&a);
        let at = ops::transpose(&a);
        assert!(ereach(&at, 0, &parent).is_empty());
    }

    #[test]
    fn row_patterns_table_matches_per_row_calls() {
        let a = gen::random_spd(30, 4, 5);
        let parent = etree(&a);
        let at = ops::transpose(&a);
        let (ptr, idx) = row_patterns(&a, &parent);
        assert_eq!(ptr.len(), 31);
        for k in 0..30 {
            let row = &idx[ptr[k]..ptr[k + 1]];
            assert_eq!(row, ereach(&at, k, &parent).as_slice(), "row {k}");
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let a = gen::random_spd(25, 3, 8);
        let parent = etree(&a);
        let at = ops::transpose(&a);
        let mut ws = EreachWorkspace::new(25);
        let mut out = Vec::new();
        for k in 0..25 {
            ereach_into(&at, k, &parent, &mut ws, &mut out);
            let fresh = ereach(&at, k, &parent);
            assert_eq!(out, fresh, "row {k} with reused workspace");
        }
    }

    #[test]
    fn diagonal_matrix_has_empty_rows() {
        let a = CscMatrix::identity(8);
        let parent = etree(&a);
        let (ptr, idx) = row_patterns(&a, &parent);
        assert!(idx.is_empty());
        assert_eq!(ptr, vec![0; 9]);
    }
}
