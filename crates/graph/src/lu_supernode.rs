//! Supernode (column-panel) detection for sparse **LU** — the VS-Block
//! inspector of the unsymmetric pipeline.
//!
//! Adjacent columns `j-1`, `j` of the predicted `L` merge when the
//! sub-diagonal pattern of `j-1` equals the full pattern of `j` —
//! `L(:, j-1)` minus its top (diagonal) row *is* `L(:, j)` — the
//! [`crate::supernode::supernodes_cholesky`] nesting rule evaluated
//! directly on the Gilbert–Peierls factor pattern instead of the etree.
//! Inside such a panel the diagonal block of `L` is a full dense lower
//! triangle and every column shares the panel's sub-diagonal rows, so
//! the panel is a dense **trapezoid**: the numeric phase can factor its
//! diagonal block with an unpivoted dense GETRF, divide out the panel's
//! `U` with a dense TRSM, and push its updates into later panels with
//! dense GEMMs (paper §3.2, applied to LU).
//!
//! Like the Cholesky rule, detection is strict (no amalgamation): the
//! `max_panel` knob only *caps* panel width so trapezoid buffers stay
//! cache-sized, it never merges non-nesting columns.

use crate::lu_symbolic::LuSymbolic;
use crate::supernode::SupernodePartition;

/// Merge adjacent columns while their `L` patterns nest, given the
/// pattern as diagonal-first row lists per column.
fn detect_nesting<R: PartialEq>(
    n: usize,
    col_ptr: &[usize],
    row_idx: &[R],
    max_panel: usize,
) -> SupernodePartition {
    if n == 0 {
        return SupernodePartition::from_first_cols(vec![0], 0);
    }
    let mut first_col = vec![0usize];
    let mut width = 1usize;
    for j in 1..n {
        let prev = &row_idx[col_ptr[j - 1]..col_ptr[j]];
        let cur = &row_idx[col_ptr[j]..col_ptr[j + 1]];
        let nests = prev.len() == cur.len() + 1 && &prev[1..] == cur;
        let fits = max_panel == 0 || width < max_panel;
        if nests && fits {
            width += 1;
        } else {
            first_col.push(j);
            width = 1;
        }
    }
    first_col.push(n);
    SupernodePartition::from_first_cols(first_col, n)
}

/// Column panels of the predicted `L` of a symbolic LU factorization.
/// `max_panel` caps panel width (0 = unlimited). Panels of width 1
/// ("singletons") are simply scalar columns; the numeric payoff comes
/// from the wide panels, whose share of the factorization work
/// [`flop_share_in_wide_panels`] measures.
pub fn supernodes_lu(sym: &LuSymbolic, max_panel: usize) -> SupernodePartition {
    detect_nesting(sym.n, &sym.l_col_ptr, &sym.l_row_idx, max_panel)
}

/// [`supernodes_lu`] on raw factor-layout arrays (the compiled plan
/// stores its row indices narrowed to `u32`; detection only compares
/// patterns, so the index width is irrelevant).
pub fn supernodes_lu_from_parts(
    n: usize,
    l_col_ptr: &[usize],
    l_row_idx: &[u32],
    max_panel: usize,
) -> SupernodePartition {
    assert_eq!(l_col_ptr.len(), n + 1, "column pointer length");
    detect_nesting(n, l_col_ptr, l_row_idx, max_panel)
}

/// Per-panel factorization flops: the exact per-column counts of the
/// symbolic analysis summed over each panel's columns — the cost model
/// for balancing panel-level DAG schedules across workers, the panel
/// analogue of [`LuSymbolic::per_column_flops`].
pub fn panel_flops(sym: &LuSymbolic, part: &SupernodePartition) -> Vec<u64> {
    let per_col = sym.per_column_flops();
    (0..part.n_supernodes())
        .map(|s| part.cols(s).map(|j| per_col[j]).sum())
        .collect()
}

/// Fraction of the factorization's flops carried by columns living in
/// wide (width ≥ 2) panels — the share of the numeric phase the
/// supernodal engine routes through dense GETRF/TRSM/GEMM kernels
/// instead of scalar scatter loops. 0.0 when the factorization has no
/// flops at all.
pub fn flop_share_in_wide_panels(sym: &LuSymbolic, part: &SupernodePartition) -> f64 {
    flop_share_impl(part, &sym.l_col_ptr, |j| {
        sym.u_col_pattern(j)[..sym.u_col_pattern(j).len() - 1]
            .iter()
            .copied()
    })
}

/// [`flop_share_in_wide_panels`] on raw factor layouts (the compiled
/// plan's `u32` row indices): the update set of column `j` is exactly
/// the off-diagonal pattern of `U(:, j)` (diagonal stored last), so
/// the `L`/`U` layouts alone determine the per-column flop counts —
/// no reach sets needed. This is the engine-side entry point; keeping
/// it here keeps the cost model in one place.
pub fn flop_share_in_wide_panels_from_parts(
    part: &SupernodePartition,
    l_col_ptr: &[usize],
    u_col_ptr: &[usize],
    u_row_idx: &[u32],
) -> f64 {
    flop_share_impl(part, l_col_ptr, |j| {
        u_row_idx[u_col_ptr[j]..u_col_ptr[j + 1] - 1]
            .iter()
            .map(|&k| k as usize)
    })
}

/// The shared cost model: column `j` costs its `L` off-diagonal count
/// (divisions) plus two flops per off-diagonal `L` entry of every
/// update column (the multiply-subtract pairs) — the same accounting
/// as [`LuSymbolic::per_column_flops`].
fn flop_share_impl<I: Iterator<Item = usize>>(
    part: &SupernodePartition,
    l_col_ptr: &[usize],
    updates_of: impl Fn(usize) -> I,
) -> f64 {
    let off = |k: usize| (l_col_ptr[k + 1] - l_col_ptr[k] - 1) as u64;
    let col_flops = |j: usize| off(j) + updates_of(j).map(|k| 2 * off(k)).sum::<u64>();
    let mut total = 0u64;
    let mut wide = 0u64;
    for s in 0..part.n_supernodes() {
        let is_wide = part.width(s) > 1;
        for j in part.cols(s) {
            let c = col_flops(j);
            total += c;
            if is_wide {
                wide += c;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        wide as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu_symbolic::lu_symbolic;
    use sympiler_sparse::{gen, CscMatrix, TripletMatrix};

    fn check_partition_valid(p: &SupernodePartition, n: usize) {
        assert_eq!(p.n_cols(), n);
        assert_eq!(p.col_to_super.len(), n);
        let widths: usize = (0..p.n_supernodes()).map(|s| p.width(s)).sum();
        assert_eq!(widths, n);
    }

    /// Every panel's columns must truly nest: pattern(j) equals
    /// pattern(j-1) minus its diagonal row.
    fn check_panels_nest(sym: &crate::lu_symbolic::LuSymbolic, p: &SupernodePartition) {
        for s in 0..p.n_supernodes() {
            let cols: Vec<usize> = p.cols(s).collect();
            for w in cols.windows(2) {
                let prev = sym.l_col_pattern(w[0]);
                let cur = sym.l_col_pattern(w[1]);
                assert_eq!(&prev[1..], cur, "panel columns {w:?} must nest");
            }
        }
    }

    #[test]
    fn diagonal_matrix_all_singletons() {
        let sym = lu_symbolic(&CscMatrix::identity(7));
        let p = supernodes_lu(&sym, 0);
        assert_eq!(p.n_supernodes(), 7);
        assert_eq!(p.avg_width(), 1.0);
    }

    #[test]
    fn dense_matrix_is_one_panel() {
        let n = 6;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            for i in 0..n {
                t.push(i, j, if i == j { 10.0 } else { 1.0 });
            }
        }
        let sym = lu_symbolic(&t.to_csc().unwrap());
        let p = supernodes_lu(&sym, 0);
        assert_eq!(p.n_supernodes(), 1, "dense L is one panel");
        assert_eq!(p.width(0), n);
        assert!((flop_share_in_wide_panels(&sym, &p) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn max_panel_caps_width() {
        let n = 6;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            for i in 0..n {
                t.push(i, j, if i == j { 10.0 } else { 1.0 });
            }
        }
        let sym = lu_symbolic(&t.to_csc().unwrap());
        let p = supernodes_lu(&sym, 2);
        assert_eq!(p.n_supernodes(), 3);
        for s in 0..3 {
            assert_eq!(p.width(s), 2);
        }
    }

    #[test]
    fn fill_cascade_produces_trailing_panel() {
        // A dense column + superdiagonal chain fills the trailing
        // block of L completely — those columns must merge.
        let n = 8;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
            if j + 1 < n {
                t.push(j, j + 1, 1.0);
            }
        }
        for i in 3..n {
            t.push(i, 2, -1.0);
        }
        let sym = lu_symbolic(&t.to_csc().unwrap());
        let p = supernodes_lu(&sym, 0);
        check_partition_valid(&p, n);
        check_panels_nest(&sym, &p);
        let last = p.n_supernodes() - 1;
        assert!(p.width(last) >= n - 2, "fill cascade must merge the tail");
        assert!(flop_share_in_wide_panels(&sym, &p) > 0.5);
    }

    #[test]
    fn convection_diffusion_has_wide_panels_that_nest() {
        let a = gen::convection_diffusion_2d(8, 7, 1.5, 3);
        let sym = lu_symbolic(&a);
        let p = supernodes_lu(&sym, 0);
        check_partition_valid(&p, a.n_cols());
        check_panels_nest(&sym, &p);
        assert!(
            (0..p.n_supernodes()).any(|s| p.width(s) > 1),
            "grid fill-in should produce at least one wide LU panel"
        );
        // The capped partition still nests and respects the cap.
        let capped = supernodes_lu(&sym, 3);
        check_panels_nest(&sym, &capped);
        assert!((0..capped.n_supernodes()).all(|s| capped.width(s) <= 3));
    }

    #[test]
    fn from_parts_agrees_with_symbolic_detection() {
        let a = gen::circuit_unsym(60, 4, 2, 5);
        let sym = lu_symbolic(&a);
        let narrowed: Vec<u32> = sym.l_row_idx.iter().map(|&r| r as u32).collect();
        let p1 = supernodes_lu(&sym, 4);
        let p2 = supernodes_lu_from_parts(sym.n, &sym.l_col_ptr, &narrowed, 4);
        assert_eq!(p1, p2);
    }

    #[test]
    fn flop_share_entry_points_agree() {
        // The symbolic-side and layout-side entry points must compute
        // the identical share: the update schedule of a column is
        // exactly the off-diagonal pattern of U(:, j).
        for a in [
            gen::convection_diffusion_2d(7, 6, 1.5, 4),
            gen::circuit_unsym(70, 4, 2, 8),
        ] {
            let sym = lu_symbolic(&a);
            let narrowed: Vec<u32> = sym.u_row_idx.iter().map(|&r| r as u32).collect();
            for cap in [0usize, 4] {
                let p = supernodes_lu(&sym, cap);
                let via_sym = flop_share_in_wide_panels(&sym, &p);
                let via_parts = flop_share_in_wide_panels_from_parts(
                    &p,
                    &sym.l_col_ptr,
                    &sym.u_col_ptr,
                    &narrowed,
                );
                assert!((via_sym - via_parts).abs() < 1e-15, "cap {cap}");
            }
        }
    }

    #[test]
    fn panel_flops_sum_to_factor_flops() {
        let a = gen::convection_diffusion_2d(6, 6, 1.0, 9);
        let sym = lu_symbolic(&a);
        for cap in [0usize, 2, 5] {
            let p = supernodes_lu(&sym, cap);
            let pf = panel_flops(&sym, &p);
            assert_eq!(pf.len(), p.n_supernodes());
            assert_eq!(pf.iter().sum::<u64>(), sym.factor_flops(), "cap {cap}");
        }
    }

    #[test]
    fn empty_matrix() {
        let sym = lu_symbolic(&CscMatrix::zeros(0, 0));
        let p = supernodes_lu(&sym, 0);
        assert_eq!(p.n_supernodes(), 0);
        assert_eq!(flop_share_in_wide_panels(&sym, &p), 0.0);
        assert!(panel_flops(&sym, &p).is_empty());
    }

    // ---- SupernodePartition::from_first_cols edge cases (the
    // constructor every detector funnels through). ----

    #[test]
    fn partition_n_zero() {
        let p = SupernodePartition::from_first_cols(vec![0], 0);
        assert_eq!(p.n_supernodes(), 0);
        assert_eq!(p.n_cols(), 0);
        assert_eq!(p.avg_width(), 0.0);
        assert!(p.col_to_super.is_empty());
    }

    #[test]
    fn partition_all_singletons() {
        let n = 5;
        let p = SupernodePartition::from_first_cols((0..=n).collect(), n);
        assert_eq!(p.n_supernodes(), n);
        for s in 0..n {
            assert_eq!(p.width(s), 1);
            assert_eq!(p.cols(s).collect::<Vec<_>>(), vec![s]);
        }
        assert_eq!(p.avg_width(), 1.0);
    }

    #[test]
    fn partition_one_giant_panel() {
        let n = 9;
        let p = SupernodePartition::from_first_cols(vec![0, n], n);
        assert_eq!(p.n_supernodes(), 1);
        assert_eq!(p.width(0), n);
        assert!(p.col_to_super.iter().all(|&s| s == 0));
        assert_eq!(p.avg_width(), n as f64);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn partition_must_cover_all_columns() {
        SupernodePartition::from_first_cols(vec![0, 3], 7);
    }
}
