//! Supernode (column-panel) detection for sparse **LU** — the VS-Block
//! inspector of the unsymmetric pipeline.
//!
//! Adjacent columns `j-1`, `j` of the predicted `L` merge when the
//! sub-diagonal pattern of `j-1` equals the full pattern of `j` —
//! `L(:, j-1)` minus its top (diagonal) row *is* `L(:, j)` — the
//! [`crate::supernode::supernodes_cholesky`] nesting rule evaluated
//! directly on the Gilbert–Peierls factor pattern instead of the etree.
//! Inside such a panel the diagonal block of `L` is a full dense lower
//! triangle and every column shares the panel's sub-diagonal rows, so
//! the panel is a dense **trapezoid**: the numeric phase can factor its
//! diagonal block with an unpivoted dense GETRF, divide out the panel's
//! `U` with a dense TRSM, and push its updates into later panels with
//! dense GEMMs (paper §3.2, applied to LU).
//!
//! Detection comes in two flavors. The strict rule
//! ([`supernodes_lu`]) never pads: the `max_panel` knob only *caps*
//! panel width so trapezoid buffers stay cache-sized. The relaxed rule
//! ([`supernodes_lu_relaxed_from_parts`]) additionally **amalgamates**
//! adjacent panels whose patterns nearly nest — CHOLMOD's relaxed
//! supernodes / SuperLU's `relax` — trading a bounded number of
//! explicit zeros in the trapezoid for wider panels: a merge is
//! accepted when the padded slots stay under `relax_fill ×` the
//! panel's structural nonzeros and the merged width stays ≤
//! `relax_cols`. The padding is sound because every structurally-zero
//! position computes to an exact `±0.0` under the Gilbert–Peierls
//! pattern (all its update terms are themselves exact zeros), so the
//! dense kernels can run over the padded trapezoid and the strict CSC
//! factor layouts never change — only the workspace does.

use crate::lu_symbolic::LuSymbolic;
use crate::supernode::SupernodePartition;

/// Merge adjacent columns while their `L` patterns nest, given the
/// pattern as diagonal-first row lists per column.
fn detect_nesting<R: PartialEq>(
    n: usize,
    col_ptr: &[usize],
    row_idx: &[R],
    max_panel: usize,
) -> SupernodePartition {
    if n == 0 {
        return SupernodePartition::from_first_cols(vec![0], 0);
    }
    let mut first_col = vec![0usize];
    let mut width = 1usize;
    for j in 1..n {
        let prev = &row_idx[col_ptr[j - 1]..col_ptr[j]];
        let cur = &row_idx[col_ptr[j]..col_ptr[j + 1]];
        let nests = prev.len() == cur.len() + 1 && &prev[1..] == cur;
        let fits = max_panel == 0 || width < max_panel;
        if nests && fits {
            width += 1;
        } else {
            first_col.push(j);
            width = 1;
        }
    }
    first_col.push(n);
    SupernodePartition::from_first_cols(first_col, n)
}

/// Column panels of the predicted `L` of a symbolic LU factorization.
/// `max_panel` caps panel width (0 = unlimited). Panels of width 1
/// ("singletons") are simply scalar columns; the numeric payoff comes
/// from the wide panels, whose share of the factorization work
/// [`flop_share_in_wide_panels`] measures.
pub fn supernodes_lu(sym: &LuSymbolic, max_panel: usize) -> SupernodePartition {
    detect_nesting(sym.n, &sym.l_col_ptr, &sym.l_row_idx, max_panel)
}

/// [`supernodes_lu`] on raw factor-layout arrays (the compiled plan
/// stores its row indices narrowed to `u32`; detection only compares
/// patterns, so the index width is irrelevant).
pub fn supernodes_lu_from_parts(
    n: usize,
    l_col_ptr: &[usize],
    l_row_idx: &[u32],
    max_panel: usize,
) -> SupernodePartition {
    assert_eq!(l_col_ptr.len(), n + 1, "column pointer length");
    detect_nesting(n, l_col_ptr, l_row_idx, max_panel)
}

/// A (possibly relaxed) LU panel partition together with the padded
/// trapezoid layout each panel is executed over: per panel, the
/// ascending union of its member columns' `L` rows. For a strict panel
/// the union is exactly the first column's pattern (nesting), so the
/// layout adds nothing; for an amalgamated panel the union includes
/// rows some member columns lack — those trapezoid slots hold explicit
/// zeros ([`Self::padded_zeros`] counts them).
///
/// Invariant: the first `width(s)` rows of panel `s` are always
/// `first_col(s) .. first_col(s) + width(s)` — every member column
/// contributes its own diagonal row, and `L` rows never precede their
/// column — so dense GETRF/TRSM kernels address the diagonal block at
/// fixed offsets regardless of relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct LuPanels {
    /// The column partition (strict or amalgamated).
    pub part: SupernodePartition,
    /// Per-panel offsets into [`Self::rows`], length `n_supernodes+1`.
    pub row_ptr: Vec<usize>,
    /// Concatenated per-panel union row lists, each ascending.
    pub rows: Vec<u32>,
    /// Total explicit zeros the padded trapezoids carry at or below
    /// the diagonal (0 for strict partitions).
    pub padded_zeros: usize,
}

impl LuPanels {
    /// The union row list of panel `s`.
    pub fn panel_rows(&self, s: usize) -> &[u32] {
        &self.rows[self.row_ptr[s]..self.row_ptr[s + 1]]
    }

    /// Mean panel width — the quality metric relaxation exists to
    /// raise.
    pub fn mean_width(&self) -> f64 {
        self.part.avg_width()
    }
}

/// Trapezoid slots at or below the diagonal for a panel of width `w`
/// over `m` union rows: column `c` occupies `m - c` of them.
fn trapezoid_slots(w: usize, m: usize) -> usize {
    w * m - w * (w - 1) / 2
}

/// Relaxed (amalgamating) LU panel detection on raw factor layouts.
///
/// First runs the strict nesting rule, then greedily merges adjacent
/// strict panels left to right: a merge is accepted when the merged
/// width stays within `relax_cols` (and `max_panel`, when nonzero) and
/// the explicit zeros of the merged trapezoid stay within the graded
/// budget — `4 × relax_fill ×` structural nonzeros while the merged
/// panel is at most 4 columns wide, `relax_fill ×` beyond. The grading
/// is CHOLMOD's relaxed-amalgamation idea: gluing singleton columns
/// into small panels is where blocking gains the most and the padded
/// trapezoids stay trivially small, so tiny merges deserve a far
/// looser budget than wide ones (CHOLMOD merges ≤ 4-wide results
/// unconditionally; the `4×` factor keeps the knob meaningful there).
/// `relax_fill <= 0` or `relax_cols < 2` disables amalgamation
/// entirely — the result is then exactly the strict partition with its
/// (padding-free) row lists, so the knob's zero setting is
/// bitwise-inert downstream.
pub fn supernodes_lu_relaxed_from_parts(
    n: usize,
    l_col_ptr: &[usize],
    l_row_idx: &[u32],
    max_panel: usize,
    relax_fill: f64,
    relax_cols: usize,
) -> LuPanels {
    assert_eq!(l_col_ptr.len(), n + 1, "column pointer length");
    let strict = detect_nesting(n, l_col_ptr, l_row_idx, max_panel);
    // Strict panels nest, so each panel's union row list is its first
    // column's pattern verbatim.
    let strict_rows = |s: usize| {
        let f = strict.cols(s).start;
        &l_row_idx[l_col_ptr[f]..l_col_ptr[f + 1]]
    };
    if relax_fill <= 0.0 || relax_cols < 2 {
        let mut row_ptr = Vec::with_capacity(strict.n_supernodes() + 1);
        let mut rows = Vec::new();
        row_ptr.push(0);
        for s in 0..strict.n_supernodes() {
            rows.extend_from_slice(strict_rows(s));
            row_ptr.push(rows.len());
        }
        return LuPanels {
            part: strict,
            row_ptr,
            rows,
            padded_zeros: 0,
        };
    }
    // Amalgamated panels respect both width caps; strict panels may
    // already exceed `relax_cols` (up to `max_panel`) — they pass
    // through unmerged.
    let cap = if max_panel == 0 {
        relax_cols
    } else {
        relax_cols.min(max_panel)
    };
    let panel_nnz = |s: usize| -> usize {
        strict
            .cols(s)
            .map(|j| l_col_ptr[j + 1] - l_col_ptr[j])
            .sum()
    };
    let mut first_col = vec![0usize];
    let mut row_ptr = vec![0usize];
    let mut rows: Vec<u32> = Vec::new();
    let mut padded_zeros = 0usize;
    // The open group: its union row list, width, and structural nnz.
    let mut union: Vec<u32> = Vec::new();
    let mut merged: Vec<u32> = Vec::new();
    let mut width = 0usize;
    let mut nnz = 0usize;
    for s in 0..strict.n_supernodes() {
        let v = strict.width(s);
        let r = strict_rows(s);
        let np = panel_nnz(s);
        if width > 0 {
            let w2 = width + v;
            if w2 <= cap {
                merged.clear();
                merge_sorted(&union, r, &mut merged);
                let zeros = trapezoid_slots(w2, merged.len()) - (nnz + np);
                // Graded budget: tiny merged panels (≤ 4 columns) take
                // 4× the base allowance — see the doc comment.
                let budget = if w2 <= 4 {
                    4.0 * relax_fill
                } else {
                    relax_fill
                };
                if (zeros as f64) <= budget * (nnz + np) as f64 {
                    std::mem::swap(&mut union, &mut merged);
                    width = w2;
                    nnz += np;
                    continue;
                }
            }
            // Reject: close the open group.
            padded_zeros += trapezoid_slots(width, union.len()) - nnz;
            rows.extend_from_slice(&union);
            row_ptr.push(rows.len());
            first_col.push(first_col.last().unwrap() + width);
        }
        union.clear();
        union.extend_from_slice(r);
        width = v;
        nnz = np;
    }
    if width > 0 {
        padded_zeros += trapezoid_slots(width, union.len()) - nnz;
        rows.extend_from_slice(&union);
        row_ptr.push(rows.len());
        first_col.push(first_col.last().unwrap() + width);
    }
    debug_assert_eq!(*first_col.last().unwrap(), n, "panels must cover");
    LuPanels {
        part: SupernodePartition::from_first_cols(first_col, n),
        row_ptr,
        rows,
        padded_zeros,
    }
}

/// Merge two ascending row lists into `out` (cleared by the caller),
/// dropping duplicates — the union-row computation of a panel merge.
fn merge_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    out.reserve(a.len() + b.len());
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// [`supernodes_lu_relaxed_from_parts`] on a symbolic analysis —
/// narrows the row indices once; detection and layout are otherwise
/// identical.
pub fn supernodes_lu_relaxed(
    sym: &LuSymbolic,
    max_panel: usize,
    relax_fill: f64,
    relax_cols: usize,
) -> LuPanels {
    let narrowed: Vec<u32> = sym.l_row_idx.iter().map(|&r| r as u32).collect();
    supernodes_lu_relaxed_from_parts(
        sym.n,
        &sym.l_col_ptr,
        &narrowed,
        max_panel,
        relax_fill,
        relax_cols,
    )
}

/// Per-panel factorization flops: the exact per-column counts of the
/// symbolic analysis summed over each panel's columns — the cost model
/// for balancing panel-level DAG schedules across workers, the panel
/// analogue of [`LuSymbolic::per_column_flops`].
pub fn panel_flops(sym: &LuSymbolic, part: &SupernodePartition) -> Vec<u64> {
    let per_col = sym.per_column_flops();
    (0..part.n_supernodes())
        .map(|s| part.cols(s).map(|j| per_col[j]).sum())
        .collect()
}

/// Fraction of the factorization's flops carried by columns living in
/// wide (width ≥ 2) panels — the share of the numeric phase the
/// supernodal engine routes through dense GETRF/TRSM/GEMM kernels
/// instead of scalar scatter loops. 0.0 when the factorization has no
/// flops at all.
pub fn flop_share_in_wide_panels(sym: &LuSymbolic, part: &SupernodePartition) -> f64 {
    flop_share_impl(part, &sym.l_col_ptr, |j| {
        sym.u_col_pattern(j)[..sym.u_col_pattern(j).len() - 1]
            .iter()
            .copied()
    })
}

/// [`flop_share_in_wide_panels`] on raw factor layouts (the compiled
/// plan's `u32` row indices): the update set of column `j` is exactly
/// the off-diagonal pattern of `U(:, j)` (diagonal stored last), so
/// the `L`/`U` layouts alone determine the per-column flop counts —
/// no reach sets needed. This is the engine-side entry point; keeping
/// it here keeps the cost model in one place.
pub fn flop_share_in_wide_panels_from_parts(
    part: &SupernodePartition,
    l_col_ptr: &[usize],
    u_col_ptr: &[usize],
    u_row_idx: &[u32],
) -> f64 {
    flop_share_impl(part, l_col_ptr, |j| {
        u_row_idx[u_col_ptr[j]..u_col_ptr[j + 1] - 1]
            .iter()
            .map(|&k| k as usize)
    })
}

/// The shared cost model: column `j` costs its `L` off-diagonal count
/// (divisions) plus two flops per off-diagonal `L` entry of every
/// update column (the multiply-subtract pairs) — the same accounting
/// as [`LuSymbolic::per_column_flops`].
fn flop_share_impl<I: Iterator<Item = usize>>(
    part: &SupernodePartition,
    l_col_ptr: &[usize],
    updates_of: impl Fn(usize) -> I,
) -> f64 {
    let off = |k: usize| (l_col_ptr[k + 1] - l_col_ptr[k] - 1) as u64;
    let col_flops = |j: usize| off(j) + updates_of(j).map(|k| 2 * off(k)).sum::<u64>();
    let mut total = 0u64;
    let mut wide = 0u64;
    for s in 0..part.n_supernodes() {
        let is_wide = part.width(s) > 1;
        for j in part.cols(s) {
            let c = col_flops(j);
            total += c;
            if is_wide {
                wide += c;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        wide as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu_symbolic::lu_symbolic;
    use sympiler_sparse::{gen, CscMatrix, TripletMatrix};

    fn check_partition_valid(p: &SupernodePartition, n: usize) {
        assert_eq!(p.n_cols(), n);
        assert_eq!(p.col_to_super.len(), n);
        let widths: usize = (0..p.n_supernodes()).map(|s| p.width(s)).sum();
        assert_eq!(widths, n);
    }

    /// Every panel's columns must truly nest: pattern(j) equals
    /// pattern(j-1) minus its diagonal row.
    fn check_panels_nest(sym: &crate::lu_symbolic::LuSymbolic, p: &SupernodePartition) {
        for s in 0..p.n_supernodes() {
            let cols: Vec<usize> = p.cols(s).collect();
            for w in cols.windows(2) {
                let prev = sym.l_col_pattern(w[0]);
                let cur = sym.l_col_pattern(w[1]);
                assert_eq!(&prev[1..], cur, "panel columns {w:?} must nest");
            }
        }
    }

    #[test]
    fn diagonal_matrix_all_singletons() {
        let sym = lu_symbolic(&CscMatrix::identity(7));
        let p = supernodes_lu(&sym, 0);
        assert_eq!(p.n_supernodes(), 7);
        assert_eq!(p.avg_width(), 1.0);
    }

    #[test]
    fn dense_matrix_is_one_panel() {
        let n = 6;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            for i in 0..n {
                t.push(i, j, if i == j { 10.0 } else { 1.0 });
            }
        }
        let sym = lu_symbolic(&t.to_csc().unwrap());
        let p = supernodes_lu(&sym, 0);
        assert_eq!(p.n_supernodes(), 1, "dense L is one panel");
        assert_eq!(p.width(0), n);
        assert!((flop_share_in_wide_panels(&sym, &p) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn max_panel_caps_width() {
        let n = 6;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            for i in 0..n {
                t.push(i, j, if i == j { 10.0 } else { 1.0 });
            }
        }
        let sym = lu_symbolic(&t.to_csc().unwrap());
        let p = supernodes_lu(&sym, 2);
        assert_eq!(p.n_supernodes(), 3);
        for s in 0..3 {
            assert_eq!(p.width(s), 2);
        }
    }

    #[test]
    fn fill_cascade_produces_trailing_panel() {
        // A dense column + superdiagonal chain fills the trailing
        // block of L completely — those columns must merge.
        let n = 8;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
            if j + 1 < n {
                t.push(j, j + 1, 1.0);
            }
        }
        for i in 3..n {
            t.push(i, 2, -1.0);
        }
        let sym = lu_symbolic(&t.to_csc().unwrap());
        let p = supernodes_lu(&sym, 0);
        check_partition_valid(&p, n);
        check_panels_nest(&sym, &p);
        let last = p.n_supernodes() - 1;
        assert!(p.width(last) >= n - 2, "fill cascade must merge the tail");
        assert!(flop_share_in_wide_panels(&sym, &p) > 0.5);
    }

    #[test]
    fn convection_diffusion_has_wide_panels_that_nest() {
        let a = gen::convection_diffusion_2d(8, 7, 1.5, 3);
        let sym = lu_symbolic(&a);
        let p = supernodes_lu(&sym, 0);
        check_partition_valid(&p, a.n_cols());
        check_panels_nest(&sym, &p);
        assert!(
            (0..p.n_supernodes()).any(|s| p.width(s) > 1),
            "grid fill-in should produce at least one wide LU panel"
        );
        // The capped partition still nests and respects the cap.
        let capped = supernodes_lu(&sym, 3);
        check_panels_nest(&sym, &capped);
        assert!((0..capped.n_supernodes()).all(|s| capped.width(s) <= 3));
    }

    #[test]
    fn from_parts_agrees_with_symbolic_detection() {
        let a = gen::circuit_unsym(60, 4, 2, 5);
        let sym = lu_symbolic(&a);
        let narrowed: Vec<u32> = sym.l_row_idx.iter().map(|&r| r as u32).collect();
        let p1 = supernodes_lu(&sym, 4);
        let p2 = supernodes_lu_from_parts(sym.n, &sym.l_col_ptr, &narrowed, 4);
        assert_eq!(p1, p2);
    }

    #[test]
    fn flop_share_entry_points_agree() {
        // The symbolic-side and layout-side entry points must compute
        // the identical share: the update schedule of a column is
        // exactly the off-diagonal pattern of U(:, j).
        for a in [
            gen::convection_diffusion_2d(7, 6, 1.5, 4),
            gen::circuit_unsym(70, 4, 2, 8),
        ] {
            let sym = lu_symbolic(&a);
            let narrowed: Vec<u32> = sym.u_row_idx.iter().map(|&r| r as u32).collect();
            for cap in [0usize, 4] {
                let p = supernodes_lu(&sym, cap);
                let via_sym = flop_share_in_wide_panels(&sym, &p);
                let via_parts = flop_share_in_wide_panels_from_parts(
                    &p,
                    &sym.l_col_ptr,
                    &sym.u_col_ptr,
                    &narrowed,
                );
                assert!((via_sym - via_parts).abs() < 1e-15, "cap {cap}");
            }
        }
    }

    #[test]
    fn panel_flops_sum_to_factor_flops() {
        let a = gen::convection_diffusion_2d(6, 6, 1.0, 9);
        let sym = lu_symbolic(&a);
        for cap in [0usize, 2, 5] {
            let p = supernodes_lu(&sym, cap);
            let pf = panel_flops(&sym, &p);
            assert_eq!(pf.len(), p.n_supernodes());
            assert_eq!(pf.iter().sum::<u64>(), sym.factor_flops(), "cap {cap}");
        }
    }

    /// Relaxed-layout invariants shared by every relaxed test: valid
    /// cover, ascending union rows starting with the diagonal run
    /// `f..f+w`, every member column's rows contained in the union,
    /// and the padded-zero census consistent with the trapezoid sizes.
    fn check_relaxed_layout(sym: &crate::lu_symbolic::LuSymbolic, p: &LuPanels) {
        check_partition_valid(&p.part, sym.n);
        assert_eq!(p.row_ptr.len(), p.part.n_supernodes() + 1);
        let mut zeros = 0usize;
        for s in 0..p.part.n_supernodes() {
            let f = p.part.cols(s).start;
            let w = p.part.width(s);
            let rows = p.panel_rows(s);
            assert!(rows.windows(2).all(|x| x[0] < x[1]), "rows ascending");
            for (c, &r) in rows.iter().take(w).enumerate() {
                assert_eq!(r as usize, f + c, "diagonal run leads the panel");
            }
            let mut nnz = 0usize;
            for j in p.part.cols(s) {
                for &r in sym.l_col_pattern(j) {
                    assert!(
                        rows.binary_search(&(r as u32)).is_ok(),
                        "column {j} row {r} missing from panel union"
                    );
                }
                nnz += sym.l_col_pattern(j).len();
            }
            zeros += trapezoid_slots(w, rows.len()) - nnz;
        }
        assert_eq!(zeros, p.padded_zeros, "padded-zero census");
    }

    #[test]
    fn relax_disabled_reproduces_the_strict_partition() {
        for a in [
            gen::circuit_unsym(70, 4, 2, 8),
            gen::convection_diffusion_2d(8, 7, 1.5, 3),
        ] {
            let sym = lu_symbolic(&a);
            for cap in [0usize, 4] {
                let strict = supernodes_lu(&sym, cap);
                for (fill, cols) in [(0.0, 16), (0.4, 1), (-1.0, 16)] {
                    let relaxed = supernodes_lu_relaxed(&sym, cap, fill, cols);
                    assert_eq!(relaxed.part, strict, "fill {fill} cols {cols}");
                    assert_eq!(relaxed.padded_zeros, 0);
                    check_relaxed_layout(&sym, &relaxed);
                }
            }
        }
    }

    #[test]
    fn relaxation_merges_nearly_nesting_columns() {
        // Column 0 {0, 2} does not nest against {1, 2}, so the strict
        // rule leaves it a singleton beside the {1, 2} panel. The
        // merged 3-wide trapezoid needs exactly one explicit zero
        // (position (1, 0)) against 5 structural nonzeros; the merged
        // width ≤ 4 takes the graded 4× budget, so acceptance needs
        // `1 ≤ 4·fill·5` — a 25% budget accepts the merge, a 4%
        // budget rejects it.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 4.0);
        t.push(2, 0, 1.0);
        t.push(1, 1, 4.0);
        t.push(2, 1, 1.0);
        t.push(2, 2, 4.0);
        t.push(0, 2, 1.0);
        let a = t.to_csc().unwrap();
        let sym = lu_symbolic(&a);
        let strict = supernodes_lu(&sym, 0);
        assert_eq!(strict.n_supernodes(), 2, "column 0 stays a singleton");
        let merged = supernodes_lu_relaxed(&sym, 0, 0.25, 8);
        assert_eq!(merged.part.n_supernodes(), 1, "budget admits the merge");
        assert_eq!(merged.part.width(0), 3);
        assert_eq!(merged.padded_zeros, 1);
        check_relaxed_layout(&sym, &merged);
        let tight = supernodes_lu_relaxed(&sym, 0, 0.04, 8);
        assert_eq!(tight.part, strict, "tight budget must reject");
    }

    #[test]
    fn relaxation_widens_suite_panels_within_budget() {
        for a in [
            gen::circuit_unsym(80, 4, 2, 5),
            gen::convection_diffusion_2d(9, 8, 1.5, 2),
        ] {
            let sym = lu_symbolic(&a);
            let strict = supernodes_lu(&sym, 32);
            let relaxed = supernodes_lu_relaxed(&sym, 32, 0.3, 8);
            check_relaxed_layout(&sym, &relaxed);
            assert!(
                relaxed.mean_width() >= strict.avg_width(),
                "amalgamation can only widen panels"
            );
            assert!(
                relaxed.part.n_supernodes() < strict.n_supernodes(),
                "suite patterns must admit at least one merge"
            );
            // relax_cols caps amalgamation; wider panels can only be
            // strict panels passing through unmerged.
            let strict_starts: std::collections::BTreeMap<usize, usize> = (0..strict
                .n_supernodes())
                .map(|s| (strict.cols(s).start, strict.width(s)))
                .collect();
            for s in 0..relaxed.part.n_supernodes() {
                let w = relaxed.part.width(s);
                let f = relaxed.part.cols(s).start;
                assert!(
                    w <= 8 || strict_starts.get(&f) == Some(&w),
                    "panel at {f} width {w} exceeds relax_cols without being strict"
                );
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let sym = lu_symbolic(&CscMatrix::zeros(0, 0));
        let p = supernodes_lu(&sym, 0);
        assert_eq!(p.n_supernodes(), 0);
        assert_eq!(flop_share_in_wide_panels(&sym, &p), 0.0);
        assert!(panel_flops(&sym, &p).is_empty());
    }

    // ---- SupernodePartition::from_first_cols edge cases (the
    // constructor every detector funnels through). ----

    #[test]
    fn partition_n_zero() {
        let p = SupernodePartition::from_first_cols(vec![0], 0);
        assert_eq!(p.n_supernodes(), 0);
        assert_eq!(p.n_cols(), 0);
        assert_eq!(p.avg_width(), 0.0);
        assert!(p.col_to_super.is_empty());
    }

    #[test]
    fn partition_all_singletons() {
        let n = 5;
        let p = SupernodePartition::from_first_cols((0..=n).collect(), n);
        assert_eq!(p.n_supernodes(), n);
        for s in 0..n {
            assert_eq!(p.width(s), 1);
            assert_eq!(p.cols(s).collect::<Vec<_>>(), vec![s]);
        }
        assert_eq!(p.avg_width(), 1.0);
    }

    #[test]
    fn partition_one_giant_panel() {
        let n = 9;
        let p = SupernodePartition::from_first_cols(vec![0, n], n);
        assert_eq!(p.n_supernodes(), 1);
        assert_eq!(p.width(0), n);
        assert!(p.col_to_super.iter().all(|&s| s == 0));
        assert_eq!(p.avg_width(), n as f64);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn partition_must_cover_all_columns() {
        SupernodePartition::from_first_cols(vec![0, 3], 7);
    }
}
