//! COLAMD-style approximate-minimum-degree **column** ordering.
//!
//! The fill of an LU factorization of `A Q` (for *any* row permutation
//! chosen later, including the static diagonal pivoting Sympiler
//! compiles for when `Q` is applied symmetrically) is contained in the
//! Cholesky fill of `(A Q)ᵀ (A Q) = Qᵀ (AᵀA) Q` — so a fill-reducing
//! column ordering for LU is a minimum-degree ordering of the **column
//! intersection graph** of `AᵀA`, in which columns `i` and `j` are
//! adjacent iff they share a row of `A`. Forming `AᵀA` can be
//! asymptotically more expensive than the factorization itself (one
//! dense row makes it fully dense), so — like Davis/Gilbert/Larimore's
//! COLAMD — this implementation runs minimum degree directly on a
//! **quotient-graph** representation of `A`'s rows:
//!
//! * each *row* of `A` is a clique constraint over the columns it
//!   touches; eliminating a pivot column merges all of its rows into
//!   one new **element** (their union minus the pivot), exactly the
//!   quotient-graph step of AMD transplanted to `AᵀA`;
//! * column degrees are **approximate external degrees**: the pivot
//!   element's contribution is exact, every other row contributes its
//!   set difference with the pivot element (an upper bound on the true
//!   degree that never double-counts the freshest element);
//! * rows whose columns are all inside the new element are **absorbed**
//!   (their constraint is implied), keeping row lists from growing;
//! * columns of the pivot element with *identical* row lists are merged
//!   into **supercolumns** (detected by hashing, confirmed exactly) and
//!   ordered consecutively when their representative pivots;
//! * **dense rows and columns are stripped** up front: a dense row
//!   would glue the whole column graph into one clique and poison every
//!   degree estimate, so it is ignored during ordering; dense columns
//!   are ordered last, where they would have ended up anyway.
//!
//! The result is a permutation `perm` with `perm[new] = old`, the same
//! convention as [`crate::rcm::rcm_ordering`] and the
//! `sympiler_sparse::ops` permutation helpers. Everything here is
//! pattern-only and deterministic: ties break on the smallest column
//! index, so one sparsity pattern always produces one ordering — a
//! requirement for Sympiler's compile-once premise.

use std::collections::BTreeSet;
use std::collections::HashMap;
use sympiler_sparse::CscMatrix;

/// Tuning knobs for [`colamd_ordering_with`]. The defaults follow the
/// reference COLAMD: a row or column is "dense" when it has more than
/// `max(dense_floor, dense_factor * sqrt(n))` entries.
#[derive(Debug, Clone, Copy)]
pub struct ColamdConfig {
    /// Multiplier on `sqrt(n)` in the dense-row/column threshold.
    pub dense_factor: f64,
    /// Lower bound of the dense threshold (small matrices never strip).
    pub dense_floor: usize,
}

impl Default for ColamdConfig {
    fn default() -> Self {
        Self {
            dense_factor: 10.0,
            dense_floor: 16,
        }
    }
}

impl ColamdConfig {
    fn threshold(&self, n: usize) -> usize {
        let t = (self.dense_factor * (n as f64).sqrt()) as usize;
        t.max(self.dense_floor)
    }
}

/// Column liveness in the quotient graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColState {
    /// Still a candidate pivot.
    Alive,
    /// Emitted into the ordering (as a pivot).
    Ordered,
    /// Merged into a supercolumn; emitted with its representative.
    Absorbed,
    /// Stripped as dense; appended after all sparse columns.
    Dense,
}

/// Compute a COLAMD-style column ordering of `a` with default
/// parameters. Returns `perm` with `perm[new] = old`.
pub fn colamd_ordering(a: &CscMatrix) -> Vec<usize> {
    colamd_ordering_with(a, ColamdConfig::default())
}

/// Compute a COLAMD-style column ordering of `a`. Returns `perm` with
/// `perm[new] = old`; the result is always a valid permutation of
/// `0..a.n_cols()`, whatever the pattern (empty columns, dense rows,
/// rectangular input).
pub fn colamd_ordering_with(a: &CscMatrix, config: ColamdConfig) -> Vec<usize> {
    let m = a.n_rows();
    let n = a.n_cols();
    if n == 0 {
        return Vec::new();
    }

    // --- Dense-row stripping. A row's length is its clique size in the
    // column graph; past the threshold it contributes no ordering
    // information, only quadratic degree noise.
    let dense_row = config.threshold(n);
    let mut row_len = vec![0usize; m];
    for &i in a.row_idx() {
        row_len[i] += 1;
    }
    let row_is_dense: Vec<bool> = row_len.iter().map(|&l| l > dense_row).collect();

    // --- Dense-column stripping: order them last (ascending live
    // degree, then index), where minimum degree would have sent them.
    let dense_col = config.threshold(m.max(1));
    let live_rows_of = |j: usize| a.col_rows(j).iter().filter(|&&i| !row_is_dense[i]).count();
    let mut col_state = vec![ColState::Alive; n];
    let mut dense_cols: Vec<(usize, usize)> = Vec::new();
    for j in 0..n {
        let live = live_rows_of(j);
        if live > dense_col {
            col_state[j] = ColState::Dense;
            dense_cols.push((live, j));
        }
    }
    dense_cols.sort_unstable();

    // --- Quotient-graph state. Rows `0..m` are `A`'s rows; every pivot
    // appends one element row. A killed row keeps its slot (lists are
    // pruned lazily against `row_alive` / `col_state`).
    let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut row_alive: Vec<bool> = row_is_dense.iter().map(|&d| !d).collect();
    let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        if col_state[j] != ColState::Alive {
            continue;
        }
        for &i in a.col_rows(j) {
            if !row_is_dense[i] {
                row_cols[i].push(j);
                col_rows[j].push(i);
            }
        }
    }

    // --- Initial scores: sum of (|row| - 1) over the column's rows, the
    // standard COLAMD upper bound on the external degree in `AᵀA`.
    // Unlike the reference implementation we never clamp the score (the
    // clamp there bounds packed-array memory, not quality): clamping
    // collapses the very ties minimum degree needs to break.
    let mut score = vec![0usize; n];
    let mut heap: BTreeSet<(usize, usize)> = BTreeSet::new();
    for j in 0..n {
        if col_state[j] != ColState::Alive {
            continue;
        }
        score[j] = col_rows[j]
            .iter()
            .map(|&r| row_cols[r].len().saturating_sub(1))
            .sum();
        heap.insert((score[j], j));
    }

    let mut super_members: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    let mut marked = vec![false; n];
    // Per-pivot caches for row set differences, stamped by pivot count
    // so they never need clearing (rows grow; the vectors grow with
    // them).
    let mut row_ext: Vec<usize> = vec![0; m];
    let mut row_stamp: Vec<u64> = vec![0; m];
    let mut stamp: u64 = 0;

    let n_sparse = n - dense_cols.len();
    while perm.len() < n_sparse {
        // --- Select: minimum approximate degree, smallest index on
        // ties (BTreeSet order is exactly (score, index)).
        let &(s, c) = heap.iter().next().expect("heap exhausted early");
        heap.remove(&(s, c));
        debug_assert_eq!(col_state[c], ColState::Alive);
        debug_assert_eq!(score[c], s);

        // --- Order the pivot supercolumn.
        col_state[c] = ColState::Ordered;
        perm.push(c);
        perm.append(&mut super_members[c]);

        // --- Form the pivot element: the union of the pivot's live
        // rows, minus the pivot itself. Those rows are then dead — the
        // element subsumes their constraints.
        let mut pivot_cols: Vec<usize> = Vec::new();
        for ri in 0..col_rows[c].len() {
            let r = col_rows[c][ri];
            if !row_alive[r] {
                continue;
            }
            for &j in &row_cols[r] {
                if col_state[j] == ColState::Alive && !marked[j] {
                    marked[j] = true;
                    pivot_cols.push(j);
                }
            }
            row_alive[r] = false;
            row_cols[r] = Vec::new();
        }
        if pivot_cols.is_empty() {
            continue;
        }
        pivot_cols.sort_unstable();

        // --- Set differences + row absorption. For every live row `r`
        // adjacent to a pivot column, `row_ext[r] = |r \ pivot_cols|`
        // (live columns only); a row entirely inside the new element is
        // absorbed. Row lists are pruned to live columns as a side
        // effect.
        stamp += 1;
        for &j in &pivot_cols {
            for ri in 0..col_rows[j].len() {
                let r = col_rows[j][ri];
                if !row_alive[r] || row_stamp[r] == stamp {
                    continue;
                }
                row_stamp[r] = stamp;
                row_cols[r].retain(|&x| col_state[x] == ColState::Alive);
                let ext = row_cols[r].iter().filter(|&&x| !marked[x]).count();
                row_ext[r] = ext;
                if ext == 0 {
                    // r ⊆ element: absorbed.
                    row_alive[r] = false;
                    row_cols[r] = Vec::new();
                }
            }
        }

        // --- Create the element row.
        let e = row_cols.len();
        row_cols.push(pivot_cols.clone());
        row_alive.push(true);
        row_ext.push(0);
        row_stamp.push(0);

        // --- Rebuild each pivot column's row list and re-score it with
        // the COLAMD approximate external degree:
        // |element \ {j}| + Σ_{r ∈ rows(j), r ≠ e} |r \ element|.
        for &j in &pivot_cols {
            col_rows[j].retain(|&r| row_alive[r]);
            col_rows[j].push(e);
            let external: usize = col_rows[j]
                .iter()
                .filter(|&&r| r != e)
                .map(|&r| row_ext[r])
                .sum();
            let new_score = pivot_cols.len() - 1 + external;
            let old = score[j];
            heap.remove(&(old, j));
            score[j] = new_score;
            heap.insert((new_score, j));
        }

        // --- Supercolumn detection among the element's columns: hash
        // by (list length, sum of row ids), then confirm exact
        // equality. Equal columns are structurally indistinguishable
        // from here on, so they pivot together.
        let mut groups: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
        for &j in &pivot_cols {
            let sum: u64 = col_rows[j].iter().map(|&r| r as u64).sum();
            groups.entry((col_rows[j].len(), sum)).or_default().push(j);
        }
        for (_, group) in groups {
            if group.len() < 2 {
                continue;
            }
            // Hash collisions can put structurally different columns
            // in one bucket, so compare pairwise against every
            // distinct representative seen so far — two identical
            // columns must merge even when a third, different column
            // shares their hash and sorts first. `pivot_cols` is
            // sorted, so each group is too: representatives are the
            // smallest index of their class, deterministically.
            let mut reps: Vec<usize> = Vec::with_capacity(2);
            for &k in &group {
                match reps.iter().find(|&&r| col_rows[k] == col_rows[r]) {
                    None => reps.push(k),
                    Some(&rep) => {
                        col_state[k] = ColState::Absorbed;
                        heap.remove(&(score[k], k));
                        let members = std::mem::take(&mut super_members[k]);
                        super_members[rep].push(k);
                        super_members[rep].extend(members);
                        col_rows[k] = Vec::new();
                    }
                }
            }
        }

        // --- Unmark for the next pivot.
        for &j in &pivot_cols {
            marked[j] = false;
        }
    }

    // --- Dense columns last.
    perm.extend(dense_cols.into_iter().map(|(_, j)| j));
    debug_assert_eq!(perm.len(), n);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu_symbolic::lu_symbolic;
    use sympiler_sparse::{gen, ops, TripletMatrix};

    fn assert_permutation(perm: &[usize], n: usize) {
        assert_eq!(perm.len(), n);
        let mut sorted = perm.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// `nnz(L) + nnz(U)` of the statically pivoted LU of `Qᵀ A Q`.
    fn lu_nnz_under(a: &CscMatrix, perm: Option<&[usize]>) -> usize {
        let b = match perm {
            Some(p) => ops::permute_rows_cols(a, p).unwrap(),
            None => a.clone(),
        };
        let sym = lu_symbolic(&b);
        sym.l_nnz() + sym.u_nnz()
    }

    #[test]
    fn returns_a_permutation_on_generators() {
        for seed in 0..6u64 {
            for a in [
                gen::circuit_unsym(60, 4, 2, seed),
                gen::random_unsym(45, 4, seed + 10),
                gen::convection_diffusion_2d(7, 6, 1.5, seed),
            ] {
                let perm = colamd_ordering(&a);
                assert_permutation(&perm, a.n_cols());
            }
        }
    }

    #[test]
    fn degenerate_patterns() {
        // Empty.
        assert!(colamd_ordering(&CscMatrix::zeros(0, 0)).is_empty());
        // 1x1.
        assert_eq!(colamd_ordering(&CscMatrix::identity(1)), vec![0]);
        // Diagonal: every column is its own (empty-external) pivot.
        let perm = colamd_ordering(&CscMatrix::identity(8));
        assert_permutation(&perm, 8);
        // Structurally empty columns.
        let z = CscMatrix::zeros(5, 5);
        assert_permutation(&colamd_ordering(&z), 5);
        // Rectangular.
        let mut t = TripletMatrix::new(3, 5);
        t.push(0, 0, 1.0);
        t.push(1, 2, 1.0);
        t.push(2, 4, 1.0);
        t.push(1, 4, 1.0);
        let a = t.to_csc().unwrap();
        assert_permutation(&colamd_ordering(&a), 5);
    }

    #[test]
    fn fully_dense_matrix_is_still_a_permutation() {
        let n = 12;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                t.push(i, j, 1.0);
            }
        }
        let a = t.to_csc().unwrap();
        assert_permutation(&colamd_ordering(&a), n);
    }

    #[test]
    fn dense_first_arrow_orders_hub_last_and_kills_fill() {
        // Dense first row + first column: natural order fills the
        // whole trailing block (eliminating the hub first connects
        // everything). At this size the hub row crosses the default
        // dense threshold, so it is stripped (without stripping, the
        // dense row makes AᵀA a complete graph and *no* column
        // ordering looks better than any other); the hub column
        // crosses the dense-column threshold and is ordered last —
        // which under symmetric application gives zero fill.
        let n = 150;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 2.0);
        }
        for i in 1..n {
            t.push(i, 0, 1.0);
            t.push(0, i, 1.0);
        }
        let a = t.to_csc().unwrap();
        let perm = colamd_ordering(&a);
        assert_permutation(&perm, n);
        assert_eq!(perm[n - 1], 0, "the hub column must pivot last");
        let natural = lu_nnz_under(&a, None);
        let ordered = lu_nnz_under(&a, Some(&perm));
        // Natural fills the (n-1)² trailing block; ordered keeps
        // exactly the arrow pattern (+n: the diagonal is stored in
        // both L and U).
        assert_eq!(ordered, a.nnz() + n);
        assert!(
            ordered * 3 < natural,
            "ordered {ordered} vs natural {natural}"
        );
    }

    #[test]
    fn supercolumns_absorb_identical_structure() {
        // Columns 1..4 share one identical row set; the ordering must
        // remain a bijection and keep the replicated group adjacent.
        let n = 10;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 1.0);
        }
        for j in 1..4 {
            t.push(5, j, 1.0);
            t.push(6, j, 1.0);
            t.push(7, j, 1.0);
        }
        let a = t.to_csc().unwrap();
        let perm = colamd_ordering(&a);
        assert_permutation(&perm, n);
        let pos: Vec<usize> = (1..4)
            .map(|j| perm.iter().position(|&p| p == j).unwrap())
            .collect();
        let (lo, hi) = (*pos.iter().min().unwrap(), *pos.iter().max().unwrap());
        assert_eq!(hi - lo, 2, "identical columns must order consecutively");
    }

    #[test]
    fn dense_row_is_stripped_not_fatal() {
        // One fully dense row on top of a sparse banded pattern: with a
        // low threshold the row must be ignored (not glue the graph
        // into one clique), and the result must stay a bijection.
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 2.0);
            if j + 1 < n {
                t.push(j + 1, j, 1.0);
            }
            t.push(0, j, 1.0); // dense row 0
        }
        let a = t.to_csc().unwrap();
        let config = ColamdConfig {
            dense_factor: 0.5,
            dense_floor: 4,
        };
        let perm = colamd_ordering_with(&a, config);
        assert_permutation(&perm, n);
        // Default config (threshold > n) keeps the row and still works.
        assert_permutation(&colamd_ordering(&a), n);
    }

    #[test]
    fn reduces_fill_on_unsymmetric_generators() {
        // The acceptance-criteria shape at unit scale: COLAMD beats
        // natural on circuit and random unsymmetric patterns at the
        // sizes/densities the unsym suite uses (tiny random matrices
        // are near-dense after fill, where no ordering can help).
        for seed in 0..5u64 {
            for a in [
                gen::circuit_unsym(120, 4, 2, seed),
                gen::random_unsym(250, 4, seed + 50),
            ] {
                let perm = colamd_ordering(&a);
                assert_permutation(&perm, a.n_cols());
                let natural = lu_nnz_under(&a, None);
                let ordered = lu_nnz_under(&a, Some(&perm));
                assert!(
                    ordered < natural,
                    "seed {seed}: ordered {ordered} !< natural {natural}"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = gen::circuit_unsym(80, 4, 2, 7);
        let p1 = colamd_ordering(&a);
        let p2 = colamd_ordering(&a);
        assert_eq!(p1, p2);
    }
}
