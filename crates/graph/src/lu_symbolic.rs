//! Column-by-column symbolic LU factorization (Gilbert & Peierls 1988),
//! the inspection stage of the sparse LU subsystem.
//!
//! Left-looking LU computes column `j` of the factors by solving the
//! lower-triangular system `L(0:j-1, 0:j-1) * x = A(:, j)` — so the
//! nonzero pattern of column `j` is exactly `Reach_L(SP(A(:,j)))` on the
//! dependence graph of the partially built `L`, the same reach-set
//! machinery [`crate::dfs`] implements for triangular solve. Because `L`
//! grows one column per step, the DFS runs over the growing CSC arrays
//! rather than a finished [`CscMatrix`]: the shared traversal
//! [`crate::dfs::reach_adjacency_into`] is driven with a closure over
//! the partial factor.
//!
//! Pivoting is **static** (diagonal): Sympiler's premise is a fixed
//! sparsity pattern known at compile time, which rules out numeric
//! partial pivoting (the paper targets matrices where a fill-reducing
//! ordering plus diagonal dominance or pre-pivoting make this safe; the
//! runtime baseline `sympiler-solvers`' GPLU offers partial pivoting as
//! a verification mode). Every predicted pattern is therefore exact for
//! any numeric values with the same structure, barring accidental
//! cancellation.
//!
//! Complexity: O(flops(LU)) total — each DFS touches only the edges the
//! numeric update will traverse, the paper's decoupled-complexity
//! argument applied to factorization.

use sympiler_sparse::CscMatrix;

/// The symbolic LU factorization of one sparsity pattern: predicted
/// patterns of `L` (unit lower triangular, diagonal first) and `U`
/// (upper triangular, diagonal last), plus the per-column reach sets
/// that schedule the numeric left-looking updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LuSymbolic {
    /// Matrix order.
    pub n: usize,
    /// Column pointers of `L` (`n + 1` entries).
    pub l_col_ptr: Vec<usize>,
    /// Row indices of `L`; each column stores the diagonal first, then
    /// strictly increasing sub-diagonal rows.
    pub l_row_idx: Vec<usize>,
    /// Column pointers of `U` (`n + 1` entries).
    pub u_col_ptr: Vec<usize>,
    /// Row indices of `U`; strictly increasing, diagonal last.
    pub u_row_idx: Vec<usize>,
    /// Reach-set pointers (`n + 1` entries) into [`Self::reach_cols`].
    pub reach_ptr: Vec<usize>,
    /// Per-column update schedules: for column `j`,
    /// `reach_cols[reach_ptr[j]..reach_ptr[j+1]]` lists the columns
    /// `k < j` whose `L(:,k)` updates column `j`, in topological
    /// (execution) order — the VI-Prune set of the column's solve.
    pub reach_cols: Vec<usize>,
    /// Exact factorization flop count (divisions + multiply-subtract
    /// pairs of every scheduled update).
    flops: u64,
}

impl LuSymbolic {
    /// Stored nonzeros of `L` (including the unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l_row_idx.len()
    }

    /// Stored nonzeros of `U` (including the diagonal).
    pub fn u_nnz(&self) -> usize {
        self.u_row_idx.len()
    }

    /// Pattern of `L(:, j)`: diagonal first, then increasing rows.
    pub fn l_col_pattern(&self, j: usize) -> &[usize] {
        &self.l_row_idx[self.l_col_ptr[j]..self.l_col_ptr[j + 1]]
    }

    /// Pattern of `U(:, j)`: increasing rows, diagonal last.
    pub fn u_col_pattern(&self, j: usize) -> &[usize] {
        &self.u_row_idx[self.u_col_ptr[j]..self.u_col_ptr[j + 1]]
    }

    /// The update schedule of column `j` in topological order.
    pub fn reach(&self, j: usize) -> &[usize] {
        &self.reach_cols[self.reach_ptr[j]..self.reach_ptr[j + 1]]
    }

    /// Exact flop count of the numeric factorization this symbolic
    /// analysis schedules (for GFLOP/s reporting, like
    /// [`crate::symbolic::SymbolicFactor::factor_flops`]).
    pub fn factor_flops(&self) -> u64 {
        self.flops
    }

    /// Exact flop count of each column's solve: its divisions plus a
    /// multiply-subtract pair per off-diagonal entry of every update
    /// column in its schedule. Sums to [`Self::factor_flops`]. This is
    /// the symbolic-level resolution of the cost model behind
    /// cost-balanced DAG scheduling (the parallel LU plan balances on
    /// the equivalent counts read off its baked schedules, plus a
    /// pattern-size term for scatter/gather traffic).
    pub fn per_column_flops(&self) -> Vec<u64> {
        let off = |k: usize| (self.l_col_ptr[k + 1] - self.l_col_ptr[k] - 1) as u64;
        (0..self.n)
            .map(|j| off(j) + self.reach(j).iter().map(|&k| 2 * off(k)).sum::<u64>())
            .collect()
    }

    /// Fill ratio `(nnz(L) + nnz(U) - n) / nnz(A)`.
    pub fn fill_ratio(&self, a_nnz: usize) -> f64 {
        if a_nnz == 0 {
            return 0.0;
        }
        (self.l_nnz() + self.u_nnz() - self.n) as f64 / a_nnz as f64
    }
}

/// Run the symbolic LU inspection for a square matrix `a` (full,
/// generally unsymmetric storage) under static diagonal pivoting.
///
/// # Panics
/// If `a` is not square.
pub fn lu_symbolic(a: &CscMatrix) -> LuSymbolic {
    assert!(a.is_square(), "LU needs a square matrix");
    let n = a.n_cols();

    let mut l_col_ptr = Vec::with_capacity(n + 1);
    let mut l_row_idx: Vec<usize> = Vec::with_capacity(a.nnz());
    let mut u_col_ptr = Vec::with_capacity(n + 1);
    let mut u_row_idx: Vec<usize> = Vec::with_capacity(a.nnz());
    let mut reach_ptr = Vec::with_capacity(n + 1);
    let mut reach_cols: Vec<usize> = Vec::new();
    l_col_ptr.push(0);
    u_col_ptr.push(0);
    reach_ptr.push(0);

    // Off-diagonal nonzero count per finished L column, for O(1) flop
    // accounting of each scheduled update.
    let mut l_off_nnz: Vec<u64> = Vec::with_capacity(n);
    let mut flops = 0u64;

    // DFS state, reused across columns.
    let mut ws = crate::dfs::ReachWorkspace::new(n);
    // Reach of the current column in topological order.
    let mut topo: Vec<usize> = Vec::with_capacity(64);

    for j in 0..n {
        // --- Inspection: Reach_{L_j}(SP(A(:,j))) via the shared reach
        // driver, with adjacency read from the growing {l_col_ptr,
        // l_row_idx} arrays. Nodes >= j have no outgoing edges yet
        // (their columns are future pivots), so they are leaves.
        crate::dfs::reach_adjacency_into(
            n,
            a.col_rows(j),
            |v| {
                if v < j {
                    // Skip the unit diagonal stored first.
                    &l_row_idx[l_col_ptr[v] + 1..l_col_ptr[v + 1]]
                } else {
                    &[]
                }
            },
            &mut ws,
            &mut topo,
        );

        // --- Partition the reach into the factor patterns. Only the
        // k < j members carry updates, recorded in execution order.
        for &v in topo.iter() {
            if v < j {
                reach_cols.push(v);
                flops += 2 * l_off_nnz[v];
            }
        }
        reach_ptr.push(reach_cols.len());

        // U(:, j): reached rows k < j ascending, then the diagonal.
        // L(:, j): diagonal first, then reached rows i > j ascending.
        // Sorting costs O(|pattern| log |pattern|); the patterns stay
        // sorted in the emitted CSC, which every consumer relies on.
        topo.sort_unstable();
        for &v in topo.iter() {
            if v < j {
                u_row_idx.push(v);
            }
        }
        u_row_idx.push(j);
        u_col_ptr.push(u_row_idx.len());

        l_row_idx.push(j);
        let l_start = l_row_idx.len();
        for &v in topo.iter() {
            if v > j {
                l_row_idx.push(v);
            }
        }
        let off = (l_row_idx.len() - l_start) as u64;
        l_off_nnz.push(off);
        l_col_ptr.push(l_row_idx.len());
        // One division per sub-diagonal entry of L(:, j).
        flops += off;
    }

    LuSymbolic {
        n,
        l_col_ptr,
        l_row_idx,
        u_col_ptr,
        u_row_idx,
        reach_ptr,
        reach_cols,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;
    use sympiler_sparse::TripletMatrix;

    /// Reference: boolean Gaussian elimination without pivoting — the
    /// exact structural fill, O(n^3) but fine at test sizes.
    fn dense_symbolic_lu(a: &CscMatrix) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let n = a.n_cols();
        let mut pat = vec![vec![false; n]; n]; // pat[j][i], column-major
        for j in 0..n {
            for &i in a.col_rows(j) {
                pat[j][i] = true;
            }
            pat[j][j] = true; // static pivot slot always exists
        }
        for k in 0..n {
            // Eliminate: for every i > k with (i,k) nonzero and every
            // j > k with (k,j) nonzero, (i,j) fills.
            for j in k + 1..n {
                if !pat[j][k] {
                    continue;
                }
                for i in k + 1..n {
                    if pat[k][i] {
                        pat[j][i] = true;
                    }
                }
            }
        }
        let mut l_cols = Vec::with_capacity(n);
        let mut u_cols = Vec::with_capacity(n);
        for j in 0..n {
            l_cols.push((j..n).filter(|&i| pat[j][i]).collect());
            u_cols.push((0..=j).filter(|&i| pat[j][i]).collect());
        }
        (l_cols, u_cols)
    }

    fn pattern_matrix(edges: &[(usize, usize)], n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 2.0);
        }
        for &(i, j) in edges {
            t.push(i, j, 1.0);
        }
        t.to_csc().unwrap()
    }

    #[test]
    fn diagonal_matrix_has_no_fill_and_no_updates() {
        let a = CscMatrix::identity(6);
        let sym = lu_symbolic(&a);
        assert_eq!(sym.l_nnz(), 6);
        assert_eq!(sym.u_nnz(), 6);
        assert!(sym.reach_cols.is_empty());
        assert_eq!(sym.factor_flops(), 0);
        for j in 0..6 {
            assert_eq!(sym.l_col_pattern(j), &[j]);
            assert_eq!(sym.u_col_pattern(j), &[j]);
        }
    }

    #[test]
    fn lower_triangular_input_needs_no_updates() {
        // A = diag + subdiagonal is already lower triangular: L takes
        // A's pattern, U stays diagonal, and no column solve has any
        // update to perform.
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (i, i - 1)).collect();
        let a = pattern_matrix(&edges, 6);
        let sym = lu_symbolic(&a);
        for j in 0..6 {
            assert_eq!(sym.reach(j), &[] as &[usize]);
            assert_eq!(sym.u_col_pattern(j), &[j]);
        }
        assert_eq!(sym.l_nnz(), a.nnz());
    }

    #[test]
    fn upper_bidiagonal_chains_updates() {
        // A = diag + superdiagonal: U gets the superdiagonal, L stays
        // diagonal, and each column j > 0 is updated by column j - 1.
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (i - 1, i)).collect();
        let a = pattern_matrix(&edges, 6);
        let sym = lu_symbolic(&a);
        for j in 1..6 {
            assert_eq!(sym.reach(j), &[j - 1]);
            assert_eq!(sym.u_col_pattern(j), &[j - 1, j]);
            assert_eq!(sym.l_col_pattern(j), &[j]);
        }
        assert_eq!(sym.reach(0), &[] as &[usize]);
    }

    #[test]
    fn arrow_matrix_fills_last_row_and_column() {
        // Dense first row + first column: no fill under this ordering
        // (arrow pointing down-right), every column updated by column 0
        // only through U, and L keeps the first column dense.
        let n = 7;
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((i, 0));
            edges.push((0, i));
        }
        let a = pattern_matrix(&edges, n);
        let sym = lu_symbolic(&a);
        let (l_ref, u_ref) = dense_symbolic_lu(&a);
        for j in 0..n {
            assert_eq!(sym.l_col_pattern(j), l_ref[j].as_slice(), "L col {j}");
            assert_eq!(sym.u_col_pattern(j), u_ref[j].as_slice(), "U col {j}");
        }
        // Reverse arrow (dense last row/col) is the worst case: here the
        // matrix is already dense in the relevant sense, so check the
        // other direction fills completely.
        let mut edges_rev = Vec::new();
        for i in 0..n - 1 {
            edges_rev.push((n - 1, i));
            edges_rev.push((i, n - 1));
        }
        let b = pattern_matrix(&edges_rev, n);
        let symb = lu_symbolic(&b);
        let (lb, ub) = dense_symbolic_lu(&b);
        for j in 0..n {
            assert_eq!(symb.l_col_pattern(j), lb[j].as_slice(), "L col {j}");
            assert_eq!(symb.u_col_pattern(j), ub[j].as_slice(), "U col {j}");
        }
    }

    #[test]
    fn random_unsymmetric_matches_dense_symbolic() {
        for seed in 0..12u64 {
            let a = gen::circuit_unsym(30, 3, 1, seed);
            let sym = lu_symbolic(&a);
            let (l_ref, u_ref) = dense_symbolic_lu(&a);
            for j in 0..30 {
                assert_eq!(
                    sym.l_col_pattern(j),
                    l_ref[j].as_slice(),
                    "seed {seed} L col {j}"
                );
                assert_eq!(
                    sym.u_col_pattern(j),
                    u_ref[j].as_slice(),
                    "seed {seed} U col {j}"
                );
            }
        }
    }

    #[test]
    fn reach_is_topological_and_consistent_with_patterns() {
        let a = gen::convection_diffusion_2d(6, 5, 0.8, 3);
        let sym = lu_symbolic(&a);
        for j in 0..a.n_cols() {
            let reach = sym.reach(j);
            // Reach members are exactly the off-diagonal U rows.
            let mut sorted: Vec<usize> = reach.to_vec();
            sorted.sort_unstable();
            let u_off = &sym.u_col_pattern(j)[..sym.u_col_pattern(j).len() - 1];
            assert_eq!(sorted.as_slice(), u_off, "col {j}");
            // Topological: if k' in reach appears after k and
            // L(k', k) != 0, order is violated.
            let pos: std::collections::HashMap<usize, usize> =
                reach.iter().enumerate().map(|(p, &k)| (k, p)).collect();
            for &k in reach {
                for &i in &sym.l_col_pattern(k)[1..] {
                    if let Some(&pi) = pos.get(&i) {
                        assert!(pos[&k] < pi, "col {j}: edge {k}->{i} out of order");
                    }
                }
            }
        }
    }

    #[test]
    fn flop_count_matches_schedule() {
        let a = gen::circuit_unsym(40, 4, 2, 9);
        let sym = lu_symbolic(&a);
        let mut expect = 0u64;
        for j in 0..40 {
            expect += (sym.l_col_pattern(j).len() - 1) as u64; // divisions
            for &k in sym.reach(j) {
                expect += 2 * (sym.l_col_pattern(k).len() - 1) as u64;
            }
        }
        assert_eq!(sym.factor_flops(), expect);
        // Per-column resolution sums to the total and matches the
        // per-column definition.
        let per_col = sym.per_column_flops();
        assert_eq!(per_col.iter().sum::<u64>(), sym.factor_flops());
        for j in 0..40 {
            let mut c = (sym.l_col_pattern(j).len() - 1) as u64;
            for &k in sym.reach(j) {
                c += 2 * (sym.l_col_pattern(k).len() - 1) as u64;
            }
            assert_eq!(per_col[j], c, "col {j}");
        }
    }

    #[test]
    fn fully_dense_column_cascades_fill() {
        // Column 2 dense below the diagonal plus a superdiagonal chain:
        // the chain feeds each column its predecessor's pattern, so the
        // dense column's fill cascades through every later column.
        let n = 8;
        let mut edges = Vec::new();
        for i in 3..n {
            edges.push((i, 2));
        }
        for i in 1..n {
            edges.push((i - 1, i));
        }
        let a = pattern_matrix(&edges, n);
        let sym = lu_symbolic(&a);
        let (l_ref, u_ref) = dense_symbolic_lu(&a);
        for j in 0..n {
            assert_eq!(sym.l_col_pattern(j), l_ref[j].as_slice(), "L col {j}");
            assert_eq!(sym.u_col_pattern(j), u_ref[j].as_slice(), "U col {j}");
        }
        // Column 3 reads the dense column directly...
        assert!(sym.reach(3).contains(&2), "col 3 must be updated by col 2");
        // ...and every later column inherits the full trailing pattern.
        for j in 3..n {
            let expect: Vec<usize> = (j..n).collect();
            assert_eq!(
                sym.l_col_pattern(j),
                expect.as_slice(),
                "fill cascade at {j}"
            );
        }
    }

    #[test]
    fn one_by_one() {
        let a = pattern_matrix(&[], 1);
        let sym = lu_symbolic(&a);
        assert_eq!(sym.l_col_pattern(0), &[0]);
        assert_eq!(sym.u_col_pattern(0), &[0]);
        assert_eq!(sym.factor_flops(), 0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        lu_symbolic(&CscMatrix::zeros(3, 2));
    }
}
