//! The fill-reducing ordering knob of the LU compile pipeline.
//!
//! Anything computable from the pattern alone belongs in the one-time
//! symbolic phase — and the single highest-leverage pattern-only
//! decision is *where each column pivots*. [`Ordering`] names the
//! strategies the inspectors can run at compile time; the permutation
//! they produce is baked into the compiled plan (applied
//! **symmetrically**, `Qᵀ A Q`, so static diagonal pivoting keeps its
//! diagonal — see `sympiler_sparse::ops::permute_rows_cols`) and the
//! numeric phase never sees it again.

use crate::colamd::colamd_ordering;
use crate::rcm::rcm_ordering;
use sympiler_sparse::{CscMatrix, TripletMatrix};

/// Fill-reducing ordering strategy for the LU pipeline, chosen once at
/// compile (inspection) time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// No reordering: factor the matrix as given. The right choice
    /// when the input is already fill-reducing-ordered upstream.
    #[default]
    Natural,
    /// Reverse Cuthill–McKee on the **symmetrized pattern**
    /// `|A| + |Aᵀ|` ([`crate::rcm`]). Cheap and bandwidth-oriented: a
    /// good fit when the pattern is nearly symmetric and banded-ish.
    /// For genuinely unsymmetric LU it loses to [`Ordering::Colamd`]
    /// on two counts: symmetrizing discards the row/column asymmetry
    /// that drives LU fill (the relevant graph is the column
    /// intersection graph of `AᵀA`, not `A + Aᵀ`), and minimizing
    /// *bandwidth* still fills the whole band, whereas minimum degree
    /// minimizes fill directly — so RCM typically leaves both more
    /// fill and a deeper (chain-like) elimination DAG.
    Rcm,
    /// COLAMD-style approximate minimum degree on the column
    /// intersection graph of `AᵀA`, computed without forming it
    /// ([`crate::colamd`]). The recommended default for unsymmetric
    /// factorization: least fill, and the bushier elimination DAG the
    /// parallel numeric phase needs.
    Colamd,
}

impl Ordering {
    /// Short stable name, for tables, reports, and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Ordering::Natural => "natural",
            Ordering::Rcm => "rcm",
            Ordering::Colamd => "colamd",
        }
    }

    /// All ordering variants, in report order.
    pub const ALL: [Ordering; 3] = [Ordering::Natural, Ordering::Rcm, Ordering::Colamd];
}

/// Compute the column/row ordering of `a` under `ordering`: `None` for
/// [`Ordering::Natural`] (so callers can skip permutation work
/// entirely), otherwise `Some(perm)` with `perm[new] = old`, always a
/// valid permutation of `0..a.n_cols()`.
///
/// # Panics
/// If `a` is not square (the LU pipeline's contract; both RCM and the
/// symmetric application of the ordering need matching dimensions).
pub fn compute_ordering(a: &CscMatrix, ordering: Ordering) -> Option<Vec<usize>> {
    assert!(a.is_square(), "ordering requires a square matrix");
    match ordering {
        Ordering::Natural => None,
        Ordering::Rcm => Some(rcm_ordering(&symmetrized_lower_pattern(a))),
        Ordering::Colamd => Some(colamd_ordering(a)),
    }
}

/// The lower triangle of the symmetrized pattern `|A| + |Aᵀ|` with an
/// explicit full diagonal — the adjacency RCM runs on when `A` itself
/// is unsymmetric. Values are structural only.
fn symmetrized_lower_pattern(a: &CscMatrix) -> CscMatrix {
    let n = a.n_cols();
    let mut t = TripletMatrix::with_capacity(n, n, a.nnz() + n);
    for j in 0..n {
        t.push(j, j, 1.0);
        for &i in a.col_rows(j) {
            if i != j {
                // Duplicates (mirrored entries present in both A and
                // Aᵀ) are summed structurally by `to_csc`.
                t.push(i.max(j), i.min(j), 1.0);
            }
        }
    }
    t.to_csc().expect("structural pattern assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::{gen, ops};

    fn assert_permutation(perm: &[usize], n: usize) {
        let mut sorted = perm.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn natural_is_none() {
        let a = gen::random_unsym(20, 3, 1);
        assert!(compute_ordering(&a, Ordering::Natural).is_none());
    }

    #[test]
    fn rcm_and_colamd_are_bijections_on_unsymmetric_patterns() {
        for seed in 0..4u64 {
            for a in [
                gen::circuit_unsym(50, 4, 2, seed),
                gen::random_unsym(40, 3, seed + 9),
                gen::convection_diffusion_2d(6, 7, 2.0, seed),
            ] {
                for ord in [Ordering::Rcm, Ordering::Colamd] {
                    let perm = compute_ordering(&a, ord).unwrap();
                    assert_permutation(&perm, a.n_cols());
                    // inverse_permutation is the canonical validity
                    // check; it must accept every ordering output.
                    assert!(ops::inverse_permutation(&perm).is_ok());
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = CscMatrix::zeros(0, 0);
        for ord in Ordering::ALL {
            match compute_ordering(&empty, ord) {
                None => assert_eq!(ord, Ordering::Natural),
                Some(p) => assert!(p.is_empty()),
            }
        }
        let diag = CscMatrix::identity(5);
        for ord in [Ordering::Rcm, Ordering::Colamd] {
            assert_permutation(&compute_ordering(&diag, ord).unwrap(), 5);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Ordering::Natural.label(), "natural");
        assert_eq!(Ordering::Rcm.label(), "rcm");
        assert_eq!(Ordering::Colamd.label(), "colamd");
        assert_eq!(Ordering::default(), Ordering::Natural);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        compute_ordering(&CscMatrix::zeros(3, 2), Ordering::Colamd);
    }
}
