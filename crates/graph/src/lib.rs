//! # sympiler-graph
//!
//! The symbolic graph algorithms behind Sympiler's compile-time
//! inspectors (SC'17, §2.2 and Table 1):
//!
//! * [`dfs`] — Gilbert–Peierls reach-set computation on the dependence
//!   graph `DG_L` (the inspection strategy for triangular-solve
//!   VI-Prune);
//! * [`mod@etree`] — Liu's elimination-tree algorithm (the inspection graph
//!   for Cholesky);
//! * [`mod@postorder`] — iterative tree postorder;
//! * [`mod@ereach`] — row sparsity patterns of `L` via etree up-traversal
//!   (Cholesky prune-sets);
//! * [`symbolic`] — the full fill pattern of `L` from Eq. (1) of the
//!   paper, enabling ahead-of-time allocation;
//! * [`mod@lu_symbolic`] — column-by-column symbolic LU (Gilbert–Peierls):
//!   per-column reach sets over the growing `DG_L`, predicting the
//!   patterns of both LU factors for a statically pivoted ordering;
//! * [`colcount`] — column counts of `L`;
//! * [`supernode`] — supernode detection, both the etree merge rule
//!   (Cholesky block-sets) and node equivalence on `DG_L` (triangular
//!   solve block-sets);
//! * [`mod@lu_supernode`] — column-panel detection on the predicted `L`
//!   of a symbolic LU (the nesting rule applied to Gilbert–Peierls
//!   patterns), the block-set inspector of the supernodal LU plan;
//! * [`rcm`] — reverse Cuthill–McKee ordering (fill reduction; shared by
//!   every engine so comparisons stay fair);
//! * [`colamd`] — COLAMD-style approximate-minimum-degree column
//!   ordering on the column intersection graph of `AᵀA` (quotient
//!   graph, supercolumns, dense-row stripping) — the fill-reducing
//!   ordering of the LU pipeline;
//! * [`mod@ordering`] — the [`Ordering`] knob the compile pipeline
//!   exposes (natural / RCM / COLAMD) and its dispatch;
//! * [`transversal`] — static pre-pivoting: MC21-style maximum
//!   transversal and MC64-like weighted matching producing a row
//!   permutation `P` with a zero-free (and numerically large) diagonal
//!   on `P·A`, dispatched through the [`PrePivot`] knob — what lets
//!   statically pivoted LU factor saddle-point and circuit matrices
//!   whose diagonals are structurally zero;
//! * [`levels`] — DAG scheduling: longest-path level sets (wavefronts)
//!   of any dependence DAG — `DG_L` for the parallel triangular solve,
//!   the column elimination DAG for the parallel LU numeric phase —
//!   plus cost-balanced chunking of levels across workers.

pub mod colamd;
pub mod colcount;
pub mod dfs;
pub mod ereach;
pub mod etree;
pub mod levels;
pub mod lu_supernode;
pub mod lu_symbolic;
pub mod ordering;
pub mod postorder;
pub mod rcm;
pub mod supernode;
pub mod symbolic;
pub mod transversal;

pub use colamd::{colamd_ordering, colamd_ordering_with, ColamdConfig};
pub use colcount::col_counts;
pub use dfs::{reach, reach_adjacency_into, reach_into};
pub use ereach::{ereach, ereach_into};
pub use etree::etree;
pub use levels::{
    balanced_partition, dag_levels_from_preds, dag_levels_from_succs, level_sets, lu_column_levels,
    LevelSets,
};
pub use lu_supernode::{
    flop_share_in_wide_panels, flop_share_in_wide_panels_from_parts, panel_flops, supernodes_lu,
    supernodes_lu_from_parts,
};
pub use lu_symbolic::{lu_symbolic, LuSymbolic};
pub use ordering::{compute_ordering, Ordering};
pub use postorder::postorder;
pub use rcm::rcm_ordering;
pub use supernode::{supernodes_cholesky, supernodes_trisolve, SupernodePartition};
pub use symbolic::{symbolic_cholesky, SymbolicFactor};
pub use transversal::{
    compute_pre_pivot, maximum_transversal, structural_rank, weighted_matching, PrePivot,
};
