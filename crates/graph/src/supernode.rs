//! Supernode detection — the **block-set** inspectors of Table 1.
//!
//! Two strategies, one per algorithm:
//!
//! * **Cholesky** (§3.2): merge adjacent columns `j-1`, `j` of the
//!   predicted factor when their nonzero counts (ignoring `j-1`'s
//!   diagonal) are equal and `j-1` is the only child of `j` in the
//!   etree — the paper's merge rule, evaluated on `etree + ColCount(A)`
//!   with an up-traversal.
//! * **Triangular solve** (§3.1): node equivalence on the dependence
//!   graph `DG_L` — two adjacent columns merge when their outgoing edge
//!   sets (off-diagonal patterns) coincide, which makes the supernode a
//!   dense trapezoid that dense kernels can process.
//!
//! Node amalgamation (merging *nearly* equal columns) is deliberately
//! not implemented, matching the paper's experimental setup (§4.1:
//! "Since Sympiler's current version does not support node amalgamation,
//! this setting is not enabled in CHOLMOD").

use crate::symbolic::SymbolicFactor;
use sympiler_sparse::CscMatrix;

/// A partition of columns `0..n` into contiguous supernodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodePartition {
    /// `first_col[s]..first_col[s+1]` are the columns of supernode `s`;
    /// length is `n_supernodes + 1`.
    pub first_col: Vec<usize>,
    /// Map from column to its supernode.
    pub col_to_super: Vec<usize>,
}

impl SupernodePartition {
    /// Build from supernode start columns (must begin at 0, end at n).
    pub fn from_first_cols(first_col: Vec<usize>, n: usize) -> Self {
        assert!(!first_col.is_empty() && first_col[0] == 0);
        assert_eq!(*first_col.last().unwrap(), n, "partition must cover 0..n");
        debug_assert!(first_col.windows(2).all(|w| w[0] < w[1]));
        let mut col_to_super = vec![0usize; n];
        for s in 0..first_col.len() - 1 {
            for c in first_col[s]..first_col[s + 1] {
                col_to_super[c] = s;
            }
        }
        Self {
            first_col,
            col_to_super,
        }
    }

    /// Number of supernodes.
    #[inline]
    pub fn n_supernodes(&self) -> usize {
        self.first_col.len() - 1
    }

    /// Number of columns covered.
    #[inline]
    pub fn n_cols(&self) -> usize {
        *self.first_col.last().unwrap()
    }

    /// Columns of supernode `s`.
    #[inline]
    pub fn cols(&self, s: usize) -> std::ops::Range<usize> {
        self.first_col[s]..self.first_col[s + 1]
    }

    /// Width (number of columns) of supernode `s`.
    #[inline]
    pub fn width(&self, s: usize) -> usize {
        self.first_col[s + 1] - self.first_col[s]
    }

    /// Mean supernode width.
    pub fn avg_width(&self) -> f64 {
        if self.n_supernodes() == 0 {
            return 0.0;
        }
        self.n_cols() as f64 / self.n_supernodes() as f64
    }

    /// Mean supernode *size* in the paper's threshold sense: the number
    /// of stored entries of the supernodal panel (width × panel rows),
    /// averaged over supernodes with width > 1 ("participating"
    /// supernodes, §4.2). `col_count` gives `nnz(L(:,j))` per column.
    pub fn avg_participating_size(&self, col_count: &[usize]) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for s in 0..self.n_supernodes() {
            let w = self.width(s);
            if w <= 1 {
                continue;
            }
            let first = self.first_col[s];
            // Panel rows = column count of the first (widest) column.
            total += w * col_count[first];
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

/// Supernodes of the predicted Cholesky factor (paper's merge rule).
/// `max_width` caps supernode width so panel buffers stay cache-sized
/// (0 means unlimited).
pub fn supernodes_cholesky(sym: &SymbolicFactor, max_width: usize) -> SupernodePartition {
    let n = sym.n;
    if n == 0 {
        return SupernodePartition::from_first_cols(vec![0], 0);
    }
    let child_counts = crate::etree::child_counts(&sym.parent);
    let mut first_col = vec![0usize];
    let mut width = 1usize;
    for j in 1..n {
        let only_child = sym.parent[j - 1] == j && child_counts[j] == 1;
        let counts_match = sym.col_count(j - 1) == sym.col_count(j) + 1;
        let fits = max_width == 0 || width < max_width;
        if only_child && counts_match && fits {
            width += 1;
        } else {
            first_col.push(j);
            width = 1;
        }
    }
    first_col.push(n);
    SupernodePartition::from_first_cols(first_col, n)
}

/// Supernodes of an existing lower-triangular matrix via node
/// equivalence on `DG_L`: columns `j-1` and `j` merge when the
/// off-diagonal pattern of `j-1` equals the full pattern of `j`
/// (i.e. the supernode's diagonal block is dense and its off-diagonal
/// rows are shared). `max_width` caps width (0 = unlimited).
pub fn supernodes_trisolve(l: &CscMatrix, max_width: usize) -> SupernodePartition {
    assert!(
        l.is_lower_triangular_with_diag(),
        "trisolve supernodes need a lower-triangular matrix with diagonal"
    );
    let n = l.n_cols();
    if n == 0 {
        return SupernodePartition::from_first_cols(vec![0], 0);
    }
    let mut first_col = vec![0usize];
    let mut width = 1usize;
    for j in 1..n {
        let prev = l.col_rows(j - 1);
        let cur = l.col_rows(j);
        let equivalent = prev.len() == cur.len() + 1 && &prev[1..] == cur;
        let fits = max_width == 0 || width < max_width;
        if equivalent && fits {
            width += 1;
        } else {
            first_col.push(j);
            width = 1;
        }
    }
    first_col.push(n);
    SupernodePartition::from_first_cols(first_col, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::symbolic_cholesky;
    use sympiler_sparse::gen;

    fn check_partition_valid(p: &SupernodePartition, n: usize) {
        assert_eq!(p.n_cols(), n);
        assert_eq!(p.col_to_super.len(), n);
        for s in 0..p.n_supernodes() {
            for c in p.cols(s) {
                assert_eq!(p.col_to_super[c], s);
            }
        }
        let widths: usize = (0..p.n_supernodes()).map(|s| p.width(s)).sum();
        assert_eq!(widths, n);
    }

    #[test]
    fn banded_matrix_merges_exactly_the_trailing_block() {
        // Inside the steady band region, column patterns shift (col j
        // gains row j+band) so the strict no-amalgamation rule keeps
        // them separate; only the trailing dense triangle (last band+1
        // columns, where counts decrease by one and the etree is an
        // only-child chain) merges into one supernode.
        let (n, band) = (32usize, 4usize);
        let a = gen::banded_spd(n, band, 1);
        let sym = symbolic_cholesky(&a);
        let p = supernodes_cholesky(&sym, 0);
        check_partition_valid(&p, n);
        let last = p.n_supernodes() - 1;
        assert_eq!(p.width(last), band + 1, "trailing dense block merges");
        assert_eq!(
            p.n_supernodes(),
            (n - band - 1) + 1,
            "all other columns stay singletons"
        );
    }

    #[test]
    fn grid_factor_has_nontrivial_supernodes() {
        // Fill-in on a 2-D grid creates nesting column patterns; the
        // factor must contain at least one multi-column supernode.
        let a = gen::grid2d_laplacian(8, 8, false, 1);
        let sym = symbolic_cholesky(&a);
        let p = supernodes_cholesky(&sym, 0);
        check_partition_valid(&p, 64);
        assert!(
            (0..p.n_supernodes()).any(|s| p.width(s) > 1),
            "grid fill-in should produce at least one wide supernode"
        );
    }

    #[test]
    fn cholesky_supernode_columns_really_nest() {
        // Inside a supernode, column patterns must nest: the pattern of
        // column j equals the pattern of j-1 minus its first row.
        let a = gen::grid2d_laplacian(6, 6, false, 3);
        let sym = symbolic_cholesky(&a);
        let p = supernodes_cholesky(&sym, 0);
        check_partition_valid(&p, 36);
        for s in 0..p.n_supernodes() {
            let cols: Vec<usize> = p.cols(s).collect();
            for w in cols.windows(2) {
                let prev = sym.col_pattern(w[0]);
                let cur = sym.col_pattern(w[1]);
                assert_eq!(&prev[1..], cur, "supernode columns {w:?} must nest");
            }
        }
    }

    #[test]
    fn identity_matrix_all_singletons() {
        let a = sympiler_sparse::CscMatrix::identity(8);
        let sym = symbolic_cholesky(&a);
        let p = supernodes_cholesky(&sym, 0);
        assert_eq!(p.n_supernodes(), 8);
        assert_eq!(p.avg_width(), 1.0);
    }

    #[test]
    fn dense_first_column_arrow_single_supernode() {
        // Dense first column fills L completely: one big supernode.
        let mut t = sympiler_sparse::TripletMatrix::new(6, 6);
        for j in 0..6 {
            t.push(j, j, 10.0);
        }
        for i in 1..6 {
            t.push(i, 0, -1.0);
        }
        let a = t.to_csc().unwrap();
        let sym = symbolic_cholesky(&a);
        let p = supernodes_cholesky(&sym, 0);
        assert_eq!(p.n_supernodes(), 1, "fully dense L is one supernode");
        assert_eq!(p.width(0), 6);
    }

    #[test]
    fn max_width_caps_supernodes() {
        let mut t = sympiler_sparse::TripletMatrix::new(6, 6);
        for j in 0..6 {
            t.push(j, j, 10.0);
        }
        for i in 1..6 {
            t.push(i, 0, -1.0);
        }
        let a = t.to_csc().unwrap();
        let sym = symbolic_cholesky(&a);
        let p = supernodes_cholesky(&sym, 2);
        assert_eq!(p.n_supernodes(), 3);
        for s in 0..3 {
            assert!(p.width(s) <= 2);
        }
    }

    #[test]
    fn trisolve_supernodes_on_dense_lower() {
        // Fully dense lower triangle: all columns equivalent.
        let n = 5;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            for i in j..n {
                t.push(i, j, if i == j { 2.0 } else { -0.1 });
            }
        }
        let l = t.to_csc().unwrap();
        let p = supernodes_trisolve(&l, 0);
        assert_eq!(p.n_supernodes(), 1);
    }

    #[test]
    fn trisolve_supernodes_on_identity() {
        let l = sympiler_sparse::CscMatrix::identity(7);
        let p = supernodes_trisolve(&l, 0);
        assert_eq!(p.n_supernodes(), 7);
    }

    #[test]
    fn trisolve_supernode_blocks_are_trapezoids() {
        // Use a real Cholesky-factor pattern for realism.
        let a = gen::banded_spd(30, 3, 5);
        let sym = symbolic_cholesky(&a);
        // Fabricate L with the symbolic pattern (values irrelevant).
        let l = sympiler_sparse::CscMatrix::try_new(
            30,
            30,
            sym.l_col_ptr.clone(),
            sym.l_row_idx.clone(),
            vec![1.0; sym.l_nnz()],
        )
        .unwrap();
        let p = supernodes_trisolve(&l, 0);
        check_partition_valid(&p, 30);
        for s in 0..p.n_supernodes() {
            let cols: Vec<usize> = p.cols(s).collect();
            for w in cols.windows(2) {
                assert_eq!(&l.col_rows(w[0])[1..], l.col_rows(w[1]));
            }
        }
    }

    #[test]
    fn cholesky_and_trisolve_detection_agree_on_factor_pattern() {
        // The etree rule (on the symbolic factor) and node equivalence
        // (on the materialized L pattern) find the same partition here.
        let a = gen::grid2d_laplacian(5, 5, false, 11);
        let sym = symbolic_cholesky(&a);
        let l = sympiler_sparse::CscMatrix::try_new(
            25,
            25,
            sym.l_col_ptr.clone(),
            sym.l_row_idx.clone(),
            vec![1.0; sym.l_nnz()],
        )
        .unwrap();
        let p_chol = supernodes_cholesky(&sym, 0);
        let p_tri = supernodes_trisolve(&l, 0);
        // Node equivalence can only merge *at least* as much as the
        // etree rule restricted by the only-child condition; on factor
        // patterns they coincide for these matrices except where a
        // column pair is equivalent without the etree child link. Check
        // that every etree supernode is contained in a node-equivalence
        // supernode.
        for s in 0..p_chol.n_supernodes() {
            let cols: Vec<usize> = p_chol.cols(s).collect();
            let supers: std::collections::BTreeSet<usize> =
                cols.iter().map(|&c| p_tri.col_to_super[c]).collect();
            assert_eq!(
                supers.len(),
                1,
                "etree supernode {s} split by node equivalence"
            );
        }
    }

    #[test]
    fn avg_participating_size() {
        let p = SupernodePartition::from_first_cols(vec![0, 2, 3, 6], 6);
        // widths 2, 1, 3; participating: s0 (width 2) and s2 (width 3).
        let col_count = vec![4, 3, 5, 3, 2, 1];
        // s0: 2 * col_count[0] = 8; s2: 3 * col_count[3] = 9 -> avg 8.5
        assert_eq!(p.avg_participating_size(&col_count), 8.5);
        let singles = SupernodePartition::from_first_cols(vec![0, 1, 2], 2);
        assert_eq!(singles.avg_participating_size(&[1, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn partition_must_cover() {
        SupernodePartition::from_first_cols(vec![0, 2], 5);
    }
}
