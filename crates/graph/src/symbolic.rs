//! Full symbolic Cholesky factorization: the exact nonzero pattern of
//! `L` before any numeric work.
//!
//! The paper's Eq. (1) (§3.2, from George & Liu):
//!
//! ```text
//! L_j = A_j ∪ {j} ∪ ( ∪_{j = parent(s)} L_s \ {s} )
//! ```
//!
//! Knowing the pattern ahead of time lets Sympiler allocate `L` once and
//! eliminate all dynamic memory allocation from the numeric phase
//! (§3.2). Two independent implementations are provided — the production
//! one built from row patterns (ereach + transpose) and a direct Eq. (1)
//! evaluator — and cross-checked in tests.

use crate::ereach;
use crate::etree::{etree, NONE};
use sympiler_sparse::CscMatrix;

/// The symbolic factorization of an SPD matrix: everything the numeric
/// phase needs that depends only on the pattern.
#[derive(Debug, Clone)]
pub struct SymbolicFactor {
    /// Matrix order.
    pub n: usize,
    /// Elimination tree (`NONE` at roots).
    pub parent: Vec<usize>,
    /// Column pointers of the pattern of `L` (length `n + 1`).
    pub l_col_ptr: Vec<usize>,
    /// Row indices of `L`, sorted within each column; the first entry of
    /// every column is the diagonal.
    pub l_row_idx: Vec<usize>,
    /// Row-pattern table (prune-sets): CSR-like `(ptr, idx)` giving, for
    /// each row `k`, the columns `j < k` with `L[k,j] != 0`.
    pub row_ptr: Vec<usize>,
    pub row_idx: Vec<usize>,
}

impl SymbolicFactor {
    /// Total stored nonzeros of `L` (including diagonals).
    pub fn l_nnz(&self) -> usize {
        self.l_row_idx.len()
    }

    /// Column count of `L(:, j)` (including the diagonal) — the paper's
    /// "column count" used for thresholds and flop accounting.
    #[inline]
    pub fn col_count(&self, j: usize) -> usize {
        self.l_col_ptr[j + 1] - self.l_col_ptr[j]
    }

    /// Pattern of column `j` of `L`.
    #[inline]
    pub fn col_pattern(&self, j: usize) -> &[usize] {
        &self.l_row_idx[self.l_col_ptr[j]..self.l_col_ptr[j + 1]]
    }

    /// Prune-set (row pattern) of row `k`.
    #[inline]
    pub fn row_pattern(&self, k: usize) -> &[usize] {
        &self.row_idx[self.row_ptr[k]..self.row_ptr[k + 1]]
    }

    /// Exact flop count of the numeric factorization with this pattern:
    /// `sum_j (cc_j - 1)` divisions + `n` square roots +
    /// `sum_j cc_j * (cc_j - 1)` multiply-adds of the outer-product
    /// updates — the standard `sum_j cc_j^2` accounting (Davis 2006).
    pub fn factor_flops(&self) -> u64 {
        (0..self.n)
            .map(|j| {
                let cc = self.col_count(j) as u64;
                cc * cc
            })
            .sum()
    }

    /// Flop count of one triangular solve with the factor `L`
    /// (dense RHS): one division plus 2 multiply-adds per off-diagonal.
    pub fn solve_flops(&self) -> u64 {
        (0..self.n)
            .map(|j| 1 + 2 * (self.col_count(j) as u64 - 1))
            .sum()
    }
}

/// Compute the symbolic factorization of a symmetric matrix stored
/// lower-triangular. `O(|L|)` time and memory.
pub fn symbolic_cholesky(a_lower: &CscMatrix) -> SymbolicFactor {
    let parent = etree(a_lower);
    symbolic_cholesky_with_etree(a_lower, parent)
}

/// As [`symbolic_cholesky`], reusing a precomputed etree.
pub fn symbolic_cholesky_with_etree(a_lower: &CscMatrix, parent: Vec<usize>) -> SymbolicFactor {
    let n = a_lower.n_cols();
    let (row_ptr, row_idx) = ereach::row_patterns(a_lower, &parent);
    // Column counts: 1 (diagonal) + number of rows k whose pattern
    // contains j.
    let mut counts = vec![1usize; n];
    for &j in &row_idx {
        counts[j] += 1;
    }
    let mut l_col_ptr = vec![0usize; n + 1];
    for j in 0..n {
        l_col_ptr[j + 1] = l_col_ptr[j] + counts[j];
    }
    let nnz = l_col_ptr[n];
    let mut l_row_idx = vec![0usize; nnz];
    let mut next = l_col_ptr[..n].to_vec();
    // Diagonal first in every column.
    for j in 0..n {
        l_row_idx[next[j]] = j;
        next[j] += 1;
    }
    // Scatter row patterns; scanning rows k in increasing order keeps
    // each column's indices sorted.
    for k in 0..n {
        for &j in &row_idx[row_ptr[k]..row_ptr[k + 1]] {
            l_row_idx[next[j]] = k;
            next[j] += 1;
        }
    }
    SymbolicFactor {
        n,
        parent,
        l_col_ptr,
        l_row_idx,
        row_ptr,
        row_idx,
    }
}

/// Direct Eq. (1) evaluation — an independent implementation used to
/// cross-validate [`symbolic_cholesky`] in tests (and exposed for
/// callers who want the recurrence itself).
pub fn symbolic_cholesky_eq1(a_lower: &CscMatrix) -> (Vec<usize>, Vec<usize>) {
    let n = a_lower.n_cols();
    let parent = etree(a_lower);
    // Children lists.
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    for v in (0..n).rev() {
        if parent[v] != NONE {
            next[v] = head[parent[v]];
            head[parent[v]] = v;
        }
    }
    let mut col_ptr = vec![0usize; n + 1];
    let mut cols: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut mark = vec![usize::MAX; n];
    for j in 0..n {
        let mut pat = vec![j];
        mark[j] = j;
        // A_j (rows > j; the diagonal is already in).
        for &i in a_lower.col_rows(j) {
            if i != j && mark[i] != j {
                mark[i] = j;
                pat.push(i);
            }
        }
        // Union of children patterns minus the child itself.
        let mut s = head[j];
        while s != NONE {
            for &i in &cols[s] {
                if i != s && mark[i] != j {
                    mark[i] = j;
                    pat.push(i);
                }
            }
            s = next[s];
        }
        pat.sort_unstable();
        col_ptr[j + 1] = col_ptr[j] + pat.len();
        cols.push(pat);
    }
    let row_idx: Vec<usize> = cols.into_iter().flatten().collect();
    (col_ptr, row_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn production_matches_eq1_on_random() {
        for seed in 0..10u64 {
            let a = gen::random_spd(40, 4, seed);
            let sym = symbolic_cholesky(&a);
            let (ptr, idx) = symbolic_cholesky_eq1(&a);
            assert_eq!(sym.l_col_ptr, ptr, "seed {seed}");
            assert_eq!(sym.l_row_idx, idx, "seed {seed}");
        }
    }

    #[test]
    fn production_matches_eq1_on_structured() {
        for a in [
            gen::grid2d_laplacian(7, 6, false, 1),
            gen::grid2d_laplacian(5, 5, true, 2),
            gen::banded_spd(40, 5, 3),
            gen::circuit_like(60, 4, 2, 4),
        ] {
            let sym = symbolic_cholesky(&a);
            let (ptr, idx) = symbolic_cholesky_eq1(&a);
            assert_eq!(sym.l_col_ptr, ptr);
            assert_eq!(sym.l_row_idx, idx);
        }
    }

    #[test]
    fn pattern_contains_a_and_diagonal_first() {
        let a = gen::random_spd(30, 4, 7);
        let sym = symbolic_cholesky(&a);
        for j in 0..30 {
            let pat = sym.col_pattern(j);
            assert_eq!(pat[0], j, "diagonal first in column {j}");
            assert!(pat.windows(2).all(|w| w[0] < w[1]), "sorted column {j}");
            for &i in a.col_rows(j) {
                assert!(pat.contains(&i), "A[{i},{j}] missing from L pattern");
            }
        }
    }

    #[test]
    fn fill_in_never_shrinks() {
        let a = gen::grid2d_laplacian(6, 6, false, 9);
        let sym = symbolic_cholesky(&a);
        assert!(sym.l_nnz() >= a.nnz(), "L must contain A's lower pattern");
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let a = gen::tridiagonal_spd(12);
        let sym = symbolic_cholesky(&a);
        assert_eq!(sym.l_nnz(), a.nnz(), "tridiagonal factors without fill");
    }

    #[test]
    fn arrow_matrix_dense_last_column_no_fill() {
        // Arrow pointing down-right: diagonal + dense last row. No fill.
        let mut t = sympiler_sparse::TripletMatrix::new(8, 8);
        for j in 0..8 {
            t.push(j, j, 10.0);
            if j < 7 {
                t.push(7, j, -1.0);
            }
        }
        let a = t.to_csc().unwrap();
        let sym = symbolic_cholesky(&a);
        assert_eq!(sym.l_nnz(), a.nnz());
    }

    #[test]
    fn arrow_matrix_first_column_fills_completely() {
        // Dense first column: elimination fills everything below.
        let mut t = sympiler_sparse::TripletMatrix::new(6, 6);
        for j in 0..6 {
            t.push(j, j, 10.0);
        }
        for i in 1..6 {
            t.push(i, 0, -1.0);
        }
        let a = t.to_csc().unwrap();
        let sym = symbolic_cholesky(&a);
        // L is completely dense lower triangular: n(n+1)/2.
        assert_eq!(sym.l_nnz(), 6 * 7 / 2);
    }

    #[test]
    fn row_and_col_patterns_are_transposes() {
        let a = gen::random_spd(25, 3, 11);
        let sym = symbolic_cholesky(&a);
        for k in 0..25 {
            for &j in sym.row_pattern(k) {
                assert!(
                    sym.col_pattern(j).contains(&k),
                    "row pattern ({k},{j}) missing from column pattern"
                );
            }
        }
        let total_off_diag: usize = (0..25).map(|k| sym.row_pattern(k).len()).sum();
        assert_eq!(total_off_diag + 25, sym.l_nnz());
    }

    #[test]
    fn flop_counts_are_sane() {
        let a = gen::tridiagonal_spd(10);
        let sym = symbolic_cholesky(&a);
        // Tridiagonal: cc = 2 for all but last column (cc = 1).
        assert_eq!(sym.factor_flops(), 9 * 4 + 1);
        assert_eq!(sym.solve_flops(), 9 * 3 + 1);
    }

    #[test]
    fn with_etree_matches_fresh() {
        let a = gen::random_spd(30, 4, 13);
        let parent = etree(&a);
        let s1 = symbolic_cholesky_with_etree(&a, parent);
        let s2 = symbolic_cholesky(&a);
        assert_eq!(s1.l_col_ptr, s2.l_col_ptr);
        assert_eq!(s1.l_row_idx, s2.l_row_idx);
    }
}
