//! Iterative postorder of an elimination forest.
//!
//! Postorder is used by supernode detection and column-count algorithms;
//! it also defines the execution order of the supernodal factorization.

use crate::etree::NONE;

/// Compute a postorder permutation of the forest given by `parent`
/// (with `parent[root] == NONE`). Children are visited in increasing
/// node order, so the result is deterministic.
///
/// Returns `post` where `post[k]` is the node visited k-th; every node
/// appears after all of its descendants.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists: head[v] = first child, next[c] = sibling.
    // Iterating nodes in reverse makes the lists sorted ascending.
    let mut head = vec![NONE; n];
    let mut next = vec![NONE; n];
    for v in (0..n).rev() {
        let p = parent[v];
        if p != NONE {
            next[v] = head[p];
            head[p] = v;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<usize> = Vec::with_capacity(64);
    for root in 0..n {
        if parent[root] != NONE {
            continue;
        }
        // DFS with explicit stack; `head` is consumed as the per-node
        // "next unvisited child" cursor.
        stack.push(root);
        while let Some(&v) = stack.last() {
            let child = head[v];
            if child == NONE {
                post.push(v);
                stack.pop();
            } else {
                head[v] = next[child];
                stack.push(child);
            }
        }
    }
    post
}

/// Inverse permutation: `inv[post[k]] = k`.
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (k, &v) in perm.iter().enumerate() {
        inv[v] = k;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{etree, NONE};
    use sympiler_sparse::gen;

    fn is_valid_postorder(parent: &[usize], post: &[usize]) -> bool {
        let n = parent.len();
        if post.len() != n {
            return false;
        }
        let inv = inverse_permutation(post);
        // Every child must come before its parent.
        (0..n).all(|j| parent[j] == NONE || inv[j] < inv[parent[j]])
    }

    #[test]
    fn path_tree_postorder_is_identity() {
        let parent = vec![1, 2, 3, NONE];
        assert_eq!(postorder(&parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn forest_of_roots() {
        let parent = vec![NONE; 4];
        assert_eq!(postorder(&parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn branching_tree() {
        // 0 and 1 are children of 2; 3 child of 4; 2 and 4 children of 5.
        let parent = vec![2, 2, 5, 4, 5, NONE];
        let post = postorder(&parent);
        assert!(is_valid_postorder(&parent, &post));
        assert_eq!(post.len(), 6);
        assert_eq!(*post.last().unwrap(), 5);
    }

    #[test]
    fn etree_postorders_are_valid() {
        for seed in 0..10u64 {
            let a = gen::random_spd(50, 4, seed);
            let parent = etree(&a);
            let post = postorder(&parent);
            assert!(is_valid_postorder(&parent, &post), "seed {seed}");
            // Permutation check.
            let mut sorted = post.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn inverse_permutation_roundtrip() {
        let perm = vec![2, 0, 3, 1];
        let inv = inverse_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (k, &p) in perm.iter().enumerate() {
            assert_eq!(inv[p], k);
        }
    }
}
