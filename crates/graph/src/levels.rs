//! Level sets (wavefronts) of the dependence graph `DG_L`.
//!
//! Columns in the same level have no dependence path between them and
//! can execute in parallel. The paper lists this as the natural
//! extension of its inspection framework ("should extend to improve
//! performance on shared and distributed memory systems", §1; realized
//! later in the authors' ParSy). Used by the optional `parallel`
//! executor in `sympiler-core`.

use sympiler_sparse::CscMatrix;

/// Level schedule of a lower-triangular matrix: `levels[l]` lists the
/// columns whose longest dependence chain has length `l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSets {
    /// Columns grouped by level, each group sorted ascending.
    pub levels: Vec<Vec<usize>>,
    /// `level_of[j]` = level of column `j`.
    pub level_of: Vec<usize>,
}

impl LevelSets {
    /// Number of levels (the critical-path length).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Average available parallelism: columns per level.
    pub fn avg_parallelism(&self) -> f64 {
        if self.levels.is_empty() {
            0.0
        } else {
            self.level_of.len() as f64 / self.levels.len() as f64
        }
    }
}

/// Compute level sets of `DG_L` for a lower-triangular matrix with
/// diagonal-first columns. O(|L|).
pub fn level_sets(l: &CscMatrix) -> LevelSets {
    assert!(
        l.is_lower_triangular_with_diag(),
        "level sets need lower-triangular with diagonal"
    );
    let n = l.n_cols();
    let mut level_of = vec![0usize; n];
    // Forward sweep: an edge j -> i (i > j) forces level(i) > level(j).
    for j in 0..n {
        let lj = level_of[j];
        for &i in &l.col_rows(j)[1..] {
            if level_of[i] <= lj {
                level_of[i] = lj + 1;
            }
        }
    }
    let n_levels = level_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut levels = vec![Vec::new(); n_levels];
    for (j, &lv) in level_of.iter().enumerate() {
        levels[lv].push(j);
    }
    LevelSets { levels, level_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn identity_is_one_level() {
        let l = CscMatrix::identity(5);
        let ls = level_sets(&l);
        assert_eq!(ls.n_levels(), 1);
        assert_eq!(ls.levels[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(ls.avg_parallelism(), 5.0);
    }

    #[test]
    fn chain_is_n_levels() {
        let n = 6;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 1.0);
            if j + 1 < n {
                t.push(j + 1, j, -1.0);
            }
        }
        let l = t.to_csc().unwrap();
        let ls = level_sets(&l);
        assert_eq!(ls.n_levels(), n);
        for (lv, cols) in ls.levels.iter().enumerate() {
            assert_eq!(cols, &vec![lv]);
        }
    }

    #[test]
    fn levels_respect_dependences() {
        let l = gen::random_lower_triangular(60, 3, 3);
        let ls = level_sets(&l);
        for j in 0..60 {
            for &i in &l.col_rows(j)[1..] {
                assert!(
                    ls.level_of[i] > ls.level_of[j],
                    "edge {j}->{i} must increase level"
                );
            }
        }
        // Partition check.
        let total: usize = ls.levels.iter().map(Vec::len).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn empty_matrix() {
        let l = CscMatrix::zeros(0, 0);
        let ls = level_sets(&l);
        assert_eq!(ls.n_levels(), 0);
        assert_eq!(ls.avg_parallelism(), 0.0);
    }
}
