//! DAG scheduling: level sets (wavefronts) and cost-balanced chunking.
//!
//! Columns in the same level have no dependence path between them and
//! can execute in parallel. The paper lists this as the natural
//! extension of its inspection framework ("should extend to improve
//! performance on shared and distributed memory systems", §1; realized
//! later in the authors' ParSy). Originally this module only leveled
//! the lower-triangular dependence graph `DG_L`; it is now a general
//! DAG scheduler used by both parallel executors in `sympiler-core`:
//!
//! * [`level_sets`] — wavefronts of `DG_L` for a lower-triangular
//!   matrix (parallel triangular solve);
//! * [`lu_column_levels`] — wavefronts of the **column elimination
//!   DAG** of a symbolic LU factorization, where column `j` depends on
//!   every column in its update schedule (parallel LU numeric phase);
//! * [`dag_levels_from_succs`] / [`dag_levels_from_preds`] — the
//!   underlying longest-path leveling for any DAG given by successor
//!   or predecessor lists (Kahn's algorithm, cycle-checked);
//! * [`balanced_partition`] — contiguous cost-balanced chunking of one
//!   level across workers, driven by the exact per-column flop counts
//!   the inspectors already compute.

use crate::lu_symbolic::LuSymbolic;
use std::collections::VecDeque;
use sympiler_sparse::CscMatrix;

/// Level schedule of a DAG: `levels[l]` lists the nodes whose longest
/// dependence chain has length `l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSets {
    /// Nodes grouped by level, each group sorted ascending.
    pub levels: Vec<Vec<usize>>,
    /// `level_of[j]` = level of node `j`.
    pub level_of: Vec<usize>,
}

impl LevelSets {
    /// Number of levels (the critical-path length).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Average available parallelism: nodes per level.
    pub fn avg_parallelism(&self) -> f64 {
        if self.levels.is_empty() {
            0.0
        } else {
            self.level_of.len() as f64 / self.levels.len() as f64
        }
    }

    /// Width of the widest level.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Group `level_of` into ascending per-level node lists.
    fn from_level_of(level_of: Vec<usize>) -> Self {
        let n_levels = level_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut levels = vec![Vec::new(); n_levels];
        for (j, &lv) in level_of.iter().enumerate() {
            levels[lv].push(j);
        }
        LevelSets { levels, level_of }
    }
}

/// Longest-path levels of a DAG on `n` nodes given by **successor**
/// lists: `succs(u)` yields every `v` that depends on `u` (edge
/// `u -> v`). Nodes need not be topologically numbered; Kahn's
/// algorithm orders them and `level_of[v] = 1 + max level_of[u]` over
/// `v`'s predecessors. O(V + E); `succs` is invoked twice per node.
///
/// # Panics
/// If an edge leaves `0..n`, is a self-loop, or the graph has a cycle.
pub fn dag_levels_from_succs<F, I>(n: usize, mut succs: F) -> LevelSets
where
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = usize>,
{
    let mut indeg = vec![0usize; n];
    for u in 0..n {
        for v in succs(u) {
            assert!(v < n, "edge {u}->{v} leaves the graph");
            assert_ne!(v, u, "self-loop at {u}");
            indeg[v] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
    let mut level_of = vec![0usize; n];
    let mut seen = 0usize;
    while let Some(u) = queue.pop_front() {
        seen += 1;
        let lu = level_of[u];
        for v in succs(u) {
            if level_of[v] <= lu {
                level_of[v] = lu + 1;
            }
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    assert_eq!(seen, n, "dependence graph has a cycle");
    LevelSets::from_level_of(level_of)
}

/// Longest-path levels of a DAG given by **predecessor** lists:
/// `preds(j)` yields every node `j` depends on. Builds the successor
/// adjacency once (CSR), then levels via [`dag_levels_from_succs`].
///
/// # Panics
/// If an edge leaves `0..n`, is a self-loop, or the graph has a cycle.
pub fn dag_levels_from_preds<F, I>(n: usize, mut preds: F) -> LevelSets
where
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = usize>,
{
    // Two passes over `preds` build the successor CSR without
    // per-node Vec allocations.
    let mut succ_ptr = vec![0usize; n + 1];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for j in 0..n {
        for k in preds(j) {
            assert!(k < n, "edge {k}->{j} leaves the graph");
            assert_ne!(k, j, "self-loop at {j}");
            succ_ptr[k + 1] += 1;
            edges.push((k, j));
        }
    }
    for u in 0..n {
        succ_ptr[u + 1] += succ_ptr[u];
    }
    let mut succ_idx = vec![0usize; edges.len()];
    let mut next = succ_ptr.clone();
    for (k, j) in edges {
        succ_idx[next[k]] = j;
        next[k] += 1;
    }
    dag_levels_from_succs(n, |u| {
        succ_idx[succ_ptr[u]..succ_ptr[u + 1]].iter().copied()
    })
}

/// Compute level sets of `DG_L` for a lower-triangular matrix with
/// diagonal-first columns: the sub-diagonal pattern of column `j` is
/// exactly its successor list. O(|L|).
pub fn level_sets(l: &CscMatrix) -> LevelSets {
    assert!(
        l.is_lower_triangular_with_diag(),
        "level sets need lower-triangular with diagonal"
    );
    dag_levels_from_succs(l.n_cols(), |j| l.col_rows(j)[1..].iter().copied())
}

/// Level sets of the **column elimination DAG** of a symbolic LU
/// factorization: column `j` depends on every column `k` in its update
/// schedule (`sym.reach(j)`), i.e. every `k < j` with `U(k, j) != 0`.
/// Columns in the same level read only finalized columns from earlier
/// levels, so their numeric column solves commute. O(|U|).
pub fn lu_column_levels(sym: &LuSymbolic) -> LevelSets {
    dag_levels_from_preds(sym.n, |j| sym.reach(j).iter().copied())
}

/// Split `costs.len()` items (one level's nodes, in order) into
/// `parts` contiguous chunks with near-equal total cost. Returns the
/// `parts + 1` chunk boundaries (`bounds[t]..bounds[t + 1]` is chunk
/// `t`); chunks may be empty when items are fewer than parts.
/// Deterministic: boundaries depend only on the prefix sums.
pub fn balanced_partition(costs: &[u64], parts: usize) -> Vec<usize> {
    assert!(parts >= 1, "need at least one part");
    let total: u64 = costs.iter().sum();
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0usize);
    let mut acc = 0u64;
    let mut idx = 0usize;
    for t in 1..parts {
        // Advance to the first item whose prefix sum reaches the
        // t-th equal-cost target.
        let target = (total as u128 * t as u128 / parts as u128) as u64;
        while idx < costs.len() && acc < target {
            acc += costs[idx];
            idx += 1;
        }
        bounds.push(idx);
    }
    bounds.push(costs.len());
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn identity_is_one_level() {
        let l = CscMatrix::identity(5);
        let ls = level_sets(&l);
        assert_eq!(ls.n_levels(), 1);
        assert_eq!(ls.levels[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(ls.avg_parallelism(), 5.0);
        assert_eq!(ls.max_width(), 5);
    }

    #[test]
    fn chain_is_n_levels() {
        let n = 6;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 1.0);
            if j + 1 < n {
                t.push(j + 1, j, -1.0);
            }
        }
        let l = t.to_csc().unwrap();
        let ls = level_sets(&l);
        assert_eq!(ls.n_levels(), n);
        for (lv, cols) in ls.levels.iter().enumerate() {
            assert_eq!(cols, &vec![lv]);
        }
    }

    #[test]
    fn levels_respect_dependences() {
        let l = gen::random_lower_triangular(60, 3, 3);
        let ls = level_sets(&l);
        for j in 0..60 {
            for &i in &l.col_rows(j)[1..] {
                assert!(
                    ls.level_of[i] > ls.level_of[j],
                    "edge {j}->{i} must increase level"
                );
            }
        }
        // Partition check.
        let total: usize = ls.levels.iter().map(Vec::len).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn empty_matrix() {
        let l = CscMatrix::zeros(0, 0);
        let ls = level_sets(&l);
        assert_eq!(ls.n_levels(), 0);
        assert_eq!(ls.avg_parallelism(), 0.0);
        assert_eq!(ls.max_width(), 0);
    }

    /// Reference: longest path to each node by dynamic programming over
    /// an explicit edge list, O(V * E) but obviously correct.
    fn reference_longest_path(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
        let mut level = vec![0usize; n];
        // Relax repeatedly until a fixed point (Bellman-Ford style;
        // terminates because the graph is acyclic).
        loop {
            let mut changed = false;
            for &(u, v) in edges {
                if level[v] < level[u] + 1 {
                    level[v] = level[u] + 1;
                    changed = true;
                }
            }
            if !changed {
                return level;
            }
        }
    }

    #[test]
    fn general_dag_not_topologically_numbered() {
        // 4 -> 2 -> 0 -> 3, 1 isolated: node numbering disagrees with
        // topological order, which the old DG_L sweep required.
        let n = 5;
        let preds: Vec<Vec<usize>> = vec![vec![2], vec![], vec![4], vec![0], vec![]];
        let ls = dag_levels_from_preds(n, |j| preds[j].iter().copied());
        assert_eq!(ls.level_of, vec![2, 0, 1, 3, 0]);
        assert_eq!(ls.levels[0], vec![1, 4]);
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|j| preds[j].iter().map(move |&k| (k, j)))
            .collect();
        assert_eq!(ls.level_of, reference_longest_path(n, &edges));
    }

    #[test]
    fn preds_and_succs_agree_on_random_dags() {
        for seed in 0..8u64 {
            // Random DAG via a random topological order.
            let n = 40;
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut rnd = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                order.swap(i, rnd() as usize % (i + 1));
            }
            let mut rank = vec![0usize; n];
            for (pos, &v) in order.iter().enumerate() {
                rank[v] = pos;
            }
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
            for v in 0..n {
                for u in 0..n {
                    if rank[u] < rank[v] && rnd() % 10 < 2 {
                        preds[v].push(u);
                    }
                }
            }
            let from_preds = dag_levels_from_preds(n, |j| preds[j].iter().copied());
            let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
            for v in 0..n {
                for &u in &preds[v] {
                    succs[u].push(v);
                }
            }
            let from_succs = dag_levels_from_succs(n, |u| succs[u].iter().copied());
            assert_eq!(from_preds, from_succs, "seed {seed}");
            let edges: Vec<(usize, usize)> = (0..n)
                .flat_map(|j| preds[j].iter().map(move |&k| (k, j)))
                .collect();
            assert_eq!(
                from_preds.level_of,
                reference_longest_path(n, &edges),
                "seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let preds: Vec<Vec<usize>> = vec![vec![2], vec![0], vec![1]];
        dag_levels_from_preds(3, |j| preds[j].iter().copied());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        dag_levels_from_succs(2, |u| if u == 1 { vec![1] } else { vec![] });
    }

    #[test]
    fn lu_column_levels_on_suite_matrix() {
        let a = gen::circuit_unsym(60, 4, 2, 17);
        let sym = crate::lu_symbolic(&a);
        let ls = lu_column_levels(&sym);
        // Every scheduled update crosses a level boundary downward.
        for j in 0..60 {
            for &k in sym.reach(j) {
                assert!(ls.level_of[k] < ls.level_of[j], "update {k}->{j}");
            }
        }
        // Partition.
        let total: usize = ls.levels.iter().map(Vec::len).sum();
        assert_eq!(total, 60);
        // Reference longest path over the explicit elimination DAG.
        let edges: Vec<(usize, usize)> = (0..60)
            .flat_map(|j| sym.reach(j).iter().map(move |&k| (k, j)))
            .collect();
        assert_eq!(ls.level_of, reference_longest_path(60, &edges));
    }

    #[test]
    fn balanced_partition_splits_by_cost() {
        // One heavy item: it gets a chunk of its own.
        let costs = [1, 1, 100, 1, 1, 1];
        let bounds = balanced_partition(&costs, 3);
        assert_eq!(bounds.len(), 4);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), costs.len());
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1], "boundaries must be monotone");
        }
        // The heavy item's chunk should not also absorb everything
        // after it: the split lands right after index 2.
        assert!(bounds.contains(&3), "heavy item should end a chunk");

        // Uniform costs split evenly.
        let uniform = [5u64; 12];
        let bounds = balanced_partition(&uniform, 4);
        assert_eq!(bounds, vec![0, 3, 6, 9, 12]);

        // Fewer items than parts: trailing chunks are empty.
        let bounds = balanced_partition(&[7], 3);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), 1);

        // Empty level.
        assert_eq!(balanced_partition(&[], 2), vec![0, 0, 0]);

        // All-zero costs stay valid (everything in the last chunk is
        // fine; boundaries just must be monotone and complete).
        let bounds = balanced_partition(&[0, 0, 0], 2);
        assert_eq!(bounds.len(), 3);
        assert_eq!(*bounds.last().unwrap(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn partition_rejects_zero_parts() {
        balanced_partition(&[1, 2], 0);
    }
}
