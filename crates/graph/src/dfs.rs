//! Reach-set computation on the dependence graph `DG_L`
//! (Gilbert & Peierls, 1988 — the paper's §1.1 theory).
//!
//! For a lower-triangular `L`, `DG_L` has an edge `j -> i` for every
//! off-diagonal nonzero `L[i,j]`. The nonzero pattern of the solution of
//! `Lx = b` is `Reach_L(beta)` with `beta = {i : b_i != 0}`. The DFS
//! emits the reach set in **topological order**, so executing columns in
//! that order satisfies all dependences — the property VI-Prune and loop
//! peeling rely on for correctness (§2.4).
//!
//! Complexity: O(|b| + number of edges traversed), i.e. proportional to
//! the flops of the pruned solve, *not* O(n).

use sympiler_sparse::CscMatrix;

/// Reusable workspace for [`reach_into`], so repeated inspections (or a
/// library-style solver calling reach per RHS) allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct ReachWorkspace {
    marked: Vec<bool>,
    /// DFS stack of (node, next entry offset within its column).
    stack: Vec<(usize, usize)>,
}

impl ReachWorkspace {
    pub fn new(n: usize) -> Self {
        Self {
            marked: vec![false; n],
            stack: Vec::with_capacity(64),
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.marked.len() < n {
            self.marked.resize(n, false);
        }
    }
}

/// Compute `Reach_L(beta)` in topological order. Allocating convenience
/// wrapper around [`reach_into`].
///
/// # Panics
/// If `l` is not square or `beta` contains an index `>= n`.
pub fn reach(l: &CscMatrix, beta: &[usize]) -> Vec<usize> {
    let mut ws = ReachWorkspace::new(l.n_cols());
    let mut out = Vec::new();
    reach_into(l, beta, &mut ws, &mut out);
    out
}

/// Compute `Reach_L(beta)` into `out` (cleared first), reusing `ws`.
///
/// `out` is ordered so that for every edge `j -> i` inside the reach set,
/// `j` appears before `i` (topological / execution order).
pub fn reach_into(l: &CscMatrix, beta: &[usize], ws: &mut ReachWorkspace, out: &mut Vec<usize>) {
    assert!(l.is_square(), "reach requires a square matrix");
    reach_adjacency_into(l.n_cols(), beta, |j| l.col_rows(j), ws, out);
}

/// The reach computation over an arbitrary adjacency function: the
/// traversal behind [`reach_into`], shared with the symbolic-LU
/// inspectors, where the dependence graph is the *growing* `L` rather
/// than a finished [`CscMatrix`] ([`mod@crate::lu_symbolic`] and the
/// runtime GPLU baseline both drive this with closures over their
/// partial factors).
///
/// `edges(v)` returns the successors of node `v`; self-loops are
/// skipped. `out` receives the reach set of `beta` in topological
/// (execution) order, and `ws` is reset afterwards by touching only
/// the visited nodes.
///
/// # Panics
/// If `beta` contains an index `>= n`.
pub fn reach_adjacency_into<'g>(
    n: usize,
    beta: &[usize],
    edges: impl Fn(usize) -> &'g [usize],
    ws: &mut ReachWorkspace,
    out: &mut Vec<usize>,
) {
    ws.ensure(n);
    out.clear();
    // Post-order DFS: a node is emitted after all nodes it reaches, so
    // reversing at the end yields topological order.
    for &b in beta {
        assert!(b < n, "beta index {b} out of range {n}");
        if ws.marked[b] {
            continue;
        }
        ws.stack.clear();
        ws.marked[b] = true;
        ws.stack.push((b, 0));
        while let Some(&(j, off)) = ws.stack.last() {
            let succ = edges(j);
            // Descend into the first unmarked successor, if any.
            let mut k = off;
            let mut next = None;
            while k < succ.len() {
                let i = succ[k];
                k += 1;
                if i != j && !ws.marked[i] {
                    next = Some(i);
                    break;
                }
            }
            let top = ws.stack.len() - 1;
            ws.stack[top].1 = k;
            match next {
                Some(i) => {
                    ws.marked[i] = true;
                    ws.stack.push((i, 0));
                }
                None => {
                    out.push(j);
                    ws.stack.pop();
                }
            }
        }
    }
    // Clear marks for reuse (touch only visited nodes).
    for &j in out.iter() {
        ws.marked[j] = false;
    }
    out.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen::random_lower_triangular;
    use sympiler_sparse::CscMatrix;

    /// The 10x10 lower-triangular matrix of the paper's Figure 1a,
    /// reconstructed from every constraint the paper states about it:
    /// beta = {1, 6} gives Reach = {1,6,7,8,9,10} in topological order
    /// 1,6,7,8,9,10; columns 1 and 8 (1-based) have column count 3 and
    /// are the two peeled iterations of Figure 1e; the diagonal of
    /// column 8 sits at `Lx[20]` (so columns 1..7 hold 20 entries); the
    /// remaining reach columns have column count <= 2; and the per-row
    /// off-diagonal counts match the figure (rows 3,5,7: one; row 8:
    /// two; row 10: three; rows 6, 9: four).
    pub fn fig1_l() -> CscMatrix {
        let edges_1based: &[(usize, usize)] = &[
            (6, 1),
            (10, 1),
            (3, 2),
            (5, 2),
            (6, 3),
            (9, 3),
            (6, 4),
            (8, 4),
            (9, 4),
            (6, 5),
            (9, 5),
            (7, 6),
            (8, 7),
            (9, 8),
            (10, 8),
            (10, 9),
        ];
        let mut t = sympiler_sparse::TripletMatrix::new(10, 10);
        for j in 0..10 {
            t.push(j, j, 2.0);
        }
        for &(i, j) in edges_1based {
            t.push(i - 1, j - 1, -0.1);
        }
        t.to_csc().unwrap()
    }

    /// Brute-force reachability for cross-checking.
    fn brute_reach(l: &CscMatrix, beta: &[usize]) -> std::collections::BTreeSet<usize> {
        let mut seen = std::collections::BTreeSet::new();
        let mut queue: Vec<usize> = beta.to_vec();
        while let Some(j) = queue.pop() {
            if !seen.insert(j) {
                continue;
            }
            for &i in &l.col_rows(j)[1..] {
                queue.push(i);
            }
        }
        seen
    }

    fn assert_topological(l: &CscMatrix, order: &[usize]) {
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(k, &j)| (j, k)).collect();
        for &j in order {
            for &i in &l.col_rows(j)[1..] {
                if let Some(&pi) = pos.get(&i) {
                    assert!(
                        pos[&j] < pi,
                        "edge {j}->{i} violates topological order {order:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fig1_reach_set_matches_paper() {
        // beta = {1, 6} (1-based) = {0, 5}; Reach = {1,6,7,8,9,10} 1-based.
        let l = fig1_l();
        let r = reach(&l, &[0, 5]);
        let set: std::collections::BTreeSet<usize> = r.iter().copied().collect();
        let expect: std::collections::BTreeSet<usize> = [0, 5, 6, 7, 8, 9].into_iter().collect();
        assert_eq!(set, expect, "paper §1.1: Reach_L(beta) = {{1,6,7,8,9,10}}");
        assert_topological(&l, &r);
    }

    #[test]
    fn fig1_inspector_order_is_valid() {
        // §2.2 quotes the inspector output as {6, 1, 7, 8, 9, 10}
        // (1-based) — one valid topological order. Ours may differ in
        // tie-breaking but must be topologically valid and equal as a set.
        let l = fig1_l();
        let r = reach(&l, &[5, 0]);
        assert_topological(&l, &r);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn empty_beta_reaches_nothing() {
        let l = fig1_l();
        assert!(reach(&l, &[]).is_empty());
    }

    #[test]
    fn full_beta_reaches_everything_in_order() {
        let l = fig1_l();
        let beta: Vec<usize> = (0..10).collect();
        let r = reach(&l, &beta);
        assert_eq!(r.len(), 10);
        assert_topological(&l, &r);
    }

    #[test]
    fn diagonal_matrix_reach_is_beta() {
        let l = CscMatrix::identity(5);
        let r = reach(&l, &[3, 1]);
        let set: std::collections::BTreeSet<usize> = r.iter().copied().collect();
        assert_eq!(set, [1, 3].into_iter().collect());
    }

    #[test]
    fn chain_matrix_reaches_suffix() {
        // Bidiagonal: each column feeds the next; reach of {k} = {k..n}.
        let n = 8;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 1.0);
            if j + 1 < n {
                t.push(j + 1, j, -1.0);
            }
        }
        let l = t.to_csc().unwrap();
        let r = reach(&l, &[3]);
        assert_eq!(r, vec![3, 4, 5, 6, 7], "chain reach must be ordered suffix");
    }

    #[test]
    fn random_matches_brute_force() {
        for seed in 0..20u64 {
            let l = random_lower_triangular(60, 3, seed);
            let beta: Vec<usize> = (0..60)
                .filter(|k| (k * 7 + seed as usize).is_multiple_of(13))
                .collect();
            let r = reach(&l, &beta);
            let set: std::collections::BTreeSet<usize> = r.iter().copied().collect();
            assert_eq!(set, brute_reach(&l, &beta), "seed {seed}");
            assert_topological(&l, &r);
            assert_eq!(r.len(), set.len(), "no duplicates");
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let l = fig1_l();
        let mut ws = ReachWorkspace::new(10);
        let mut out = Vec::new();
        reach_into(&l, &[0, 5], &mut ws, &mut out);
        let first = out.clone();
        reach_into(&l, &[0, 5], &mut ws, &mut out);
        assert_eq!(first, out, "workspace must be reset between calls");
        // And a different query is unaffected by the previous one.
        reach_into(&l, &[2], &mut ws, &mut out);
        let set: std::collections::BTreeSet<usize> = out.iter().copied().collect();
        assert_eq!(set, brute_reach(&l, &[2]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_beta() {
        reach(&fig1_l(), &[10]);
    }
}
