//! Dense Cholesky factorization (LAPACK `dpotrf`, lower variant) —
//! the diagonal-block kernel of supernodal sparse Cholesky (§2.3.2:
//! "applying VS-Block to Cholesky factorization requires dense Cholesky
//! factorization on the diagonal segment of the blocks").

/// In-place lower Cholesky of the leading `n x n` block of a
/// column-major buffer with leading dimension `lda`. On success the
/// lower triangle holds `L` with `A = L L^T`; the strict upper triangle
/// is untouched.
///
/// Returns `Err(j)` if pivot `j` is not strictly positive (matrix not
/// positive definite), matching LAPACK's `info` semantics.
pub fn potrf_lower(n: usize, a: &mut [f64], lda: usize) -> Result<(), usize> {
    assert!(lda >= n, "leading dimension too small");
    assert!(a.len() >= lda * n.saturating_sub(1) + n, "buffer too small");
    // Left-looking unblocked: good for the small/medium diagonal blocks
    // supernodal codes produce (typically n <= a few hundred).
    for j in 0..n {
        // a[j..n, j] -= A[j..n, 0..j] * A[j, 0..j]^T
        for k in 0..j {
            let ajk = a[k * lda + j];
            if ajk == 0.0 {
                continue;
            }
            let (head, tail) = a.split_at_mut(j * lda);
            let src = &head[k * lda + j..k * lda + n];
            let dst = &mut tail[j..n];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d -= ajk * s;
            }
        }
        let diag = a[j * lda + j];
        if diag <= 0.0 || !diag.is_finite() {
            return Err(j);
        }
        let root = diag.sqrt();
        let inv = 1.0 / root;
        let col = &mut a[j * lda + j..j * lda + n];
        col[0] = root;
        for v in &mut col[1..] {
            *v *= inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMat;

    fn reconstruct_lower(n: usize, a: &[f64], lda: usize) -> DenseMat {
        // L L^T from the lower triangle of `a`.
        let mut l = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l.set(i, j, a[j * lda + i]);
            }
        }
        l.matmul(&l.transpose())
    }

    #[test]
    fn factors_identity() {
        let n = 4;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        potrf_lower(n, &mut a, n).unwrap();
        for i in 0..n {
            assert_eq!(a[i * n + i], 1.0);
        }
    }

    #[test]
    fn factors_random_spd_sizes() {
        for n in [1usize, 2, 3, 5, 8, 16, 33] {
            let m = DenseMat::random_spd(n, n as u64);
            let mut a = m.as_slice().to_vec();
            potrf_lower(n, &mut a, n).unwrap_or_else(|j| panic!("n={n} failed at {j}"));
            let rec = reconstruct_lower(n, &a, n);
            assert!(
                rec.max_abs_diff(&m) < 1e-9 * (n as f64),
                "n={n}: reconstruction error {}",
                rec.max_abs_diff(&m)
            );
        }
    }

    #[test]
    fn respects_leading_dimension() {
        // Factor a 3x3 block living inside a 5-row buffer.
        let n = 3;
        let lda = 5;
        let m = DenseMat::random_spd(n, 7);
        let mut a = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in 0..n {
                a[j * lda + i] = m.get(i, j);
            }
        }
        // Rows 3..5 of each column are padding; set to sentinels.
        for j in 0..n {
            for i in n..lda {
                a[j * lda + i] = -777.0;
            }
        }
        potrf_lower(n, &mut a, lda).unwrap();
        let rec = reconstruct_lower(n, &a, lda);
        assert!(rec.max_abs_diff(&m) < 1e-10);
        for j in 0..n {
            for i in n..lda {
                assert_eq!(a[j * lda + i], -777.0, "padding must be untouched");
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        // [[1, 2], [2, 1]] has a negative eigenvalue.
        let mut a = vec![1.0, 2.0, 2.0, 1.0];
        assert_eq!(potrf_lower(2, &mut a, 2), Err(1));
    }

    #[test]
    fn rejects_zero_pivot_immediately() {
        let mut a = vec![0.0, 0.0, 0.0, 1.0];
        assert_eq!(potrf_lower(2, &mut a, 2), Err(0));
    }

    #[test]
    fn known_2x2() {
        // A = [[4, 2], [2, 5]] -> L = [[2, 0], [1, 2]]
        let mut a = vec![4.0, 2.0, 2.0, 5.0];
        potrf_lower(2, &mut a, 2).unwrap();
        assert!((a[0] - 2.0).abs() < 1e-15);
        assert!((a[1] - 1.0).abs() < 1e-15);
        assert!((a[3] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn empty_matrix_is_ok() {
        let mut a: Vec<f64> = vec![];
        assert!(potrf_lower(0, &mut a, 0).is_ok());
    }
}
