//! Dense LU factorization **without pivoting** (a GETRF variant) — the
//! diagonal-block kernel of supernodal sparse LU, the VS-Block analogue
//! of [`crate::potrf`] for the unsymmetric pipeline: once panel columns
//! of `L` share one sub-diagonal pattern, the panel's diagonal block is
//! a dense square that factors with straight dense loops.
//!
//! Pivoting is deliberately absent: the sparse LU plan's contract is
//! *static diagonal pivoting* (the compiled pattern fixes every pivot
//! slot), so the dense mini-kernel must not reorder rows either —
//! otherwise the panel's compile-time row maps would be invalidated.

/// In-place unpivoted LU of the leading `n x n` block of a column-major
/// buffer with leading dimension `lda`: on return the strict lower
/// triangle holds the multipliers of unit-lower `L`, the upper triangle
/// (diagonal included) holds `U`, with `A = L U`. Rows `n..lda` of each
/// column are untouched.
///
/// Returns `Err(j)` for the **first** column whose pivot `U[j,j]` is
/// exactly zero — but keeps factoring: like the sparse plan's
/// per-column kernel, every value is still written (division by zero
/// is IEEE-defined), so a caller running panels in parallel can record
/// the error and keep going without a consensus protocol.
pub fn getrf_nopiv(n: usize, a: &mut [f64], lda: usize) -> Result<(), usize> {
    let mut perturbed = Vec::new();
    getrf_nopiv_perturbed(n, a, lda, 0.0, &mut perturbed)
}

/// [`getrf_nopiv`] with static pivot perturbation: a pivot whose
/// magnitude falls below `thresh` is replaced in place by `±thresh`
/// (sign preserved, `+thresh` for an exact zero) and its block-local
/// column index is appended to `perturbed`; factoring continues with
/// the replaced value. With `thresh == 0.0` the guard never fires
/// (strict `<` on a non-negative magnitude), `perturbed` stays
/// untouched, and the result is bitwise identical to [`getrf_nopiv`].
pub fn getrf_nopiv_perturbed(
    n: usize,
    a: &mut [f64],
    lda: usize,
    thresh: f64,
    perturbed: &mut Vec<usize>,
) -> Result<(), usize> {
    assert!(lda >= n, "leading dimension too small");
    assert!(
        n == 0 || a.len() >= lda * (n - 1) + n,
        "buffer too small for {n}x{n} with lda {lda}"
    );
    let mut first_bad = None;
    // Right-looking: eliminate column k, rank-1 update the trailing
    // block. Good locality for the small/medium diagonal blocks sparse
    // panels produce.
    for k in 0..n {
        let mut pivot = a[k * lda + k];
        if pivot.abs() < thresh {
            pivot = if pivot.is_sign_negative() {
                -thresh
            } else {
                thresh
            };
            a[k * lda + k] = pivot;
            perturbed.push(k);
        } else if pivot == 0.0 && first_bad.is_none() {
            first_bad = Some(k);
        }
        let inv = 1.0 / pivot;
        for v in &mut a[k * lda + k + 1..k * lda + n] {
            *v *= inv;
        }
        // Trailing update: A[k+1.., k+1..] -= L[k+1.., k] * U[k, k+1..].
        for j in k + 1..n {
            let ukj = a[j * lda + k];
            if ukj == 0.0 {
                continue;
            }
            let (head, tail) = a.split_at_mut(j * lda);
            let lcol = &head[k * lda + k + 1..k * lda + n];
            let dst = &mut tail[k + 1..n];
            for (d, &s) in dst.iter_mut().zip(lcol) {
                *d -= ukj * s;
            }
        }
    }
    match first_bad {
        Some(k) => Err(k),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMat;

    fn random_dd(n: usize, seed: u64) -> DenseMat {
        // Diagonally dominant, generally unsymmetric: safe for
        // unpivoted LU.
        let mut s = seed;
        let mut m = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
                m.set(i, j, ((s >> 40) as f64) / 1e7 - 0.8);
            }
        }
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m.get(i, j).abs()).sum();
            m.set(i, i, row_sum + 1.0);
        }
        m
    }

    fn reconstruct(n: usize, a: &[f64], lda: usize) -> DenseMat {
        let mut l = DenseMat::zeros(n, n);
        let mut u = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let v = a[j * lda + i];
                match i.cmp(&j) {
                    std::cmp::Ordering::Greater => l.set(i, j, v),
                    _ => u.set(i, j, v),
                }
            }
            l.set(j, j, 1.0);
        }
        l.matmul(&u)
    }

    #[test]
    fn factors_random_sizes() {
        for n in [1usize, 2, 3, 5, 8, 16, 33] {
            let m = random_dd(n, n as u64 * 7 + 1);
            let mut a = m.as_slice().to_vec();
            getrf_nopiv(n, &mut a, n).unwrap_or_else(|j| panic!("n={n} zero pivot at {j}"));
            let rec = reconstruct(n, &a, n);
            assert!(
                rec.max_abs_diff(&m) < 1e-9 * (n as f64 + 1.0),
                "n={n}: reconstruction error {}",
                rec.max_abs_diff(&m)
            );
        }
    }

    #[test]
    fn known_2x2() {
        // A = [[2, 6], [1, 4]] -> L = [[1,0],[0.5,1]], U = [[2,6],[0,1]].
        let mut a = vec![2.0, 1.0, 6.0, 4.0];
        getrf_nopiv(2, &mut a, 2).unwrap();
        assert_eq!(a, vec![2.0, 0.5, 6.0, 1.0]);
    }

    #[test]
    fn respects_leading_dimension() {
        // Factor a 3x3 block inside a 6-row buffer: padding rows must
        // be untouched (the supernodal trapezoid case, lda = panel
        // rows > block order).
        let n = 3;
        let lda = 6;
        let m = random_dd(n, 42);
        let mut a = vec![-777.0; lda * n];
        for j in 0..n {
            for i in 0..n {
                a[j * lda + i] = m.get(i, j);
            }
        }
        getrf_nopiv(n, &mut a, lda).unwrap();
        let rec = reconstruct(n, &a, lda);
        assert!(rec.max_abs_diff(&m) < 1e-10);
        for j in 0..n {
            for i in n..lda {
                assert_eq!(a[j * lda + i], -777.0, "padding must be untouched");
            }
        }
        // And the padded factorization matches the tight one exactly.
        let mut tight = m.as_slice().to_vec();
        getrf_nopiv(n, &mut tight, n).unwrap();
        for j in 0..n {
            for i in 0..n {
                assert_eq!(a[j * lda + i].to_bits(), tight[j * n + i].to_bits());
            }
        }
    }

    #[test]
    fn reports_first_zero_pivot_and_keeps_writing() {
        // Column 1's pivot cancels exactly: A = [[1, 2], [1, 2]].
        let mut a = vec![1.0, 1.0, 2.0, 2.0];
        assert_eq!(getrf_nopiv(2, &mut a, 2), Err(1));
        // The multiplier column was still written.
        assert_eq!(a[1], 1.0);
        // A structurally zero leading pivot reports column 0 even
        // though later pivots also break.
        let mut b = vec![0.0, 1.0, 1.0, 0.0];
        assert_eq!(getrf_nopiv(2, &mut b, 2), Err(0));
    }

    #[test]
    fn matches_potrf_on_spd_input() {
        // On an SPD matrix, LU = L D^{1/2} (D^{1/2} L)^T-ish; concretely
        // the U diagonal equals the squared Cholesky diagonal.
        let n = 6;
        let m = DenseMat::random_spd(n, 9);
        let mut lu = m.as_slice().to_vec();
        getrf_nopiv(n, &mut lu, n).unwrap();
        let mut ch = m.as_slice().to_vec();
        crate::potrf::potrf_lower(n, &mut ch, n).unwrap();
        for j in 0..n {
            let d = ch[j * n + j];
            assert!((lu[j * n + j] - d * d).abs() < 1e-9 * d * d);
        }
    }

    #[test]
    fn empty_matrix_is_ok() {
        let mut a: Vec<f64> = vec![];
        assert!(getrf_nopiv(0, &mut a, 0).is_ok());
    }
}
