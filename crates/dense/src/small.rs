//! Specialized fixed-size kernels — what Sympiler "generates" for small
//! dense sub-blocks.
//!
//! The paper (§4.2): "Since BLAS routines are not well-optimized for
//! small dense kernels they often do not perform well for the small
//! blocks produced when applying VS-Block to sparse codes. ... Sympiler
//! has the luxury to generate code for its dense sub-kernels."
//!
//! Here the "generated" kernels are monomorphized, fully unrolled Rust
//! functions for widths 1..=4 plus width-dispatched drivers. The
//! executable plan (sympiler-core) selects them at *inspection* time,
//! so the numeric phase pays no dispatch cost per element.

/// Fully unrolled lower Cholesky for n in 1..=4. Falls back to the
/// generic kernel above this size. Returns `Err(j)` on a non-positive
/// pivot.
#[inline]
pub fn potrf_small(n: usize, a: &mut [f64], lda: usize) -> Result<(), usize> {
    match n {
        0 => Ok(()),
        1 => {
            let d = a[0];
            if d <= 0.0 || !d.is_finite() {
                return Err(0);
            }
            a[0] = d.sqrt();
            Ok(())
        }
        2 => {
            let d0 = a[0];
            if d0 <= 0.0 || !d0.is_finite() {
                return Err(0);
            }
            let l00 = d0.sqrt();
            let l10 = a[1] / l00;
            let d1 = a[lda + 1] - l10 * l10;
            if d1 <= 0.0 || !d1.is_finite() {
                return Err(1);
            }
            a[0] = l00;
            a[1] = l10;
            a[lda + 1] = d1.sqrt();
            Ok(())
        }
        3 => {
            let d0 = a[0];
            if d0 <= 0.0 || !d0.is_finite() {
                return Err(0);
            }
            let l00 = d0.sqrt();
            let inv0 = 1.0 / l00;
            let l10 = a[1] * inv0;
            let l20 = a[2] * inv0;
            let d1 = a[lda + 1] - l10 * l10;
            if d1 <= 0.0 || !d1.is_finite() {
                return Err(1);
            }
            let l11 = d1.sqrt();
            let l21 = (a[lda + 2] - l20 * l10) / l11;
            let d2 = a[2 * lda + 2] - l20 * l20 - l21 * l21;
            if d2 <= 0.0 || !d2.is_finite() {
                return Err(2);
            }
            a[0] = l00;
            a[1] = l10;
            a[2] = l20;
            a[lda + 1] = l11;
            a[lda + 2] = l21;
            a[2 * lda + 2] = d2.sqrt();
            Ok(())
        }
        4 => {
            // Unrolled 4x4 via two nested 2x2 steps would be long; a
            // tight fixed-trip-count loop lets LLVM fully unroll.
            potrf_fixed::<4>(a, lda)
        }
        _ => crate::potrf::potrf_lower(n, a, lda),
    }
}

/// Compile-time-sized Cholesky; `N` is a const so LLVM unrolls all
/// loops and keeps everything in registers.
#[inline]
pub fn potrf_fixed<const N: usize>(a: &mut [f64], lda: usize) -> Result<(), usize> {
    for j in 0..N {
        let mut d = a[j * lda + j];
        for k in 0..j {
            let v = a[k * lda + j];
            d -= v * v;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(j);
        }
        let root = d.sqrt();
        a[j * lda + j] = root;
        let inv = 1.0 / root;
        for i in j + 1..N {
            let mut s = a[j * lda + i];
            for k in 0..j {
                s -= a[k * lda + i] * a[k * lda + j];
            }
            a[j * lda + i] = s * inv;
        }
    }
    Ok(())
}

/// Unrolled forward solve for n in 1..=4 (falls back above).
#[inline]
pub fn trsv_small(n: usize, l: &[f64], lda: usize, x: &mut [f64]) {
    match n {
        0 => {}
        1 => x[0] /= l[0],
        2 => {
            let x0 = x[0] / l[0];
            x[0] = x0;
            x[1] = (x[1] - l[1] * x0) / l[lda + 1];
        }
        3 => {
            let x0 = x[0] / l[0];
            let x1 = (x[1] - l[1] * x0) / l[lda + 1];
            let x2 = (x[2] - l[2] * x0 - l[lda + 2] * x1) / l[2 * lda + 2];
            x[0] = x0;
            x[1] = x1;
            x[2] = x2;
        }
        4 => {
            let x0 = x[0] / l[0];
            let x1 = (x[1] - l[1] * x0) / l[lda + 1];
            let x2 = (x[2] - l[2] * x0 - l[lda + 2] * x1) / l[2 * lda + 2];
            let x3 = (x[3] - l[3] * x0 - l[lda + 3] * x1 - l[2 * lda + 3] * x2) / l[3 * lda + 3];
            x[0] = x0;
            x[1] = x1;
            x[2] = x2;
            x[3] = x3;
        }
        _ => crate::trsv::trsv_lower(n, l, lda, x),
    }
}

/// Rank-1/2/3/4 panel update `y[0..m] -= A[0..m, 0..k] * x[0..k]` with
/// the rank fully unrolled — the specialized gather-update of the
/// Sympiler triangular-solve plan (supernode width is fixed per block
/// at inspection time).
#[inline]
pub fn gemv_sub_small(m: usize, k: usize, a: &[f64], lda: usize, x: &[f64], y: &mut [f64]) {
    let y = &mut y[..m];
    match k {
        0 => {}
        1 => {
            let x0 = x[0];
            for (yi, &a0) in y.iter_mut().zip(&a[..m]) {
                *yi -= a0 * x0;
            }
        }
        2 => {
            let (x0, x1) = (x[0], x[1]);
            let a0 = &a[..m];
            let a1 = &a[lda..lda + m];
            for ((yi, &v0), &v1) in y.iter_mut().zip(a0).zip(a1) {
                *yi -= v0 * x0 + v1 * x1;
            }
        }
        3 => {
            let (x0, x1, x2) = (x[0], x[1], x[2]);
            let a0 = &a[..m];
            let a1 = &a[lda..lda + m];
            let a2 = &a[2 * lda..2 * lda + m];
            for (((yi, &v0), &v1), &v2) in y.iter_mut().zip(a0).zip(a1).zip(a2) {
                *yi -= v0 * x0 + v1 * x1 + v2 * x2;
            }
        }
        4 => {
            let (x0, x1, x2, x3) = (x[0], x[1], x[2], x[3]);
            let a0 = &a[..m];
            let a1 = &a[lda..lda + m];
            let a2 = &a[2 * lda..2 * lda + m];
            let a3 = &a[3 * lda..3 * lda + m];
            for ((((yi, &v0), &v1), &v2), &v3) in y.iter_mut().zip(a0).zip(a1).zip(a2).zip(a3) {
                *yi -= v0 * x0 + v1 * x1 + v2 * x2 + v3 * x3;
            }
        }
        _ => crate::gemm::gemv_sub(m, k, a, lda, x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMat;
    use crate::potrf::potrf_lower;
    use crate::trsv::trsv_lower;

    #[test]
    fn potrf_small_matches_generic() {
        for n in 1..=6usize {
            let m = DenseMat::random_spd(n, 100 + n as u64);
            let mut a1 = m.as_slice().to_vec();
            let mut a2 = a1.clone();
            potrf_small(n, &mut a1, n).unwrap();
            potrf_lower(n, &mut a2, n).unwrap();
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (a1[j * n + i] - a2[j * n + i]).abs() < 1e-12,
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn potrf_small_rejects_indefinite() {
        let mut a1 = vec![1.0, 2.0, 2.0, 1.0];
        assert_eq!(potrf_small(2, &mut a1, 2), Err(1));
        let mut a2 = vec![-1.0];
        assert_eq!(potrf_small(1, &mut a2, 1), Err(0));
        let mut a3 = DenseMat::random_spd(3, 5).as_slice().to_vec();
        a3[8] = -100.0; // poison the (2,2) entry
        assert_eq!(potrf_small(3, &mut a3, 3), Err(2));
    }

    #[test]
    fn trsv_small_matches_generic() {
        for n in 1..=6usize {
            let m = DenseMat::random_spd(n, 50 + n as u64);
            let mut l = m.as_slice().to_vec();
            potrf_lower(n, &mut l, n).unwrap();
            let b: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let mut x1 = b.clone();
            let mut x2 = b;
            trsv_small(n, &l, n, &mut x1);
            trsv_lower(n, &l, n, &mut x2);
            for (p, q) in x1.iter().zip(&x2) {
                assert!((p - q).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn gemv_small_matches_generic() {
        for k in 0..=6usize {
            let m = 7;
            let a = DenseMat::random_spd(7, 7 + k as u64);
            let x: Vec<f64> = (0..k).map(|i| 1.0 - i as f64).collect();
            let mut y1 = vec![3.0; m];
            let mut y2 = vec![3.0; m];
            gemv_sub_small(m, k, a.as_slice(), 7, &x, &mut y1);
            crate::gemm::gemv_sub(m, k, a.as_slice(), 7, &x, &mut y2);
            for (p, q) in y1.iter().zip(&y2) {
                assert!((p - q).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn potrf_fixed_matches_generic() {
        let m = DenseMat::random_spd(4, 9);
        let mut a1 = m.as_slice().to_vec();
        let mut a2 = a1.clone();
        potrf_fixed::<4>(&mut a1, 4).unwrap();
        potrf_lower(4, &mut a2, 4).unwrap();
        for j in 0..4 {
            for i in j..4 {
                assert!((a1[j * 4 + i] - a2[j * 4 + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn respects_lda() {
        let n = 3;
        let lda = 5;
        let m = DenseMat::random_spd(n, 21);
        let mut padded = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in j..n {
                padded[j * lda + i] = m.get(i, j);
            }
            // (symmetric upper needed by nothing; leave NaN)
        }
        // potrf_small reads only the lower triangle.
        potrf_small(n, &mut padded, lda).unwrap();
        let mut compact = m.as_slice().to_vec();
        potrf_lower(n, &mut compact, n).unwrap();
        for j in 0..n {
            for i in j..n {
                assert!((padded[j * lda + i] - compact[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
