//! Dense triangular solves with multiple right-hand sides (BLAS
//! `dtrsm` variants), the off-diagonal panel kernels of the supernodal
//! sparse factorizations: after the diagonal block of a supernode is
//! factored, the sub-diagonal panel `B` is overwritten with a
//! triangular-inverse product ("the off-diagonal segments of the
//! blocks must be updated using a set of dense triangular solves",
//! §2.3.2).
//!
//! Three variants, one per supernodal use:
//!
//! * [`trsm_right_lower_trans`] — `B := B * L^{-T}` (Cholesky panels,
//!   `L` from [`crate::potrf`]);
//! * [`trsm_right_upper`] — `B := B * U^{-1}` (LU panels, `U` from
//!   [`crate::getrf`]: the sub-diagonal rows of an LU panel become
//!   columns of the `L` factor after dividing out the panel's `U`);
//! * [`trsm_right_lower_trans_unit`] — `B := B * L^{-T}` with an
//!   **implicit unit diagonal** (LU source-panel solves: the unit-lower
//!   diagonal block produced by [`crate::getrf`] stores `U` values on
//!   the diagonal, so the kernel must read only the strict lower part).
//!
//! All buffers are column-major with explicit leading dimensions, and
//! every kernel tolerates padded strides (`lda`/`ldb` larger than the
//! live row count) — the supernodal trapezoid case, where the leading
//! dimension is the panel's total row count.

/// `B := B * L^{-T}` where `L` is the leading `n x n` lower triangle of
/// a column-major buffer (`lda`), and `B` is `m x n` column-major
/// (`ldb`). Equivalent to `dtrsm(side=R, uplo=L, trans=T, diag=N)`.
pub fn trsm_right_lower_trans(
    m: usize,
    n: usize,
    l: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    assert!(lda >= n, "lda too small");
    assert!(ldb >= m, "ldb too small");
    if n > 0 {
        assert!(l.len() >= lda * (n - 1) + n, "L buffer too small");
        assert!(b.len() >= ldb * (n - 1) + m, "B buffer too small");
    }
    // X L^T = B  =>  column j of X:
    //   x_j = (b_j - sum_{k<j} x_k L[j,k]) / L[j,j]
    for j in 0..n {
        let ljj = l[j * lda + j];
        for k in 0..j {
            let ljk = l[k * lda + j];
            if ljk == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * ldb);
            let xk = &head[k * ldb..k * ldb + m];
            let bj = &mut tail[..m];
            for (dst, &src) in bj.iter_mut().zip(xk) {
                *dst -= ljk * src;
            }
        }
        let inv = 1.0 / ljj;
        for v in &mut b[j * ldb..j * ldb + m] {
            *v *= inv;
        }
    }
}

/// `B := B * U^{-1}` where `U` is the leading `n x n` upper triangle of
/// a column-major buffer (`lda`), and `B` is `m x n` column-major
/// (`ldb`). Equivalent to `dtrsm(side=R, uplo=U, trans=N, diag=N)`.
///
/// This is the LU panel solve: after [`crate::getrf::getrf_nopiv`]
/// factors a supernode's diagonal block, the sub-diagonal rows of the
/// trapezoid become `L` columns via `L_sub = A_sub * U^{-1}`. A zero
/// diagonal in `U` produces IEEE infinities rather than a panic, so
/// callers that detect zero pivots upstream can keep streaming.
pub fn trsm_right_upper(m: usize, n: usize, u: &[f64], lda: usize, b: &mut [f64], ldb: usize) {
    assert!(lda >= n, "lda too small");
    assert!(ldb >= m, "ldb too small");
    if n > 0 {
        assert!(u.len() >= lda * (n - 1) + n, "U buffer too small");
        assert!(m == 0 || b.len() >= ldb * (n - 1) + m, "B buffer too small");
    }
    // X U = B  =>  column j of X:
    //   x_j = (b_j - sum_{k<j} x_k U[k,j]) / U[j,j]
    for j in 0..n {
        for k in 0..j {
            let ukj = u[j * lda + k];
            if ukj == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * ldb);
            let xk = &head[k * ldb..k * ldb + m];
            let bj = &mut tail[..m];
            for (dst, &src) in bj.iter_mut().zip(xk) {
                *dst -= ukj * src;
            }
        }
        let inv = 1.0 / u[j * lda + j];
        for v in &mut b[j * ldb..j * ldb + m] {
            *v *= inv;
        }
    }
}

/// `B := B * L^{-T}` where `L` is **unit** lower triangular: only the
/// strict lower part of the leading `n x n` block is read, so the
/// buffer's diagonal may hold anything (in the LU supernodal use it
/// holds `U` values, [`crate::getrf`] packing both factors into one
/// trapezoid). Equivalent to `dtrsm(side=R, uplo=L, trans=T, diag=U)`.
///
/// Solving on the right against `L^T` is how the supernodal LU plan
/// applies a source panel's *internal* updates to a whole block of
/// gathered accumulator values at once: with the gathered block stored
/// transposed (targets x source-columns), `Bt := Bt * L^{-T}` is
/// exactly `B := L^{-1} B` on the untransposed data.
pub fn trsm_right_lower_trans_unit(
    m: usize,
    n: usize,
    l: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    assert!(lda >= n, "lda too small");
    assert!(ldb >= m, "ldb too small");
    if n > 0 {
        assert!(l.len() >= lda * (n - 1) + n, "L buffer too small");
        assert!(m == 0 || b.len() >= ldb * (n - 1) + m, "B buffer too small");
    }
    // X L^T = B with unit diagonal:
    //   x_j = b_j - sum_{k<j} x_k L[j,k]
    for j in 0..n {
        for k in 0..j {
            let ljk = l[k * lda + j];
            if ljk == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * ldb);
            let xk = &head[k * ldb..k * ldb + m];
            let bj = &mut tail[..m];
            for (dst, &src) in bj.iter_mut().zip(xk) {
                *dst -= ljk * src;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMat;
    use crate::potrf::potrf_lower;

    /// Multiply `X * L^T` back and compare with the original `B`.
    fn check_roundtrip(m: usize, n: usize, seed: u64) {
        let spd = DenseMat::random_spd(n, seed);
        let mut l = spd.as_slice().to_vec();
        potrf_lower(n, &mut l, n).unwrap();
        // Random B.
        let mut b = DenseMat::zeros(m, n);
        let mut s = seed.wrapping_add(99);
        for j in 0..n {
            for i in 0..m {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                b.set(i, j, ((s >> 40) as f64) / 1e6 - 4.0);
            }
        }
        let mut x = b.clone();
        trsm_right_lower_trans(m, n, &l, n, x.as_mut_slice(), m);
        // Reconstruct: B' = X L^T.
        let mut lmat = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                lmat.set(i, j, l[j * n + i]);
            }
        }
        let back = x.matmul(&lmat.transpose());
        assert!(
            back.max_abs_diff(&b) < 1e-9,
            "m={m}, n={n}: {}",
            back.max_abs_diff(&b)
        );
    }

    #[test]
    fn roundtrips_various_shapes() {
        for &(m, n) in &[(1usize, 1usize), (4, 1), (1, 4), (5, 3), (8, 8), (17, 6)] {
            check_roundtrip(m, n, (m * 31 + n) as u64);
        }
    }

    #[test]
    fn identity_l_is_noop() {
        let n = 3;
        let m = 4;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            l[i * n + i] = 1.0;
        }
        let orig: Vec<f64> = (0..m * n).map(|k| k as f64).collect();
        let mut b = orig.clone();
        trsm_right_lower_trans(m, n, &l, n, &mut b, m);
        assert_eq!(b, orig);
    }

    #[test]
    fn diagonal_l_scales_columns() {
        // L = diag(2, 4): X = B * L^{-T} scales column j by 1/L[j,j].
        let l = vec![2.0, 0.0, 0.0, 4.0];
        let mut b = vec![2.0, 4.0, 8.0, 16.0]; // 2x2
        trsm_right_lower_trans(2, 2, &l, 2, &mut b, 2);
        assert_eq!(b, vec![1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn respects_ldb_padding() {
        let n = 2;
        let m = 2;
        let ldb = 5;
        let spd = DenseMat::random_spd(n, 3);
        let mut l = spd.as_slice().to_vec();
        potrf_lower(n, &mut l, n).unwrap();
        let mut b = vec![-9.0; ldb * n];
        b[0] = 1.0;
        b[1] = 2.0;
        b[ldb] = 3.0;
        b[ldb + 1] = 4.0;
        let mut compact = vec![1.0, 2.0, 3.0, 4.0];
        trsm_right_lower_trans(m, n, &l, n, &mut b, ldb);
        trsm_right_lower_trans(m, n, &l, n, &mut compact, m);
        assert!((b[0] - compact[0]).abs() < 1e-14);
        assert!((b[1] - compact[1]).abs() < 1e-14);
        assert!((b[ldb] - compact[2]).abs() < 1e-14);
        assert!((b[ldb + 1] - compact[3]).abs() < 1e-14);
        assert_eq!(b[2], -9.0, "padding untouched");
    }

    #[test]
    fn zero_size_ok() {
        let mut b: Vec<f64> = vec![];
        trsm_right_lower_trans(0, 0, &[], 0, &mut b, 0);
        trsm_right_upper(0, 0, &[], 0, &mut b, 0);
        trsm_right_lower_trans_unit(0, 0, &[], 0, &mut b, 0);
    }

    fn random_block(m: usize, n: usize, seed: u64) -> DenseMat {
        let mut out = DenseMat::zeros(m, n);
        let mut s = seed;
        for j in 0..n {
            for i in 0..m {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                out.set(i, j, ((s >> 40) as f64) / 1e6 - 4.0);
            }
        }
        out
    }

    /// Dense non-singular upper triangle inside an `lda`-strided buffer.
    fn upper_padded(n: usize, lda: usize, seed: u64) -> Vec<f64> {
        let m = random_block(n, n, seed);
        let mut u = vec![f64::NAN; if n == 0 { 0 } else { lda * (n - 1) + n }];
        for j in 0..n {
            for i in 0..=j {
                u[j * lda + i] = if i == j {
                    2.0 + m.get(i, j).abs()
                } else {
                    m.get(i, j)
                };
            }
            for i in j + 1..n {
                u[j * lda + i] = f64::NAN; // strict lower must never be read
            }
        }
        u
    }

    #[test]
    fn right_upper_roundtrips_and_respects_strides() {
        for &(m, n, lda, ldb) in &[
            (1usize, 1usize, 1usize, 1usize),
            (4, 3, 3, 4),
            (5, 4, 7, 9), // padded, the supernodal trapezoid case
            (8, 8, 8, 8),
            (2, 6, 11, 5),
        ] {
            let u = upper_padded(n, lda, (m * 13 + n) as u64);
            let bmat = random_block(m, n, 99 + lda as u64);
            let mut b = vec![-5.0; if n == 0 { 0 } else { ldb * (n - 1) + m }];
            for j in 0..n {
                for i in 0..m {
                    b[j * ldb + i] = bmat.get(i, j);
                }
            }
            trsm_right_upper(m, n, &u, lda, &mut b, ldb);
            // Reconstruct X U and compare with the original B.
            let mut umat = DenseMat::zeros(n, n);
            for j in 0..n {
                for i in 0..=j {
                    umat.set(i, j, u[j * lda + i]);
                }
            }
            let mut x = DenseMat::zeros(m, n);
            for j in 0..n {
                for i in 0..m {
                    x.set(i, j, b[j * ldb + i]);
                }
            }
            let back = x.matmul(&umat);
            assert!(
                back.max_abs_diff(&bmat) < 1e-8,
                "m={m} n={n} lda={lda} ldb={ldb}: {}",
                back.max_abs_diff(&bmat)
            );
            // Padding rows between live entries stay untouched.
            for j in 0..n.saturating_sub(1) {
                for i in m..ldb {
                    assert_eq!(b[j * ldb + i], -5.0, "padding clobbered at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn right_lower_trans_unit_ignores_diagonal_and_respects_strides() {
        for &(m, n, lda, ldb) in &[(3usize, 2usize, 2usize, 3usize), (4, 5, 9, 6), (1, 4, 4, 1)] {
            // Unit-lower L inside a padded buffer whose diagonal holds
            // garbage (the getrf packing: U values live there).
            let lmat = random_block(n, n, 7 + m as u64);
            let mut l = vec![f64::NAN; if n == 0 { 0 } else { lda * (n - 1) + n }];
            for j in 0..n {
                for i in j + 1..n {
                    l[j * lda + i] = lmat.get(i, j);
                }
                l[j * lda + j] = f64::NAN; // must never be read
            }
            let bmat = random_block(m, n, 31 + n as u64);
            let mut b = vec![-5.0; if n == 0 { 0 } else { ldb * (n - 1) + m }];
            for j in 0..n {
                for i in 0..m {
                    b[j * ldb + i] = bmat.get(i, j);
                }
            }
            trsm_right_lower_trans_unit(m, n, &l, lda, &mut b, ldb);
            // Reconstruct X L^T (unit diagonal) and compare with B.
            let mut lt = DenseMat::zeros(n, n);
            for j in 0..n {
                lt.set(j, j, 1.0);
                for i in j + 1..n {
                    lt.set(i, j, lmat.get(i, j));
                }
            }
            let mut x = DenseMat::zeros(m, n);
            for j in 0..n {
                for i in 0..m {
                    x.set(i, j, b[j * ldb + i]);
                }
            }
            let back = x.matmul(&lt.transpose());
            assert!(
                back.max_abs_diff(&bmat) < 1e-9,
                "m={m} n={n} lda={lda} ldb={ldb}"
            );
            for j in 0..n.saturating_sub(1) {
                for i in m..ldb {
                    assert_eq!(b[j * ldb + i], -5.0, "padding clobbered");
                }
            }
        }
    }

    #[test]
    fn unit_variant_matches_scalar_forward_elimination() {
        // Bt := Bt * L^{-T} on transposed storage must equal the scalar
        // forward elimination x[j] -= L[j,k] x[k] on each untransposed
        // column — the exact substitution the supernodal LU plan makes.
        let (v, w) = (4usize, 3usize);
        let lmat = random_block(v, v, 17);
        let mut l = vec![0.0; v * v];
        for j in 0..v {
            for i in j + 1..v {
                l[j * v + i] = lmat.get(i, j);
            }
            l[j * v + j] = 1234.5; // garbage diagonal, must be ignored
        }
        let b0 = random_block(v, w, 23);
        // Scalar reference: per column c, forward-eliminate.
        let mut reference = b0.clone();
        for c in 0..w {
            for k in 0..v {
                let xk = reference.get(k, c);
                for i in k + 1..v {
                    let val = reference.get(i, c) - l[k * v + i] * xk;
                    reference.set(i, c, val);
                }
            }
        }
        // Kernel on the transposed block.
        let mut bt = vec![0.0; w * v];
        for k in 0..v {
            for c in 0..w {
                bt[k * w + c] = b0.get(k, c);
            }
        }
        trsm_right_lower_trans_unit(w, v, &l, v, &mut bt, w);
        for k in 0..v {
            for c in 0..w {
                assert!(
                    (bt[k * w + c] - reference.get(k, c)).abs() < 1e-12,
                    "({k},{c})"
                );
            }
        }
    }
}
