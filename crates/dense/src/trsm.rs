//! Dense triangular solve with multiple right-hand sides (BLAS `dtrsm`),
//! the off-diagonal panel kernel of supernodal Cholesky: after the
//! diagonal block of a supernode is factored, the sub-diagonal panel `B`
//! is overwritten with `B * L^{-T}` ("the off-diagonal segments of the
//! blocks must be updated using a set of dense triangular solves",
//! §2.3.2).

/// `B := B * L^{-T}` where `L` is the leading `n x n` lower triangle of
/// a column-major buffer (`lda`), and `B` is `m x n` column-major
/// (`ldb`). Equivalent to `dtrsm(side=R, uplo=L, trans=T, diag=N)`.
pub fn trsm_right_lower_trans(
    m: usize,
    n: usize,
    l: &[f64],
    lda: usize,
    b: &mut [f64],
    ldb: usize,
) {
    assert!(lda >= n, "lda too small");
    assert!(ldb >= m, "ldb too small");
    if n > 0 {
        assert!(l.len() >= lda * (n - 1) + n, "L buffer too small");
        assert!(b.len() >= ldb * (n - 1) + m, "B buffer too small");
    }
    // X L^T = B  =>  column j of X:
    //   x_j = (b_j - sum_{k<j} x_k L[j,k]) / L[j,j]
    for j in 0..n {
        let ljj = l[j * lda + j];
        for k in 0..j {
            let ljk = l[k * lda + j];
            if ljk == 0.0 {
                continue;
            }
            let (head, tail) = b.split_at_mut(j * ldb);
            let xk = &head[k * ldb..k * ldb + m];
            let bj = &mut tail[..m];
            for (dst, &src) in bj.iter_mut().zip(xk) {
                *dst -= ljk * src;
            }
        }
        let inv = 1.0 / ljj;
        for v in &mut b[j * ldb..j * ldb + m] {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMat;
    use crate::potrf::potrf_lower;

    /// Multiply `X * L^T` back and compare with the original `B`.
    fn check_roundtrip(m: usize, n: usize, seed: u64) {
        let spd = DenseMat::random_spd(n, seed);
        let mut l = spd.as_slice().to_vec();
        potrf_lower(n, &mut l, n).unwrap();
        // Random B.
        let mut b = DenseMat::zeros(m, n);
        let mut s = seed.wrapping_add(99);
        for j in 0..n {
            for i in 0..m {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                b.set(i, j, ((s >> 40) as f64) / 1e6 - 4.0);
            }
        }
        let mut x = b.clone();
        trsm_right_lower_trans(m, n, &l, n, x.as_mut_slice(), m);
        // Reconstruct: B' = X L^T.
        let mut lmat = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                lmat.set(i, j, l[j * n + i]);
            }
        }
        let back = x.matmul(&lmat.transpose());
        assert!(
            back.max_abs_diff(&b) < 1e-9,
            "m={m}, n={n}: {}",
            back.max_abs_diff(&b)
        );
    }

    #[test]
    fn roundtrips_various_shapes() {
        for &(m, n) in &[(1usize, 1usize), (4, 1), (1, 4), (5, 3), (8, 8), (17, 6)] {
            check_roundtrip(m, n, (m * 31 + n) as u64);
        }
    }

    #[test]
    fn identity_l_is_noop() {
        let n = 3;
        let m = 4;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            l[i * n + i] = 1.0;
        }
        let orig: Vec<f64> = (0..m * n).map(|k| k as f64).collect();
        let mut b = orig.clone();
        trsm_right_lower_trans(m, n, &l, n, &mut b, m);
        assert_eq!(b, orig);
    }

    #[test]
    fn diagonal_l_scales_columns() {
        // L = diag(2, 4): X = B * L^{-T} scales column j by 1/L[j,j].
        let l = vec![2.0, 0.0, 0.0, 4.0];
        let mut b = vec![2.0, 4.0, 8.0, 16.0]; // 2x2
        trsm_right_lower_trans(2, 2, &l, 2, &mut b, 2);
        assert_eq!(b, vec![1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn respects_ldb_padding() {
        let n = 2;
        let m = 2;
        let ldb = 5;
        let spd = DenseMat::random_spd(n, 3);
        let mut l = spd.as_slice().to_vec();
        potrf_lower(n, &mut l, n).unwrap();
        let mut b = vec![-9.0; ldb * n];
        b[0] = 1.0;
        b[1] = 2.0;
        b[ldb] = 3.0;
        b[ldb + 1] = 4.0;
        let mut compact = vec![1.0, 2.0, 3.0, 4.0];
        trsm_right_lower_trans(m, n, &l, n, &mut b, ldb);
        trsm_right_lower_trans(m, n, &l, n, &mut compact, m);
        assert!((b[0] - compact[0]).abs() < 1e-14);
        assert!((b[1] - compact[1]).abs() < 1e-14);
        assert!((b[ldb] - compact[2]).abs() < 1e-14);
        assert!((b[ldb + 1] - compact[3]).abs() < 1e-14);
        assert_eq!(b[2], -9.0, "padding untouched");
    }

    #[test]
    fn zero_size_ok() {
        let mut b: Vec<f64> = vec![];
        trsm_right_lower_trans(0, 0, &[], 0, &mut b, 0);
    }
}
