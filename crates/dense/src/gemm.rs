//! Dense multiply-subtract kernels: the descendant-update workhorses of
//! supernodal Cholesky ("VS-Block also converts the update phase from
//! vector operations to matrix operations", §3.2).
//!
//! All kernels *subtract* the product from the destination because every
//! use in sparse factorization is a Schur-complement update.

/// `y[0..m] -= A[0..m, 0..k] * x[0..k]` (column-major `A`, `lda`).
pub fn gemv_sub(m: usize, k: usize, a: &[f64], lda: usize, x: &[f64], y: &mut [f64]) {
    assert!(lda >= m, "lda too small");
    assert!(x.len() >= k && y.len() >= m, "operand too short");
    if k > 0 {
        assert!(a.len() >= lda * (k - 1) + m, "A buffer too small");
    }
    let y = &mut y[..m];
    for (p, &xp) in x.iter().enumerate().take(k) {
        if xp == 0.0 {
            continue;
        }
        let col = &a[p * lda..p * lda + m];
        for (yi, &aip) in y.iter_mut().zip(col) {
            *yi -= aip * xp;
        }
    }
}

/// `C[0..m, 0..n] -= A[0..m, 0..k] * B[0..n, 0..k]^T`
/// (all column-major with leading dimensions `lda`, `ldb`, `ldc`).
///
/// The inner structure is a rank-k accumulation by columns: for each
/// output column `j`, subtract `sum_p B[j,p] * A[:,p]` — contiguous
/// axpy over `A` columns, which vectorizes well.
pub fn gemm_nt_sub(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    assert!(
        lda >= m && ldc >= m && ldb >= n,
        "leading dimension too small"
    );
    // Full tail-length checks so padded strides (lda/ldb/ldc larger
    // than the live row count — the supernodal trapezoid case) fail
    // loudly instead of reading out of bounds in release builds.
    if k > 0 {
        assert!(a.len() >= lda * (k - 1) + m, "A buffer too small");
        assert!(b.len() >= ldb * (k - 1) + n, "B buffer too small");
    }
    if n > 0 {
        assert!(c.len() >= ldc * (n - 1) + m, "C buffer too small");
    }
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        // Unroll the rank dimension by two to cut loop overhead; the
        // remainder is handled below.
        let mut p = 0;
        while p + 1 < k {
            let b0 = b[p * ldb + j];
            let b1 = b[(p + 1) * ldb + j];
            if b0 == 0.0 && b1 == 0.0 {
                p += 2;
                continue;
            }
            let a0 = &a[p * lda..p * lda + m];
            let a1 = &a[(p + 1) * lda..(p + 1) * lda + m];
            for ((ci, &x0), &x1) in cj.iter_mut().zip(a0).zip(a1) {
                *ci -= b0 * x0 + b1 * x1;
            }
            p += 2;
        }
        if p < k {
            let b0 = b[p * ldb + j];
            if b0 != 0.0 {
                let a0 = &a[p * lda..p * lda + m];
                for (ci, &x0) in cj.iter_mut().zip(a0) {
                    *ci -= b0 * x0;
                }
            }
        }
    }
}

/// `C[0..n, 0..n] -= A[0..n, 0..k] * A[0..n, 0..k]^T`, updating only the
/// lower triangle of `C` (BLAS `dsyrk`, lower / no-trans, alpha = -1).
pub fn syrk_ln_sub(n: usize, k: usize, a: &[f64], lda: usize, c: &mut [f64], ldc: usize) {
    assert!(lda >= n && ldc >= n, "leading dimension too small");
    for j in 0..n {
        let cj = &mut c[j * ldc + j..j * ldc + n];
        for p in 0..k {
            let ajp = a[p * lda + j];
            if ajp == 0.0 {
                continue;
            }
            let col = &a[p * lda + j..p * lda + n];
            for (ci, &aip) in cj.iter_mut().zip(col) {
                *ci -= ajp * aip;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMat;

    fn fill(m: usize, n: usize, seed: u64) -> DenseMat {
        let mut s = seed;
        let mut out = DenseMat::zeros(m, n);
        for j in 0..n {
            for i in 0..m {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
                out.set(i, j, ((s >> 40) as f64) / 1e7 - 0.8);
            }
        }
        out
    }

    #[test]
    fn gemv_sub_matches_reference() {
        let a = fill(5, 3, 1);
        let x = vec![1.0, -2.0, 0.5];
        let mut y = vec![10.0; 5];
        gemv_sub(5, 3, a.as_slice(), 5, &x, &mut y);
        let ax = a.matvec(&x);
        for i in 0..5 {
            assert!((y[i] - (10.0 - ax[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn gemm_nt_matches_reference() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (4, 3, 2),
            (5, 5, 5),
            (7, 2, 9),
            (3, 8, 1),
        ] {
            let a = fill(m, k, 2);
            let b = fill(n, k, 3);
            let mut c = fill(m, n, 4);
            let orig = c.clone();
            gemm_nt_sub(
                m,
                n,
                k,
                a.as_slice(),
                m,
                b.as_slice(),
                n,
                c.as_mut_slice(),
                m,
            );
            let expect = a.matmul(&b.transpose());
            for j in 0..n {
                for i in 0..m {
                    let want = orig.get(i, j) - expect.get(i, j);
                    assert!(
                        (c.get(i, j) - want).abs() < 1e-10,
                        "({i},{j}) m={m} n={n} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_nt_with_padding() {
        let (m, n, k) = (3usize, 2usize, 4usize);
        let (lda, ldb, ldc) = (5usize, 4usize, 6usize);
        let a_c = fill(m, k, 5);
        let b_c = fill(n, k, 6);
        let c_c = fill(m, n, 7);
        // Padded copies.
        let mut a = vec![f64::NAN; lda * k];
        let mut b = vec![f64::NAN; ldb * k];
        let mut c = vec![-3.0; ldc * n];
        for p in 0..k {
            for i in 0..m {
                a[p * lda + i] = a_c.get(i, p);
            }
            for i in 0..n {
                b[p * ldb + i] = b_c.get(i, p);
            }
        }
        for j in 0..n {
            for i in 0..m {
                c[j * ldc + i] = c_c.get(i, j);
            }
        }
        gemm_nt_sub(m, n, k, &a, lda, &b, ldb, &mut c, ldc);
        let mut c_ref = c_c.clone();
        gemm_nt_sub(
            m,
            n,
            k,
            a_c.as_slice(),
            m,
            b_c.as_slice(),
            n,
            c_ref.as_mut_slice(),
            m,
        );
        for j in 0..n {
            for i in 0..m {
                assert!((c[j * ldc + i] - c_ref.get(i, j)).abs() < 1e-12);
            }
            assert_eq!(c[j * ldc + m], -3.0, "padding untouched");
        }
    }

    #[test]
    fn syrk_matches_gemm_on_lower_triangle() {
        let (n, k) = (6usize, 4usize);
        let a = fill(n, k, 8);
        let mut c_syrk = fill(n, n, 9);
        let mut c_gemm = c_syrk.clone();
        syrk_ln_sub(n, k, a.as_slice(), n, c_syrk.as_mut_slice(), n);
        gemm_nt_sub(
            n,
            n,
            k,
            a.as_slice(),
            n,
            a.as_slice(),
            n,
            c_gemm.as_mut_slice(),
            n,
        );
        for j in 0..n {
            for i in 0..n {
                if i >= j {
                    assert!((c_syrk.get(i, j) - c_gemm.get(i, j)).abs() < 1e-12);
                } else {
                    // Strict upper triangle untouched by syrk.
                    assert_eq!(c_syrk.get(i, j), fill(n, n, 9).get(i, j));
                }
            }
        }
    }

    #[test]
    fn zero_rank_is_noop() {
        let mut c = vec![1.0, 2.0, 3.0, 4.0];
        let orig = c.clone();
        gemm_nt_sub(2, 2, 0, &[], 2, &[], 2, &mut c, 2);
        syrk_ln_sub(2, 0, &[], 2, &mut c, 2);
        assert_eq!(c, orig);
    }
}
