//! # sympiler-dense
//!
//! Small dense linear-algebra kernels (a "mini-BLAS") for the supernodal
//! sparse kernels in this workspace. Everything is column-major `f64`
//! with an explicit leading dimension (`lda`), like BLAS/LAPACK.
//!
//! Two tiers exist on purpose (paper §4.2):
//!
//! * **generic** kernels ([`potrf`], [`trsv`], [`trsm`], [`gemm`]) — the
//!   stand-in for OpenBLAS that the CHOLMOD-like baseline calls. Correct
//!   and reasonably fast, but not specialized for tiny operands.
//! * **specialized** kernels ([`small`]) — fixed-size, fully unrolled
//!   variants for the small blocks that dominate sparse supernodal
//!   codes. These model what Sympiler *generates*: "instead of being
//!   handicapped by the performance of BLAS routines, it generates
//!   specialized and highly-efficient codes for small dense
//!   sub-kernels."
//!
//! The `dense_kernels` criterion bench (ablation A1 in DESIGN.md)
//! measures the two tiers against each other across block sizes.

pub mod gemm;
pub mod getrf;
pub mod mat;
pub mod potrf;
pub mod small;
pub mod trsm;
pub mod trsv;

pub use gemm::{gemm_nt_sub, gemv_sub, syrk_ln_sub};
pub use getrf::{getrf_nopiv, getrf_nopiv_perturbed};
pub use mat::DenseMat;
pub use potrf::potrf_lower;
pub use trsm::{trsm_right_lower_trans, trsm_right_lower_trans_unit, trsm_right_upper};
pub use trsv::{trsv_lower, trsv_lower_trans};
