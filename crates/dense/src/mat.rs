//! Owned column-major dense matrix, used by tests, examples, and the
//! supernodal panel buffers.

/// A column-major dense matrix. `data[j * rows + i]` is entry `(i, j)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a column-major slice.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw mutable column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Leading dimension (== rows for owned matrices).
    #[inline]
    pub fn lda(&self) -> usize {
        self.rows
    }

    /// Multiply `self * x` into a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let col = &self.data[j * self.rows..(j + 1) * self.rows];
            let xj = x[j];
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += aij * xj;
            }
        }
        y
    }

    /// `self * other`.
    pub fn matmul(&self, other: &DenseMat) -> DenseMat {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut c = DenseMat::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for k in 0..self.cols {
                let b = other.get(k, j);
                if b == 0.0 {
                    continue;
                }
                for i in 0..self.rows {
                    let v = c.get(i, j) + self.get(i, k) * b;
                    c.set(i, j, v);
                }
            }
        }
        c
    }

    /// Transpose (allocates).
    pub fn transpose(&self) -> DenseMat {
        let mut t = DenseMat::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Max absolute difference to another matrix.
    pub fn max_abs_diff(&self, other: &DenseMat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// A deterministic SPD test matrix: `B B^T + n I` for a pseudo-random
    /// `B` generated from a linear congruential sequence.
    pub fn random_spd(n: usize, seed: u64) -> DenseMat {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut b = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                b.set(i, j, next());
            }
        }
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut m = DenseMat::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.lda(), 2);
        assert_eq!(m.as_slice()[2 * 2 + 1], 5.0);
    }

    #[test]
    fn from_col_major_layout() {
        // [1 3; 2 4]
        let m = DenseMat::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn matvec_and_matmul_agree() {
        let a = DenseMat::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let x = vec![5.0, 6.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![1.0 * 5.0 + 3.0 * 6.0, 2.0 * 5.0 + 4.0 * 6.0]);
        let xm = DenseMat::from_col_major(2, 1, x);
        let ym = a.matmul(&xm);
        assert_eq!(ym.as_slice(), y.as_slice());
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMat::from_col_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), a.get(1, 2));
    }

    #[test]
    fn random_spd_is_symmetric_dominantish() {
        let a = DenseMat::random_spd(6, 42);
        for i in 0..6 {
            for j in 0..6 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-12);
            }
            assert!(a.get(i, i) > 0.0);
        }
        // Deterministic.
        assert_eq!(a, DenseMat::random_spd(6, 42));
    }
}
