//! Dense triangular solves with a single right-hand side (BLAS `dtrsv`),
//! lower-triangular, non-unit diagonal. These are the diagonal-block
//! kernels of supernodal triangular solve (§3.1: "The diagonal block of
//! each column-block, which is a small triangular solve, is solved
//! first").

/// Solve `L x = b` in place (`x` enters holding `b`), where `L` is the
/// leading `n x n` lower triangle of a column-major buffer with leading
/// dimension `lda`.
pub fn trsv_lower(n: usize, l: &[f64], lda: usize, x: &mut [f64]) {
    assert!(lda >= n, "leading dimension too small");
    assert!(x.len() >= n, "x too short");
    for j in 0..n {
        let col = &l[j * lda..j * lda + n];
        let xj = x[j] / col[j];
        x[j] = xj;
        if xj != 0.0 {
            let (_, xs) = x.split_at_mut(j + 1);
            for (xi, &lij) in xs.iter_mut().zip(&col[j + 1..]) {
                *xi -= lij * xj;
            }
        }
    }
}

/// Solve `L^T x = b` in place (backward substitution on the same
/// lower-triangular storage).
pub fn trsv_lower_trans(n: usize, l: &[f64], lda: usize, x: &mut [f64]) {
    assert!(lda >= n, "leading dimension too small");
    assert!(x.len() >= n, "x too short");
    for j in (0..n).rev() {
        let col = &l[j * lda..j * lda + n];
        // x[j] -= L[j+1..n, j] . x[j+1..n]
        let dot: f64 = col[j + 1..]
            .iter()
            .zip(&x[j + 1..n])
            .map(|(&lij, &xi)| lij * xi)
            .sum();
        x[j] = (x[j] - dot) / col[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DenseMat;
    use crate::potrf::potrf_lower;

    fn spd_factor(n: usize, seed: u64) -> (DenseMat, Vec<f64>) {
        let a = DenseMat::random_spd(n, seed);
        let mut l = a.as_slice().to_vec();
        potrf_lower(n, &mut l, n).unwrap();
        (a, l)
    }

    #[test]
    fn forward_solve_known() {
        // L = [[2, 0], [1, 3]], b = [4, 7] -> x = [2, 5/3]
        let l = vec![2.0, 1.0, 0.0, 3.0];
        let mut x = vec![4.0, 7.0];
        trsv_lower(2, &l, 2, &mut x);
        assert!((x[0] - 2.0).abs() < 1e-15);
        assert!((x[1] - 5.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn backward_solve_known() {
        // L^T = [[2, 1], [0, 3]], b = [4, 6] -> x2 = 2, x1 = (4-2)/2 = 1
        let l = vec![2.0, 1.0, 0.0, 3.0];
        let mut x = vec![4.0, 6.0];
        trsv_lower_trans(2, &l, 2, &mut x);
        assert!((x[1] - 2.0).abs() < 1e-15);
        assert!((x[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn forward_backward_solves_spd_system() {
        for n in [1usize, 2, 3, 7, 20] {
            let (a, l) = spd_factor(n, n as u64 + 1);
            let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let mut x = b.clone();
            trsv_lower(n, &l, n, &mut x);
            trsv_lower_trans(n, &l, n, &mut x);
            let ax = a.matvec(&x);
            for (p, q) in ax.iter().zip(&b) {
                assert!((p - q).abs() < 1e-8, "n={n}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn respects_lda_padding() {
        let n = 3;
        let lda = 6;
        let (_, l3) = spd_factor(n, 5);
        let mut l = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in j..n {
                l[j * lda + i] = l3[j * n + i];
            }
        }
        let b = vec![1.0, 2.0, 3.0];
        let mut x1 = b.clone();
        trsv_lower(n, &l, lda, &mut x1);
        let mut x2 = b;
        trsv_lower(n, &l3, n, &mut x2);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-14);
        }
    }

    #[test]
    fn zero_rhs_stays_zero() {
        let (_, l) = spd_factor(5, 9);
        let mut x = vec![0.0; 5];
        trsv_lower(5, &l, 5, &mut x);
        trsv_lower_trans(5, &l, 5, &mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
