//! Criterion bench backing Figure 7: Cholesky numeric-phase engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sympiler_bench::workloads::prepare_subset;
use sympiler_core::{SympilerCholesky, SympilerOptions};
use sympiler_solvers::cholesky::simplicial::SimplicialCholesky;
use sympiler_solvers::cholesky::supernodal::SupernodalCholesky;
use sympiler_sparse::suite::SuiteScale;

fn bench_chol(c: &mut Criterion) {
    let problems = prepare_subset(SuiteScale::Test, &[1, 5]);
    let mut group = c.benchmark_group("cholesky_numeric");
    group.sample_size(15);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for p in &problems {
        let eigen = SimplicialCholesky::analyze(&p.a).unwrap();
        group.bench_function(BenchmarkId::new("eigen_simplicial", p.name), |bch| {
            bch.iter(|| black_box(eigen.factor(&p.a).unwrap()));
        });

        let cholmod = SupernodalCholesky::analyze(&p.a, 64).unwrap();
        group.bench_function(BenchmarkId::new("cholmod_supernodal", p.name), |bch| {
            bch.iter(|| black_box(cholmod.factor(&p.a).unwrap()));
        });

        let symp = SympilerCholesky::compile(&p.a, &SympilerOptions::default()).unwrap();
        group.bench_function(BenchmarkId::new("sympiler_plan", p.name), |bch| {
            bch.iter(|| black_box(symp.factor(&p.a).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chol);
criterion_main!(benches);
