//! Criterion bench backing Figure 6: triangular-solve engines on one
//! supernode-rich and one supernode-poor suite problem (test scale so
//! `cargo bench` stays fast; the figure binaries run the full scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sympiler_bench::engines::{build_tri_plan, TriEngine};
use sympiler_bench::workloads::prepare_subset;
use sympiler_core::plan::tri::TriScratch;
use sympiler_solvers::trisolve;
use sympiler_sparse::suite::SuiteScale;

fn bench_tri(c: &mut Criterion) {
    let problems = prepare_subset(SuiteScale::Test, &[1, 3]);
    let mut group = c.benchmark_group("tri_solve");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for p in &problems {
        let n = p.n();
        let bd = p.b.to_dense();

        group.bench_function(BenchmarkId::new("naive_fig1b", p.name), |bch| {
            let mut x = vec![0.0; n];
            bch.iter(|| {
                x.copy_from_slice(&bd);
                trisolve::naive_forward(&p.l, &mut x);
                black_box(&x);
            });
        });

        group.bench_function(BenchmarkId::new("eigen_fig1c", p.name), |bch| {
            let mut x = vec![0.0; n];
            bch.iter(|| {
                x.copy_from_slice(&bd);
                trisolve::library_forward(&p.l, &mut x);
                black_box(&x);
            });
        });

        group.bench_function(BenchmarkId::new("decoupled_fig1d", p.name), |bch| {
            let reach = sympiler_graph::reach(&p.l, p.b.indices());
            let mut x = vec![0.0; n];
            bch.iter(|| {
                trisolve::decoupled_forward(&p.l, &p.b, &reach, &mut x);
                black_box(&x);
                x.fill(0.0);
            });
        });

        for engine in [
            TriEngine::SympilerVsBlock,
            TriEngine::SympilerVsBlockViPrune,
            TriEngine::SympilerFull,
        ] {
            let plan = build_tri_plan(p, engine).unwrap();
            let id = format!("{}@{}", engine.label().replace(' ', "_"), p.name);
            group.bench_function(BenchmarkId::new("sympiler", id), |bch| {
                let mut x = vec![0.0; n];
                let mut s = TriScratch::default();
                bch.iter(|| {
                    plan.solve(&p.b, &mut x, &mut s);
                    black_box(&x);
                    plan.reset(&mut x);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tri);
criterion_main!(benches);
