//! Criterion bench for ablation A1 (DESIGN.md): specialized unrolled
//! kernels vs the generic mini-BLAS tier on small blocks — the §4.2
//! argument that "BLAS routines are not well-optimized for small dense
//! kernels".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sympiler_dense::small::{gemv_sub_small, potrf_small, trsv_small};
use sympiler_dense::{gemv_sub, potrf_lower, trsv_lower, DenseMat};

fn bench_small_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_kernels");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for n in [2usize, 3, 4, 8, 16] {
        let spd = DenseMat::random_spd(n, n as u64);
        group.bench_function(BenchmarkId::new("potrf_generic", n), |b| {
            b.iter(|| {
                let mut a = spd.as_slice().to_vec();
                potrf_lower(n, &mut a, n).unwrap();
                black_box(&a);
            });
        });
        group.bench_function(BenchmarkId::new("potrf_specialized", n), |b| {
            b.iter(|| {
                let mut a = spd.as_slice().to_vec();
                potrf_small(n, &mut a, n).unwrap();
                black_box(&a);
            });
        });

        let mut l = spd.as_slice().to_vec();
        potrf_lower(n, &mut l, n).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        group.bench_function(BenchmarkId::new("trsv_generic", n), |b| {
            b.iter(|| {
                let mut x = rhs.clone();
                trsv_lower(n, &l, n, &mut x);
                black_box(&x);
            });
        });
        group.bench_function(BenchmarkId::new("trsv_specialized", n), |b| {
            b.iter(|| {
                let mut x = rhs.clone();
                trsv_small(n, &l, n, &mut x);
                black_box(&x);
            });
        });
    }
    // Tall-skinny panel GEMV (the trisolve off-diagonal update shape).
    for k in [1usize, 2, 4] {
        let m = 64;
        let a = DenseMat::random_spd(m, 3);
        let x: Vec<f64> = (0..k).map(|i| 1.0 + i as f64).collect();
        group.bench_function(BenchmarkId::new("panel_gemv_generic", k), |b| {
            let mut y = vec![0.0; m];
            b.iter(|| {
                gemv_sub(m, k, a.as_slice(), m, &x, &mut y);
                black_box(&y);
            });
        });
        group.bench_function(BenchmarkId::new("panel_gemv_specialized", k), |b| {
            let mut y = vec![0.0; m];
            b.iter(|| {
                gemv_sub_small(m, k, a.as_slice(), m, &x, &mut y);
                black_box(&y);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_small_blocks);
criterion_main!(benches);
