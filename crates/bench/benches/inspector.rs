//! Criterion bench for the symbolic inspectors (§4.3 overheads): the
//! near-linear scaling of etree / row-pattern / supernode / reach-set
//! inspection across grid sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use sympiler_sparse::gen;

fn bench_inspectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("inspectors");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for k in [16usize, 32, 48] {
        let a = gen::grid2d_laplacian(k, k, false, 7);
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_function(BenchmarkId::new("etree", format!("grid{k}x{k}")), |b| {
            b.iter(|| black_box(sympiler_graph::etree(&a)));
        });
        let parent = sympiler_graph::etree(&a);
        group.bench_function(
            BenchmarkId::new("row_patterns", format!("grid{k}x{k}")),
            |b| {
                b.iter(|| black_box(sympiler_graph::ereach::row_patterns(&a, &parent)));
            },
        );
        let sym = sympiler_graph::symbolic_cholesky(&a);
        group.bench_function(
            BenchmarkId::new("supernodes", format!("grid{k}x{k}")),
            |b| {
                b.iter(|| black_box(sympiler_graph::supernodes_cholesky(&sym, 64)));
            },
        );
        let l = sympiler_sparse::CscMatrix::try_new(
            a.n_cols(),
            a.n_cols(),
            sym.l_col_ptr.clone(),
            sym.l_row_idx.clone(),
            vec![1.0; sym.l_nnz()],
        )
        .unwrap();
        let beta: Vec<usize> = (0..a.n_cols()).step_by(97).collect();
        group.bench_function(BenchmarkId::new("reach_dfs", format!("grid{k}x{k}")), |b| {
            b.iter(|| black_box(sympiler_graph::reach(&l, &beta)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inspectors);
criterion_main!(benches);
