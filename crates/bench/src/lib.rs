//! # sympiler-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§4). Each `src/bin/*` binary prints one artifact
//! (Figure 6/7/8/9, Table 2, the §1.1 motivating numbers, the §4.3
//! inspection overheads, and the threshold ablation); the criterion
//! benches under `benches/` provide statistically robust spot checks of
//! the same comparisons.
//!
//! Methodology follows §4.1: each measurement is repeated and the
//! median reported (the paper uses 5 runs); GFLOP/s uses the *useful*
//! flop counts derived from symbolic analysis, identically for every
//! engine, so ratios are directly comparable.

pub mod engines;
pub mod harness;
pub mod perf;
pub mod workloads;

pub use harness::{gflops, median_time, Measurement, Table};
pub use workloads::{prepare_suite, BenchProblem};
