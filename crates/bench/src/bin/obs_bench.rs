//! The telemetry overhead gate: proves the serving observability
//! layer is effectively free and bit-exact before CI lets it ship.
//!
//! For each execution tier (serial, column-parallel `n_threads = 2`,
//! supernodal VS-Block) and each suite problem, the same cached
//! request stream runs twice through a pre-warmed [`PlanCache`]:
//!
//! - **telemetry-off** — inert [`Profiler`], no histogram, no per
//!   request clock reads: the bare serving hit path.
//! - **telemetry-on** — enabled cache profiler (cache-lookup spans,
//!   hit/miss counters, live residency gauges) plus a log-bucketed
//!   latency [`Histogram`] recording every request.
//!
//! The arms run as back-to-back off/on pairs, several pairs per
//! configuration; a configuration's overhead is the **minimum**
//! per-pair on/off ratio (a scheduler hiccup inflates one arm of one
//! pair, a real telemetry cost inflates the on arm of every pair),
//! and the worst overhead across all tiers and problems must stay
//! under the overhead budget: **2 % at bench scale** (the gated
//! configuration), relaxed to 50 % at `--test-scale` where a single
//! cached factor is a handful of microseconds and the two span clock
//! reads are a visible fraction of it. The result is exported as the
//! deterministic gate entry `obs:overhead_ok` (1.0 = within budget).
//!
//! Bit-exactness is checked separately with the *full* telemetry
//! stack on: factors produced under `profile: true` (numeric-phase
//! spans + health monitors) must be bitwise identical to `profile:
//! false` factors on every tier — exported as `obs:bitwise` (1.0).
//! `results/BENCH_obs_bench.json` carries both flags and the CI perf
//! gate hard-fails unless both equal 1.0.
//!
//! Side artifacts: `results/METRICS_obs_bench.json` (per-tier latency
//! histograms with p50/p90/p99/p999 plus the churn segment's cache
//! counters) and `results/EVENTS_obs_bench.jsonl` (the structured
//! event journal from an eviction-churn segment: a one-entry cache
//! alternating two patterns, so every admission after the first
//! evicts). Both are re-validated structurally by `perf_gate`.
//!
//! Run with `--test-scale` (or `--test`) for the CI smoke
//! configuration.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sympiler_bench::harness::Table;
use sympiler_bench::perf::PerfReport;
use sympiler_bench::workloads::{prepare_lu_subset, LuBenchProblem};
use sympiler_core::serve::{CacheConfig, PlanCache};
use sympiler_core::{BlockLu, LuWorkspace, Profiler, SympilerLu, SympilerOptions};
use sympiler_obs::{Histogram, MetricsRegistry, MetricsSnapshot};

/// The three execution tiers the bitwise contract spans.
fn tiers() -> Vec<(&'static str, SympilerOptions)> {
    let base = SympilerOptions::default();
    vec![
        (
            "serial",
            SympilerOptions {
                n_threads: 1,
                block_lu: BlockLu::Off,
                ..base.clone()
            },
        ),
        (
            "parallel",
            SympilerOptions {
                n_threads: 2,
                block_lu: BlockLu::Off,
                ..base.clone()
            },
        ),
        (
            "supernodal",
            SympilerOptions {
                block_lu: BlockLu::On,
                ..base
            },
        ),
    ]
}

/// Deterministic per-request value perturbation (same scheme as
/// `serve_bench`): same pattern, fresh values.
fn perturbed(base: &sympiler_sparse::CscMatrix, req: usize) -> sympiler_sparse::CscMatrix {
    let mut a = base.clone();
    let s = 1.0 + 0.001 * ((req % 17) as f64) + 1e-6 * (req as f64);
    for v in a.values_mut() {
        *v *= s;
    }
    a
}

/// One cached stream pass: `n` same-pattern requests through a cache
/// pre-warmed outside the timed loop, so the loop is the pure hit
/// path. `hist` being `Some` *is* the telemetry-on arm: the cache
/// profiler is enabled and every request latency is clocked and
/// recorded; `None` runs the inert profiler with zero per-request
/// instrumentation.
fn stream_time(
    p: &LuBenchProblem,
    opts: &SympilerOptions,
    n: usize,
    hist: Option<&Arc<Histogram>>,
) -> Duration {
    let profiler = Arc::new(if hist.is_some() {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    });
    let cache = PlanCache::with_profiler(CacheConfig::default(), profiler);
    let mut ws = LuWorkspace::new();
    cache.get_or_compile(&p.a, opts).expect("warm compile");
    let t0 = Instant::now();
    for req in 0..n {
        let a = perturbed(&p.a, req);
        if let Some(h) = hist {
            let t = Instant::now();
            let plan = cache.get_or_compile(&a, opts).expect("stream lookup");
            let f = plan.factor_with(&a, &mut ws).expect("stream factor");
            h.record_duration(t.elapsed());
            black_box(f.l().values().first().copied());
        } else {
            let plan = cache.get_or_compile(&a, opts).expect("stream lookup");
            let f = plan.factor_with(&a, &mut ws).expect("stream factor");
            black_box(f.l().values().first().copied());
        }
    }
    t0.elapsed()
}

/// Full-stack bitwise check on one tier: factors computed with
/// `profile: true` (numeric spans + health monitors live) must match
/// `profile: false` factors bit for bit.
fn assert_bitwise_on_off(tier: &str, p: &LuBenchProblem, opts: &SympilerOptions) {
    let mut on = opts.clone();
    on.profile = true;
    for req in [0usize, 7] {
        let a = perturbed(&p.a, req);
        let f_off = SympilerLu::compile(&a, opts)
            .expect("compile off")
            .factor(&a)
            .expect("factor off");
        let f_on = SympilerLu::compile(&a, &on)
            .expect("compile on")
            .factor(&a)
            .expect("factor on");
        let same = f_off
            .l()
            .values()
            .iter()
            .chain(f_off.u().values())
            .zip(f_on.l().values().iter().chain(f_on.u().values()))
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(
            same,
            "{tier}/{} req {req}: telemetry-on factor diverged bitwise",
            p.name
        );
    }
}

/// Eviction-churn segment: a one-entry cache alternating two sparsity
/// patterns, so every admission after the first evicts the resident
/// plan. Returns the enabled profiler whose journal now holds the
/// eviction events (with monotonic sequence numbers) and whose
/// counters hold the miss/eviction tallies.
fn churn(problems: &[LuBenchProblem], opts: &SympilerOptions) -> Arc<Profiler> {
    let profiler = Arc::new(Profiler::enabled());
    let cache = PlanCache::with_profiler(
        CacheConfig {
            max_entries: 1,
            max_bytes: 0,
        },
        Arc::clone(&profiler),
    );
    let mut ws = LuWorkspace::new();
    for _ in 0..4 {
        for p in &problems[..2] {
            let plan = cache.get_or_compile(&p.a, opts).expect("churn compile");
            black_box(plan.factor_with(&p.a, &mut ws).expect("churn factor"));
        }
    }
    let evictions = cache.stats().evictions;
    assert_eq!(evictions, 7, "8 alternating admissions must evict 7 plans");
    profiler
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_scale = args.iter().any(|a| a == "--test-scale" || a == "--test");
    let scale = if test_scale {
        sympiler_sparse::suite::SuiteScale::Test
    } else {
        sympiler_sparse::suite::SuiteScale::Bench
    };
    let (n, reps, budget) = if test_scale {
        (120, 4, 0.50)
    } else {
        (400, 5, 0.02)
    };
    let problems = prepare_lu_subset(scale, &[1, 3]);
    assert!(problems.len() >= 2, "churn segment needs two patterns");

    let metrics = MetricsRegistry::new();
    let mut report = PerfReport::new("obs_bench");
    let mut table = Table::new(
        &format!(
            "telemetry overhead: {n}-request cached stream, best of {reps} off/on pairs, \
             budget {:.0}% ({} scale)",
            budget * 100.0,
            if test_scale { "test" } else { "bench" }
        ),
        &[
            "tier", "name", "t off", "t on", "overhead", "p50 on", "p999 on",
        ],
    );

    let mut worst: f64 = f64::NEG_INFINITY;
    for (tier, opts) in tiers() {
        for p in &problems {
            let hist = metrics.histogram(&format!("obs.{tier}.{}.latency_ns", p.name));
            let mut t_off = Duration::MAX;
            let mut t_on = Duration::MAX;
            // Back-to-back off/on pairs, and the overhead is the MIN
            // of the per-rep ratios: a scheduler hiccup inflates one
            // arm of one pair, never every pair, whereas a true
            // telemetry cost inflates the "on" arm of all of them.
            // (Min-of-each-arm is less robust: it can pair a noisy
            // on-minimum against one exceptionally lucky off-run.)
            let mut ratio = f64::INFINITY;
            for _ in 0..reps {
                let off = stream_time(p, &opts, n, None);
                let on = stream_time(p, &opts, n, Some(&hist));
                ratio = ratio.min(on.as_secs_f64() / off.as_secs_f64().max(1e-12));
                t_off = t_off.min(off);
                t_on = t_on.min(on);
            }
            let overhead = ratio - 1.0;
            worst = worst.max(overhead);
            assert_bitwise_on_off(tier, p, &opts);
            table.row(vec![
                tier.to_string(),
                p.name.to_string(),
                format!("{t_off:.3?}"),
                format!("{t_on:.3?}"),
                format!("{:+.2}%", overhead * 100.0),
                format!("{:.3?}", Duration::from_nanos(hist.quantile(0.50))),
                format!("{:.3?}", Duration::from_nanos(hist.quantile(0.999))),
            ]);
        }
    }

    let overhead_ok = worst <= budget;
    if !overhead_ok {
        eprintln!(
            "telemetry overhead {:.2}% exceeds the {:.0}% budget — perf gate will fail",
            worst * 100.0,
            budget * 100.0
        );
    }
    // Deterministic gate entries: `obs:bitwise` is 1.0 by construction
    // (the asserts above panic on any divergence before we get here);
    // `obs:overhead_ok` flips to 0.0 — and fails the perf gate — when
    // the worst measured overhead breaks the budget. The raw worst
    // overhead rides along un-gated for trend inspection.
    report.push("obs:overhead_ok", if overhead_ok { 1.0 } else { 0.0 });
    report.push("obs:bitwise", 1.0);
    report.push("obs:worst_overhead_pct", worst * 100.0);

    // Journal artifact from the eviction-churn segment.
    let serial = tiers().remove(0).1;
    let churn_profiler = churn(&problems, &serial);
    let journal = churn_profiler.journal();
    let events = journal.events();
    assert!(
        events.iter().filter(|e| e.kind == "cache.eviction").count() >= 7,
        "churn segment produced too few eviction events"
    );
    assert!(
        events.iter().enumerate().all(|(i, e)| e.seq == i as u64),
        "journal sequence numbers must be dense and monotonic"
    );
    journal.write_results("obs_bench").expect("write journal");

    // Metrics artifact: the per-tier latency histograms plus the
    // churn profiler's counters/gauges, re-parsed once to prove the
    // file round-trips.
    metrics.set_gauge("obs.worst_overhead_pct", worst * 100.0);
    metrics.set_gauge("obs.overhead_budget_pct", budget * 100.0);
    let mut snapshot = metrics.snapshot("obs_bench");
    snapshot.absorb_profile(&churn_profiler.snapshot("obs_bench_churn"));
    let metrics_path = snapshot.write_results().expect("write metrics");
    let reread =
        MetricsSnapshot::from_json(&std::fs::read_to_string(&metrics_path).expect("read metrics"))
            .expect("parse metrics");
    assert_eq!(reread, snapshot, "metrics snapshot must round-trip exactly");

    table.emit(Some("obs_bench.csv"));
    report.write_results().expect("write perf report");
    println!(
        "telemetry gate: worst overhead {:+.2}% (budget {:.0}%), bitwise identical \
         across {} tiers x {} problems",
        worst * 100.0,
        budget * 100.0,
        tiers().len(),
        problems.len()
    );
}
