//! Runs every paper experiment in sequence (Table 2, Figures 6–9, the
//! §1.1 motivating numbers, inspection overheads, and the threshold
//! ablation) by invoking the sibling binaries' logic through the shared
//! library. Accepts `--test` for the fast suite.
//!
//! Usage: `cargo run -p sympiler-bench --release --bin all_experiments [--test]`

use std::process::Command;

fn main() {
    let test_flag: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table2",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "lu_compare",
        "serve_bench",
        "obs_bench",
        "motivating",
        "table3_overheads",
        "ablation_thresholds",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n==================== {bin} ====================");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&test_flag)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall experiments complete; CSVs under results/");
}
