//! Regenerates **Figure 6**: sparse triangular solve GFLOP/s — the
//! Sympiler transformation tiers (VS-Block / +VI-Prune / +Low-Level)
//! against the Eigen-style library implementation, per suite matrix.
//!
//! The paper's headline for this figure: Sympiler (numeric) beats Eigen
//! by 1.49x on average, and VS-Block is skipped on matrices whose
//! average participating supernode size is below the 160 threshold
//! (their problems 3, 4, 5, 7).
//!
//! Usage: `cargo run -p sympiler-bench --release --bin fig6 [--test]`

use sympiler_bench::engines::{build_tri_plan, time_tri_engine, tri_flops, TriEngine};
use sympiler_bench::harness::{geomean, gflops, Table};
use sympiler_bench::workloads::prepare_suite;
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    eprintln!("preparing suite (factorizations included)...");
    let problems = prepare_suite(scale);
    let mut t = Table::new(
        "Figure 6: triangular solve GFLOP/s (higher is better)",
        &[
            "ID",
            "matrix",
            "Eigen",
            "VS-Block",
            "+VI-Prune",
            "+Low-Level",
            "speedup vs Eigen",
            "VS-Block?",
        ],
    );
    let mut speedups = Vec::new();
    for p in &problems {
        let flops = tri_flops(p);
        let t_eigen = time_tri_engine(p, TriEngine::Eigen);
        let t_vs = time_tri_engine(p, TriEngine::SympilerVsBlock);
        let t_vp = time_tri_engine(p, TriEngine::SympilerVsBlockViPrune);
        let t_full = time_tri_engine(p, TriEngine::SympilerFull);
        let speedup = t_eigen.as_secs_f64() / t_full.as_secs_f64();
        speedups.push(speedup);
        // The VS-Block-only configuration is unpruned (it executes every
        // supernode); rate it by the flops it actually performs, like a
        // raw-throughput segment. All other columns use the *useful*
        // (pruned) flop count so ratios compare directly.
        let vs_plan = build_tri_plan(p, TriEngine::SympilerVsBlock).expect("plan");
        let vs_applied = build_tri_plan(p, TriEngine::SympilerFull)
            .map(|pl| pl.variant().vs_block)
            .unwrap_or(false);
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            format!("{:.3}", gflops(flops, t_eigen)),
            format!("{:.3}", gflops(vs_plan.executed_flops(), t_vs)),
            format!("{:.3}", gflops(flops, t_vp)),
            format!("{:.3}", gflops(flops, t_full)),
            format!("{:.2}x", speedup),
            if vs_applied { "yes" } else { "no (threshold)" }.to_string(),
        ]);
    }
    t.emit(Some("fig6.csv"));
    println!(
        "geomean Sympiler-vs-Eigen speedup: {:.2}x  (paper: 1.49x average)",
        geomean(&speedups)
    );
}
