//! Regenerates **Figure 8**: triangular solve — Sympiler's
//! symbolic + numeric time vs Eigen's runtime, normalized to Eigen
//! (lower is better).
//!
//! The paper splits Sympiler's one-off costs in two:
//! * the *symbolic inspection* (reach-set DFS + node-equivalence
//!   supernode detection) is charged to the figure — accumulated
//!   symbolic + numeric averages 1.27x Eigen's runtime there;
//! * *code generation and compilation* is reported separately in the
//!   text: "between 6–197x the cost of the numeric solve, depending on
//!   the matrix". Our equivalent is plan building (scheduling +
//!   packing), shown in its own column with the same ratio.
//!
//! Usage: `cargo run -p sympiler-bench --release --bin fig8 [--test]`

use std::time::Duration;
use sympiler_bench::engines::{time_tri_engine, TriEngine, RUNS};
use sympiler_bench::harness::{geomean, Table};
use sympiler_bench::perf::PerfReport;
use sympiler_bench::workloads::prepare_suite;
use sympiler_core::{SympilerOptions, SympilerTriSolve};
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    eprintln!("preparing suite...");
    let problems = prepare_suite(scale);
    let mut t = Table::new(
        "Figure 8: trisolve symbolic+numeric vs Eigen (lower is better)",
        &[
            "ID",
            "matrix",
            "Eigen numeric",
            "Sympiler numeric",
            "inspection",
            "(insp+num)/Eigen",
            "codegen (plan build)",
            "codegen/numeric",
        ],
    );
    let mut ratios = Vec::new();
    let mut codegen_ratios = Vec::new();
    let mut report = PerfReport::new("fig8");
    for p in &problems {
        let t_eigen = time_tri_engine(p, TriEngine::Eigen);
        let t_num = time_tri_engine(p, TriEngine::SympilerFull);
        // Median per-stage compile timings.
        let mut inspect_samples = Vec::new();
        let mut build_samples = Vec::new();
        for _ in 0..RUNS {
            let ts = SympilerTriSolve::compile(&p.l, p.b.indices(), &SympilerOptions::default());
            let mut inspect = Duration::ZERO;
            let mut build = Duration::ZERO;
            for (name, d) in &ts.report().stages {
                if name.starts_with("inspect") {
                    inspect += *d;
                } else {
                    build += *d;
                }
            }
            inspect_samples.push(inspect);
            build_samples.push(build);
        }
        inspect_samples.sort_unstable();
        build_samples.sort_unstable();
        let t_inspect = inspect_samples[RUNS / 2];
        let t_build = build_samples[RUNS / 2];

        let ratio = (t_inspect + t_num).as_secs_f64() / t_eigen.as_secs_f64();
        let cg_ratio = t_build.as_secs_f64() / t_num.as_secs_f64();
        ratios.push(ratio);
        codegen_ratios.push(cg_ratio);
        // Perf-gate ratio: Eigen numeric / Sympiler numeric, the
        // decoupled speedup of the solve itself (higher is better).
        report.push(
            p.name,
            t_eigen.as_secs_f64() / t_num.as_secs_f64().max(1e-12),
        );
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            format!("{:.1} us", t_eigen.as_secs_f64() * 1e6),
            format!("{:.1} us", t_num.as_secs_f64() * 1e6),
            format!("{:.1} us", t_inspect.as_secs_f64() * 1e6),
            format!("{ratio:.2}"),
            format!("{:.1} us", t_build.as_secs_f64() * 1e6),
            format!("{cg_ratio:.0}x"),
        ]);
    }
    t.emit(Some("fig8.csv"));
    report.write_results().expect("write perf report");
    println!(
        "geomean (inspection+numeric)/Eigen: {:.2}  (paper: 1.27 average; ours runs sparser RHS reaches — see EXPERIMENTS.md)",
        geomean(&ratios)
    );
    println!(
        "codegen cost range: {:.0}x..{:.0}x of one numeric solve  (paper: 6-197x)",
        codegen_ratios.iter().copied().fold(f64::INFINITY, f64::min),
        codegen_ratios.iter().copied().fold(0.0, f64::max)
    );
}
