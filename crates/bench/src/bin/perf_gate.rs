//! CI perf-regression gate: compare the smoke-run benchmark reports
//! under `--results-dir` against the checked-in baselines under
//! `--baseline-dir`, and exit nonzero if any kernel's
//! decoupled/baseline speedup ratio degrades by more than the
//! tolerance (default 25%).
//!
//! Baselines and results use the same `BENCH_<experiment>.json` format
//! ([`sympiler_bench::perf`]); every baseline file must have a
//! matching results file. Gated values are ratios that transfer
//! across hosts: decoupling speedups (two serial measurements from
//! the same process) and, for `lu_compare`, the per-ordering **fill
//! gains** `nnz(L+U)_natural / nnz(L+U)_ordered` — deterministic
//! structural ratios, so a COLAMD quality regression beyond the
//! tolerance fails CI like any timing regression. Raw times and
//! parallel-scaling numbers are deliberately *not* gated (they depend
//! on core count and machine load) — they ride along in the uploaded
//! artifact instead.
//!
//! When the results directory also carries observability traces
//! (`PROFILE_<experiment>.json`, written by `lu_compare --profile`),
//! each profile's flop-attribution gauges are re-verified from the
//! JSON alone: `flops.serial`, `flops.parallel`, and
//! `flops.supernodal_dense + flops.supernodal_scalar` must each equal
//! `flops.plan` **exactly** — a deterministic accounting gate on the
//! instrumentation layer itself.
//!
//! Usage:
//! `perf_gate [--baseline-dir crates/bench/baselines] [--results-dir results] [--tolerance 0.25]`

use std::path::{Path, PathBuf};
use sympiler_bench::perf::{gate, PerfReport};
use sympiler_obs::TraceFile;

/// Check the exact flop-accounting identities carried by one profile
/// trace; returns one violation string per broken identity.
fn check_profile_flops(path: &Path) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read {}: {e}", path.display())],
    };
    let trace = match TraceFile::from_chrome_json(&text) {
        Ok(t) => t,
        Err(e) => return vec![format!("bad profile {}: {e}", path.display())],
    };
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for profile in &trace.profiles {
        let Some(plan) = profile.gauge("flops.plan") else {
            continue; // profile without accounting gauges: nothing to gate
        };
        let g = |name: &str| profile.gauge(name).unwrap_or(-1.0);
        let tiers = [
            ("serial", g("flops.serial")),
            ("parallel", g("flops.parallel")),
            (
                "supernodal",
                g("flops.supernodal_dense") + g("flops.supernodal_scalar"),
            ),
        ];
        for (tier, got) in tiers {
            if got != plan {
                violations.push(format!(
                    "{}/{}: {tier} flop attribution {got} != plan {plan}",
                    trace.experiment, profile.label
                ));
            }
        }
        checked += 1;
    }
    println!(
        "flop-accounting gate {}: {checked} profile(s) checked against plan.flops()",
        path.display()
    );
    violations
}

fn arg_value(args: &[String], flag: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_dir = PathBuf::from(arg_value(&args, "--baseline-dir", "crates/bench/baselines"));
    let results_dir = PathBuf::from(arg_value(&args, "--results-dir", "results"));
    let tolerance: f64 = arg_value(&args, "--tolerance", "0.25")
        .parse()
        .expect("--tolerance takes a fraction, e.g. 0.25");

    let mut baseline_files: Vec<PathBuf> = std::fs::read_dir(&baseline_dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(path)
        })
        .collect();
    baseline_files.sort();
    assert!(
        !baseline_files.is_empty(),
        "no BENCH_*.json baselines under {}",
        baseline_dir.display()
    );

    let mut violations = Vec::new();
    for baseline_path in &baseline_files {
        let read = |path: &PathBuf| -> PerfReport {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            PerfReport::from_json(&text)
                .unwrap_or_else(|e| panic!("bad report {}: {e}", path.display()))
        };
        let baseline = read(baseline_path);
        let results_path = results_dir.join(baseline_path.file_name().expect("file name"));
        if !results_path.exists() {
            violations.push(format!(
                "{}: no smoke-run results at {} (did the bench job run?)",
                baseline.experiment,
                results_path.display()
            ));
            continue;
        }
        let current = read(&results_path);
        println!(
            "gate {}: {} baseline kernels, {} current kernels, tolerance {:.0}%",
            baseline.experiment,
            baseline.entries.len(),
            current.entries.len(),
            tolerance * 100.0
        );
        for entry in &baseline.entries {
            let cur = current
                .speedup_of(&entry.kernel)
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "MISSING".to_string());
            println!(
                "  {:24} baseline {:.2}x  current {cur}",
                entry.kernel, entry.speedup
            );
        }
        violations.extend(gate(&baseline, &current, tolerance));
    }

    // Observability traces, when the smoke run collected them.
    if let Ok(entries) = std::fs::read_dir(&results_dir) {
        let mut profile_files: Vec<PathBuf> = entries
            .filter_map(|entry| {
                let path = entry.expect("dir entry").path();
                let name = path.file_name()?.to_str()?;
                (name.starts_with("PROFILE_") && name.ends_with(".json")).then_some(path)
            })
            .collect();
        profile_files.sort();
        for path in &profile_files {
            violations.extend(check_profile_flops(path));
        }
    }

    if violations.is_empty() {
        println!(
            "perf gate PASSED: no kernel degraded beyond {:.0}% across {} experiment(s)",
            tolerance * 100.0,
            baseline_files.len()
        );
    } else {
        eprintln!("perf gate FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
