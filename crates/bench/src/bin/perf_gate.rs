//! CI perf-regression gate: compare the smoke-run benchmark reports
//! under `--results-dir` against the checked-in baselines under
//! `--baseline-dir`, and exit nonzero if any kernel's
//! decoupled/baseline speedup ratio degrades by more than the
//! tolerance (default 25%).
//!
//! Baselines and results use the same `BENCH_<experiment>.json` format
//! ([`sympiler_bench::perf`]); every baseline file must have a
//! matching results file. Gated values are ratios that transfer
//! across hosts: decoupling speedups (two serial measurements from
//! the same process) and, for `lu_compare`, the per-ordering **fill
//! gains** `nnz(L+U)_natural / nnz(L+U)_ordered` — deterministic
//! structural ratios, so a COLAMD quality regression beyond the
//! tolerance fails CI like any timing regression. Raw times and
//! parallel-scaling numbers are deliberately *not* gated (they depend
//! on core count and machine load) — they ride along in the uploaded
//! artifact instead.
//!
//! When the results directory also carries observability traces
//! (`PROFILE_<experiment>.json`, written by `lu_compare --profile`),
//! each profile's flop-attribution gauges are re-verified from the
//! JSON alone: `flops.serial`, `flops.parallel`, and
//! `flops.supernodal_dense + flops.supernodal_scalar` must each equal
//! `flops.plan` **exactly** — a deterministic accounting gate on the
//! instrumentation layer itself.
//!
//! Telemetry artifacts are re-validated from the files alone as well:
//! every `METRICS_<experiment>.json` must parse, each histogram's
//! bucket counts must sum to its total count, and its quantiles must
//! be monotone (p50 ≤ p90 ≤ p99 ≤ p999); every
//! `EVENTS_<experiment>.jsonl` must parse with dense monotonic
//! sequence numbers and non-decreasing timestamps. Finally, when
//! `BENCH_obs_bench.json` is among the results, its `obs:overhead_ok`
//! and `obs:bitwise` flags are hard-checked to equal 1.0 — the
//! telemetry overhead/bitwise contract is not subject to the timing
//! tolerance.
//!
//! Usage:
//! `perf_gate [--baseline-dir crates/bench/baselines] [--results-dir results] [--tolerance 0.25]`

use std::path::{Path, PathBuf};
use sympiler_bench::perf::{gate, PerfReport};
use sympiler_obs::{EventJournal, MetricsSnapshot, TraceFile};

/// Check the exact flop-accounting identities carried by one profile
/// trace; returns one violation string per broken identity.
fn check_profile_flops(path: &Path) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read {}: {e}", path.display())],
    };
    let trace = match TraceFile::from_chrome_json(&text) {
        Ok(t) => t,
        Err(e) => return vec![format!("bad profile {}: {e}", path.display())],
    };
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for profile in &trace.profiles {
        let Some(plan) = profile.gauge("flops.plan") else {
            continue; // profile without accounting gauges: nothing to gate
        };
        let g = |name: &str| profile.gauge(name).unwrap_or(-1.0);
        let tiers = [
            ("serial", g("flops.serial")),
            ("parallel", g("flops.parallel")),
            (
                "supernodal",
                g("flops.supernodal_dense") + g("flops.supernodal_scalar"),
            ),
        ];
        for (tier, got) in tiers {
            if got != plan {
                violations.push(format!(
                    "{}/{}: {tier} flop attribution {got} != plan {plan}",
                    trace.experiment, profile.label
                ));
            }
        }
        checked += 1;
    }
    println!(
        "flop-accounting gate {}: {checked} profile(s) checked against plan.flops()",
        path.display()
    );
    violations
}

/// Structurally validate one metrics snapshot from its JSON alone:
/// histograms must be internally consistent (bucket counts summing to
/// the total, monotone quantiles).
fn check_metrics(path: &Path) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read {}: {e}", path.display())],
    };
    let snap = match MetricsSnapshot::from_json(&text) {
        Ok(s) => s,
        Err(e) => return vec![format!("bad metrics {}: {e}", path.display())],
    };
    let mut violations = Vec::new();
    for h in &snap.histograms {
        let bucket_total: u64 = h.buckets.iter().map(|(_, _, c)| c).sum();
        if bucket_total != h.count {
            violations.push(format!(
                "{}/{}: bucket counts sum to {bucket_total}, histogram count is {}",
                snap.experiment, h.name, h.count
            ));
        }
        if !(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.p999) {
            violations.push(format!(
                "{}/{}: quantiles not monotone (p50={} p90={} p99={} p999={})",
                snap.experiment, h.name, h.p50, h.p90, h.p99, h.p999
            ));
        }
    }
    println!(
        "metrics gate {}: {} histogram(s), {} counter(s), {} gauge(s) validated",
        path.display(),
        snap.histograms.len(),
        snap.counters.len(),
        snap.gauges.len()
    );
    violations
}

/// Validate one event journal from its JSONL alone: sequence numbers
/// must be dense from 0 and timestamps non-decreasing (both are
/// assigned under the journal lock, so any gap or inversion means a
/// corrupted artifact).
fn check_events(path: &Path) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read {}: {e}", path.display())],
    };
    let events = match EventJournal::parse_jsonl(&text) {
        Ok(e) => e,
        Err(e) => return vec![format!("bad journal {}: {e}", path.display())],
    };
    let mut violations = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.seq != i as u64 {
            violations.push(format!(
                "{}: event {i} has seq {} (sequence must be dense from 0)",
                path.display(),
                e.seq
            ));
            break;
        }
    }
    if events.windows(2).any(|w| w[1].t_ns < w[0].t_ns) {
        violations.push(format!(
            "{}: event timestamps regress within the journal",
            path.display()
        ));
    }
    println!(
        "event-journal gate {}: {} event(s) validated",
        path.display(),
        events.len()
    );
    violations
}

/// Hard flags that are pass/fail, not tolerance-gated: the telemetry
/// layer must be within its overhead budget and bit-exact.
fn check_obs_flags(results_dir: &Path) -> Vec<String> {
    let path = results_dir.join("BENCH_obs_bench.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new(); // absence is caught by the baseline loop
    };
    let report = match PerfReport::from_json(&text) {
        Ok(r) => r,
        Err(e) => return vec![format!("bad report {}: {e}", path.display())],
    };
    let mut violations = Vec::new();
    for flag in ["obs:overhead_ok", "obs:bitwise"] {
        match report.speedup_of(flag) {
            Some(1.0) => {}
            Some(v) => violations.push(format!(
                "obs_bench: {flag} = {v} (telemetry contract requires exactly 1.0)"
            )),
            None => violations.push(format!("obs_bench: {flag} missing from {}", path.display())),
        }
    }
    if violations.is_empty() {
        println!(
            "telemetry gate {}: overhead_ok and bitwise both 1.0",
            path.display()
        );
    }
    violations
}

fn arg_value(args: &[String], flag: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_dir = PathBuf::from(arg_value(&args, "--baseline-dir", "crates/bench/baselines"));
    let results_dir = PathBuf::from(arg_value(&args, "--results-dir", "results"));
    let tolerance: f64 = arg_value(&args, "--tolerance", "0.25")
        .parse()
        .expect("--tolerance takes a fraction, e.g. 0.25");

    let mut baseline_files: Vec<PathBuf> = std::fs::read_dir(&baseline_dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", baseline_dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(path)
        })
        .collect();
    baseline_files.sort();
    assert!(
        !baseline_files.is_empty(),
        "no BENCH_*.json baselines under {}",
        baseline_dir.display()
    );

    let mut violations = Vec::new();
    for baseline_path in &baseline_files {
        let read = |path: &PathBuf| -> PerfReport {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            PerfReport::from_json(&text)
                .unwrap_or_else(|e| panic!("bad report {}: {e}", path.display()))
        };
        let baseline = read(baseline_path);
        let results_path = results_dir.join(baseline_path.file_name().expect("file name"));
        if !results_path.exists() {
            violations.push(format!(
                "{}: no smoke-run results at {} (did the bench job run?)",
                baseline.experiment,
                results_path.display()
            ));
            continue;
        }
        let current = read(&results_path);
        println!(
            "gate {}: {} baseline kernels, {} current kernels, tolerance {:.0}%",
            baseline.experiment,
            baseline.entries.len(),
            current.entries.len(),
            tolerance * 100.0
        );
        for entry in &baseline.entries {
            let cur = current
                .speedup_of(&entry.kernel)
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "MISSING".to_string());
            println!(
                "  {:24} baseline {:.2}x  current {cur}",
                entry.kernel, entry.speedup
            );
        }
        violations.extend(gate(&baseline, &current, tolerance));
    }

    // Observability artifacts, when the smoke run collected them:
    // profile traces, metrics snapshots, and event journals are each
    // re-validated from the files alone.
    if let Ok(entries) = std::fs::read_dir(&results_dir) {
        let mut obs_files: Vec<PathBuf> = entries
            .filter_map(|entry| {
                let path = entry.expect("dir entry").path();
                let name = path.file_name()?.to_str()?;
                let keep = (name.starts_with("PROFILE_") && name.ends_with(".json"))
                    || (name.starts_with("METRICS_") && name.ends_with(".json"))
                    || (name.starts_with("EVENTS_") && name.ends_with(".jsonl"));
                keep.then_some(path)
            })
            .collect();
        obs_files.sort();
        for path in &obs_files {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("PROFILE_") {
                violations.extend(check_profile_flops(path));
            } else if name.starts_with("METRICS_") {
                violations.extend(check_metrics(path));
            } else {
                violations.extend(check_events(path));
            }
        }
    }
    violations.extend(check_obs_flags(&results_dir));

    if violations.is_empty() {
        println!(
            "perf gate PASSED: no kernel degraded beyond {:.0}% across {} experiment(s)",
            tolerance * 100.0,
            baseline_files.len()
        );
    } else {
        eprintln!("perf gate FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
