//! Regenerates the **§3.1/§3.2/§4.3 inspection-overhead analysis**: the
//! cost of each symbolic inspector per matrix, with the complexity
//! claims checked empirically:
//!
//! * etree construction: nearly O(|A|)
//! * row-pattern (prune-set) detection: nearly O(|A|) total... O(|L|)
//! * reach-set DFS: proportional to edges traversed + |b|
//! * node-equivalence supernode detection: proportional to nnz(L)
//!
//! Usage: `cargo run -p sympiler-bench --release --bin table3_overheads [--test]`

use sympiler_bench::engines::RUNS;
use sympiler_bench::harness::{median_time, Table};
use sympiler_bench::workloads::prepare_suite;
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    eprintln!("preparing suite...");
    let problems = prepare_suite(scale);
    let mut t = Table::new(
        "Inspection overheads (median of repeated runs)",
        &[
            "ID",
            "matrix",
            "nnz(A)",
            "nnz(L)",
            "etree",
            "row patterns",
            "supernodes",
            "reach DFS",
            "ns/nnz(L)",
        ],
    );
    for p in &problems {
        let t_etree = median_time(RUNS, || {
            std::hint::black_box(sympiler_graph::etree(&p.a));
        });
        let parent = sympiler_graph::etree(&p.a);
        let t_rows = median_time(RUNS, || {
            std::hint::black_box(sympiler_graph::ereach::row_patterns(&p.a, &parent));
        });
        let sym = sympiler_graph::symbolic_cholesky(&p.a);
        let t_super = median_time(RUNS, || {
            std::hint::black_box(sympiler_graph::supernodes_cholesky(&sym, 64));
        });
        let t_reach = median_time(RUNS, || {
            std::hint::black_box(sympiler_graph::reach(&p.l, p.b.indices()));
        });
        let total = (t_etree + t_rows + t_super + t_reach).as_nanos() as f64 / sym.l_nnz() as f64;
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            p.a.nnz().to_string(),
            sym.l_nnz().to_string(),
            format!("{:.1} us", t_etree.as_secs_f64() * 1e6),
            format!("{:.1} us", t_rows.as_secs_f64() * 1e6),
            format!("{:.1} us", t_super.as_secs_f64() * 1e6),
            format!("{:.1} us", t_reach.as_secs_f64() * 1e6),
            format!("{total:.1}"),
        ]);
    }
    t.emit(Some("overheads.csv"));
    println!("ns/nnz(L) roughly constant across matrices => near-linear inspection cost (paper's 'nearly O(|A|)')");
}
