//! The robustness experiment: deterministic fault injection against
//! the tiered recovery ladder and the serving layer.
//!
//! Three campaigns, all bit-reproducible (seeded injectors from
//! [`sympiler_sparse::faults`], fixed suite problems):
//!
//! 1. **Refinement on the structurally hostile problem** — the
//!    acceptance criterion of the robustness work: `circuit_zdiag_u`
//!    (structurally zero diagonals) compiled once with the
//!    pattern-only [`PrePivot::Transversal`] pre-pivot must solve to a
//!    componentwise backward error ≤ 1e-12 through
//!    [`LuFactor::solve_refined`] — no recompilation, no value-aware
//!    matching. The transversal guarantees a *nonzero* static
//!    diagonal, not a *large* one; refinement absorbs the growth.
//!    Gate entry `circuit_zdiag_u:refine_berr` is a deterministic
//!    1.0 flag (flipped to 0.0 if the berr contract breaks).
//! 2. **Recovery-rate sweep** — healthy suite problems are degraded by
//!    value-level faults the compiled plans cannot see: zeroed
//!    diagonal entries, 1e-300-scaled tiny pivots, and ±6-decade row
//!    ill-scaling. Every faulted system goes through
//!    [`RobustLu::solve`]'s ladder (accept → refine → re-factor via
//!    the partial-pivoting baseline); the campaign reports the rung
//!    histogram, mean refinement iterations, and the recovery rate.
//!    Gate entry `faults:recovery_rate` (deterministically 1.0: the
//!    last rung is a partial-pivoting factorization of a nonsingular
//!    system).
//! 3. **Serving no-hang** — worker panics and whole-worker deaths are
//!    armed inside the [`FactorService`] pool while a request stream
//!    runs. Every ticket must resolve through
//!    [`Ticket::wait_timeout`] — a fault maps to a typed
//!    [`ServeError`], never a hang — and the pool must keep serving
//!    afterwards (a dying worker's sentinel respawns its replacement
//!    during the unwind itself). Gate entry `serve:no_hang`
//!    (deterministic 1.0).
//!
//! Writes `results/robust_bench.csv` plus the machine-readable
//! `results/BENCH_robust_bench.json` consumed by the CI perf gate.
//! Run with `--test-scale` (or `--test`) for the CI smoke run; the
//! default runs the bench-scale suite.
//!
//! [`LuFactor::solve_refined`]: sympiler_core::plan::lu::LuFactor::solve_refined

use std::sync::Arc;
use std::time::{Duration, Instant};
use sympiler_bench::harness::Table;
use sympiler_bench::perf::PerfReport;
use sympiler_bench::workloads::{prepare_lu_subset, LuBenchProblem};
use sympiler_core::serve::{fault, CacheConfig, FactorService, PlanCache, ServeRequest, Ticket};
use sympiler_core::{PrePivot, RobustLu, Rung, ServeError, SympilerLu, SympilerOptions};
use sympiler_sparse::faults::{ill_scale_rows, pick_columns, tiny_diagonals, zero_diagonals};
use sympiler_sparse::suite::SuiteScale;
use sympiler_sparse::CscMatrix;

/// Berr contract for every campaign (matches
/// `RecoveryPolicy::default().berr_tol`).
const BERR_TOL: f64 = 1e-12;

/// Campaign 1: the acceptance criterion. Compile `circuit_zdiag_u`
/// once with the pattern-only transversal, then drive every solve
/// through refinement — factor growth from the value-blind pre-pivot
/// must be fully absorbed without recompiling.
fn run_zdiag_refinement(p: &LuBenchProblem, table: &mut Table) -> (f64, f64, usize) {
    let opts = SympilerOptions {
        pre_pivot: PrePivot::Transversal,
        ..SympilerOptions::default()
    };
    let lu = SympilerLu::compile(&p.a, &opts).expect("transversal compile");
    let t0 = Instant::now();
    let factor = lu.factor(&p.a).expect("transversal factor");
    let (x, report) = factor.solve_refined(&p.a, &p.b, BERR_TOL, 10);
    let elapsed = t0.elapsed();
    assert_eq!(x.len(), p.n());
    assert!(
        report.final_berr <= BERR_TOL,
        "{}: refined berr {:.3e} misses the {BERR_TOL:.0e} contract \
         (initial {:.3e}, {} iters)",
        p.name,
        report.final_berr,
        report.initial_berr,
        report.iterations
    );
    table.row(vec![
        "zdiag-refine".into(),
        p.name.into(),
        p.n().to_string(),
        "transversal".into(),
        format!("{:.3e}", report.initial_berr),
        format!("{:.3e}", report.final_berr),
        report.iterations.to_string(),
        format!("{elapsed:.3?}"),
    ]);
    (report.initial_berr, report.final_berr, report.iterations)
}

struct FaultOutcome {
    campaign: &'static str,
    recovered: usize,
    total: usize,
    accepts: usize,
    refines: usize,
    refactors: usize,
    refine_iters: usize,
}

/// Run one faulted system through the ladder, tallying the rung.
fn solve_faulted(robust: &RobustLu, a: &CscMatrix, b: &[f64], out: &mut FaultOutcome) {
    out.total += 1;
    match robust.solve(a, b) {
        Ok(r) => {
            assert!(
                r.berr <= BERR_TOL,
                "{}: recovered berr {:.3e} above tolerance",
                out.campaign,
                r.berr
            );
            out.recovered += 1;
            match r.rung {
                Rung::Accept => out.accepts += 1,
                Rung::Refine => out.refines += 1,
                Rung::Refactor => out.refactors += 1,
            }
            if let Some(rep) = &r.refine {
                out.refine_iters += rep.iterations;
            }
        }
        Err(e) => {
            eprintln!("{}: ladder exhausted: {e}", out.campaign);
        }
    }
}

/// Campaign 2: value-level faults against healthy plans.
fn run_fault_sweep(problems: &[LuBenchProblem], n_faults: usize, table: &mut Table) -> f64 {
    let opts = SympilerOptions::default();
    let mut campaigns = [
        FaultOutcome {
            campaign: "zero-diag",
            recovered: 0,
            total: 0,
            accepts: 0,
            refines: 0,
            refactors: 0,
            refine_iters: 0,
        },
        FaultOutcome {
            campaign: "tiny-pivot",
            recovered: 0,
            total: 0,
            accepts: 0,
            refines: 0,
            refactors: 0,
            refine_iters: 0,
        },
        FaultOutcome {
            campaign: "ill-scaled",
            recovered: 0,
            total: 0,
            accepts: 0,
            refines: 0,
            refactors: 0,
            refine_iters: 0,
        },
    ];
    for p in problems {
        // One compiled plan per problem; every faulted variant reuses
        // it — the faults are value-only by construction.
        let robust = RobustLu::compile(&p.a, &opts).expect("healthy compile");

        // (a) zeroed diagonal values: the static pivot vanishes
        // outright — refinement is impossible, the ladder must reach
        // the partial-pivoting baseline. Column 0 is always in the
        // fault set: its pivot takes no updates from earlier columns,
        // so the zero survives elimination and the factor *must* fail
        // (later columns may be rescued by incoming updates).
        let mut cols = pick_columns(p.n(), n_faults, 0x5eed + p.id as u64);
        if !cols.contains(&0) {
            cols.insert(0, 0);
        }
        let (faulted, hit) = zero_diagonals(&p.a, &cols);
        assert!(!hit.is_empty(), "{}: no diagonal to zero", p.name);
        solve_faulted(&robust, &faulted, &p.b, &mut campaigns[0]);

        // (b) tiny pivots: formally nonzero, numerically meaningless.
        let (faulted, hit) = tiny_diagonals(&p.a, &cols, 1e-300);
        assert!(!hit.is_empty());
        solve_faulted(&robust, &faulted, &p.b, &mut campaigns[1]);

        // (c) row ill-scaling: solvability preserved (scale b too),
        // componentwise conditioning wrecked.
        let (scaled, d) = ill_scale_rows(&p.a, 6.0, 0xba5e + p.id as u64);
        let b_scaled: Vec<f64> = p.b.iter().zip(&d).map(|(b, s)| b * s).collect();
        solve_faulted(&robust, &scaled, &b_scaled, &mut campaigns[2]);
    }
    let (mut recovered, mut total) = (0, 0);
    for c in &campaigns {
        recovered += c.recovered;
        total += c.total;
        let mean_iters = c.refine_iters as f64 / (c.refines.max(1)) as f64;
        table.row(vec![
            "faults".into(),
            c.campaign.into(),
            format!("{}/{}", c.recovered, c.total),
            format!("a:{} r:{} f:{}", c.accepts, c.refines, c.refactors),
            String::new(),
            String::new(),
            format!("{mean_iters:.1}"),
            String::new(),
        ]);
    }
    recovered as f64 / total.max(1) as f64
}

/// Campaign 3: armed worker faults must never hang a ticket or kill
/// the pool. Returns 1.0 when every ticket resolved in time and the
/// pool still serves; panics (failing the bench) otherwise.
fn run_serve_no_hang(p: &LuBenchProblem, table: &mut Table) -> f64 {
    const WAIT: Duration = Duration::from_secs(30);
    let opts = SympilerOptions::default();
    let cache = Arc::new(PlanCache::new(CacheConfig::default()));
    let service = FactorService::new(2, Arc::clone(&cache));
    let req = |a: &CscMatrix| ServeRequest {
        a: a.clone(),
        opts: opts.clone(),
        rhs: vec![p.b.clone()],
    };
    let wait = |t: Ticket, tag: &str| -> Result<(), ServeError> {
        match t.wait_timeout(WAIT) {
            Err(ServeError::Timeout { .. }) => panic!("{tag}: ticket hung past {WAIT:?}"),
            r => r.map(|_| ()),
        }
    };
    // Warm the cache, then arm faults: 2 soft panics and 2 hard
    // worker deaths interleaved with healthy requests. The injected
    // panics are expected — silence the default hook's backtraces for
    // the duration of the campaign.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    wait(service.submit(req(&p.a)), "warmup").expect("healthy warmup");
    let mut panics_seen = 0;
    let mut disconnects_seen = 0;
    let t0 = Instant::now();
    fault::arm_worker_panics(2);
    for k in 0..4 {
        match wait(service.submit(req(&p.a)), "soft-fault stream") {
            Ok(()) => {}
            Err(ServeError::WorkerPanic { .. }) => panics_seen += 1,
            Err(e) => panic!("soft-fault request {k}: unexpected {e}"),
        }
    }
    assert_eq!(
        panics_seen, 2,
        "both armed panics must surface as typed errors"
    );
    fault::arm_worker_deaths(2);
    for k in 0..4 {
        match wait(service.submit(req(&p.a)), "hard-fault stream") {
            Ok(()) => {}
            Err(ServeError::Disconnected) => disconnects_seen += 1,
            Err(e) => panic!("hard-fault request {k}: unexpected {e}"),
        }
    }
    fault::disarm();
    assert_eq!(
        disconnects_seen, 2,
        "both armed deaths must surface as disconnects"
    );
    // The pool respawned: healthy traffic flows again.
    wait(service.submit(req(&p.a)), "recovery").expect("pool must keep serving");
    assert_eq!(service.n_workers(), 2, "pool size is fixed");
    std::panic::set_hook(quiet);
    let elapsed = t0.elapsed();
    table.row(vec![
        "serve".into(),
        p.name.into(),
        "10 req".into(),
        format!("panics:{panics_seen} deaths:{disconnects_seen}"),
        String::new(),
        String::new(),
        String::new(),
        format!("{elapsed:.3?}"),
    ]);
    1.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_scale = args.iter().any(|a| a == "--test-scale" || a == "--test");
    let scale = if test_scale {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    // Healthy problems for the fault sweep (convection-diffusion +
    // circuit families) and the zero-diagonal circuit for the
    // refinement acceptance run.
    let healthy = prepare_lu_subset(scale, &[1, 3]);
    let zdiag = prepare_lu_subset(scale, &[6]);
    assert_eq!(zdiag.len(), 1, "suite must carry circuit_zdiag_u");
    let n_faults = if test_scale { 3 } else { 8 };

    let mut report = PerfReport::new("robust_bench");
    let mut table = Table::new(
        &format!(
            "robustness: zdiag refinement, fault-injection recovery, serving \
             no-hang ({} scale)",
            if test_scale { "test" } else { "bench" }
        ),
        &[
            "campaign",
            "problem",
            "n / tally",
            "detail",
            "berr before",
            "berr after",
            "iters",
            "time",
        ],
    );

    let (_, final_berr, _) = run_zdiag_refinement(&zdiag[0], &mut table);
    report.push(
        &format!("{}:refine_berr", zdiag[0].name),
        if final_berr <= BERR_TOL { 1.0 } else { 0.0 },
    );

    let recovery_rate = run_fault_sweep(&healthy, n_faults, &mut table);
    report.push("faults:recovery_rate", recovery_rate);
    assert!(
        recovery_rate >= 1.0,
        "recovery rate {recovery_rate:.3}: the ladder's last rung is a \
         partial-pivoting factorization of a nonsingular system — it must recover"
    );

    let no_hang = run_serve_no_hang(&healthy[0], &mut table);
    report.push("serve:no_hang", no_hang);

    table.emit(Some("robust_bench.csv"));
    report.write_results().expect("write perf report");
    println!(
        "robustness contract held: berr ≤ {BERR_TOL:.0e} on circuit_zdiag_u via \
         refinement, {:.0}% fault recovery, no serving hangs",
        recovery_rate * 100.0
    );
}
