//! Structural diagnostics for the benchmark suite: fill-in, supernode
//! widths, average column counts — the quantities the paper's
//! thresholds and regime arguments are built on. For the unsymmetric
//! LU suite, a second table reports per-ordering structure: fill ratio
//! `nnz(L+U)/nnz(A)` and the column elimination DAG's average
//! parallelism under each `Ordering` — the two numbers a fill-reducing
//! ordering exists to move. The zero-diagonal rows additionally carry
//! the numerical-health monitors of a transversal-pre-pivoted
//! factorization (pivot growth, the smallest pivot magnitude, and the
//! componentwise backward error after iterative refinement) — the
//! quantities that motivate the weighted matching and calibrate the
//! recovery ladder's refinement rung.
//!
//! A third table times the numeric phase itself: repeated
//! factorizations per unsymmetric problem recorded into the
//! observability layer's log-bucketed [`Histogram`] — the same
//! buckets the serving layer exports — reported as p50/p90/p99/p999
//! factor latency.
//!
//! Usage: `cargo run -p sympiler-bench --release --bin suite_stats [--test]`

use std::time::{Duration, Instant};
use sympiler_bench::harness::Table;
use sympiler_core::plan::lu::LuPlan;
use sympiler_core::{LuWorkspace, PrePivot, SympilerLu, SympilerOptions};
use sympiler_graph::levels::dag_levels_from_preds;
use sympiler_graph::rcm::rcm_permute;
use sympiler_graph::{compute_ordering, lu_symbolic, Ordering};
use sympiler_obs::Histogram;
use sympiler_sparse::suite::{suite, unsym_suite, SuiteScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    let mut t = Table::new(
        "Suite structure diagnostics",
        &[
            "ID",
            "matrix",
            "n",
            "nnz(A)",
            "nnz(L)",
            "fill",
            "supernodes",
            "avg width",
            "max width",
            "avg colcount",
            "factor MFLOP",
        ],
    );
    for p in suite(scale) {
        let a = if p.preordered {
            p.matrix.clone()
        } else {
            rcm_permute(&p.matrix).0
        };
        let sym = sympiler_graph::symbolic_cholesky(&a);
        let part = sympiler_graph::supernodes_cholesky(&sym, 64);
        let max_w = (0..part.n_supernodes())
            .map(|s| part.width(s))
            .max()
            .unwrap_or(0);
        let counts = sympiler_graph::colcount::col_counts_from_symbolic(&sym);
        let avg_cc = sympiler_graph::colcount::average_col_count(&counts);
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            p.n().to_string(),
            a.nnz().to_string(),
            sym.l_nnz().to_string(),
            format!("{:.1}x", sym.l_nnz() as f64 / a.nnz() as f64),
            part.n_supernodes().to_string(),
            format!("{:.2}", part.avg_width()),
            max_w.to_string(),
            format!("{avg_cc:.1}"),
            format!("{:.1}", sym.factor_flops() as f64 / 1e6),
        ]);
    }
    t.emit(Some("suite_stats.csv"));

    // --- Unsymmetric LU suite: per-ordering structure. Zero-diagonal
    // problems are analyzed after the maximum-transversal pre-pivot
    // (their honest structure: without it the symbolic analysis
    // describes a factorization the numeric phase can never run).
    let mut u = Table::new(
        "Unsymmetric suite: fill and elimination-DAG parallelism per ordering",
        &[
            "ID",
            "matrix",
            "pre-pivot",
            "n",
            "nnz(A)",
            "ordering",
            "nnz(L+U)",
            "fill",
            "DAG levels",
            "DAG par",
            "factor MFLOP",
            "growth",
            "min piv",
            "refined berr",
        ],
    );
    for p in unsym_suite(scale) {
        let (pivoted, pp_label) = if p.zero_diag {
            let rowp = sympiler_graph::transversal::maximum_transversal(&p.matrix)
                .expect("zero-diag suite problems have a perfect matching");
            (
                sympiler_sparse::ops::permute_rows(&p.matrix, &rowp).expect("valid matching"),
                "transversal",
            )
        } else {
            (p.matrix.clone(), "off")
        };
        for ordering in Ordering::ALL {
            let a = match compute_ordering(&pivoted, ordering) {
                Some(perm) => sympiler_sparse::ops::permute_rows_cols(&pivoted, &perm)
                    .expect("valid ordering"),
                None => pivoted.clone(),
            };
            let sym = lu_symbolic(&a);
            let levels = dag_levels_from_preds(sym.n, |j| sym.reach(j).iter().copied());
            let lu_nnz = sym.l_nnz() + sym.u_nnz();
            // Health of the transversal-pre-pivoted factorization on
            // the degenerate problems: how hard the pattern-only
            // matching strains static pivoting under this ordering.
            let (growth, min_piv, berr) = if p.zero_diag {
                let health =
                    LuPlan::build_pivoted(&p.matrix, true, 2, ordering, PrePivot::Transversal)
                        .ok()
                        .and_then(|plan| {
                            let f = plan.factor(&p.matrix).ok()?;
                            let h = plan.health_of(&p.matrix, &f);
                            // The refinement rung's calibration: how
                            // far the pattern-only pre-pivot's berr
                            // falls once refinement absorbs the growth.
                            let b: Vec<f64> = (0..p.n()).map(|i| 1.0 + (i % 7) as f64).collect();
                            let (_, rep) = f.solve_refined(&p.matrix, &b, 1e-12, 10);
                            Some((h, rep.final_berr))
                        });
                match health {
                    Some((h, berr)) => (
                        format!("{:.1e}", h.growth),
                        format!("{:.1e}", h.min_pivot),
                        format!("{berr:.1e}"),
                    ),
                    None => ("fail".to_string(), "fail".to_string(), "fail".to_string()),
                }
            } else {
                ("-".to_string(), "-".to_string(), "-".to_string())
            };
            u.row(vec![
                p.id.to_string(),
                p.name.to_string(),
                pp_label.to_string(),
                p.n().to_string(),
                p.matrix.nnz().to_string(),
                ordering.label().to_string(),
                lu_nnz.to_string(),
                format!("{:.2}x", (lu_nnz - p.n()) as f64 / p.matrix.nnz() as f64),
                levels.n_levels().to_string(),
                format!("{:.2}", levels.avg_parallelism()),
                format!("{:.1}", sym.factor_flops() as f64 / 1e6),
                growth,
                min_piv,
                berr,
            ]);
        }
    }
    u.emit(Some("suite_stats_unsym.csv"));

    // --- Numeric factor latency, histogram-sourced: the tail
    // quantiles (p999 especially) come out of the log-bucketed
    // histogram rather than a sorted sample vector, so this table and
    // the serving layer's exported metrics agree on bucket semantics
    // (quantile = upper bound of the covering bucket, ≤ 12.5% wide).
    let samples = if matches!(scale, SuiteScale::Test) {
        8usize
    } else {
        25
    };
    let mut l = Table::new(
        "Unsymmetric suite: numeric factor latency (log-bucketed histogram)",
        &["ID", "matrix", "n", "samples", "p50", "p90", "p99", "p999"],
    );
    for p in unsym_suite(scale) {
        let opts = SympilerOptions {
            pre_pivot: if p.zero_diag {
                PrePivot::Transversal
            } else {
                PrePivot::Off
            },
            ..SympilerOptions::default()
        };
        let lu = SympilerLu::compile(&p.matrix, &opts).expect("latency compile");
        let mut ws = LuWorkspace::new();
        let hist = Histogram::new();
        for _ in 0..samples {
            let t = Instant::now();
            std::hint::black_box(lu.factor_with(&p.matrix, &mut ws).expect("latency factor"));
            hist.record_duration(t.elapsed());
        }
        let q = |quant: f64| format!("{:.3?}", Duration::from_nanos(hist.quantile(quant)));
        l.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            p.n().to_string(),
            samples.to_string(),
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
        ]);
    }
    l.emit(Some("suite_stats_latency.csv"));
}
