//! Structural diagnostics for the benchmark suite: fill-in, supernode
//! widths, average column counts — the quantities the paper's
//! thresholds and regime arguments are built on.
//!
//! Usage: `cargo run -p sympiler-bench --release --bin suite_stats [--test]`

use sympiler_bench::harness::Table;
use sympiler_graph::rcm::rcm_permute;
use sympiler_sparse::suite::{suite, SuiteScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    let mut t = Table::new(
        "Suite structure diagnostics",
        &[
            "ID",
            "matrix",
            "n",
            "nnz(A)",
            "nnz(L)",
            "fill",
            "supernodes",
            "avg width",
            "max width",
            "avg colcount",
            "factor MFLOP",
        ],
    );
    for p in suite(scale) {
        let a = if p.preordered {
            p.matrix.clone()
        } else {
            rcm_permute(&p.matrix).0
        };
        let sym = sympiler_graph::symbolic_cholesky(&a);
        let part = sympiler_graph::supernodes_cholesky(&sym, 64);
        let max_w = (0..part.n_supernodes())
            .map(|s| part.width(s))
            .max()
            .unwrap_or(0);
        let counts = sympiler_graph::colcount::col_counts_from_symbolic(&sym);
        let avg_cc = sympiler_graph::colcount::average_col_count(&counts);
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            p.n().to_string(),
            a.nnz().to_string(),
            sym.l_nnz().to_string(),
            format!("{:.1}x", sym.l_nnz() as f64 / a.nnz() as f64),
            part.n_supernodes().to_string(),
            format!("{:.2}", part.avg_width()),
            max_w.to_string(),
            format!("{avg_cc:.1}"),
            format!("{:.1}", sym.factor_flops() as f64 / 1e6),
        ]);
    }
    t.emit(Some("suite_stats.csv"));
}
