//! Regenerates **Figure 7**: Cholesky factorization GFLOP/s — Sympiler
//! (VS-Block / +Low-Level) vs Eigen (simplicial) and CHOLMOD
//! (supernodal), numeric phase only.
//!
//! The paper's headline: Sympiler up to 2.4x over CHOLMOD and 6.3x over
//! Eigen; Eigen's simplicial code does not scale to large matrices;
//! CHOLMOD lags on problems with small supernodes.
//!
//! Usage: `cargo run -p sympiler-bench --release --bin fig7 [--test]`

use sympiler_bench::engines::{chol_flops, time_chol_engine, CholEngine};
use sympiler_bench::harness::{geomean, gflops, Table};
use sympiler_bench::workloads::prepare_suite;
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    eprintln!("preparing suite...");
    let problems = prepare_suite(scale);
    let mut t = Table::new(
        "Figure 7: Cholesky GFLOP/s, numeric phase (higher is better)",
        &[
            "ID",
            "matrix",
            "Eigen",
            "CHOLMOD",
            "Sympiler VS-Block",
            "Sympiler +Low-Level",
            "vs Eigen",
            "vs CHOLMOD",
        ],
    );
    let (mut vs_eigen, mut vs_cholmod) = (Vec::new(), Vec::new());
    for p in &problems {
        let flops = chol_flops(p);
        let t_eigen = time_chol_engine(p, CholEngine::Eigen);
        let t_cholmod = time_chol_engine(p, CholEngine::Cholmod);
        let t_vs = time_chol_engine(p, CholEngine::SympilerVsBlock);
        let t_full = time_chol_engine(p, CholEngine::SympilerFull);
        let se = t_eigen.as_secs_f64() / t_full.as_secs_f64();
        let sc = t_cholmod.as_secs_f64() / t_full.as_secs_f64();
        vs_eigen.push(se);
        vs_cholmod.push(sc);
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            format!("{:.3}", gflops(flops, t_eigen)),
            format!("{:.3}", gflops(flops, t_cholmod)),
            format!("{:.3}", gflops(flops, t_vs)),
            format!("{:.3}", gflops(flops, t_full)),
            format!("{:.2}x", se),
            format!("{:.2}x", sc),
        ]);
    }
    t.emit(Some("fig7.csv"));
    println!(
        "geomean speedups: vs Eigen {:.2}x (paper: up to 6.3x), vs CHOLMOD {:.2}x (paper: up to 2.4x, avg 1.5x)",
        geomean(&vs_eigen),
        geomean(&vs_cholmod)
    );
}
