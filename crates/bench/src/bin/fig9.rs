//! Regenerates **Figure 9**: Cholesky — symbolic + numeric time for
//! Sympiler, Eigen, and CHOLMOD, normalized to Eigen's accumulated
//! symbolic + numeric time (lower is better).
//!
//! The paper: "In nearly all cases Sympiler's accumulated time is
//! better than the other two libraries."
//!
//! Usage: `cargo run -p sympiler-bench --release --bin fig9 [--test]`

use sympiler_bench::engines::{time_chol_engine, CholEngine, RUNS};
use sympiler_bench::harness::{geomean, median_time, Table};
use sympiler_bench::workloads::prepare_suite;
use sympiler_core::{SympilerCholesky, SympilerOptions};
use sympiler_solvers::cholesky::simplicial::SimplicialCholesky;
use sympiler_solvers::cholesky::supernodal::SupernodalCholesky;
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    eprintln!("preparing suite...");
    let problems = prepare_suite(scale);
    let mut t = Table::new(
        "Figure 9: Cholesky (symbolic+numeric) / Eigen total (lower is better)",
        &[
            "ID",
            "matrix",
            "Eigen sym",
            "Eigen num",
            "CHOLMOD total/Eigen",
            "Sympiler total/Eigen",
        ],
    );
    let (mut r_cholmod, mut r_symp) = (Vec::new(), Vec::new());
    for p in &problems {
        // Symbolic (analysis) times.
        let sym_eigen = median_time(RUNS, || {
            let c = SimplicialCholesky::analyze(&p.a).expect("spd");
            std::hint::black_box(&c);
        });
        let sym_cholmod = median_time(RUNS, || {
            let c = SupernodalCholesky::analyze(&p.a, 64).expect("spd");
            std::hint::black_box(&c);
        });
        let sym_symp = median_time(RUNS, || {
            let c = SympilerCholesky::compile(&p.a, &SympilerOptions::default()).expect("spd");
            std::hint::black_box(&c);
        });
        // Numeric times.
        let num_eigen = time_chol_engine(p, CholEngine::Eigen);
        let num_cholmod = time_chol_engine(p, CholEngine::Cholmod);
        let num_symp = time_chol_engine(p, CholEngine::SympilerFull);

        let eigen_total = (sym_eigen + num_eigen).as_secs_f64();
        let rc = (sym_cholmod + num_cholmod).as_secs_f64() / eigen_total;
        let rs = (sym_symp + num_symp).as_secs_f64() / eigen_total;
        r_cholmod.push(rc);
        r_symp.push(rs);
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            format!("{:.2} ms", sym_eigen.as_secs_f64() * 1e3),
            format!("{:.2} ms", num_eigen.as_secs_f64() * 1e3),
            format!("{:.2}", rc),
            format!("{:.2}", rs),
        ]);
    }
    t.emit(Some("fig9.csv"));
    println!(
        "geomean totals vs Eigen: CHOLMOD {:.2}, Sympiler {:.2}  (paper: Sympiler < 1 nearly everywhere)",
        geomean(&r_cholmod),
        geomean(&r_symp)
    );
}
