//! Regenerates the **§1.1 motivating numbers**: Sympiler-generated
//! triangular solve vs the naive forward solve (Figure 1b) and the
//! library-equivalent code (Figure 1c).
//!
//! Paper: "speedups between 8.4x to 19x with an average of 13.6x
//! compared to the forward solve code and from 1.2x to 1.7x with an
//! average of 1.3x compared to the library-equivalent code."
//!
//! Usage: `cargo run -p sympiler-bench --release --bin motivating [--test]`

use sympiler_bench::engines::{time_tri_engine, TriEngine};
use sympiler_bench::harness::{geomean, Table};
use sympiler_bench::workloads::prepare_suite;
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    eprintln!("preparing suite...");
    let problems = prepare_suite(scale);
    let mut t = Table::new(
        "Section 1.1: Sympiler trisolve speedups",
        &["ID", "matrix", "vs naive (Fig 1b)", "vs library (Fig 1c)"],
    );
    let (mut vs_naive, mut vs_lib) = (Vec::new(), Vec::new());
    for p in &problems {
        let t_naive = time_tri_engine(p, TriEngine::Naive);
        let t_lib = time_tri_engine(p, TriEngine::Eigen);
        let t_symp = time_tri_engine(p, TriEngine::SympilerFull);
        let sn = t_naive.as_secs_f64() / t_symp.as_secs_f64();
        let sl = t_lib.as_secs_f64() / t_symp.as_secs_f64();
        vs_naive.push(sn);
        vs_lib.push(sl);
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            format!("{sn:.1}x"),
            format!("{sl:.2}x"),
        ]);
    }
    t.emit(Some("motivating.csv"));
    println!(
        "geomean: vs naive {:.1}x (paper avg 13.6x), vs library {:.2}x (paper avg 1.3x)",
        geomean(&vs_naive),
        geomean(&vs_lib)
    );
}
