//! The sparse-LU experiment: baseline Gilbert–Peierls (symbolic DFS
//! coupled into every numeric factorization) vs. the Sympiler LU plan
//! (symbolic analysis once at compile time, numeric-only factor).
//!
//! For every unsymmetric suite problem this prints the median numeric
//! factorization time of each engine, the decoupling speedup, the
//! amortized symbolic overhead, and verifies that the plan reproduces
//! the baseline factors bit-for-pattern and to 1e-10 in values.
//!
//! Run with `--test-scale` for a fast smoke run (CI uses this); the
//! default runs the bench-scale suite.

use sympiler_bench::engines::{time_lu_engine, LuEngine, RUNS};
use sympiler_bench::harness::{geomean, gflops, median_time, Table};
use sympiler_bench::workloads::prepare_lu_suite;
use sympiler_core::{SympilerLu, SympilerOptions};
use sympiler_solvers::lu::{lu_reconstruction_error, GpLu, Pivoting};
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let test_scale = std::env::args().any(|a| a == "--test-scale");
    let scale = if test_scale {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    let problems = prepare_lu_suite(scale);
    let mut table = Table::new(
        "Sparse LU: coupled baseline vs. Sympiler plan (median numeric time)",
        &[
            "id",
            "problem",
            "n",
            "nnz(A)",
            "nnz(L+U)",
            "GPLU coupled",
            "GPLU partial",
            "Sympiler plan",
            "speedup",
            "plan GF/s",
            "symbolic",
        ],
    );
    let mut speedups = Vec::new();
    for p in &problems {
        // Verification first: the plan must reproduce the statically
        // pivoted baseline factors exactly in pattern and to 1e-10 in
        // values (the acceptance contract of the subsystem).
        let base = GpLu::factor(&p.a, Pivoting::None).expect("baseline factors");
        assert!(
            base.is_identity_perm(),
            "{}: static pivoting must not permute",
            p.name
        );
        let t = std::time::Instant::now();
        let lu = SympilerLu::compile(&p.a, &SympilerOptions::default()).unwrap();
        let compile_time = t.elapsed();
        let f = lu.factor(&p.a).expect("plan factors");
        assert!(f.l().same_pattern(&base.l), "{}: L pattern", p.name);
        assert!(f.u().same_pattern(&base.u), "{}: U pattern", p.name);
        for (x, y) in f
            .l()
            .values()
            .iter()
            .chain(f.u().values())
            .zip(base.l.values().iter().chain(base.u.values()))
        {
            assert!((x - y).abs() < 1e-10, "{}: factor value drift", p.name);
        }
        assert!(
            lu_reconstruction_error(&p.a, &base) < 1e-10,
            "{}: baseline reconstruction",
            p.name
        );
        // End-to-end solve sanity.
        let x = f.solve(&p.b);
        let resid = sympiler_sparse::ops::rel_residual(&p.a, &x, &p.b);
        assert!(resid < 1e-10, "{}: solve residual {resid}", p.name);

        // Timings.
        let t_coupled = time_lu_engine(p, LuEngine::GpluCoupled);
        let t_partial = time_lu_engine(p, LuEngine::GpluPartial);
        let t_plan = {
            // Reuse one compiled plan across the timed runs, matching
            // how time_lu_engine holds analysis outside the region.
            median_time(RUNS, || {
                let f = lu.factor(&p.a).expect("factor");
                std::hint::black_box(&f);
            })
        };
        // Identical to engines::lu_flops(p) but free: the compiled plan
        // already carries the exact count.
        let flops = lu.flops();
        let speedup = t_coupled.as_secs_f64() / t_plan.as_secs_f64().max(1e-12);
        speedups.push(speedup);
        table.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            p.n().to_string(),
            p.a.nnz().to_string(),
            (f.l().nnz() + f.u().nnz()).to_string(),
            format!("{:.3?}", t_coupled),
            format!("{:.3?}", t_partial),
            format!("{:.3?}", t_plan),
            format!("{speedup:.2}x"),
            format!("{:.3}", gflops(flops, t_plan)),
            format!("{:.3?}", compile_time),
        ]);
    }
    table.emit(Some("lu_compare.csv"));
    println!(
        "geomean decoupling speedup (coupled GPLU / plan): {:.2}x over {} problems",
        geomean(&speedups),
        speedups.len()
    );
    println!("all factor patterns + values verified against the baseline (1e-10)");
}
