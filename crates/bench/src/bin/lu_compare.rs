//! The sparse-LU experiment: baseline Gilbert–Peierls (symbolic DFS
//! coupled into every numeric factorization) vs. the Sympiler LU plan
//! (symbolic analysis once at compile time, numeric-only factor),
//! serial and level-scheduled parallel — now swept across the
//! fill-reducing **ordering knob** (natural / RCM / COLAMD).
//!
//! For every unsymmetric suite problem and every ordering this prints
//! the median numeric factorization time of each engine, the
//! decoupling speedup, the fill ratio `nnz(L+U)/nnz(A)`, the parallel
//! numeric times at 2 and 4 workers with the 4-worker scaling ratio
//! and the elimination DAG's available parallelism, and verifies that
//! (a) the plan reproduces the identically ordered baseline factors in
//! pattern and to 1e-10 in values, (b) the parallel plan reproduces
//! the serial plan **bitwise** at every thread count, and (c) the
//! end-to-end solve answers the *original* system regardless of the
//! ordering baked inside.
//!
//! The supernodal (VS-Block) engine rides in its own columns: median
//! numeric time, decoupling speedup, and the per-problem panel
//! statistics (panel count with wide count, mean panel width, % of
//! factorization flops in dense kernels), with its factors verified to
//! 1e-10 against the same ordered GPLU baseline under every ordering.
//!
//! Writes `results/lu_compare.csv` plus the machine-readable
//! `results/BENCH_lu_compare.json` consumed by the CI perf gate. The
//! report carries, per problem: the natural-order decoupling speedup
//! (`<name>`, the historical gate entry), the supernodal engine's
//! natural-order speedup (`<name>:supernodal`), each ordering's
//! decoupling speedups (`<name>:<ordering>`,
//! `<name>:<ordering>_supernodal`), each ordering's **fill gain** over
//! natural order (`<name>:<ordering>_fill_gain`,
//! `nnz(L+U)_natural / nnz(L+U)_ordered`), and each ordering's **mean
//! panel width** (`<name>:<ordering>_panel_width`). Fill gains and
//! panel widths are deterministic, so the gate catches ordering- and
//! blocking-quality regressions, not just timing ones.
//!
//! Run with `--test-scale` (or `--test`, for `all_experiments`
//! compatibility) for a fast smoke run (CI uses this); the default
//! runs the bench-scale suite.

use sympiler_bench::engines::time_lu_factorizer;
use sympiler_bench::harness::{geomean, gflops, Table};
use sympiler_bench::perf::PerfReport;
use sympiler_bench::workloads::prepare_lu_suite;
use sympiler_core::plan::lu_parallel::ParallelLuPlan;
use sympiler_core::plan::lu_supernodal::SupernodalLuPlan;
use sympiler_core::{BlockLu, Ordering, SympilerLu, SympilerOptions};
use sympiler_solvers::lu::{lu_reconstruction_error, GpLu, Pivoting};
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let test_scale = std::env::args().any(|a| a == "--test-scale" || a == "--test");
    let scale = if test_scale {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    let problems = prepare_lu_suite(scale);
    let mut table = Table::new(
        "Sparse LU: coupled baseline vs. Sympiler plan across orderings (median numeric time)",
        &[
            "id",
            "problem",
            "ordering",
            "n",
            "nnz(L+U)",
            "fill",
            "GPLU coupled",
            "GPLU partial",
            "plan serial",
            "speedup",
            "supernodal",
            "sup speedup",
            "panels",
            "mean w",
            "dense flops",
            "plan 2T",
            "plan 4T",
            "scal 4T",
            "DAG par",
            "plan GF/s",
            "symbolic",
        ],
    );
    let mut speedups = Vec::new();
    let mut sup_speedups = Vec::new();
    let mut scalings_by_ordering = vec![Vec::new(); Ordering::ALL.len()];
    let mut report = PerfReport::new("lu_compare");
    for p in &problems {
        let mut natural_lu_nnz = 0usize;
        for (oi, &ordering) in Ordering::ALL.iter().enumerate() {
            // Verification first: the plan must reproduce the
            // identically ordered, statically pivoted baseline factors
            // exactly in pattern and to 1e-10 in values (the
            // acceptance contract of the subsystem).
            let base =
                GpLu::factor_ordered(&p.a, Pivoting::None, ordering).expect("baseline factors");
            assert!(
                base.factors.is_identity_perm(),
                "{}: static pivoting must not row-permute",
                p.name
            );
            let t = std::time::Instant::now();
            // Pin the scalar serial tier: "plan serial" measures the
            // column plan; the supernodal engine gets its own column.
            let opts = SympilerOptions {
                ordering,
                block_lu: BlockLu::Off,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&p.a, &opts).unwrap();
            let compile_time = t.elapsed();
            let f = lu.factor(&p.a).expect("plan factors");
            assert!(f.l().same_pattern(&base.factors.l), "{}: L pattern", p.name);
            assert!(f.u().same_pattern(&base.factors.u), "{}: U pattern", p.name);
            for (x, y) in f.l().values().iter().chain(f.u().values()).zip(
                base.factors
                    .l
                    .values()
                    .iter()
                    .chain(base.factors.u.values()),
            ) {
                assert!((x - y).abs() < 1e-10, "{}: factor value drift", p.name);
            }
            // Reconstruction against the matrix the factors actually
            // describe (Qᵀ A Q under an ordering, A itself otherwise).
            let ordered_a = match lu.col_perm() {
                Some(perm) => sympiler_sparse::ops::permute_rows_cols(&p.a, perm).unwrap(),
                None => p.a.clone(),
            };
            assert!(
                lu_reconstruction_error(&ordered_a, &base.factors) < 1e-10,
                "{}: baseline reconstruction under {}",
                p.name,
                ordering.label()
            );
            // End-to-end solve sanity — in original coordinates.
            let x = f.solve(&p.b);
            let resid = sympiler_sparse::ops::rel_residual(&p.a, &x, &p.b);
            assert!(resid < 1e-10, "{}: solve residual {resid}", p.name);
            // The parallel numeric phase must reproduce the serial
            // plan bitwise at every thread count (and hence match the
            // baseline to 1e-10 transitively). Leveling reuses the
            // compiled plan — no second symbolic pass.
            let par4 = ParallelLuPlan::from_plan(lu.plan().clone(), 4);
            for threads in [2usize, 4] {
                let fp = ParallelLuPlan::from_plan(par4.serial().clone(), threads)
                    .factor(&p.a)
                    .expect("parallel factors");
                for (x, y) in fp
                    .l()
                    .values()
                    .iter()
                    .chain(fp.u().values())
                    .zip(f.l().values().iter().chain(f.u().values()))
                {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}: parallel ({threads} threads) must match serial bitwise",
                        p.name
                    );
                }
            }
            // The supernodal (VS-Block) engine must reproduce the same
            // identically ordered GPLU factors to 1e-10 — dense
            // GETRF/TRSM/GEMM kernels reassociate the update sums, so
            // bitwise identity is not expected, but the acceptance
            // tolerance is.
            let sup = SupernodalLuPlan::from_plan(lu.plan().clone(), opts.max_panel, 1);
            let f_sup = sup.factor(&p.a).expect("supernodal factors");
            assert!(
                f_sup.l().same_pattern(&base.factors.l) && f_sup.u().same_pattern(&base.factors.u),
                "{}: supernodal patterns under {}",
                p.name,
                ordering.label()
            );
            for (x, y) in f_sup.l().values().iter().chain(f_sup.u().values()).zip(
                base.factors
                    .l
                    .values()
                    .iter()
                    .chain(base.factors.u.values()),
            ) {
                assert!(
                    (x - y).abs() < 1e-10,
                    "{}: supernodal factor drift under {}",
                    p.name,
                    ordering.label()
                );
            }

            // Timings, all through the shared protocol
            // (`time_lu_factorizer`). Analysis artifacts computed once
            // above — `ordered_a` for the coupled baselines, the
            // compiled plan for the Sympiler engines — are reused
            // across every timed region, without re-deriving the
            // ordering per engine.
            let t_coupled =
                time_lu_factorizer(|| GpLu::factor(&ordered_a, Pivoting::None).expect("factor"));
            let t_partial =
                time_lu_factorizer(|| GpLu::factor(&ordered_a, Pivoting::Partial).expect("factor"));
            let t_plan = time_lu_factorizer(|| lu.factor(&p.a).expect("factor"));
            let t_sup = time_lu_factorizer(|| sup.factor(&p.a).expect("factor"));
            let par2 = ParallelLuPlan::from_plan(lu.plan().clone(), 2);
            let t_par2 = time_lu_factorizer(|| par2.factor(&p.a).expect("factor"));
            let t_par4 = time_lu_factorizer(|| par4.factor(&p.a).expect("factor"));
            // Identical to engines::lu_flops(p) but free: the compiled
            // plan already carries the exact count.
            let flops = lu.flops();
            let lu_nnz = f.l().nnz() + f.u().nnz();
            let speedup = t_coupled.as_secs_f64() / t_plan.as_secs_f64().max(1e-12);
            let sup_speedup = t_coupled.as_secs_f64() / t_sup.as_secs_f64().max(1e-12);
            let scaling = t_plan.as_secs_f64() / t_par4.as_secs_f64().max(1e-12);
            scalings_by_ordering[oi].push(scaling);
            match ordering {
                Ordering::Natural => {
                    natural_lu_nnz = lu_nnz;
                    speedups.push(speedup);
                    sup_speedups.push(sup_speedup);
                    // The historical gate entry keeps its bare name;
                    // the supernodal engine gates beside it.
                    report.push(p.name, speedup);
                    report.push(&format!("{}:supernodal", p.name), sup_speedup);
                }
                _ => {
                    assert!(
                        natural_lu_nnz > 0,
                        "Ordering::ALL must list Natural first so fill gains have a denominator"
                    );
                    report.push(&format!("{}:{}", p.name, ordering.label()), speedup);
                    report.push(
                        &format!("{}:{}_fill_gain", p.name, ordering.label()),
                        natural_lu_nnz as f64 / lu_nnz as f64,
                    );
                    report.push(
                        &format!("{}:{}_supernodal", p.name, ordering.label()),
                        sup_speedup,
                    );
                    // Mean panel width is deterministic (pattern +
                    // ordering + detection rule only), so it gates
                    // blocking quality like fill gain gates ordering
                    // quality.
                    report.push(
                        &format!("{}:{}_panel_width", p.name, ordering.label()),
                        sup.mean_panel_width(),
                    );
                }
            }
            table.row(vec![
                p.id.to_string(),
                p.name.to_string(),
                ordering.label().to_string(),
                p.n().to_string(),
                lu_nnz.to_string(),
                format!("{:.2}x", lu.fill_ratio()),
                format!("{:.3?}", t_coupled),
                format!("{:.3?}", t_partial),
                format!("{:.3?}", t_plan),
                format!("{speedup:.2}x"),
                format!("{:.3?}", t_sup),
                format!("{sup_speedup:.2}x"),
                format!("{} ({} wide)", sup.n_panels(), sup.n_wide_panels()),
                format!("{:.2}", sup.mean_panel_width()),
                format!("{:.0}%", sup.dense_flop_share() * 100.0),
                format!("{:.3?}", t_par2),
                format!("{:.3?}", t_par4),
                format!("{scaling:.2}x"),
                format!("{:.1}", par4.avg_parallelism()),
                format!("{:.3}", gflops(flops, t_plan)),
                format!("{:.3?}", compile_time),
            ]);
        }
    }
    table.emit(Some("lu_compare.csv"));
    report.write_results().expect("write perf report");
    println!(
        "geomean decoupling speedup, natural order (coupled GPLU / serial plan): \
         {:.2}x over {} problems",
        geomean(&speedups),
        speedups.len()
    );
    println!(
        "geomean supernodal decoupling speedup, natural order (coupled GPLU / \
         supernodal plan): {:.2}x over {} problems",
        geomean(&sup_speedups),
        sup_speedups.len()
    );
    for (oi, &ordering) in Ordering::ALL.iter().enumerate() {
        println!(
            "geomean 4-thread scaling under {} (serial plan / 4T plan): {:.2}x",
            ordering.label(),
            geomean(&scalings_by_ordering[oi])
        );
    }
    println!(
        "all factor patterns + values verified against the identically ordered \
         baseline (1e-10), the supernodal engine included; parallel factors \
         bitwise-identical to serial at 2 and 4 threads; solves answer the \
         original systems"
    );
}
