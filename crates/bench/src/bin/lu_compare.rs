//! The sparse-LU experiment: baseline Gilbert–Peierls (symbolic DFS
//! coupled into every numeric factorization) vs. the Sympiler LU plan
//! (symbolic analysis once at compile time, numeric-only factor),
//! serial and level-scheduled parallel — swept across the
//! fill-reducing **ordering knob** (natural / RCM / COLAMD) and, on
//! the zero-diagonal problems, the **pre-pivot knob** (maximum
//! transversal / weighted matching) with **MC64 equilibration**
//! (`mc64_scale`) folded into the plan's baked gather maps.
//!
//! For every unsymmetric suite problem and every applicable
//! (pre-pivot, ordering) pair this prints the median numeric
//! factorization time of each engine, the decoupling speedup, the fill
//! ratio `nnz(L+U)/nnz(A)`, the parallel numeric times at 2 and 4
//! workers with the 4-worker scaling ratio and the elimination DAG's
//! available parallelism, and verifies that (a) the plan reproduces
//! the identically pre-pivoted, identically ordered (and, on the
//! zero-diagonal problems, identically MC64-scaled), statically
//! pivoted baseline factors in pattern and to a **uniform strict
//! 1e-10** (relative) in values on every combination — both scalar
//! engines run their update sums in the same sorted-adjacency
//! topological order, so the serial tier matches bitwise and the old
//! growth-aware tolerance carve-out for the pattern-only transversal
//! is gone — with the factorization's `|PA − LU| / (|L||U|)`
//! backward error gated at the same strict 1e-10 and pivot growth
//! asserted `< 1e2` wherever the pivots come from the weighted
//! matching (equilibration collapses it from ~1e8–1e12 to O(1)
//! there; a values-blind transversal's growth is unbounded by
//! design), (b) the parallel plan reproduces the serial plan
//! **bitwise** at every thread count, and (c) the end-to-end solve
//! answers the *original* system regardless of the permutations and
//! scalings baked inside — through both the compiled plan and the
//! independently derived `GpLu::factor_prepivoted` /
//! `factor_prepivoted_scaled` runtime baselines, with the static-
//! pivot runs on the zero-diagonal problems solving through
//! iterative refinement, their production contract.
//!
//! The supernodal (VS-Block) engine rides in its own columns: median
//! numeric time, decoupling speedup, and the per-problem panel
//! statistics, with its factors verified against the same baseline
//! under every combination — so the zero-diagonal problems exercise
//! **all three execution tiers**.
//!
//! The two zero-diagonal problems (`circuit_zdiag_u`,
//! `saddle_point_u`) are hard errors without a pre-pivot — asserted
//! here: compilation under `PrePivot::Off` succeeds but the numeric
//! phase reports the structural zero pivot — and factor cleanly under
//! both matchings.
//!
//! Writes `results/lu_compare.csv` plus the machine-readable
//! `results/BENCH_lu_compare.json` consumed by the CI perf gate. The
//! report carries, per problem: the natural-order decoupling speedup
//! (`<name>`, the historical gate entry), the supernodal engine's
//! natural-order speedup (`<name>:supernodal`), each ordering's
//! decoupling speedups (`<name>:<ordering>`,
//! `<name>:<ordering>_supernodal`), each ordering's **fill gain** over
//! natural order (`<name>:<ordering>_fill_gain`), and each ordering's
//! **mean panel width** (`<name>:<ordering>_panel_width`, from the
//! relaxed-amalgamation panel layout; asserted ≥ 2.5 on the COLAMD
//! circuit problems). The zero-diagonal problems add:
//! `<name>:zero_diag` (count of structurally missing diagonals —
//! proves the scenario is genuinely degenerate),
//! `<name>:<prepivot>_matched_diag` (diagonals the matching recovered
//! — must stay at `n`), `<name>:scaled_growth` (worst pivot growth of
//! the MC64-equilibrated weighted-matching factorizations — the
//! quantity scaling is derived to tame, gated so it stays O(1); the
//! unscaled runs blew it up to ~1e8–1e12), and speedup entries
//! `<name>:<prepivot>` / `<name>:<ordering>_<prepivot>`. Matched-diag
//! and zero-diag counts are **deterministic** (pattern + algorithm
//! only), so the gate catches pre-pivot quality regressions the way
//! fill gains catch ordering regressions.
//!
//! Every run additionally takes one **profiled** pass per problem
//! through all three execution tiers (enabled `Profiler`, natural
//! order, a weighted-matching pre-pivot on the zero-diagonal
//! problems) and checks the observability layer's flop accounting
//! against the compile-time count: serial `flops.scalar`, parallel
//! `flops.scalar`, and supernodal `flops.dense + flops.scalar` must
//! each equal `plan.flops()` **exactly** — gated per problem as the
//! deterministic `<name>:flop_accounting` entry (1.0). With
//! `--profile` the collected traces are also written to
//! `results/PROFILE_lu_compare.json` (chrome://tracing loadable) and
//! printed as a span/counter table. The main table carries the
//! numerical-health monitors (`growth`, `min piv`) for every row.
//!
//! Run with `--test-scale` (or `--test`, for `all_experiments`
//! compatibility) for a fast smoke run (CI uses this); the default
//! runs the bench-scale suite.

use std::sync::Arc;
use sympiler_bench::engines::time_lu_factorizer;
use sympiler_bench::harness::{geomean, gflops, Table};
use sympiler_bench::perf::PerfReport;
use sympiler_bench::workloads::prepare_lu_suite;
use sympiler_core::plan::lu::{LuPlan, LuPlanError};
use sympiler_core::plan::lu_parallel::ParallelLuPlan;
use sympiler_core::plan::lu_supernodal::SupernodalLuPlan;
use sympiler_core::{
    BlockLu, Ordering, PrePivot, Profiler, SympilerLu, SympilerOptions, TraceFile,
};
use sympiler_solvers::lu::{lu_backward_error, GpLu, Pivoting};
use sympiler_sparse::suite::SuiteScale;

/// One profiled pass per problem through all three numeric tiers on a
/// shared enabled profiler; returns the flop-accounting ratio
/// (profiled / compile-time, exactly 1.0 when the observability layer
/// attributes every flop) and pushes the snapshot onto the trace.
fn profile_problem(p: &sympiler_bench::workloads::LuBenchProblem, trace: &mut TraceFile) -> f64 {
    let pre_pivot = if p.zero_diag {
        PrePivot::WeightedMatching
    } else {
        PrePivot::Off
    };
    let profiler = Arc::new(Profiler::enabled());
    let plan = LuPlan::build_profiled(
        &p.a,
        true,
        2,
        Ordering::Natural,
        pre_pivot,
        Arc::clone(&profiler),
    )
    .expect("profiled plan compiles");
    let want = plan.flops();
    // Serial tier.
    let before = profiler.counter_value("flops.scalar");
    plan.factor(&p.a).expect("profiled serial factor");
    let serial = profiler.counter_value("flops.scalar") - before;
    // Parallel tier (4 workers; plan clones share the profiler).
    let before = profiler.counter_value("flops.scalar");
    ParallelLuPlan::from_plan(plan.clone(), 4)
        .factor(&p.a)
        .expect("profiled parallel factor");
    let parallel = profiler.counter_value("flops.scalar") - before;
    // Supernodal tier, under the default amalgamation budget — the
    // flop counters charge structural work only, so padded layouts
    // must not disturb the exact accounting.
    let o = SympilerOptions::default();
    let before_d = profiler.counter_value("flops.dense");
    let before_s = profiler.counter_value("flops.scalar");
    SupernodalLuPlan::from_plan_relaxed(plan.clone(), o.max_panel, 1, o.relax_fill, o.relax_cols)
        .factor(&p.a)
        .expect("profiled supernodal factor");
    let sup_dense = profiler.counter_value("flops.dense") - before_d;
    let sup_scalar = profiler.counter_value("flops.scalar") - before_s;
    // Per-tier attribution gauges ride the profile so `perf_gate` can
    // re-verify the accounting from the JSON alone.
    profiler.gauge("flops.plan", want as f64);
    profiler.gauge("flops.serial", serial as f64);
    profiler.gauge("flops.parallel", parallel as f64);
    profiler.gauge("flops.supernodal_dense", sup_dense as f64);
    profiler.gauge("flops.supernodal_scalar", sup_scalar as f64);
    trace.push(profiler.snapshot(p.name));
    (serial + parallel + sup_dense + sup_scalar) as f64 / (3 * want) as f64
}

fn main() {
    let test_scale = std::env::args().any(|a| a == "--test-scale" || a == "--test");
    let write_profile = std::env::args().any(|a| a == "--profile");
    let scale = if test_scale {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    let problems = prepare_lu_suite(scale);
    let mut table = Table::new(
        "Sparse LU: coupled baseline vs. Sympiler plan across (pre-pivot, ordering) \
         (median numeric time)",
        &[
            "id",
            "problem",
            "pre-pivot",
            "ordering",
            "n",
            "nnz(L+U)",
            "fill",
            "GPLU coupled",
            "GPLU partial",
            "plan serial",
            "speedup",
            "supernodal",
            "sup speedup",
            "panels",
            "mean w",
            "dense flops",
            "plan 2T",
            "plan 4T",
            "scal 4T",
            "DAG par",
            "plan GF/s",
            "growth",
            "min piv",
            "symbolic",
        ],
    );
    let mut trace = TraceFile::new("lu_compare");
    let mut speedups = Vec::new();
    let mut sup_speedups = Vec::new();
    let mut zd_speedups = Vec::new();
    let mut scalings_by_ordering = vec![Vec::new(); Ordering::ALL.len()];
    let mut report = PerfReport::new("lu_compare");
    for p in &problems {
        // Which pre-pivots to sweep: zero-diagonal problems need one
        // (and exercise both matchings); the classic problems keep the
        // historical Off path (Transversal is an identity no-op there,
        // proven in the test suite, so timing it twice buys nothing).
        let pre_pivots: &[PrePivot] = if p.zero_diag {
            &[PrePivot::Transversal, PrePivot::WeightedMatching]
        } else {
            &[PrePivot::Off]
        };
        if p.zero_diag {
            // The motivating hard error: without a pre-pivot the plan
            // compiles (symbolic analysis reserves the diagonal slot)
            // but the numeric phase must hit the structural zero.
            let zeros = sympiler_sparse::ops::structurally_zero_diagonals(&p.a);
            assert!(zeros > 0, "{}: zero_diag flag vs pattern", p.name);
            let off = SympilerLu::compile(
                &p.a,
                &SympilerOptions {
                    block_lu: BlockLu::Off,
                    ..Default::default()
                },
            )
            .expect("Off compiles even on zero-diag patterns");
            assert!(
                matches!(off.factor(&p.a), Err(LuPlanError::ZeroPivot { .. })),
                "{}: static pivoting without a pre-pivot must fail",
                p.name
            );
            report.push(&format!("{}:zero_diag", p.name), zeros as f64);
        }
        // Observability self-check: one profiled pass through all
        // three tiers; the attributed flops must reproduce the
        // compile-time count exactly (ratio 1.0, gated in CI).
        let accounting = profile_problem(p, &mut trace);
        assert_eq!(
            accounting, 1.0,
            "{}: profiled flop attribution must equal plan.flops() exactly",
            p.name
        );
        report.push(&format!("{}:flop_accounting", p.name), accounting);
        // Worst pivot growth across the problem's MC64-equilibrated
        // weighted-matching runs — gated as `<name>:scaled_growth` so
        // a scaling regression (growth creeping back toward the
        // unscaled ~1e8) fails CI deterministically.
        let mut scaled_growth = 0.0f64;
        for &pre_pivot in pre_pivots {
            let mut natural_lu_nnz = 0usize;
            for (oi, &ordering) in Ordering::ALL.iter().enumerate() {
                let t = std::time::Instant::now();
                // Pin the scalar serial tier: "plan serial" measures the
                // column plan; the supernodal engine gets its own column.
                // Zero-diagonal problems additionally turn on MC64
                // equilibration — the scaling that lets the pattern-only
                // transversal meet the same strict tolerance as the
                // weighted matching.
                let opts = SympilerOptions {
                    ordering,
                    pre_pivot,
                    block_lu: BlockLu::Off,
                    mc64_scale: p.zero_diag,
                    ..Default::default()
                };
                let lu = SympilerLu::compile(&p.a, &opts).unwrap();
                let compile_time = t.elapsed();
                assert_eq!(
                    lu.matched_diagonals(),
                    p.n(),
                    "{}: every compiled pivot must be structurally present",
                    p.name
                );
                // The matrix the factors actually describe:
                // Qᵀ·P·(Dr·A·Dc)·Q, reconstructed from the plan's own
                // baked maps and scaling vectors. `scale_rows_cols`
                // forms `(dr[i] * v) * dc[j]` in the exact expression
                // shape the plan's gather maps use, so the baseline
                // factors the bitwise-same numbers.
                let identity: Vec<usize> = (0..p.n()).collect();
                let scaled_a = match lu.plan().mc64_scaling() {
                    Some((dr, dc)) => sympiler_sparse::ops::scale_rows_cols(&p.a, dr, dc).unwrap(),
                    None => p.a.clone(),
                };
                let composed_a = match lu.row_perm() {
                    Some(rperm) => sympiler_sparse::ops::permute_general(
                        &scaled_a,
                        rperm,
                        lu.col_perm().unwrap_or(&identity),
                    )
                    .unwrap(),
                    None => scaled_a,
                };
                // Verification first: the plan must reproduce the
                // identically pre-pivoted + ordered, statically pivoted
                // baseline factors exactly in pattern and to 1e-10
                // (relative) in values — the acceptance contract.
                let base = GpLu::factor(&composed_a, Pivoting::None).expect("baseline factors");
                assert!(
                    base.is_identity_perm(),
                    "{}: static pivoting must not row-permute",
                    p.name
                );
                let f = lu.factor(&p.a).expect("plan factors");
                assert!(f.l().same_pattern(&base.l), "{}: L pattern", p.name);
                assert!(f.u().same_pattern(&base.u), "{}: U pattern", p.name);
                // One strict tolerance for every combination. The
                // pattern-only transversal guarantees *structure*, not
                // stability — on the raw matrix it pivots on tiny
                // entries and element growth reaches ~1e12 at bench
                // scale, which used to force a growth-aware tolerance
                // carve-out here. MC64 equilibration removes the
                // problem at the source (every scaled entry ≤ 1, the
                // weighted-matched diagonal scaled to 1, growth O(1)),
                // and the two scalar engines run their update sums in
                // the identical sorted-adjacency topological order —
                // so the serial tier in fact matches the baseline
                // *bitwise*, and every pre-pivot verifies at the same
                // strict 1e-10 the dominant-diagonal problems meet.
                let (vtol, rtol) = (1e-10, 1e-10);
                for (x, y) in f
                    .l()
                    .values()
                    .iter()
                    .chain(f.u().values())
                    .zip(base.l.values().iter().chain(base.u.values()))
                {
                    assert!(
                        (x - y).abs() < vtol * (1.0 + y.abs()),
                        "{}: factor value drift ({x} vs {y})",
                        p.name
                    );
                }
                // The factorization itself gates on the growth-
                // independent backward error `|PA − LU| / (|L||U|)`
                // (Higham ch. 9): O(n·eps) for every stable engine —
                // the ‖A‖-relative residual would be inflated by
                // ‖L‖‖U‖/‖A‖ on static pivot sequences with large
                // multipliers, penalizing the engine for the pivot
                // order it was *told* to use.
                let base_err = lu_backward_error(&composed_a, &base);
                assert!(
                    base_err < rtol,
                    "{}: baseline backward error {base_err:.3e} under {}+{}",
                    p.name,
                    pre_pivot.label(),
                    ordering.label()
                );
                // End-to-end solve sanity — in original coordinates,
                // through the compiled plan AND through the
                // independently derived pre-pivoted runtime baseline.
                // Static pivoting's production contract is factor +
                // iterative refinement (SuperLU_DIST style): on the
                // zero-diagonal problems the pattern-only transversal's
                // multiplier growth makes a raw triangular solve lose
                // digits, and refinement — a few O(nnz) sweeps, no
                // refactorization — restores them. Both engines refine
                // through the identical driver, so the 1e-10 residual
                // bar stays uniform across every combination.
                let x = if p.zero_diag {
                    f.solve_refined(&p.a, &p.b, 1e-14, 5).0
                } else {
                    f.solve(&p.b)
                };
                let resid = sympiler_sparse::ops::rel_residual(&p.a, &x, &p.b);
                assert!(resid < rtol, "{}: solve residual {resid}", p.name);
                let xb = if p.zero_diag {
                    let bf =
                        GpLu::factor_prepivoted_scaled(&p.a, Pivoting::None, pre_pivot, ordering)
                            .expect("scaled pre-pivoted baseline factors");
                    sympiler_core::plan::lu::refine_with(&p.a, &p.b, 1e-14, 5, |rhs| bf.solve(rhs))
                        .0
                } else {
                    GpLu::factor_prepivoted(&p.a, Pivoting::None, pre_pivot, ordering)
                        .expect("pre-pivoted baseline factors")
                        .solve(&p.b)
                };
                let residb = sympiler_sparse::ops::rel_residual(&p.a, &xb, &p.b);
                assert!(
                    residb < rtol,
                    "{}: baseline solve residual {residb}",
                    p.name
                );
                // The parallel numeric phase must reproduce the serial
                // plan bitwise at every thread count. Leveling reuses
                // the compiled plan — no second symbolic pass.
                let par4 = ParallelLuPlan::from_plan(lu.plan().clone(), 4);
                for threads in [2usize, 4] {
                    let fp = ParallelLuPlan::from_plan(par4.serial().clone(), threads)
                        .factor(&p.a)
                        .expect("parallel factors");
                    for (x, y) in fp
                        .l()
                        .values()
                        .iter()
                        .chain(fp.u().values())
                        .zip(f.l().values().iter().chain(f.u().values()))
                    {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{}: parallel ({threads} threads) must match serial bitwise",
                            p.name
                        );
                    }
                }
                // The supernodal (VS-Block) engine must reproduce the
                // same baseline factors — dense GETRF/TRSM/GEMM kernels
                // reassociate the update sums, so bitwise identity is
                // not expected, but the acceptance tolerance is. Built
                // with the default relaxed-amalgamation budget so the
                // reported panel widths reflect what `Auto` would run.
                let sup = SupernodalLuPlan::from_plan_relaxed(
                    lu.plan().clone(),
                    opts.max_panel,
                    1,
                    opts.relax_fill,
                    opts.relax_cols,
                );
                let f_sup = sup.factor(&p.a).expect("supernodal factors");
                assert!(
                    f_sup.l().same_pattern(&base.l) && f_sup.u().same_pattern(&base.u),
                    "{}: supernodal patterns under {}+{}",
                    p.name,
                    pre_pivot.label(),
                    ordering.label()
                );
                // Dense kernels reassociate the update sums, so on
                // sensitive pivot sequences individual factor entries
                // drift by the roundoff seeds amplified by κ(L)·κ(U) —
                // far past any fixed element tolerance — even though
                // the factorization itself is perfectly stable. The
                // conditioning-independent invariant is the same
                // `|PA − LU| / (|L||U|)` backward error the baseline
                // gates on, at the same strict 1e-10.
                let sup_as_gp = sympiler_solvers::lu::GpLuFactors {
                    l: f_sup.l().clone(),
                    u: f_sup.u().clone(),
                    row_perm: identity.clone(),
                };
                let sup_err = lu_backward_error(&composed_a, &sup_as_gp);
                assert!(
                    sup_err < rtol,
                    "{}: supernodal backward error {sup_err:.3e} under {}+{}",
                    p.name,
                    pre_pivot.label(),
                    ordering.label()
                );

                // Timings, all through the shared protocol
                // (`time_lu_factorizer`). Analysis artifacts computed
                // once above — `composed_a` for the coupled baselines,
                // the compiled plan for the Sympiler engines — are
                // reused across every timed region.
                let t_coupled = time_lu_factorizer(|| {
                    GpLu::factor(&composed_a, Pivoting::None).expect("factor")
                });
                let t_partial = time_lu_factorizer(|| {
                    GpLu::factor(&composed_a, Pivoting::Partial).expect("factor")
                });
                let t_plan = time_lu_factorizer(|| lu.factor(&p.a).expect("factor"));
                let t_sup = time_lu_factorizer(|| sup.factor(&p.a).expect("factor"));
                let par2 = ParallelLuPlan::from_plan(lu.plan().clone(), 2);
                let t_par2 = time_lu_factorizer(|| par2.factor(&p.a).expect("factor"));
                let t_par4 = time_lu_factorizer(|| par4.factor(&p.a).expect("factor"));
                let flops = lu.flops();
                // Numerical-health monitors of the verified factor:
                // pivot growth and the smallest pivot magnitude.
                // Equilibration collapses growth to O(1) wherever the
                // pivots come from the weighted matching — the scaled
                // matched diagonal is each column's maximum, the
                // configuration MC64 scaling is *derived* for, and the
                // quantity the unscaled runs blew up to ~1e8–1e12. A
                // pattern-only transversal is values-blind: scaling
                // bounds its entries but not its pivots, so its
                // growth is unbounded by design and its correctness
                // rests on the bitwise factor check, the backward-
                // error gate, and the refined solve above.
                let health = lu.plan().health_of(&p.a, &f);
                if !p.zero_diag || pre_pivot == PrePivot::WeightedMatching {
                    assert!(
                        health.growth < 1e2,
                        "{}: pivot growth {:.1e} under {}+{} must stay O(1)",
                        p.name,
                        health.growth,
                        pre_pivot.label(),
                        ordering.label()
                    );
                }
                if p.zero_diag && pre_pivot == PrePivot::WeightedMatching {
                    scaled_growth = scaled_growth.max(health.growth);
                }
                let lu_nnz = f.l().nnz() + f.u().nnz();
                let speedup = t_coupled.as_secs_f64() / t_plan.as_secs_f64().max(1e-12);
                let sup_speedup = t_coupled.as_secs_f64() / t_sup.as_secs_f64().max(1e-12);
                let scaling = t_plan.as_secs_f64() / t_par4.as_secs_f64().max(1e-12);
                scalings_by_ordering[oi].push(scaling);
                // Gate entries. The historical names are reserved for
                // the Off sweep; pre-pivoted runs gate under
                // `:<prepivot>`-suffixed names plus the deterministic
                // matched-diagonal count.
                match (pre_pivot, ordering) {
                    (PrePivot::Off, Ordering::Natural) => {
                        natural_lu_nnz = lu_nnz;
                        speedups.push(speedup);
                        sup_speedups.push(sup_speedup);
                        report.push(p.name, speedup);
                        report.push(&format!("{}:supernodal", p.name), sup_speedup);
                    }
                    (PrePivot::Off, _) => {
                        assert!(
                            natural_lu_nnz > 0,
                            "Ordering::ALL must list Natural first so fill gains \
                             have a denominator"
                        );
                        report.push(&format!("{}:{}", p.name, ordering.label()), speedup);
                        report.push(
                            &format!("{}:{}_fill_gain", p.name, ordering.label()),
                            natural_lu_nnz as f64 / lu_nnz as f64,
                        );
                        report.push(
                            &format!("{}:{}_supernodal", p.name, ordering.label()),
                            sup_speedup,
                        );
                        report.push(
                            &format!("{}:{}_panel_width", p.name, ordering.label()),
                            sup.mean_panel_width(),
                        );
                        // Relaxed amalgamation exists to widen panels
                        // on exactly these patterns: COLAMD-ordered
                        // circuit factors must average ≥ 2.5 columns
                        // per panel (strict nesting managed ~1.3).
                        if ordering == Ordering::Colamd && p.name.starts_with("circuit") {
                            assert!(
                                sup.mean_panel_width() >= 2.5,
                                "{}: COLAMD mean panel width {:.2} below the 2.5 \
                                 amalgamation floor",
                                p.name,
                                sup.mean_panel_width()
                            );
                        }
                    }
                    (_, Ordering::Natural) => {
                        zd_speedups.push(speedup);
                        report.push(&format!("{}:{}", p.name, pre_pivot.label()), speedup);
                        report.push(
                            &format!("{}:{}_matched_diag", p.name, pre_pivot.label()),
                            lu.matched_diagonals() as f64,
                        );
                    }
                    (_, _) => {
                        report.push(
                            &format!("{}:{}_{}", p.name, ordering.label(), pre_pivot.label()),
                            speedup,
                        );
                    }
                }
                table.row(vec![
                    p.id.to_string(),
                    p.name.to_string(),
                    pre_pivot.label().to_string(),
                    ordering.label().to_string(),
                    p.n().to_string(),
                    lu_nnz.to_string(),
                    format!("{:.2}x", lu.fill_ratio()),
                    format!("{:.3?}", t_coupled),
                    format!("{:.3?}", t_partial),
                    format!("{:.3?}", t_plan),
                    format!("{speedup:.2}x"),
                    format!("{:.3?}", t_sup),
                    format!("{sup_speedup:.2}x"),
                    format!("{} ({} wide)", sup.n_panels(), sup.n_wide_panels()),
                    format!("{:.2}", sup.mean_panel_width()),
                    format!("{:.0}%", sup.dense_flop_share() * 100.0),
                    format!("{:.3?}", t_par2),
                    format!("{:.3?}", t_par4),
                    format!("{scaling:.2}x"),
                    format!("{:.1}", par4.avg_parallelism()),
                    format!("{:.3}", gflops(flops, t_plan)),
                    format!("{:.1e}", health.growth),
                    format!("{:.1e}", health.min_pivot),
                    format!("{:.3?}", compile_time),
                ]);
            }
        }
        if p.zero_diag {
            report.push(&format!("{}:scaled_growth", p.name), scaled_growth);
        }
    }
    table.emit(Some("lu_compare.csv"));
    report.write_results().expect("write perf report");
    if write_profile {
        let path = trace.write_results().expect("write profile trace");
        println!("[profile trace saved to {}]", path.display());
        print!("{}", trace.to_table());
    }
    println!(
        "geomean decoupling speedup, natural order (coupled GPLU / serial plan): \
         {:.2}x over {} problems",
        geomean(&speedups),
        speedups.len()
    );
    println!(
        "geomean supernodal decoupling speedup, natural order (coupled GPLU / \
         supernodal plan): {:.2}x over {} problems",
        geomean(&sup_speedups),
        sup_speedups.len()
    );
    println!(
        "geomean pre-pivoted decoupling speedup on the zero-diagonal problems \
         (coupled GPLU / serial plan, natural order): {:.2}x over {} runs",
        geomean(&zd_speedups),
        zd_speedups.len()
    );
    for (oi, &ordering) in Ordering::ALL.iter().enumerate() {
        println!(
            "geomean 4-thread scaling under {} (serial plan / 4T plan): {:.2}x",
            ordering.label(),
            geomean(&scalings_by_ordering[oi])
        );
    }
    println!(
        "all factor patterns + values verified against the identically pre-pivoted, \
         identically ordered, identically MC64-scaled baseline at a uniform strict \
         1e-10 (serial bitwise; supernodal via the growth-independent |PA-LU|/(|L||U|) \
         backward error); pivot growth < 1e2 on every weighted-matching combination; \
         parallel factors bitwise-identical to serial at 2 and 4 threads; \
         zero-diagonal problems hard-fail without a pre-pivot and solve \
         the original systems with one"
    );
}
