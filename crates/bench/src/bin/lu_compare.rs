//! The sparse-LU experiment: baseline Gilbert–Peierls (symbolic DFS
//! coupled into every numeric factorization) vs. the Sympiler LU plan
//! (symbolic analysis once at compile time, numeric-only factor),
//! serial and level-scheduled parallel.
//!
//! For every unsymmetric suite problem this prints the median numeric
//! factorization time of each engine, the decoupling speedup, the
//! parallel numeric times at 2 and 4 workers with the 4-worker scaling
//! ratio and the elimination DAG's available parallelism, and verifies
//! that (a) the plan reproduces the baseline factors bit-for-pattern
//! and to 1e-10 in values, and (b) the parallel plan reproduces the
//! serial plan **bitwise** at every thread count.
//!
//! Writes `results/lu_compare.csv` plus the machine-readable
//! `results/BENCH_lu_compare.json` consumed by the CI perf gate.
//!
//! Run with `--test-scale` (or `--test`, for `all_experiments`
//! compatibility) for a fast smoke run (CI uses this); the default
//! runs the bench-scale suite.

use sympiler_bench::engines::{time_lu_engine, LuEngine, RUNS};
use sympiler_bench::harness::{geomean, gflops, median_time, Table};
use sympiler_bench::perf::PerfReport;
use sympiler_bench::workloads::prepare_lu_suite;
use sympiler_core::plan::lu_parallel::ParallelLuPlan;
use sympiler_core::{SympilerLu, SympilerOptions};
use sympiler_solvers::lu::{lu_reconstruction_error, GpLu, Pivoting};
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let test_scale = std::env::args().any(|a| a == "--test-scale" || a == "--test");
    let scale = if test_scale {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    let problems = prepare_lu_suite(scale);
    let mut table = Table::new(
        "Sparse LU: coupled baseline vs. Sympiler plan, serial + parallel (median numeric time)",
        &[
            "id",
            "problem",
            "n",
            "nnz(L+U)",
            "GPLU coupled",
            "GPLU partial",
            "plan serial",
            "speedup",
            "plan 2T",
            "plan 4T",
            "scal 4T",
            "DAG par",
            "plan GF/s",
            "symbolic",
        ],
    );
    let mut speedups = Vec::new();
    let mut scalings = Vec::new();
    let mut report = PerfReport::new("lu_compare");
    for p in &problems {
        // Verification first: the plan must reproduce the statically
        // pivoted baseline factors exactly in pattern and to 1e-10 in
        // values (the acceptance contract of the subsystem).
        let base = GpLu::factor(&p.a, Pivoting::None).expect("baseline factors");
        assert!(
            base.is_identity_perm(),
            "{}: static pivoting must not permute",
            p.name
        );
        let t = std::time::Instant::now();
        let lu = SympilerLu::compile(&p.a, &SympilerOptions::default()).unwrap();
        let compile_time = t.elapsed();
        let f = lu.factor(&p.a).expect("plan factors");
        assert!(f.l().same_pattern(&base.l), "{}: L pattern", p.name);
        assert!(f.u().same_pattern(&base.u), "{}: U pattern", p.name);
        for (x, y) in f
            .l()
            .values()
            .iter()
            .chain(f.u().values())
            .zip(base.l.values().iter().chain(base.u.values()))
        {
            assert!((x - y).abs() < 1e-10, "{}: factor value drift", p.name);
        }
        assert!(
            lu_reconstruction_error(&p.a, &base) < 1e-10,
            "{}: baseline reconstruction",
            p.name
        );
        // End-to-end solve sanity.
        let x = f.solve(&p.b);
        let resid = sympiler_sparse::ops::rel_residual(&p.a, &x, &p.b);
        assert!(resid < 1e-10, "{}: solve residual {resid}", p.name);
        // The parallel numeric phase must reproduce the serial plan
        // bitwise at every thread count (and hence match the baseline
        // to 1e-10 transitively). Leveling reuses the compiled plan —
        // no second symbolic pass.
        let par4 = ParallelLuPlan::from_plan(lu.plan().clone(), 4);
        for threads in [2usize, 4] {
            let fp = ParallelLuPlan::from_plan(par4.serial().clone(), threads)
                .factor(&p.a)
                .expect("parallel factors");
            for (x, y) in fp
                .l()
                .values()
                .iter()
                .chain(fp.u().values())
                .zip(f.l().values().iter().chain(f.u().values()))
            {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: parallel ({threads} threads) must match serial bitwise",
                    p.name
                );
            }
        }

        // Timings.
        let t_coupled = time_lu_engine(p, LuEngine::GpluCoupled);
        let t_partial = time_lu_engine(p, LuEngine::GpluPartial);
        let t_plan = {
            // Reuse one compiled plan across the timed runs, matching
            // how time_lu_engine holds analysis outside the region.
            median_time(RUNS, || {
                let f = lu.factor(&p.a).expect("factor");
                std::hint::black_box(&f);
            })
        };
        let t_par2 = time_lu_engine(p, LuEngine::SympilerParallel { threads: 2 });
        let t_par4 = time_lu_engine(p, LuEngine::SympilerParallel { threads: 4 });
        // Identical to engines::lu_flops(p) but free: the compiled plan
        // already carries the exact count.
        let flops = lu.flops();
        let speedup = t_coupled.as_secs_f64() / t_plan.as_secs_f64().max(1e-12);
        let scaling = t_plan.as_secs_f64() / t_par4.as_secs_f64().max(1e-12);
        speedups.push(speedup);
        scalings.push(scaling);
        report.push(p.name, speedup);
        table.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            p.n().to_string(),
            (f.l().nnz() + f.u().nnz()).to_string(),
            format!("{:.3?}", t_coupled),
            format!("{:.3?}", t_partial),
            format!("{:.3?}", t_plan),
            format!("{speedup:.2}x"),
            format!("{:.3?}", t_par2),
            format!("{:.3?}", t_par4),
            format!("{scaling:.2}x"),
            format!("{:.1}", par4.avg_parallelism()),
            format!("{:.3}", gflops(flops, t_plan)),
            format!("{:.3?}", compile_time),
        ]);
    }
    table.emit(Some("lu_compare.csv"));
    report.write_results().expect("write perf report");
    println!(
        "geomean decoupling speedup (coupled GPLU / serial plan): {:.2}x over {} problems",
        geomean(&speedups),
        speedups.len()
    );
    println!(
        "geomean 4-thread scaling (serial plan / 4T plan): {:.2}x \
         (spawn+barrier overhead dominates at test scale and on few-core hosts)",
        geomean(&scalings)
    );
    println!(
        "all factor patterns + values verified against the baseline (1e-10); \
         parallel factors bitwise-identical to serial at 2 and 4 threads"
    );
}
