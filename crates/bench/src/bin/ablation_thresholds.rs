//! **Ablation A2** (DESIGN.md): sensitivity of the VS-Block decision to
//! the supernode-size threshold (§4.2's hand-tuned 160), swept on two
//! contrasting matrices — one supernode-rich, one supernode-poor.
//!
//! Usage: `cargo run -p sympiler-bench --release --bin ablation_thresholds [--test]`

use sympiler_bench::engines::RUNS;
use sympiler_bench::harness::{median_time, Table};
use sympiler_bench::workloads::prepare_subset;
use sympiler_core::plan::tri::{TriScratch, TriSolvePlan, TriVariant};
use sympiler_sparse::suite::SuiteScale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    eprintln!("preparing problems 1, 3, 6 (supernode-rich and -poor regimes)...");
    let problems = prepare_subset(scale, &[1, 3, 6]);
    let mut t = Table::new(
        "Ablation: forcing VS-Block on/off vs the threshold decision",
        &[
            "matrix",
            "avg participating supernode size",
            "VI-Prune only",
            "forced VS-Block",
            "threshold(160) picks",
        ],
    );
    for p in &problems {
        let col_counts: Vec<usize> = (0..p.l.n_cols()).map(|j| p.l.col_nnz(j)).collect();
        let part = sympiler_graph::supernode::supernodes_trisolve(&p.l, 64);
        let avg = part.avg_participating_size(&col_counts);

        let time_of = |variant: TriVariant| {
            let plan = TriSolvePlan::build(&p.l, p.b.indices(), variant, 64, 2);
            let mut x = vec![0.0; p.n()];
            let mut s = TriScratch::default();
            median_time(RUNS, || {
                plan.solve(&p.b, &mut x, &mut s);
                std::hint::black_box(&x);
                plan.reset(&mut x);
            })
        };
        let t_prune = time_of(TriVariant {
            vs_block: false,
            vi_prune: true,
            low_level: true,
        });
        let t_block = time_of(TriVariant::full());
        let picks = if avg >= 160.0 {
            "VS-Block"
        } else {
            "VI-Prune only"
        };
        t.row(vec![
            p.name.to_string(),
            format!("{avg:.0}"),
            format!("{:.1} us", t_prune.as_secs_f64() * 1e6),
            format!("{:.1} us", t_block.as_secs_f64() * 1e6),
            picks.to_string(),
        ]);
    }
    t.emit(Some("ablation_thresholds.csv"));
}
