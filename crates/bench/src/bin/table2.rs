//! Regenerates **Table 2**: the benchmark matrix set, sorted by nnz.
//!
//! Usage: `cargo run -p sympiler-bench --release --bin table2 [--test]`

use sympiler_bench::harness::Table;
use sympiler_sparse::suite::{suite, SuiteScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--test") {
        SuiteScale::Test
    } else {
        SuiteScale::Bench
    };
    let mut t = Table::new(
        "Table 2: matrix set (synthetic stand-ins, see DESIGN.md)",
        &[
            "ID",
            "Name",
            "n (10^3)",
            "nnz(A) (10^6)",
            "family",
            "stands in for",
        ],
    );
    for p in suite(scale) {
        t.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            format!("{:.1}", p.n() as f64 / 1e3),
            format!("{:.3}", p.nnz_full() as f64 / 1e6),
            p.family.to_string(),
            p.stands_in_for.to_string(),
        ]);
    }
    t.emit(Some("table2.csv"));
}
