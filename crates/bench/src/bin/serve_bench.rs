//! The serving-layer experiment: compile once, serve a request
//! stream.
//!
//! Three serving shapes are measured per unsymmetric suite problem,
//! all against the same economic question — how much of Sympiler's
//! decoupling win survives when plan management moves behind a
//! service boundary:
//!
//! 1. **Cached stream** — 1000 same-pattern factor requests (values
//!    perturbed per request) through a [`PlanCache`]: exactly one
//!    compile (the first request misses, 999 hit), reported as
//!    throughput (factors/sec), p50/p99/p999 request latency, and
//!    the cache hit rate. Every sampled response is verified
//!    **bitwise** against a direct `compile()` + `factor()` of the
//!    same request. Latencies go straight into a log-bucketed
//!    [`Histogram`] (one per problem, `serve.<name>.latency_ns`), so
//!    the quantiles printed here and the quantiles in the exported
//!    metrics snapshot come from the same buckets.
//! 2. **Batched factorization** — [`SympilerLu::factor_batch`]'s
//!    entry-major SoA pass over a same-pattern batch vs. the
//!    one-at-a-time `factor()` loop, median-timed; factors verified
//!    bitwise against the loop. The blocked multi-RHS
//!    [`LuFactor::solve_batch`] sweep rides the same batch and is
//!    verified bitwise against per-RHS `solve()` calls.
//! 3. **Service** — the [`FactorService`] thread pool absorbing the
//!    same request stream (factor + one RHS solve per request)
//!    through a shared cache, reported as end-to-end throughput and
//!    the service-side hit rate, with solutions verified against the
//!    direct path.
//!
//! Writes `results/serve_bench.csv`, the machine-readable
//! `results/BENCH_serve_bench.json` consumed by the CI perf gate, and
//! `results/METRICS_serve_bench.json` — the [`MetricsRegistry`]
//! snapshot carrying the per-problem latency histograms (full bucket
//! arrays plus p50/p90/p99/p999). The snapshot is re-parsed after
//! writing and its quantiles asserted equal to the ones reported
//! here, so the file is guaranteed to agree with the console table.
//! Gate entries per problem: `<name>:cache_hit_rate` (deterministic —
//! one miss in 1000 requests is 0.999 by construction),
//! `<name>:cache_bitwise` and `<name>:batch_bitwise` (deterministic
//! 1.0, flipped to 0.0 by any cached/batched result that diverges
//! from the direct path), and `<name>:batch_speedup` (timing ratio:
//! one-at-a-time loop time / batched time, floored conservatively in
//! the baseline because CI containers are single-core and noisy).
//! Hit rates and bitwise flags are also asserted here outright; the
//! batched-throughput advantage (`> 1.0x` on ≥ 2 suite problems) is
//! asserted at bench scale only.
//!
//! With `--profile` the cache runs with an enabled [`Profiler`]: the
//! `serve.cache.hit` / `serve.cache.miss` / `serve.cache.eviction`
//! counters and the numeric-phase spans of the profiled stream land
//! in `results/PROFILE_serve_bench.json` (chrome://tracing loadable).
//! The [`FactorService`] shape shares the same profiler, so the trace
//! additionally carries one per-request span tree per service request
//! (`request` → `queue-wait` / `cache-lookup` / `factor` / `solve`)
//! on the named `worker-*` lanes, and the profiler's counters and
//! gauges are absorbed into the metrics snapshot.
//!
//! Run with `--test-scale` (or `--test`, for `all_experiments`
//! compatibility) for a fast smoke run (CI uses this); the default
//! runs the bench-scale suite.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sympiler_bench::harness::{median_time, Table};
use sympiler_bench::perf::PerfReport;
use sympiler_bench::workloads::{prepare_lu_subset, LuBenchProblem};
use sympiler_core::plan::lu::LuFactor;
use sympiler_core::serve::{CacheConfig, FactorService, PlanCache, ServeRequest};
use sympiler_core::{LuWorkspace, Profiler, SympilerLu, SympilerOptions, TraceFile};
use sympiler_obs::{Histogram, MetricsRegistry};
use sympiler_sparse::CscMatrix;

/// Length of the same-pattern request stream (both scales: the
/// acceptance contract is "≥ 0.99 hit rate on a 1000-request stream",
/// and the rate is deterministic, so the stream never shrinks).
const STREAM: usize = 1000;

/// Deterministic per-request value perturbation: same pattern, fresh
/// values — the circuit-transient / Newton-step shape.
fn perturbed(base: &CscMatrix, req: usize) -> CscMatrix {
    let mut a = base.clone();
    let s = 1.0 + 0.001 * ((req % 17) as f64) + 1e-6 * (req as f64);
    for v in a.values_mut() {
        *v *= s;
    }
    a
}

fn assert_bitwise(tag: &str, got: &LuFactor, want: &LuFactor) -> bool {
    let same = got
        .l()
        .values()
        .iter()
        .chain(got.u().values())
        .zip(want.l().values().iter().chain(want.u().values()))
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(same, "{tag}: served factor diverged from the direct path");
    same
}

fn throughput(count: usize, total: Duration) -> f64 {
    count as f64 / total.as_secs_f64().max(1e-12)
}

struct StreamResult {
    hit_rate: f64,
    factors_per_sec: f64,
    p50: Duration,
    p99: Duration,
    p999: Duration,
}

/// Shape 1: the cached single-caller stream. Per-request latencies
/// are recorded into `hist` and the reported quantiles read back out
/// of it, so the console numbers and the exported metrics snapshot
/// share one source of truth.
fn run_cached_stream(
    p: &LuBenchProblem,
    opts: &SympilerOptions,
    profiler: &Arc<Profiler>,
    hist: &Histogram,
) -> StreamResult {
    let cache = PlanCache::with_profiler(CacheConfig::default(), Arc::clone(profiler));
    let mut ws = LuWorkspace::new();
    let t0 = Instant::now();
    for req in 0..STREAM {
        let a = perturbed(&p.a, req);
        let t = Instant::now();
        let plan = cache.get_or_compile(&a, opts).expect("stream compile");
        let f = plan.factor_with(&a, &mut ws).expect("stream factor");
        hist.record_duration(t.elapsed());
        black_box(f.l().values().first().copied());
    }
    let total = t0.elapsed();
    let stats = cache.stats();
    assert_eq!(
        (stats.misses, stats.entries),
        (1, 1),
        "{}: one pattern, one compile, one resident plan",
        p.name
    );
    assert!(
        stats.hit_rate() >= 0.99,
        "{}: hit rate {:.4} below the 0.99 serving contract",
        p.name,
        stats.hit_rate()
    );
    // Bitwise spot checks: cached responses == direct compile+factor.
    for req in [0, STREAM / 2, STREAM - 1] {
        let a = perturbed(&p.a, req);
        let direct = SympilerLu::compile(&a, opts)
            .expect("direct compile")
            .factor(&a)
            .expect("direct factor");
        let cached = cache
            .get_or_compile(&a, opts)
            .expect("recall")
            .factor_with(&a, &mut ws)
            .expect("cached factor");
        assert_bitwise(&format!("{} req {req}", p.name), &cached, &direct);
    }
    StreamResult {
        hit_rate: stats.hit_rate(),
        factors_per_sec: throughput(STREAM, total),
        p50: Duration::from_nanos(hist.quantile(0.50)),
        p99: Duration::from_nanos(hist.quantile(0.99)),
        p999: Duration::from_nanos(hist.quantile(0.999)),
    }
}

struct BatchResult {
    batch: usize,
    t_loop: Duration,
    t_batch: Duration,
    speedup: f64,
}

/// Shape 2: batched factorization + blocked multi-RHS solve.
fn run_batched(p: &LuBenchProblem, opts: &SympilerOptions, test_scale: bool) -> BatchResult {
    let batch = if test_scale { 8 } else { 16 };
    let runs = if test_scale { 3 } else { 5 };
    let mats: Vec<CscMatrix> = (0..batch).map(|k| perturbed(&p.a, k)).collect();
    let refs: Vec<&CscMatrix> = mats.iter().collect();
    let lu = SympilerLu::compile(&p.a, opts).expect("batch compile");

    // Bitwise: batched factors == the one-at-a-time loop's.
    let batched = lu.factor_batch(&refs).expect("batch factor");
    let singles: Vec<_> = mats
        .iter()
        .map(|a| lu.factor(a).expect("single factor"))
        .collect();
    for (k, (b, s)) in batched.iter().zip(&singles).enumerate() {
        assert_bitwise(&format!("{} batch[{k}]", p.name), b, s);
    }
    // Bitwise: blocked multi-RHS == per-RHS solves.
    let rhs: Vec<Vec<f64>> = (0..4)
        .map(|r| (0..p.n()).map(|i| 1.0 + ((i + r) % 5) as f64).collect())
        .collect();
    let xs = batched[0].solve_batch(&rhs);
    for (r, x) in xs.iter().enumerate() {
        let want = batched[0].solve(&rhs[r]);
        assert!(
            x.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits()),
            "{} rhs {r}: blocked solve diverged from solve()",
            p.name
        );
    }

    let t_loop = median_time(runs, || {
        for a in &mats {
            black_box(lu.factor(a).expect("loop factor"));
        }
    });
    let t_batch = median_time(runs, || {
        black_box(lu.factor_batch(&refs).expect("batch factor"));
    });
    let speedup = t_loop.as_secs_f64() / t_batch.as_secs_f64().max(1e-12);
    BatchResult {
        batch,
        t_loop,
        t_batch,
        speedup,
    }
}

struct ServiceResult {
    factors_per_sec: f64,
    hit_rate: f64,
}

/// Shape 3: the thread-pool front end absorbing the stream. The
/// shared profiler means a `--profile` run captures one span tree per
/// request on the `worker-*` lanes.
fn run_service(
    p: &LuBenchProblem,
    opts: &SympilerOptions,
    test_scale: bool,
    profiler: &Arc<Profiler>,
) -> ServiceResult {
    let requests = if test_scale { 200 } else { STREAM };
    let cache = Arc::new(PlanCache::with_profiler(
        CacheConfig::default(),
        Arc::clone(profiler),
    ));
    let service = FactorService::new(2, Arc::clone(&cache));
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|req| {
            service.submit(ServeRequest {
                a: perturbed(&p.a, req),
                opts: opts.clone(),
                rhs: vec![p.b.clone()],
            })
        })
        .collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("service factor"))
        .collect();
    let total = t0.elapsed();
    // Served solutions match the direct path exactly.
    let a0 = perturbed(&p.a, 0);
    let direct = SympilerLu::compile(&a0, opts)
        .expect("direct compile")
        .factor(&a0)
        .expect("direct factor");
    assert_bitwise(
        &format!("{} service req 0", p.name),
        &responses[0].factor,
        &direct,
    );
    let want = direct.solve(&p.b);
    assert!(
        responses[0].solutions[0]
            .iter()
            .zip(&want)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "{}: served solution diverged from the direct path",
        p.name
    );
    let stats = cache.stats();
    // Two workers can at worst race the first compile: ≥ requests - 2
    // hits out of `requests`.
    assert!(
        stats.hit_rate() >= (requests as f64 - 2.0) / requests as f64,
        "{}: service hit rate {:.4} (misses {})",
        p.name,
        stats.hit_rate(),
        stats.misses
    );
    ServiceResult {
        factors_per_sec: throughput(requests, total),
        hit_rate: stats.hit_rate(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_scale = args.iter().any(|a| a == "--test-scale" || a == "--test");
    let write_profile = args.iter().any(|a| a == "--profile");
    let scale = if test_scale {
        sympiler_sparse::suite::SuiteScale::Test
    } else {
        sympiler_sparse::suite::SuiteScale::Bench
    };
    // Three well-conditioned diagonal-bearing problems: two PDE
    // patterns and one circuit pattern — the request-stream families
    // the serving layer exists for.
    let problems = prepare_lu_subset(scale, &[1, 2, 3]);
    assert!(problems.len() >= 2, "need ≥ 2 problems for the batch gate");
    let opts = SympilerOptions::default();

    let mut report = PerfReport::new("serve_bench");
    let mut trace = TraceFile::new("serve_bench");
    let metrics = MetricsRegistry::new();
    let mut table = Table::new(
        &format!(
            "serving layer: {STREAM}-request cached stream, batched factorization, \
             thread-pool service ({} scale)",
            if test_scale { "test" } else { "bench" }
        ),
        &[
            "id",
            "name",
            "n",
            "hit rate",
            "factors/s",
            "p50",
            "p99",
            "p999",
            "batch",
            "t loop",
            "t batch",
            "batch speedup",
            "svc factors/s",
            "svc hit rate",
        ],
    );

    let mut batch_wins = 0usize;
    let mut profile_snaps = Vec::new();
    let mut reported = Vec::new();
    for p in &problems {
        let profiler = Arc::new(if write_profile {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        });
        let hist = metrics.histogram(&format!("serve.{}.latency_ns", p.name));
        let stream = run_cached_stream(p, &opts, &profiler, &hist);
        let batch = run_batched(p, &opts, test_scale);
        let service = run_service(p, &opts, test_scale, &profiler);
        if batch.speedup > 1.0 {
            batch_wins += 1;
        }

        // Deterministic gate entries: the hit rate is fixed by the
        // stream construction (1 miss / STREAM requests), the bitwise
        // flags by the asserts above (reaching here means they held).
        report.push(&format!("{}:cache_hit_rate", p.name), stream.hit_rate);
        report.push(&format!("{}:cache_bitwise", p.name), 1.0);
        report.push(&format!("{}:batch_bitwise", p.name), 1.0);
        // Timing ratio entry (floored conservatively in the baseline).
        report.push(&format!("{}:batch_speedup", p.name), batch.speedup);
        reported.push((
            format!("serve.{}.latency_ns", p.name),
            [
                stream.p50.as_nanos() as u64,
                stream.p99.as_nanos() as u64,
                stream.p999.as_nanos() as u64,
            ],
        ));

        if write_profile {
            profiler.gauge("serve.stream.requests", STREAM as f64);
            profiler.gauge("serve.stream.hit_rate", stream.hit_rate);
            let prof = profiler.snapshot(p.name);
            profile_snaps.push(prof.clone());
            trace.push(prof);
        }

        table.row(vec![
            p.id.to_string(),
            p.name.to_string(),
            p.n().to_string(),
            format!("{:.4}", stream.hit_rate),
            format!("{:.0}", stream.factors_per_sec),
            format!("{:.3?}", stream.p50),
            format!("{:.3?}", stream.p99),
            format!("{:.3?}", stream.p999),
            batch.batch.to_string(),
            format!("{:.3?}", batch.t_loop),
            format!("{:.3?}", batch.t_batch),
            format!("{:.2}x", batch.speedup),
            format!("{:.0}", service.factors_per_sec),
            format!("{:.4}", service.hit_rate),
        ]);
    }

    // The serving contract's throughput clause: batched factorization
    // strictly beats the one-at-a-time loop on ≥ 2 suite problems.
    // Asserted at bench scale only — at test scale (n ≈ 250) a single
    // factorization fits in L2 and there is no bookkeeping to amortize.
    if !test_scale {
        assert!(
            batch_wins >= 2,
            "batched throughput beat the one-at-a-time loop on only {batch_wins} of {} \
             problems (need ≥ 2)",
            problems.len()
        );
    }

    table.emit(Some("serve_bench.csv"));
    report.write_results().expect("write perf report");

    // Export the latency histograms (and, when profiling, the cache
    // counters/gauges) as a metrics snapshot, then re-parse the file
    // and check it against what the console reported: the exported
    // quantiles must be the exact values printed above, since both
    // come from the same histogram buckets.
    let mut snapshot = metrics.snapshot("serve_bench");
    for prof in &profile_snaps {
        snapshot.absorb_profile(prof);
    }
    let metrics_path = snapshot.write_results().expect("write metrics snapshot");
    let reread = sympiler_obs::MetricsSnapshot::from_json(
        &std::fs::read_to_string(&metrics_path).expect("read metrics snapshot"),
    )
    .expect("parse metrics snapshot");
    for (name, [p50, p99, p999]) in &reported {
        let h = reread
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} missing from {}", metrics_path.display()));
        assert_eq!(h.count, STREAM as u64, "{name}: sample count");
        assert_eq!(
            (h.p50, h.p99, h.p999),
            (*p50, *p99, *p999),
            "{name}: exported quantiles diverged from the reported ones"
        );
    }
    if write_profile {
        let path = trace.write_results().expect("write profile trace");
        println!("[profile trace saved to {}]", path.display());
        print!("{}", trace.to_table());
    }
    println!(
        "serving contract held: {} problems × ({STREAM}-request stream ≥ 0.99 hit \
         rate, bitwise-identical cached/batched/served results)",
        problems.len()
    );
}
