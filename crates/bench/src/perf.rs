//! Machine-readable benchmark results and the CI perf-regression gate.
//!
//! Every experiment binary that produces a headline speedup writes a
//! `results/BENCH_<experiment>.json` report next to its CSV. CI runs
//! the smoke suite, uploads those reports as a workflow artifact (the
//! perf trajectory), and runs the `perf_gate` binary, which compares
//! each report against the checked-in baseline under
//! `crates/bench/baselines/` and fails when any kernel's
//! decoupled/baseline speedup ratio degrades beyond the tolerance.
//!
//! Speedups are ratios of two serial measurements taken on the same
//! machine in the same process, so they transfer across hosts far
//! better than raw times — that's what makes a checked-in baseline
//! workable at all. The format is deliberately tiny (no serde in this
//! offline workspace): one experiment name plus `(kernel, speedup)`
//! pairs, read back through the shared [`json`] subset parser.

use json::escape;
use std::path::Path;

/// One kernel's headline ratio in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Kernel / problem name (unique within the experiment).
    pub kernel: String,
    /// Higher-is-better speedup ratio (decoupled vs. baseline).
    pub speedup: f64,
}

/// A benchmark report: one experiment, many kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Experiment name (`lu_compare`, `fig8`, ...).
    pub experiment: String,
    pub entries: Vec<PerfEntry>,
}

impl PerfReport {
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            entries: Vec::new(),
        }
    }

    /// Record one kernel's ratio.
    pub fn push(&mut self, kernel: &str, speedup: f64) {
        self.entries.push(PerfEntry {
            kernel: kernel.to_string(),
            speedup,
        });
    }

    /// Look up a kernel's ratio.
    pub fn speedup_of(&self, kernel: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.kernel == kernel)
            .map(|e| e.speedup)
    }

    /// Serialize to the report JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"speedup\": {:.6}}}{comma}\n",
                escape(&e.kernel),
                e.speedup
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a report from JSON (any JSON with the expected shape, not
    /// just our own pretty-printing).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s)?;
        let experiment = v
            .get("experiment")
            .and_then(json::Value::as_str)
            .ok_or("missing \"experiment\" string")?
            .to_string();
        let raw = v
            .get("entries")
            .and_then(json::Value::as_array)
            .ok_or("missing \"entries\" array")?;
        let mut entries = Vec::with_capacity(raw.len());
        for e in raw {
            let kernel = e
                .get("kernel")
                .and_then(json::Value::as_str)
                .ok_or("entry missing \"kernel\"")?
                .to_string();
            let speedup = e
                .get("speedup")
                .and_then(json::Value::as_f64)
                .ok_or("entry missing \"speedup\"")?;
            entries.push(PerfEntry { kernel, speedup });
        }
        Ok(Self {
            experiment,
            entries,
        })
    }

    /// Write the report to `results/BENCH_<experiment>.json` (creating
    /// `results/` if needed) and announce the path on stdout.
    pub fn write_results(&self) -> std::io::Result<()> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        println!("[perf report saved to {}]", path.display());
        Ok(())
    }
}

/// Compare `current` against `baseline`: every baseline kernel must be
/// present and keep at least `1 - max_degradation` of its baseline
/// speedup. Returns human-readable violations (empty = gate passes).
/// Kernels present only in `current` are new and never fail the gate.
pub fn gate(baseline: &PerfReport, current: &PerfReport, max_degradation: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for b in &baseline.entries {
        match current.speedup_of(&b.kernel) {
            None => violations.push(format!(
                "{}/{}: kernel missing from current results",
                baseline.experiment, b.kernel
            )),
            Some(cur) => {
                let floor = b.speedup * (1.0 - max_degradation);
                if cur < floor {
                    violations.push(format!(
                        "{}/{}: speedup {:.3}x below floor {:.3}x \
                         (baseline {:.3}x, tolerance {:.0}%)",
                        baseline.experiment,
                        b.kernel,
                        cur,
                        floor,
                        b.speedup,
                        max_degradation * 100.0
                    ));
                }
            }
        }
    }
    violations
}

/// The shared no-serde JSON subset reader/writer, re-exported from
/// `sympiler-obs` so perf reports and observability profiles agree on
/// one escaping discipline ([`json::escape`] covers quotes,
/// backslashes, and control characters) and one parser.
pub use sympiler_obs::json;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        let mut r = PerfReport::new("lu_compare");
        r.push("convdiff_mild_u", 2.5);
        r.push("circuit_small_u", 3.125);
        r
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let parsed = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn kernel_names_with_special_characters_round_trip() {
        // Quotes and backslashes were always escaped; control
        // characters (newlines, tabs, raw \x01) used to be written
        // verbatim, producing invalid JSON. All must survive now.
        let mut r = PerfReport::new("edge\"case\\exp");
        r.push("kernel\nwith\tnewline", 1.5);
        r.push("ctrl\u{1}char", 2.0);
        let text = r.to_json();
        assert!(!text.contains('\u{1}'), "control chars must be escaped");
        let parsed = PerfReport::from_json(&text).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parses_foreign_formatting() {
        let s = "{\"entries\":[{\"speedup\":1.5e0,\"kernel\":\"a b\"}],\
                 \"experiment\":\"x\"}";
        let r = PerfReport::from_json(s).unwrap();
        assert_eq!(r.experiment, "x");
        assert_eq!(r.speedup_of("a b"), Some(1.5));
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(PerfReport::from_json("{}").is_err());
        assert!(PerfReport::from_json("{\"experiment\": 3, \"entries\": []}").is_err());
        assert!(PerfReport::from_json("not json").is_err());
        assert!(PerfReport::from_json("{\"experiment\":\"x\",\"entries\":[{}]}").is_err());
        // Trailing garbage.
        assert!(PerfReport::from_json("{\"experiment\":\"x\",\"entries\":[]} tail").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let baseline = sample();
        let mut current = PerfReport::new("lu_compare");
        // 20% degradation on one kernel, improvement on the other.
        current.push("convdiff_mild_u", 2.0);
        current.push("circuit_small_u", 4.0);
        assert!(gate(&baseline, &current, 0.25).is_empty());
    }

    #[test]
    fn gate_flags_degradation_and_missing_kernels() {
        let baseline = sample();
        let mut current = PerfReport::new("lu_compare");
        current.push("convdiff_mild_u", 1.0); // 60% degradation
        let violations = gate(&baseline, &current, 0.25);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("below floor"));
        assert!(violations[1].contains("missing"));
    }

    #[test]
    fn gate_ignores_new_kernels() {
        let baseline = PerfReport::new("lu_compare");
        let mut current = sample();
        current.push("brand_new_u", 0.1);
        assert!(gate(&baseline, &current, 0.25).is_empty());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v =
            json::parse("{\"a\": [1, -2.5, {\"b\\\"c\": true}, null, false], \"d\": \"e\\\\f\"}")
                .unwrap();
        let arr = v.get("a").and_then(json::Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].get("b\"c"), Some(&json::Value::Bool(true)));
        assert_eq!(arr[3], json::Value::Null);
        assert_eq!(v.get("d").and_then(json::Value::as_str), Some("e\\f"));
        // Multi-byte UTF-8 survives intact.
        let v = json::parse("{\"kernel\": \"café_μ\"}").unwrap();
        assert_eq!(
            v.get("kernel").and_then(json::Value::as_str),
            Some("café_μ")
        );
        // Empty containers.
        assert_eq!(json::parse("[]").unwrap(), json::Value::Array(vec![]));
        assert_eq!(json::parse("{}").unwrap(), json::Value::Object(vec![]));
    }
}
