//! Engine wrappers: uniform closures over every measured solver so the
//! figure binaries and criterion benches share one definition of what
//! "Eigen", "CHOLMOD", and each Sympiler variant mean.

use crate::harness::median_time;
use crate::workloads::{BenchProblem, LuBenchProblem};
use std::time::Duration;
use sympiler_core::plan::tri::{TriScratch, TriSolvePlan, TriVariant};
use sympiler_core::{BlockLu, Ordering, SympilerCholesky, SympilerLu, SympilerOptions};
use sympiler_solvers::cholesky::simplicial::SimplicialCholesky;
use sympiler_solvers::cholesky::supernodal::SupernodalCholesky;
use sympiler_solvers::lu::{GpLu, Pivoting};
use sympiler_solvers::trisolve;

/// Number of repetitions per measurement (paper: 5, median).
pub const RUNS: usize = 5;

/// Measured triangular-solve engines (Figure 6 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriEngine {
    /// Figure 1b: naive forward substitution.
    Naive,
    /// Figure 1c: Eigen's guarded loop.
    Eigen,
    /// Sympiler with VS-Block only.
    SympilerVsBlock,
    /// Sympiler with VS-Block + VI-Prune.
    SympilerVsBlockViPrune,
    /// Sympiler with everything (the "+Low-Level" bar).
    SympilerFull,
}

impl TriEngine {
    pub fn label(self) -> &'static str {
        match self {
            TriEngine::Naive => "naive (Fig 1b)",
            TriEngine::Eigen => "Eigen (Fig 1c)",
            TriEngine::SympilerVsBlock => "Sympiler: VS-Block",
            TriEngine::SympilerVsBlockViPrune => "Sympiler: VS-Block+VI-Prune",
            TriEngine::SympilerFull => "Sympiler: +Low-Level",
        }
    }
}

/// Build the plan corresponding to a Sympiler engine tier. The
/// supernode-size threshold is applied like §4.2: when the average
/// participating supernode size is too small, VS-Block tiers fall back
/// to VI-Prune-only execution.
pub fn build_tri_plan(p: &BenchProblem, engine: TriEngine) -> Option<TriSolvePlan> {
    let opts = SympilerOptions::default();
    let col_counts: Vec<usize> = (0..p.l.n_cols()).map(|j| p.l.col_nnz(j)).collect();
    let part = sympiler_graph::supernode::supernodes_trisolve(&p.l, opts.max_supernode_width);
    let vs_ok = part.avg_participating_size(&col_counts) >= opts.vs_block_min_avg_size;
    let variant = match engine {
        TriEngine::Naive | TriEngine::Eigen => return None,
        TriEngine::SympilerVsBlock => TriVariant {
            vs_block: vs_ok,
            vi_prune: false,
            low_level: false,
        },
        TriEngine::SympilerVsBlockViPrune => TriVariant {
            vs_block: vs_ok,
            vi_prune: true,
            low_level: false,
        },
        TriEngine::SympilerFull => TriVariant {
            vs_block: vs_ok,
            vi_prune: true,
            low_level: true,
        },
    };
    Some(TriSolvePlan::build(
        &p.l,
        p.b.indices(),
        variant,
        opts.max_supernode_width,
        opts.peel_col_count,
    ))
}

/// Median numeric time of one triangular-solve engine on one problem.
pub fn time_tri_engine(p: &BenchProblem, engine: TriEngine) -> Duration {
    let n = p.n();
    match engine {
        TriEngine::Naive => {
            let bd = p.b.to_dense();
            let mut x = vec![0.0; n];
            median_time(RUNS, || {
                x.copy_from_slice(&bd);
                trisolve::naive_forward(&p.l, &mut x);
                std::hint::black_box(&x);
            })
        }
        TriEngine::Eigen => {
            let bd = p.b.to_dense();
            let mut x = vec![0.0; n];
            median_time(RUNS, || {
                x.copy_from_slice(&bd);
                trisolve::library_forward(&p.l, &mut x);
                std::hint::black_box(&x);
            })
        }
        _ => {
            let plan = build_tri_plan(p, engine).expect("sympiler engine");
            let mut x = vec![0.0; n];
            let mut scratch = TriScratch::default();
            median_time(RUNS, || {
                plan.solve(&p.b, &mut x, &mut scratch);
                std::hint::black_box(&x);
                plan.reset(&mut x);
            })
        }
    }
}

/// Measured Cholesky engines (Figure 7 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholEngine {
    /// Eigen: left-looking simplicial, coupled symbolic work in numeric.
    Eigen,
    /// CHOLMOD: left-looking supernodal over generic BLAS.
    Cholmod,
    /// Sympiler plan with VS-Block, generic kernels.
    SympilerVsBlock,
    /// Sympiler plan with VS-Block + specialized kernels (low-level).
    SympilerFull,
}

impl CholEngine {
    pub fn label(self) -> &'static str {
        match self {
            CholEngine::Eigen => "Eigen (numeric)",
            CholEngine::Cholmod => "CHOLMOD (numeric)",
            CholEngine::SympilerVsBlock => "Sympiler: VS-Block",
            CholEngine::SympilerFull => "Sympiler: +Low-Level",
        }
    }
}

/// Median numeric factorization time of one Cholesky engine.
/// Symbolic/analysis phases run **outside** the timed region for every
/// engine, matching the paper's "numeric" measurements.
pub fn time_chol_engine(p: &BenchProblem, engine: CholEngine) -> Duration {
    match engine {
        CholEngine::Eigen => {
            let chol = SimplicialCholesky::analyze(&p.a).expect("spd");
            median_time(RUNS, || {
                let l = chol.factor(&p.a).expect("factor");
                std::hint::black_box(&l);
            })
        }
        CholEngine::Cholmod => {
            let chol = SupernodalCholesky::analyze(&p.a, 64).expect("spd");
            median_time(RUNS, || {
                let f = chol.factor(&p.a).expect("factor");
                std::hint::black_box(&f);
            })
        }
        CholEngine::SympilerVsBlock => {
            let opts = SympilerOptions {
                low_level: false,
                ..Default::default()
            };
            let chol = SympilerCholesky::compile(&p.a, &opts).expect("spd");
            median_time(RUNS, || {
                let f = chol.factor(&p.a).expect("factor");
                std::hint::black_box(&f);
            })
        }
        CholEngine::SympilerFull => {
            let chol = SympilerCholesky::compile(&p.a, &SympilerOptions::default()).expect("spd");
            median_time(RUNS, || {
                let f = chol.factor(&p.a).expect("factor");
                std::hint::black_box(&f);
            })
        }
    }
}

/// Measured sparse-LU engines (the `lu_compare` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuEngine {
    /// The coupled baseline: Gilbert–Peierls with per-column DFS
    /// re-run inside every numeric factorization (static pivoting, so
    /// the numeric work matches the plan exactly).
    GpluCoupled,
    /// The coupled baseline with partial pivoting — the verification
    /// mode (extra pivot-search work, possibly different factors).
    GpluPartial,
    /// The Sympiler LU plan: symbolic analysis at compile time, numeric
    /// factorization only in the timed region (scalar serial columns).
    SympilerPlan,
    /// The Sympiler LU plan with the level-scheduled parallel numeric
    /// phase over the column elimination DAG at this worker count.
    SympilerParallel { threads: usize },
    /// The supernodal (VS-Block) LU engine: wide column panels routed
    /// through dense GETRF/TRSM/GEMM kernels, singleton panels through
    /// the scalar column kernel.
    SympilerSupernodal,
}

impl LuEngine {
    pub fn label(self) -> &'static str {
        match self {
            LuEngine::GpluCoupled => "GPLU (coupled symbolic)",
            LuEngine::GpluPartial => "GPLU (partial pivoting)",
            LuEngine::SympilerPlan => "Sympiler LU plan (numeric)",
            LuEngine::SympilerParallel { threads: 2 } => "Sympiler LU plan (2 threads)",
            LuEngine::SympilerParallel { threads: 4 } => "Sympiler LU plan (4 threads)",
            LuEngine::SympilerParallel { .. } => "Sympiler LU plan (parallel)",
            LuEngine::SympilerSupernodal => "Sympiler LU plan (supernodal)",
        }
    }
}

/// Median factorization time of one LU engine on one problem in
/// natural order. See [`time_lu_engine_ordered`].
pub fn time_lu_engine(p: &LuBenchProblem, engine: LuEngine) -> Duration {
    time_lu_engine_ordered(p, engine, Ordering::Natural)
}

/// The one timing protocol every LU measurement uses: median of
/// [`RUNS`] invocations of `factor`, result black-boxed. Call sites
/// that already hold a prepared input (an ordered matrix, a compiled
/// plan) time through this directly, so experiment binaries and the
/// engine wrappers cannot drift apart on warmups or black-box
/// placement.
pub fn time_lu_factorizer<T>(factor: impl Fn() -> T) -> Duration {
    median_time(RUNS, || {
        std::hint::black_box(&factor());
    })
}

/// Median factorization time of one LU engine on one problem under a
/// fill-reducing ordering. Like the Cholesky engines, any reusable
/// analysis runs **outside** the timed region: for the Sympiler
/// engines that is the whole compile (ordering included, baked into
/// the plan); for the coupled GPLU baselines the ordering is applied
/// to the matrix up front — real runtime libraries, too, order once in
/// a separate analyze phase — so the timed region still measures
/// exactly the coupled symbolic+numeric factorization, on the same
/// ordered pattern the plan factors. Apples to apples.
pub fn time_lu_engine_ordered(
    p: &LuBenchProblem,
    engine: LuEngine,
    ordering: Ordering,
) -> Duration {
    // The GPLU baselines factor the pre-permuted matrix directly.
    let ordered_input = || match sympiler_graph::compute_ordering(&p.a, ordering) {
        Some(perm) => sympiler_sparse::ops::permute_rows_cols(&p.a, &perm).expect("valid ordering"),
        None => p.a.clone(),
    };
    match engine {
        LuEngine::GpluCoupled => {
            let a = ordered_input();
            time_lu_factorizer(|| GpLu::factor(&a, Pivoting::None).expect("factor"))
        }
        LuEngine::GpluPartial => {
            let a = ordered_input();
            time_lu_factorizer(|| GpLu::factor(&a, Pivoting::Partial).expect("factor"))
        }
        LuEngine::SympilerPlan => {
            // Pin the scalar tier so the engine measures exactly the
            // serial column plan whatever the auto-blocking rule says.
            let opts = SympilerOptions {
                ordering,
                block_lu: BlockLu::Off,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&p.a, &opts).expect("compile");
            time_lu_factorizer(|| lu.factor(&p.a).expect("factor"))
        }
        LuEngine::SympilerParallel { threads } => {
            let opts = SympilerOptions {
                n_threads: threads,
                ordering,
                block_lu: BlockLu::Off,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&p.a, &opts).expect("compile");
            time_lu_factorizer(|| lu.factor(&p.a).expect("factor"))
        }
        LuEngine::SympilerSupernodal => {
            let opts = SympilerOptions {
                ordering,
                block_lu: BlockLu::On,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&p.a, &opts).expect("compile");
            debug_assert!(lu.is_supernodal());
            time_lu_factorizer(|| lu.factor(&p.a).expect("factor"))
        }
    }
}

/// Exact LU factorization flop count (identical across engines).
pub fn lu_flops(p: &LuBenchProblem) -> u64 {
    sympiler_graph::lu_symbolic(&p.a).factor_flops()
}

/// Useful flop count of the pruned triangular solve on this problem
/// (identical accounting across engines).
pub fn tri_flops(p: &BenchProblem) -> u64 {
    let reach = sympiler_graph::reach(&p.l, p.b.indices());
    trisolve::trisolve_flops(&p.l, &reach)
}

/// Exact factorization flop count (identical across engines).
pub fn chol_flops(p: &BenchProblem) -> u64 {
    sympiler_graph::symbolic_cholesky(&p.a).factor_flops()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::prepare_subset;
    use sympiler_sparse::suite::SuiteScale;

    #[test]
    fn engines_produce_identical_solutions() {
        let problems = prepare_subset(SuiteScale::Test, &[1, 5]);
        for p in &problems {
            let n = p.n();
            let mut x_ref = p.b.to_dense();
            trisolve::naive_forward(&p.l, &mut x_ref);
            for engine in [
                TriEngine::SympilerVsBlock,
                TriEngine::SympilerVsBlockViPrune,
                TriEngine::SympilerFull,
            ] {
                let plan = build_tri_plan(p, engine).unwrap();
                let mut x = vec![0.0; n];
                let mut s = TriScratch::default();
                plan.solve(&p.b, &mut x, &mut s);
                for i in 0..n {
                    assert!(
                        (x[i] - x_ref[i]).abs() < 1e-9,
                        "{} {}: x[{i}]",
                        p.name,
                        engine.label()
                    );
                }
            }
        }
    }

    #[test]
    fn chol_engines_agree() {
        let problems = prepare_subset(SuiteScale::Test, &[3]);
        let p = &problems[0];
        let l_eigen = SimplicialCholesky::analyze(&p.a)
            .unwrap()
            .factor(&p.a)
            .unwrap();
        let l_cholmod = SupernodalCholesky::analyze(&p.a, 64)
            .unwrap()
            .factor(&p.a)
            .unwrap()
            .to_csc();
        let l_symp = SympilerCholesky::compile(&p.a, &SympilerOptions::default())
            .unwrap()
            .factor(&p.a)
            .unwrap()
            .to_csc();
        for (x, y) in l_eigen.values().iter().zip(l_cholmod.values()) {
            assert!((x - y).abs() < 1e-9);
        }
        for (x, y) in l_eigen.values().iter().zip(l_symp.values()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_engines_agree_and_time() {
        let problems = crate::workloads::prepare_lu_subset(SuiteScale::Test, &[1, 3]);
        for p in &problems {
            let base = GpLu::factor(&p.a, Pivoting::None).unwrap();
            let lu = SympilerLu::compile(&p.a, &SympilerOptions::default()).unwrap();
            let f = lu.factor(&p.a).unwrap();
            assert!(f.l().same_pattern(&base.l), "{}", p.name);
            assert!(f.u().same_pattern(&base.u), "{}", p.name);
            for (x, y) in f.u().values().iter().zip(base.u.values()) {
                assert!((x - y).abs() < 1e-10, "{}", p.name);
            }
            for e in [
                LuEngine::GpluCoupled,
                LuEngine::GpluPartial,
                LuEngine::SympilerPlan,
                LuEngine::SympilerParallel { threads: 2 },
            ] {
                assert!(time_lu_engine(p, e).as_nanos() > 0, "{}", e.label());
            }
            assert!(lu_flops(p) > 0);
            // The parallel engine must agree with the serial plan.
            let opts = SympilerOptions {
                n_threads: 4,
                ..Default::default()
            };
            let par = SympilerLu::compile(&p.a, &opts)
                .unwrap()
                .factor(&p.a)
                .unwrap();
            for (x, y) in par.u().values().iter().zip(f.u().values()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{}", p.name);
            }
        }
    }

    #[test]
    fn ordered_lu_engines_agree_and_time() {
        let problems = crate::workloads::prepare_lu_subset(SuiteScale::Test, &[3]);
        let p = &problems[0];
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            // Plan vs. identically ordered baseline.
            let opts = SympilerOptions {
                ordering,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&p.a, &opts).unwrap();
            let f = lu.factor(&p.a).unwrap();
            let base = GpLu::factor_ordered(&p.a, Pivoting::None, ordering).unwrap();
            assert!(f.l().same_pattern(&base.factors.l), "{ordering:?}");
            for (x, y) in f.u().values().iter().zip(base.factors.u.values()) {
                assert!((x - y).abs() < 1e-10, "{ordering:?}");
            }
            for e in [
                LuEngine::GpluCoupled,
                LuEngine::SympilerPlan,
                LuEngine::SympilerParallel { threads: 2 },
            ] {
                assert!(
                    time_lu_engine_ordered(p, e, ordering).as_nanos() > 0,
                    "{} under {ordering:?}",
                    e.label()
                );
            }
        }
    }

    #[test]
    fn timing_helpers_run() {
        let problems = prepare_subset(SuiteScale::Test, &[2]);
        let p = &problems[0];
        for e in [TriEngine::Naive, TriEngine::Eigen, TriEngine::SympilerFull] {
            let t = time_tri_engine(p, e);
            assert!(t.as_nanos() > 0, "{}", e.label());
        }
        assert!(tri_flops(p) > 0);
        assert!(chol_flops(p) > 0);
    }
}
