//! Benchmark workload preparation: the Table-2 suite, RCM-ordered, with
//! factors and sparse right-hand sides matching the paper's setup.

use sympiler_core::{SympilerCholesky, SympilerOptions};
use sympiler_graph::rcm::rcm_permute;
use sympiler_sparse::suite::{suite, unsym_suite, SuiteProblem, SuiteScale, UnsymProblem};
use sympiler_sparse::{rhs, CscMatrix, SparseVec};

/// A fully prepared benchmark problem.
pub struct BenchProblem {
    pub id: usize,
    pub name: &'static str,
    pub family: &'static str,
    /// RCM-permuted SPD matrix (lower storage).
    pub a: CscMatrix,
    /// Cholesky factor of `a` (for the triangular-solve experiments;
    /// §4.2: the triangular solver "is often used as a sub-kernel ...
    /// or as a solver after matrix factorizations").
    pub l: CscMatrix,
    /// Sparse RHS with <5% fill whose pattern matches a column of `L`
    /// (§4.2: "typically the sparsity of the RHS in sparse triangular
    /// systems is close to the sparsity of the columns of a sparse
    /// matrix").
    pub b: SparseVec,
}

impl BenchProblem {
    fn from_suite(p: SuiteProblem) -> Self {
        // Grid/block problems come nested-dissection/block ordered from
        // the suite; only unordered (circuit) problems get RCM here.
        let a = if p.preordered {
            p.matrix.clone()
        } else {
            rcm_permute(&p.matrix).0
        };
        // Factor once with the reference-quality Sympiler plan to get L.
        let chol = SympilerCholesky::compile(&a, &SympilerOptions::default())
            .expect("suite matrices are SPD");
        let l = chol.factor(&a).expect("suite matrices factor").to_csc();
        // RHS from an early column's pattern, kept under 5% fill.
        let n = l.n_cols();
        let mut col = 0usize;
        let mut best = 0usize;
        for j in 0..n {
            let nnz = l.col_nnz(j);
            if nnz > best && (nnz as f64) < 0.05 * n as f64 {
                best = nnz;
                col = j;
            }
        }
        let b = rhs::rhs_from_column_pattern(&l, col, 1000 + p.id as u64);
        Self {
            id: p.id,
            name: p.name,
            family: p.family,
            a,
            l,
            b,
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.a.n_cols()
    }
}

/// Prepare the whole suite at the given scale.
pub fn prepare_suite(scale: SuiteScale) -> Vec<BenchProblem> {
    suite(scale)
        .into_iter()
        .map(BenchProblem::from_suite)
        .collect()
}

/// Prepare a subset of the suite by paper IDs (1-based), for quick runs.
pub fn prepare_subset(scale: SuiteScale, ids: &[usize]) -> Vec<BenchProblem> {
    suite(scale)
        .into_iter()
        .filter(|p| ids.contains(&p.id))
        .map(BenchProblem::from_suite)
        .collect()
}

/// A prepared unsymmetric LU benchmark problem.
pub struct LuBenchProblem {
    pub id: usize,
    pub name: &'static str,
    pub family: &'static str,
    /// True when the matrix has structurally zero diagonals and only
    /// factors under a static pre-pivot (`PrePivot` ≠ `Off`).
    pub zero_diag: bool,
    /// Square unsymmetric matrix, full storage, statically pivotable
    /// (after the pre-pivot when `zero_diag`).
    pub a: CscMatrix,
    /// Dense RHS for the end-to-end solve checks.
    pub b: Vec<f64>,
}

impl LuBenchProblem {
    fn from_suite(p: UnsymProblem) -> Self {
        let n = p.n();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        Self {
            id: p.id,
            name: p.name,
            family: p.family,
            zero_diag: p.zero_diag,
            a: p.matrix,
            b,
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.a.n_cols()
    }
}

/// Prepare the unsymmetric LU suite at the given scale.
pub fn prepare_lu_suite(scale: SuiteScale) -> Vec<LuBenchProblem> {
    unsym_suite(scale)
        .into_iter()
        .map(LuBenchProblem::from_suite)
        .collect()
}

/// Prepare a subset of the LU suite by ID, for quick runs.
pub fn prepare_lu_subset(scale: SuiteScale, ids: &[usize]) -> Vec<LuBenchProblem> {
    unsym_suite(scale)
        .into_iter()
        .filter(|p| ids.contains(&p.id))
        .map(LuBenchProblem::from_suite)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_suite_prepares() {
        let problems = prepare_lu_subset(SuiteScale::Test, &[1, 3]);
        assert_eq!(problems.len(), 2);
        for p in &problems {
            assert!(p.a.is_square());
            assert_eq!(p.b.len(), p.n());
        }
    }

    #[test]
    fn test_scale_suite_prepares() {
        let problems = prepare_subset(SuiteScale::Test, &[1, 3]);
        assert_eq!(problems.len(), 2);
        for p in &problems {
            assert!(p.l.is_lower_triangular_with_diag());
            assert!(p.b.fill_ratio() < 0.05, "{}: rhs fill too high", p.name);
            assert!(p.b.nnz() >= 1);
        }
    }

    #[test]
    fn rhs_pattern_is_column_like() {
        let problems = prepare_subset(SuiteScale::Test, &[5]);
        let p = &problems[0];
        // b's indices must be a column pattern of L: consecutive solves
        // reach a non-trivial but small set.
        let reach = sympiler_graph::reach(&p.l, p.b.indices());
        assert!(reach.len() >= p.b.nnz());
        assert!(reach.len() <= p.n());
    }
}
