//! Timing and reporting utilities.

use std::time::{Duration, Instant};

/// Run `f` `runs` times and return the median duration (paper §4.1:
/// "Each experiment is executed 5 times and the median is reported").
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs >= 1);
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// GFLOP/s from a flop count and a duration.
pub fn gflops(flops: u64, d: Duration) -> f64 {
    if d.as_secs_f64() == 0.0 {
        return 0.0;
    }
    flops as f64 / d.as_secs_f64() / 1e9
}

/// One named measurement on one problem.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub problem: String,
    pub engine: String,
    pub time: Duration,
    pub gflops: f64,
}

/// A simple aligned text + CSV table builder shared by the figure
/// binaries.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and optionally save CSV under `results/`.
    pub fn emit(&self, csv_name: Option<&str>) {
        println!("{}", self.to_text());
        if let Some(name) = csv_name {
            let dir = std::path::Path::new("results");
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join(name);
                if std::fs::write(&path, self.to_csv()).is_ok() {
                    println!("[csv saved to {}]", path.display());
                }
            }
        }
    }
}

/// Geometric mean of a slice of ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_runs() {
        let mut k = 0u64;
        let d = median_time(5, || {
            k += 1;
            std::hint::black_box(k);
        });
        assert!(d >= Duration::ZERO);
        assert_eq!(k, 5);
    }

    #[test]
    fn gflops_accounting() {
        let d = Duration::from_secs(2);
        assert!((gflops(4_000_000_000, d) - 2.0).abs() < 1e-12);
        assert_eq!(gflops(10, Duration::ZERO), 0.0);
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2.5".into()]);
        let text = t.to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("2.5"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2.5\n");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_row() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
