//! Verification helpers shared by tests, examples, and benchmarks.

use sympiler_sparse::{ops, CscMatrix};

/// Max-norm error of `L L^T - A` over the lower triangle, scaled by the
/// 1-norm of `A`. `a_lower` is the SPD input in lower storage, `l` the
/// computed factor.
pub fn reconstruction_error(a_lower: &CscMatrix, l: &CscMatrix) -> f64 {
    assert_eq!(a_lower.n_cols(), l.n_cols(), "dimension mismatch");
    let n = a_lower.n_cols();
    // Compute L L^T restricted to L's (filled) lower pattern via
    // column-by-column sparse accumulation.
    let mut acc = vec![0.0f64; n];
    let mut max_err = 0.0f64;
    let a_norm = ops::norm_1(a_lower).max(1.0);
    for j in 0..n {
        // acc = sum_k L[j,k] * L[:,k] for k <= j — computed by scanning
        // all columns k with L[j,k] != 0. For testing simplicity use the
        // transpose to find row j of L.
        // (Quadratic-ish but only used on test-sized matrices.)
        for k in 0..=j {
            let ljk = l.get(j, k);
            if ljk == 0.0 {
                continue;
            }
            for (i, v) in l.col_iter(k) {
                if i >= j {
                    acc[i] += v * ljk;
                }
            }
        }
        // Compare against A's column j (lower part).
        for (i, v) in a_lower.col_iter(j) {
            let err = (acc[i] - v).abs();
            max_err = max_err.max(err);
            acc[i] = 0.0;
        }
        // Fill-in positions must reconstruct to ~zero.
        for (i, _) in l.col_iter(j) {
            if acc[i] != 0.0 {
                max_err = max_err.max(acc[i].abs());
                acc[i] = 0.0;
            }
        }
    }
    max_err / a_norm
}

/// `||A x - b||_inf`-style scaled residual for a symmetric system stored
/// lower. Thin wrapper re-exported for benchmark code.
pub fn solve_residual(a_lower: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    ops::rel_residual_sym_lower(a_lower, x, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::simplicial::SimplicialCholesky;
    use sympiler_sparse::gen;

    #[test]
    fn exact_factor_has_tiny_error() {
        let a = gen::random_spd(25, 3, 1);
        let l = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
        assert!(reconstruction_error(&a, &l) < 1e-12);
    }

    #[test]
    fn perturbed_factor_is_detected() {
        let a = gen::random_spd(25, 3, 2);
        let mut l = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
        let nnz = l.nnz();
        l.values_mut()[nnz / 2] += 0.5;
        assert!(reconstruction_error(&a, &l) > 1e-6);
    }

    #[test]
    fn identity_reconstructs_identity() {
        let a = CscMatrix::identity(6);
        assert!(reconstruction_error(&a, &a) < 1e-15);
    }
}
