//! # sympiler-solvers
//!
//! Reference and baseline sparse solvers — the comparators of the
//! Sympiler paper's evaluation (§4):
//!
//! * [`trisolve`] — sparse triangular solve variants: the naive forward
//!   substitution of Figure 1b, the library implementation with the
//!   `x[j] != 0` guard of Figure 1c (how Eigen implements it), and the
//!   decoupled reach-set solver of Figure 1d;
//! * [`cholesky::simplicial`] — left-looking non-supernodal Cholesky,
//!   the Eigen baseline: its numeric phase recomputes row patterns
//!   (ereach) and the implicit transpose of `A` every factorization —
//!   exactly the symbolic/numeric coupling §4.2 describes;
//! * [`cholesky::supernodal`] — left-looking supernodal Cholesky over
//!   the generic mini-BLAS, the CHOLMOD baseline: symbolic analysis is
//!   reusable, but the numeric phase still transposes `A` and computes
//!   relative indices at run time;
//! * [`cholesky::ldl`] — up-looking LDL^T (CSparse-style), an extra
//!   baseline exercising the "up-looking implementations" the paper
//!   lists among supported-by-design methods (§3.3);
//! * [`lu`] — the left-looking Gilbert–Peierls LU baseline for
//!   unsymmetric systems, with runtime (coupled) symbolic analysis, a
//!   partial-pivoting verification mode, and ordered / pre-pivoted
//!   entry points (`factor_ordered`, `factor_prepivoted`) that apply
//!   the same fill-reducing-ordering and row-matching knobs as the
//!   compiled pipeline, so decoupling comparisons stay
//!   apples-to-apples even on zero-diagonal systems;
//! * [`verify`] — residual and reconstruction checks shared by tests
//!   and benchmarks.

pub mod cholesky;
pub mod lu;
pub mod trisolve;
pub mod verify;

pub use cholesky::simplicial::SimplicialCholesky;
pub use cholesky::supernodal::SupernodalCholesky;
pub use lu::{GpLu, GpLuFactors, LuError, Pivoting};
