//! Up-looking `LDL^T` factorization (CSparse-style) — an extra baseline
//! exercising the "up-looking implementations of factorization
//! algorithms" the paper lists among methods its inspectors support by
//! design (§3.3). Shares the `ereach` prune-set machinery with the
//! Cholesky inspectors.
//!
//! `A = L D L^T` with unit-diagonal `L` and diagonal `D`; no square
//! roots, and positive-definiteness shows up as `D > 0`.

use super::CholeskyError;
use sympiler_graph::ereach::EreachWorkspace;
use sympiler_graph::symbolic::{symbolic_cholesky, SymbolicFactor};
use sympiler_sparse::{ops, CscMatrix};

/// An `LDL^T` factorization result.
#[derive(Debug, Clone)]
pub struct LdlFactor {
    /// Unit lower-triangular factor (diagonal stored as explicit 1.0).
    pub l: CscMatrix,
    /// The diagonal of `D`.
    pub d: Vec<f64>,
}

impl LdlFactor {
    /// Solve `A x = b` via `L z = b; w = D^{-1} z; L^T x = w`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        crate::trisolve::naive_forward(&self.l, &mut x);
        for (xi, &di) in x.iter_mut().zip(&self.d) {
            *xi /= di;
        }
        crate::trisolve::backward_transposed(&self.l, &mut x);
        x
    }
}

/// Up-looking LDL^T: analyze once, factor repeatedly.
#[derive(Debug, Clone)]
pub struct UpLookingLdl {
    sym: SymbolicFactor,
    guard: super::PatternGuard,
}

impl UpLookingLdl {
    /// Symbolic analysis (etree + pattern, shared with Cholesky).
    pub fn analyze(a_lower: &CscMatrix) -> Result<Self, CholeskyError> {
        if !a_lower.is_square() {
            return Err(CholeskyError::BadInput("matrix must be square".into()));
        }
        if !a_lower.is_lower_storage() {
            return Err(CholeskyError::BadInput(
                "matrix must be in lower-triangular storage".into(),
            ));
        }
        Ok(Self {
            sym: symbolic_cholesky(a_lower),
            guard: super::PatternGuard::new(a_lower),
        })
    }

    pub fn symbolic(&self) -> &SymbolicFactor {
        &self.sym
    }

    /// Numeric up-looking factorization: for each row `k`, solve
    /// `L(0:k, 0:k) y = A(0:k, k)` over the row pattern, then
    /// `D[k] = A[k,k] - y^T D^{-1} y`-style accumulation.
    pub fn factor(&self, a_lower: &CscMatrix) -> Result<LdlFactor, CholeskyError> {
        let n = self.sym.n;
        self.guard.check(a_lower)?;
        let at = ops::transpose(a_lower); // upper triangle, coupled cost
        let lp = &self.sym.l_col_ptr;
        let li = &self.sym.l_row_idx;
        let mut lx = vec![0.0f64; self.sym.l_nnz()];
        let mut d = vec![0.0f64; n];
        // Write cursor per column (entries of L are produced row by row
        // in increasing k, matching the sorted pattern).
        let mut next_write: Vec<usize> = (0..n).map(|j| lp[j] + 1).collect();
        // Dense scratch row.
        let mut y = vec![0.0f64; n];
        let mut ws = EreachWorkspace::new(n);
        let mut pattern = Vec::new();

        for k in 0..n {
            // y = A(0:k, k) scattered (upper column k = row k of lower).
            for (i, v) in at.col_iter(k) {
                if i < k {
                    y[i] = v;
                }
            }
            let mut dk = a_lower.get(k, k);
            // Row pattern in topological (ascending) order.
            sympiler_graph::ereach::ereach_into(&at, k, &self.sym.parent, &mut ws, &mut pattern);
            for &j in &pattern {
                // Solve step: y[j] is now final; L[k,j] = y[j] / D[j].
                let yj = y[j];
                y[j] = 0.0;
                let lkj = yj / d[j];
                // Propagate to later pattern entries: y[i] -= L[i,j] yj.
                for p in lp[j] + 1..next_write[j] {
                    let i = li[p];
                    if i < k {
                        y[i] -= lx[p] * yj;
                    }
                }
                dk -= lkj * yj;
                // Store L[k,j] at the next write slot of column j.
                let w = next_write[j];
                debug_assert_eq!(li[w], k);
                lx[w] = lkj;
                next_write[j] = w + 1;
            }
            if dk <= 0.0 || !dk.is_finite() {
                return Err(CholeskyError::NotPositiveDefinite { column: k });
            }
            d[k] = dk;
            lx[lp[k]] = 1.0; // unit diagonal
        }
        let l = CscMatrix::from_parts_unchecked(n, n, lp.clone(), li.clone(), lx);
        Ok(LdlFactor { l, d })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::simplicial::SimplicialCholesky;
    use sympiler_sparse::gen;

    #[test]
    fn ldl_matches_llt() {
        // L_chol = L_ldl * sqrt(D)
        for seed in 0..5u64 {
            let a = gen::random_spd(30, 4, seed);
            let ldl = UpLookingLdl::analyze(&a).unwrap().factor(&a).unwrap();
            let llt = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
            assert!(ldl.l.same_pattern(&llt));
            for j in 0..30 {
                let sq = ldl.d[j].sqrt();
                for (k, (i, v)) in ldl.l.col_iter(j).enumerate() {
                    let expect = llt.col_values(j)[k];
                    assert!(
                        (v * sq - expect).abs() < 1e-9,
                        "seed {seed} ({i},{j}): {} vs {expect}",
                        v * sq
                    );
                }
            }
        }
    }

    #[test]
    fn d_positive_for_spd() {
        let a = gen::grid2d_laplacian(6, 5, false, 3);
        let f = UpLookingLdl::analyze(&a).unwrap().factor(&a).unwrap();
        assert!(f.d.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn solve_end_to_end() {
        let a = gen::grid2d_laplacian(6, 6, true, 7);
        let f = UpLookingLdl::analyze(&a).unwrap().factor(&a).unwrap();
        let b: Vec<f64> = (0..36).map(|i| 1.0 + (i % 3) as f64).collect();
        let x = f.solve(&b);
        let resid = ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-12, "residual {resid}");
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0);
        let a = t.to_csc().unwrap();
        let f = UpLookingLdl::analyze(&a).unwrap().factor(&a);
        assert!(matches!(f, Err(CholeskyError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn unit_diagonal_stored() {
        let a = gen::random_spd(15, 3, 9);
        let f = UpLookingLdl::analyze(&a).unwrap().factor(&a).unwrap();
        for j in 0..15 {
            assert_eq!(f.l.get(j, j), 1.0);
        }
    }
}
