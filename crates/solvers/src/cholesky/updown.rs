//! Sparse Cholesky rank-1 update/downdate (Davis & Hager) — the
//! "rank update methods" the paper's §1.1 lists among the consumers of
//! sparse triangular solve, and a §3.3 method whose symbolic analysis is
//! exactly the machinery built here: the set of columns an update
//! touches is the **etree path** from the smallest index of `w`'s
//! pattern — a reach-set on the elimination tree.
//!
//! `update(L, parent, w, sigma)` replaces `L` with the factor of
//! `A + sigma * w w^T` (`sigma` is `+1.0` or `-1.0`), provided the
//! pattern of `w` is contained in the pattern of `L(:, j0)` where `j0`
//! is `w`'s first nonzero (the standard applicability condition —
//! automatically true when `w` is a scaled copy of a column of `L`).

use super::CholeskyError;
use sympiler_graph::etree::NONE;
use sympiler_sparse::CscMatrix;

/// The columns a rank-1 modification with first nonzero `j0` touches:
/// the etree path from `j0` to the root. This is the symbolic
/// (inspection) half of update/downdate.
pub fn update_path(parent: &[usize], j0: usize) -> Vec<usize> {
    let mut path = Vec::new();
    let mut j = j0;
    while j != NONE {
        path.push(j);
        j = parent[j];
    }
    path
}

/// Rank-1 update (`sigma = +1`) or downdate (`sigma = -1`) of a sparse
/// Cholesky factor in place. `w` is consumed (overwritten with solve
/// intermediates). Returns the list of modified columns.
pub fn rank_update(
    l: &mut CscMatrix,
    parent: &[usize],
    w: &mut [f64],
    sigma: f64,
) -> Result<Vec<usize>, CholeskyError> {
    assert!(sigma == 1.0 || sigma == -1.0, "sigma must be +-1");
    let n = l.n_cols();
    assert_eq!(w.len(), n, "w length mismatch");
    let Some(j0) = (0..n).find(|&i| w[i] != 0.0) else {
        return Ok(Vec::new()); // w == 0: nothing to do
    };
    let path = update_path(parent, j0);
    let col_ptr = l.col_ptr().to_vec();
    let row_idx = l.row_idx().to_vec();
    let lx = l.values_mut();
    let mut beta = 1.0f64;
    for &j in &path {
        let p0 = col_ptr[j];
        debug_assert_eq!(row_idx[p0], j, "diagonal-first storage required");
        let alpha = w[j] / lx[p0];
        let beta2_sq = beta * beta + sigma * alpha * alpha;
        if beta2_sq <= 0.0 || !beta2_sq.is_finite() {
            return Err(CholeskyError::NotPositiveDefinite { column: j });
        }
        let beta2 = beta2_sq.sqrt();
        let (delta, gamma);
        if sigma > 0.0 {
            delta = beta / beta2;
            gamma = alpha / (beta2 * beta);
            lx[p0] = delta * lx[p0] + gamma * w[j];
        } else {
            delta = beta2 / beta;
            gamma = alpha / (beta2 * beta);
            lx[p0] *= delta;
        }
        beta = beta2;
        for p in p0 + 1..col_ptr[j + 1] {
            let i = row_idx[p];
            let w1 = w[i];
            w[i] = w1 - alpha * lx[p];
            if sigma > 0.0 {
                lx[p] = delta * lx[p] + gamma * w1;
            } else {
                lx[p] = delta * lx[p] - gamma * w[i];
            }
        }
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::simplicial::SimplicialCholesky;
    use sympiler_sparse::{gen, ops};

    /// Build w as a scaled copy of column `j` of L (always a valid
    /// update vector).
    fn w_from_column(l: &CscMatrix, j: usize, scale: f64) -> Vec<f64> {
        let mut w = vec![0.0; l.n_cols()];
        for (i, v) in l.col_iter(j) {
            w[i] = scale * v;
        }
        w
    }

    /// A + sigma w w^T as a fresh lower-storage matrix, assuming the
    /// pattern of w w^T restricted to A's filled pattern... we simply
    /// add into a dense copy and re-extract on the union pattern via
    /// triplets (fine at test sizes).
    fn a_plus_wwt(a: &CscMatrix, w: &[f64], sigma: f64) -> CscMatrix {
        let n = a.n_cols();
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            for (i, v) in a.col_iter(j) {
                t.push(i, j, v);
            }
        }
        for j in 0..n {
            if w[j] == 0.0 {
                continue;
            }
            for i in j..n {
                if w[i] != 0.0 {
                    t.push(i, j, sigma * w[i] * w[j]);
                }
            }
        }
        t.to_csc().unwrap()
    }

    #[test]
    fn update_matches_fresh_factorization() {
        for seed in 0..5u64 {
            let a = gen::grid2d_laplacian(6, 6, false, seed);
            let chol = SimplicialCholesky::analyze(&a).unwrap();
            let mut l = chol.factor(&a).unwrap();
            let parent = sympiler_graph::etree(&a);
            let col = (7 * seed as usize + 3) % 30;
            let w0 = w_from_column(&l, col, 0.3);
            let mut w = w0.clone();
            let touched = rank_update(&mut l, &parent, &mut w, 1.0).unwrap();
            assert!(!touched.is_empty());
            // Fresh factorization of A + w w^T (same pattern: w comes
            // from a column of L, whose pattern is within the fill).
            let a2 = a_plus_wwt(&a, &w0, 1.0);
            let l2 = SimplicialCholesky::analyze(&a2)
                .unwrap()
                .factor(&a2)
                .unwrap();
            // Compare on the updated factor's pattern.
            for j in 0..30 {
                for (i, v) in l.col_iter(j) {
                    let want = l2.get(i, j);
                    assert!(
                        (v - want).abs() < 1e-9,
                        "seed {seed} L[{i},{j}] = {v} vs fresh {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn downdate_reverses_update() {
        let a = gen::banded_spd(25, 3, 2);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let mut l = chol.factor(&a).unwrap();
        let original = l.values().to_vec();
        let w0 = w_from_column(&l, 4, 0.25);
        let mut w = w0.clone();
        rank_update(&mut l, &sympiler_graph::etree(&a), &mut w, 1.0).unwrap();
        // Values changed.
        assert!(l
            .values()
            .iter()
            .zip(&original)
            .any(|(x, y)| (x - y).abs() > 1e-12));
        let mut w = w0;
        rank_update(&mut l, &sympiler_graph::etree(&a), &mut w, -1.0).unwrap();
        for (x, y) in l.values().iter().zip(&original) {
            assert!(
                (x - y).abs() < 1e-9,
                "downdate must undo update: {x} vs {y}"
            );
        }
    }

    #[test]
    fn touched_columns_are_the_etree_path() {
        let a = gen::grid2d_laplacian(5, 5, false, 9);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let mut l = chol.factor(&a).unwrap();
        let parent = sympiler_graph::etree(&a);
        let mut w = w_from_column(&l, 6, 0.2);
        let touched = rank_update(&mut l, &parent, &mut w, 1.0).unwrap();
        assert_eq!(touched, update_path(&parent, 6));
        // Path is increasing and ends at a root.
        assert!(touched.windows(2).all(|p| p[0] < p[1]));
        assert_eq!(
            parent[*touched.last().unwrap()],
            sympiler_graph::etree::NONE
        );
    }

    #[test]
    fn updated_factor_still_solves() {
        let a = gen::random_spd(40, 4, 11);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let mut l = chol.factor(&a).unwrap();
        let parent = sympiler_graph::etree(&a);
        let w0 = w_from_column(&l, 10, 0.5);
        let mut w = w0.clone();
        rank_update(&mut l, &parent, &mut w, 1.0).unwrap();
        // Solve (A + w w^T) x = b with the updated factor.
        let b: Vec<f64> = (0..40).map(|i| (i % 7) as f64 + 1.0).collect();
        let mut x = b.clone();
        crate::trisolve::naive_forward(&l, &mut x);
        crate::trisolve::backward_transposed(&l, &mut x);
        let a2 = a_plus_wwt(&a, &w0, 1.0);
        let resid = ops::rel_residual_sym_lower(&a2, &x, &b);
        assert!(resid < 1e-9, "residual {resid}");
    }

    #[test]
    fn zero_w_is_a_noop() {
        let a = gen::tridiagonal_spd(10);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let mut l = chol.factor(&a).unwrap();
        let before = l.values().to_vec();
        let mut w = vec![0.0; 10];
        let touched = rank_update(&mut l, &sympiler_graph::etree(&a), &mut w, 1.0).unwrap();
        assert!(touched.is_empty());
        assert_eq!(l.values(), before.as_slice());
    }

    #[test]
    fn excessive_downdate_is_rejected() {
        // Downdating by more than A allows must fail with a clear error.
        let a = gen::tridiagonal_spd(8);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let mut l = chol.factor(&a).unwrap();
        let mut w = w_from_column(&l, 0, 100.0); // way too large
        let r = rank_update(&mut l, &sympiler_graph::etree(&a), &mut w, -1.0);
        assert!(matches!(r, Err(CholeskyError::NotPositiveDefinite { .. })));
    }
}
