//! Incomplete Cholesky with zero fill, IC(0) — one of the §3.3 "other
//! matrix methods": a preconditioner factorization whose pattern is the
//! *static* pattern of `A`, so every index array is known before any
//! numeric work. This is the method family (like incomplete LU(0))
//! that prior inspector-executor work handled and Sympiler subsumes;
//! its prune-sets come from the pattern of `A` itself rather than the
//! filled pattern of `L`.

use super::CholeskyError;
use sympiler_sparse::{ops, CscMatrix};

/// IC(0) preconditioner: analyze once (row patterns of `A`'s lower
/// triangle), factor repeatedly.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky0 {
    n: usize,
    a_nnz: usize,
    guard: super::PatternGuard,
    /// Row-pattern table of A's strict lower triangle: for each row k,
    /// the columns j < k with A[k,j] != 0, and the position of the
    /// entry (k, j) in the value array — the IC(0) prune set.
    row_ptr: Vec<usize>,
    row_cols: Vec<usize>,
    row_pos: Vec<usize>,
}

impl IncompleteCholesky0 {
    /// Symbolic analysis: the static row structure of `A`.
    pub fn analyze(a_lower: &CscMatrix) -> Result<Self, CholeskyError> {
        if !a_lower.is_square() {
            return Err(CholeskyError::BadInput("matrix must be square".into()));
        }
        if !a_lower.is_lower_storage() {
            return Err(CholeskyError::BadInput(
                "matrix must be in lower-triangular storage".into(),
            ));
        }
        let n = a_lower.n_cols();
        // Build CSR-like access to the strict lower triangle.
        let mut counts = vec![0usize; n];
        for j in 0..n {
            for &i in a_lower.col_rows(j) {
                if i > j {
                    counts[i] += 1;
                }
            }
        }
        let mut row_ptr = vec![0usize; n + 1];
        for k in 0..n {
            row_ptr[k + 1] = row_ptr[k] + counts[k];
        }
        let mut row_cols = vec![0usize; row_ptr[n]];
        let mut row_pos = vec![0usize; row_ptr[n]];
        let mut next = row_ptr[..n].to_vec();
        for j in 0..n {
            for (k, &i) in a_lower.col_rows(j).iter().enumerate() {
                if i > j {
                    let slot = next[i];
                    row_cols[slot] = j;
                    row_pos[slot] = a_lower.col_ptr()[j] + k;
                    next[i] += 1;
                }
            }
        }
        Ok(Self {
            n,
            a_nnz: a_lower.nnz(),
            guard: super::PatternGuard::new(a_lower),
            row_ptr,
            row_cols,
            row_pos,
        })
    }

    /// Numeric IC(0): `L` has exactly `A`'s lower pattern and satisfies
    /// `(L L^T)_{ij} = A_{ij}` on that pattern.
    pub fn factor(&self, a_lower: &CscMatrix) -> Result<CscMatrix, CholeskyError> {
        if a_lower.nnz() != self.a_nnz {
            return Err(CholeskyError::PatternMismatch);
        }
        self.guard.check(a_lower)?;
        let n = self.n;
        let mut lx = a_lower.values().to_vec();
        let lp = a_lower.col_ptr();
        let li = a_lower.row_idx();
        // Column-by-column, like left-looking but with updates
        // restricted to A's pattern. Dense accumulator for column k.
        let mut acc = vec![0.0f64; n];
        for k in 0..n {
            // Scatter current column values.
            for p in lp[k]..lp[k + 1] {
                acc[li[p]] = lx[p];
            }
            // Updates from columns j in the static prune set of row k.
            for t in self.row_ptr[k]..self.row_ptr[k + 1] {
                let j = self.row_cols[t];
                // l_kj is already final (j < k processed).
                let lkj = lx[self.row_pos[t]];
                if lkj == 0.0 {
                    continue;
                }
                // acc[i] -= L[i,j] * lkj for i >= k in col j's pattern,
                // restricted to entries that exist in column k (others
                // are dropped by construction when we gather back).
                for p in lp[j]..lp[j + 1] {
                    let i = li[p];
                    if i >= k {
                        acc[i] -= lx[p] * lkj;
                    }
                }
            }
            // Column factorization on the static pattern.
            let diag = acc[k];
            if diag <= 0.0 || !diag.is_finite() {
                for p in lp[k]..lp[k + 1] {
                    acc[li[p]] = 0.0;
                }
                return Err(CholeskyError::NotPositiveDefinite { column: k });
            }
            let lkk = diag.sqrt();
            let inv = 1.0 / lkk;
            lx[lp[k]] = lkk;
            acc[k] = 0.0;
            for p in lp[k] + 1..lp[k + 1] {
                lx[p] = acc[li[p]] * inv;
                acc[li[p]] = 0.0;
            }
            // Clear accumulator slots touched by updates but outside
            // column k's pattern (dropped fill).
            for t in self.row_ptr[k]..self.row_ptr[k + 1] {
                let j = self.row_cols[t];
                for p in lp[j]..lp[j + 1] {
                    if li[p] >= k {
                        acc[li[p]] = 0.0;
                    }
                }
            }
        }
        Ok(CscMatrix::from_parts_unchecked(
            n,
            n,
            lp.to_vec(),
            li.to_vec(),
            lx,
        ))
    }

    /// Apply the preconditioner: solve `L L^T z = r`.
    pub fn apply(&self, l: &CscMatrix, r: &[f64]) -> Vec<f64> {
        let mut z = r.to_vec();
        crate::trisolve::naive_forward(l, &mut z);
        crate::trisolve::backward_transposed(l, &mut z);
        z
    }
}

/// Condition-improvement check used in tests: PCG iteration counts with
/// and without the preconditioner.
pub fn pcg_iterations(
    a_lower: &CscMatrix,
    b: &[f64],
    precond: Option<(&IncompleteCholesky0, &CscMatrix)>,
    tol: f64,
    max_iter: usize,
) -> (usize, f64) {
    let n = a_lower.n_cols();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = match &precond {
        Some((ic, l)) => ic.apply(l, &r),
        None => r.clone(),
    };
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    let mut iters = 0;
    for _ in 0..max_iter {
        iters += 1;
        let mut ap = vec![0.0; n];
        ops::spmv_sym_lower(a_lower, &p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if rnorm / bnorm < tol {
            break;
        }
        z = match &precond {
            Some((ic, l)) => ic.apply(l, &r),
            None => r.clone(),
        };
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let resid = ops::rel_residual_sym_lower(a_lower, &x, b);
    (iters, resid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn ic0_pattern_is_a_pattern() {
        let a = gen::grid2d_laplacian(8, 8, false, 1);
        let ic = IncompleteCholesky0::analyze(&a).unwrap();
        let l = ic.factor(&a).unwrap();
        assert!(l.same_pattern(&a), "IC(0) must keep A's pattern exactly");
    }

    #[test]
    fn ic0_matches_complete_factor_when_no_fill() {
        // Tridiagonal matrices factor without fill, so IC(0) == full
        // Cholesky.
        let a = gen::tridiagonal_spd(30);
        let ic = IncompleteCholesky0::analyze(&a)
            .unwrap()
            .factor(&a)
            .unwrap();
        let full = crate::cholesky::simplicial::SimplicialCholesky::analyze(&a)
            .unwrap()
            .factor(&a)
            .unwrap();
        for (p, q) in ic.values().iter().zip(full.values()) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn ic0_reproduces_a_on_its_pattern() {
        // (L L^T)_{ij} == A_{ij} wherever A has an entry.
        let a = gen::grid2d_laplacian(6, 6, false, 3);
        let ic = IncompleteCholesky0::analyze(&a).unwrap();
        let l = ic.factor(&a).unwrap();
        let lt = sympiler_sparse::ops::transpose(&l);
        for j in 0..a.n_cols() {
            for (i, want) in a.col_iter(j) {
                // (L L^T)_{ij} = row i of L . row j of L
                //             = col i of L^T . col j of L^T
                let mut got = 0.0;
                let (ri, vi) = (lt.col_rows(i), lt.col_values(i));
                let (rj, vj) = (lt.col_rows(j), lt.col_values(j));
                let (mut a_, mut b_) = (0usize, 0usize);
                while a_ < ri.len() && b_ < rj.len() {
                    match ri[a_].cmp(&rj[b_]) {
                        std::cmp::Ordering::Less => a_ += 1,
                        std::cmp::Ordering::Greater => b_ += 1,
                        std::cmp::Ordering::Equal => {
                            got += vi[a_] * vj[b_];
                            a_ += 1;
                            b_ += 1;
                        }
                    }
                }
                assert!(
                    (got - want).abs() < 1e-9,
                    "A[{i},{j}] = {want}, (LL^T) = {got}"
                );
            }
        }
    }

    #[test]
    fn ic0_preconditioner_cuts_pcg_iterations() {
        let a = gen::grid2d_laplacian(16, 16, false, 5);
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let (plain_iters, plain_resid) = pcg_iterations(&a, &b, None, 1e-10, 500);
        let ic = IncompleteCholesky0::analyze(&a).unwrap();
        let l = ic.factor(&a).unwrap();
        let (pc_iters, pc_resid) = pcg_iterations(&a, &b, Some((&ic, &l)), 1e-10, 500);
        assert!(plain_resid < 1e-8 && pc_resid < 1e-8);
        assert!(
            pc_iters < plain_iters,
            "IC(0) must accelerate PCG: {pc_iters} vs {plain_iters}"
        );
    }

    #[test]
    fn ic0_repeated_factorization() {
        let a1 = gen::circuit_like(100, 4, 2, 7);
        let ic = IncompleteCholesky0::analyze(&a1).unwrap();
        let mut a2 = a1.clone();
        for v in a2.values_mut() {
            *v *= 1.5;
        }
        let l2 = ic.factor(&a2).unwrap();
        assert!(l2.same_pattern(&a2));
        assert!(ic.factor(&a1).is_ok());
    }

    #[test]
    fn ic0_rejects_bad_inputs() {
        let a = gen::grid2d_laplacian(4, 4, false, 1);
        let ic = IncompleteCholesky0::analyze(&a).unwrap();
        let b = gen::grid2d_laplacian(5, 4, false, 1);
        assert!(matches!(ic.factor(&b), Err(CholeskyError::PatternMismatch)));
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 5.0);
        t.push(1, 1, 1.0); // indefinite
        let bad = t.to_csc().unwrap();
        let ic2 = IncompleteCholesky0::analyze(&bad).unwrap();
        assert!(matches!(
            ic2.factor(&bad),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
    }
}
