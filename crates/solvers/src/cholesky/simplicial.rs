//! Left-looking **simplicial** (non-supernodal) sparse Cholesky — the
//! Eigen baseline of the paper (§4.2: "Eigen uses the left-looking
//! non-supernodal approach").
//!
//! The symbolic/numeric split deliberately mirrors what the paper says
//! about the libraries: `analyze` (Eigen's `analyzePattern`) computes
//! the etree and the pattern of `L` once; but the numeric `factor`
//! (Eigen's `factorize`) still performs symbolic work per call — it
//! materializes the upper triangle (the `A^T` the paper calls out) and
//! recomputes every row pattern with `ereach` — because the library
//! "cannot afford to have a separate implementation for each sparsity
//! pattern" (§4.2). Sympiler's generated code removes exactly these.

use super::CholeskyError;
use sympiler_graph::ereach::EreachWorkspace;
use sympiler_graph::symbolic::{symbolic_cholesky, SymbolicFactor};
use sympiler_sparse::{ops, CscMatrix};

/// Eigen-like simplicial Cholesky: analyze once, factor many times.
#[derive(Debug, Clone)]
pub struct SimplicialCholesky {
    sym: SymbolicFactor,
    guard: super::PatternGuard,
}

impl SimplicialCholesky {
    /// Symbolic analysis (Eigen's `analyzePattern`): etree + fill
    /// pattern of `L`, reusable while the sparsity stays fixed.
    pub fn analyze(a_lower: &CscMatrix) -> Result<Self, CholeskyError> {
        if !a_lower.is_square() {
            return Err(CholeskyError::BadInput("matrix must be square".into()));
        }
        if !a_lower.is_lower_storage() {
            return Err(CholeskyError::BadInput(
                "matrix must be in lower-triangular storage".into(),
            ));
        }
        Ok(Self {
            sym: symbolic_cholesky(a_lower),
            guard: super::PatternGuard::new(a_lower),
        })
    }

    /// The symbolic factorization (pattern of `L`, etree, counts).
    pub fn symbolic(&self) -> &SymbolicFactor {
        &self.sym
    }

    /// Numeric factorization (Eigen's `factorize`). Returns `L` with
    /// `A = L L^T`.
    ///
    /// Contains the library-style coupled symbolic work: the transpose
    /// of `A` and per-column `ereach` calls happen *here*, every call.
    pub fn factor(&self, a_lower: &CscMatrix) -> Result<CscMatrix, CholeskyError> {
        let n = self.sym.n;
        self.guard.check(a_lower)?;
        // --- coupled symbolic work #1: upper triangle via transpose ---
        let at = ops::transpose(a_lower);
        let mut ws = EreachWorkspace::new(n);
        let mut pattern = Vec::new();

        let lp = &self.sym.l_col_ptr;
        let li = &self.sym.l_row_idx;
        let mut lx = vec![0.0f64; self.sym.l_nnz()];
        // Dense accumulator and per-column read cursor (advances
        // monotonically; amortized O(1) per entry).
        let mut x = vec![0.0f64; n];
        let mut next_pos: Vec<usize> = (0..n).map(|j| lp[j]).collect();

        for k in 0..n {
            // Scatter A(k:n, k) into the accumulator.
            for (i, v) in a_lower.col_iter(k) {
                debug_assert!(i >= k, "lower storage violated");
                x[i] = v;
            }
            // --- coupled symbolic work #2: the row pattern (ereach) ---
            sympiler_graph::ereach::ereach_into(&at, k, &self.sym.parent, &mut ws, &mut pattern);
            // Left-looking update: for each j with L[k,j] != 0 pull the
            // rank-1 contribution of column j restricted to rows >= k.
            for &j in &pattern {
                // Advance the cursor of column j to row k.
                let mut p = next_pos[j];
                while li[p] < k {
                    p += 1;
                }
                next_pos[j] = p;
                debug_assert_eq!(li[p], k, "pattern mismatch: L[{k},{j}] missing");
                let lkj = lx[p];
                for (&i, &lij) in li[p..lp[j + 1]].iter().zip(&lx[p..lp[j + 1]]) {
                    x[i] -= lij * lkj;
                }
            }
            // Column factorization: sqrt on the diagonal, scale the rest.
            let diag = x[k];
            if diag <= 0.0 || !diag.is_finite() {
                // Clean up the accumulator before bailing.
                for &i in self.sym.col_pattern(k) {
                    x[i] = 0.0;
                }
                return Err(CholeskyError::NotPositiveDefinite { column: k });
            }
            let lkk = diag.sqrt();
            let inv = 1.0 / lkk;
            let col = self.sym.col_pattern(k);
            let dst = &mut lx[lp[k]..lp[k + 1]];
            dst[0] = lkk;
            x[k] = 0.0;
            for (slot, &i) in dst[1..].iter_mut().zip(&col[1..]) {
                *slot = x[i] * inv;
                x[i] = 0.0;
            }
        }
        Ok(CscMatrix::from_parts_unchecked(
            n,
            n,
            lp.clone(),
            li.clone(),
            lx,
        ))
    }

    /// Factor and solve `A x = b` in one call (returns `x`).
    pub fn solve(&self, a_lower: &CscMatrix, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
        let l = self.factor(a_lower)?;
        let mut x = b.to_vec();
        crate::trisolve::naive_forward(&l, &mut x);
        crate::trisolve::backward_transposed(&l, &mut x);
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use sympiler_sparse::gen;

    #[test]
    fn factors_small_known_matrix() {
        // A = [[4, 2], [2, 5]] -> L = [[2, 0], [1, 2]]
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 4.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 5.0);
        let a = t.to_csc().unwrap();
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let l = chol.factor(&a).unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-14);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-14);
        assert!((l.get(1, 1) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn reconstructs_random_spd() {
        for seed in 0..6u64 {
            let a = gen::random_spd(50, 4, seed);
            let chol = SimplicialCholesky::analyze(&a).unwrap();
            let l = chol.factor(&a).unwrap();
            let err = verify::reconstruction_error(&a, &l);
            assert!(err < 1e-10, "seed {seed}: reconstruction error {err}");
        }
    }

    #[test]
    fn reconstructs_structured_matrices() {
        for a in [
            gen::grid2d_laplacian(7, 7, false, 1),
            gen::grid2d_laplacian(5, 6, true, 2),
            gen::banded_spd(40, 5, 3),
            gen::circuit_like(60, 4, 2, 4),
            gen::tridiagonal_spd(30),
        ] {
            let chol = SimplicialCholesky::analyze(&a).unwrap();
            let l = chol.factor(&a).unwrap();
            assert!(verify::reconstruction_error(&a, &l) < 1e-10);
        }
    }

    #[test]
    fn factor_pattern_matches_symbolic_prediction() {
        let a = gen::grid2d_laplacian(6, 5, false, 5);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let l = chol.factor(&a).unwrap();
        assert_eq!(l.col_ptr(), chol.symbolic().l_col_ptr.as_slice());
        assert_eq!(l.row_idx(), chol.symbolic().l_row_idx.as_slice());
    }

    #[test]
    fn repeated_factorization_with_new_values() {
        // The Sympiler scenario: same pattern, changing values.
        let a1 = gen::random_spd(40, 4, 10);
        let chol = SimplicialCholesky::analyze(&a1).unwrap();
        let l1 = chol.factor(&a1).unwrap();
        // Scale values (pattern unchanged, still SPD).
        let mut a2 = a1.clone();
        for v in a2.values_mut() {
            *v *= 2.0;
        }
        let l2 = chol.factor(&a2).unwrap();
        assert!(verify::reconstruction_error(&a2, &l2) < 1e-10);
        // L scales by sqrt(2).
        for (p, q) in l1.values().iter().zip(l2.values()) {
            assert!((q - p * 2.0f64.sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0); // [[1,2],[2,1]] indefinite
        let a = t.to_csc().unwrap();
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        assert_eq!(
            chol.factor(&a),
            Err(CholeskyError::NotPositiveDefinite { column: 1 })
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut t = sympiler_sparse::TripletMatrix::new(2, 3);
        t.push(0, 0, 1.0);
        let rect = t.to_csc().unwrap();
        assert!(matches!(
            SimplicialCholesky::analyze(&rect),
            Err(CholeskyError::BadInput(_))
        ));
        // Upper entry present -> not lower storage.
        let mut t2 = sympiler_sparse::TripletMatrix::new(2, 2);
        t2.push(0, 0, 1.0);
        t2.push(0, 1, 1.0);
        t2.push(1, 1, 1.0);
        let up = t2.to_csc().unwrap();
        assert!(matches!(
            SimplicialCholesky::analyze(&up),
            Err(CholeskyError::BadInput(_))
        ));
    }

    #[test]
    fn rejects_dimension_mismatch_at_factor_time() {
        let a = gen::random_spd(10, 3, 1);
        let b = gen::random_spd(12, 3, 1);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        assert_eq!(chol.factor(&b), Err(CholeskyError::PatternMismatch));
    }

    #[test]
    fn solve_end_to_end() {
        let a = gen::grid2d_laplacian(5, 5, false, 8);
        let chol = SimplicialCholesky::analyze(&a).unwrap();
        let b = vec![1.0; 25];
        let x = chol.solve(&a, &b).unwrap();
        let resid = ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-12, "residual {resid}");
    }
}
