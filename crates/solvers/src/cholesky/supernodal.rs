//! Left-looking **supernodal** sparse Cholesky — the CHOLMOD baseline
//! (§4.1: "both libraries support the more commonly used left-looking
//! (supernodal) algorithm which is also the algorithm used by
//! Sympiler").
//!
//! Columns with nesting patterns are grouped into supernodes (dense
//! trapezoidal panels); the factorization works panel-by-panel:
//!
//! 1. scatter `A`'s columns into the panel;
//! 2. subtract every descendant supernode's contribution with a dense
//!    `GEMM` (`W = L_d(I, :) * L_d(J, :)^T`) scattered through relative
//!    indices;
//! 3. dense Cholesky (`potrf`) on the diagonal block;
//! 4. dense triangular solve (`trsm`) on the sub-diagonal panel.
//!
//! Faithful to the library structure the paper measures: the *symbolic*
//! phase (etree, counts, supernodes, layout) runs once and is reusable,
//! but the numeric phase still (a) transposes `A`, (b) walks descendant
//! lists, and (c) computes relative indices — per factorization. The
//! Sympiler plan (sympiler-core) hoists (a)–(c) to inspection time.

use super::CholeskyError;
use sympiler_dense::{gemm_nt_sub, potrf_lower, trsm_right_lower_trans};
use sympiler_graph::supernode::{supernodes_cholesky, SupernodePartition};
use sympiler_graph::symbolic::{symbolic_cholesky, SymbolicFactor};
use sympiler_sparse::{ops, CscMatrix};

/// Supernodal storage layout: panels of the factor, one per supernode.
///
/// Panel `s` is a dense `ld(s) x width(s)` column-major block holding
/// rows `rows(s)` (the pattern of the supernode's first column) of
/// columns `first_col[s] .. first_col[s+1]`. The first `width(s)` rows
/// are the (lower-triangular) diagonal block.
#[derive(Debug, Clone)]
pub struct SupernodalLayout {
    /// Supernode partition of the columns.
    pub part: SupernodePartition,
    /// Row lists: `rows[rows_ptr[s]..rows_ptr[s+1]]` are the rows of
    /// panel `s`, sorted ascending; the first `width(s)` are
    /// `first_col[s]..first_col[s+1]`.
    pub rows_ptr: Vec<usize>,
    pub rows: Vec<usize>,
    /// Value offsets: panel `s` occupies
    /// `values[val_ptr[s]..val_ptr[s+1]]`.
    pub val_ptr: Vec<usize>,
}

impl SupernodalLayout {
    /// Build the layout from a symbolic factorization.
    pub fn new(sym: &SymbolicFactor, part: SupernodePartition) -> Self {
        let ns = part.n_supernodes();
        let mut rows_ptr = Vec::with_capacity(ns + 1);
        let mut rows = Vec::new();
        let mut val_ptr = Vec::with_capacity(ns + 1);
        rows_ptr.push(0);
        val_ptr.push(0);
        for s in 0..ns {
            let first = part.first_col[s];
            let width = part.width(s);
            let pat = sym.col_pattern(first);
            rows.extend_from_slice(pat);
            rows_ptr.push(rows.len());
            val_ptr.push(val_ptr.last().unwrap() + pat.len() * width);
        }
        Self {
            part,
            rows_ptr,
            rows,
            val_ptr,
        }
    }

    /// Number of supernodes.
    #[inline]
    pub fn n_supernodes(&self) -> usize {
        self.part.n_supernodes()
    }

    /// Rows of panel `s`.
    #[inline]
    pub fn panel_rows(&self, s: usize) -> &[usize] {
        &self.rows[self.rows_ptr[s]..self.rows_ptr[s + 1]]
    }

    /// Leading dimension (row count) of panel `s`.
    #[inline]
    pub fn ld(&self, s: usize) -> usize {
        self.rows_ptr[s + 1] - self.rows_ptr[s]
    }

    /// Total stored values.
    #[inline]
    pub fn n_values(&self) -> usize {
        *self.val_ptr.last().unwrap()
    }
}

/// A computed supernodal factor: layout + values.
#[derive(Debug, Clone)]
pub struct SupernodalFactor<'a> {
    pub layout: &'a SupernodalLayout,
    pub values: Vec<f64>,
}

impl SupernodalFactor<'_> {
    /// Extract the factor as a plain CSC matrix (for verification).
    pub fn to_csc(&self) -> CscMatrix {
        let n = self.layout.part.n_cols();
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for s in 0..self.layout.n_supernodes() {
            let first = self.layout.part.first_col[s];
            let width = self.layout.part.width(s);
            let rows = self.layout.panel_rows(s);
            let ld = rows.len();
            let base = self.layout.val_ptr[s];
            for c in 0..width {
                for (r, &row) in rows.iter().enumerate().skip(c) {
                    t.push(row, first + c, self.values[base + c * ld + r]);
                }
            }
        }
        t.to_csc().expect("panel extraction is structurally valid")
    }

    /// Forward solve `L y = x` in place over the panels.
    pub fn forward_solve(&self, x: &mut [f64]) {
        let lay = self.layout;
        for s in 0..lay.n_supernodes() {
            let first = lay.part.first_col[s];
            let width = lay.part.width(s);
            let rows = lay.panel_rows(s);
            let ld = rows.len();
            let base = lay.val_ptr[s];
            let panel = &self.values[base..base + ld * width];
            sympiler_dense::trsv_lower(width, panel, ld, &mut x[first..first + width]);
            // Off-diagonal: x[rows[w..]] -= panel[w.., :] * x[first..]
            for c in 0..width {
                let xc = x[first + c];
                if xc == 0.0 {
                    continue;
                }
                let col = &panel[c * ld + width..(c + 1) * ld];
                for (&row, &v) in rows[width..].iter().zip(col) {
                    x[row] -= v * xc;
                }
            }
        }
    }

    /// Backward solve `L^T y = x` in place over the panels.
    pub fn backward_solve(&self, x: &mut [f64]) {
        let lay = self.layout;
        for s in (0..lay.n_supernodes()).rev() {
            let first = lay.part.first_col[s];
            let width = lay.part.width(s);
            let rows = lay.panel_rows(s);
            let ld = rows.len();
            let base = lay.val_ptr[s];
            let panel = &self.values[base..base + ld * width];
            // x[first..first+width] -= panel[w.., :]^T x[rows[w..]]
            for c in 0..width {
                let col = &panel[c * ld + width..(c + 1) * ld];
                let mut dot = 0.0;
                for (&row, &v) in rows[width..].iter().zip(col) {
                    dot += v * x[row];
                }
                x[first + c] -= dot;
            }
            sympiler_dense::trsv_lower_trans(width, panel, ld, &mut x[first..first + width]);
        }
    }

    /// Solve `A x = b`, returning `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.forward_solve(&mut x);
        self.backward_solve(&mut x);
        x
    }
}

/// CHOLMOD-like supernodal Cholesky: analyze once, factor repeatedly.
#[derive(Debug, Clone)]
pub struct SupernodalCholesky {
    sym: SymbolicFactor,
    layout: SupernodalLayout,
    guard: super::PatternGuard,
}

impl SupernodalCholesky {
    /// Symbolic analysis: etree, fill pattern, supernodes, panel layout.
    /// `max_width` caps supernode width (0 = unlimited).
    pub fn analyze(a_lower: &CscMatrix, max_width: usize) -> Result<Self, CholeskyError> {
        if !a_lower.is_square() {
            return Err(CholeskyError::BadInput("matrix must be square".into()));
        }
        if !a_lower.is_lower_storage() {
            return Err(CholeskyError::BadInput(
                "matrix must be in lower-triangular storage".into(),
            ));
        }
        let sym = symbolic_cholesky(a_lower);
        let part = supernodes_cholesky(&sym, max_width);
        let layout = SupernodalLayout::new(&sym, part);
        Ok(Self {
            sym,
            layout,
            guard: super::PatternGuard::new(a_lower),
        })
    }

    pub fn symbolic(&self) -> &SymbolicFactor {
        &self.sym
    }

    pub fn layout(&self) -> &SupernodalLayout {
        &self.layout
    }

    /// Numeric factorization. Residual symbolic work done here on every
    /// call, like the library: `A^T` materialization, descendant-list
    /// maintenance, relative-index computation.
    pub fn factor(&self, a_lower: &CscMatrix) -> Result<SupernodalFactor<'_>, CholeskyError> {
        self.guard.check(a_lower)?;
        let n = self.sym.n;
        let _ = n;
        let lay = &self.layout;
        let ns = lay.n_supernodes();
        // --- residual symbolic work #1: the upper triangle ---
        // (used to scatter full symmetric columns into panels; the
        // paper: "both libraries compute the transpose of A in the
        // numerical code to access its upper triangular elements").
        let at = ops::transpose(a_lower);

        let mut values = vec![0.0f64; lay.n_values()];
        // Relative-position map: pos[row] = row offset in the current
        // target panel.
        let mut pos = vec![usize::MAX; n];
        // Descendant lists: head[s] / next[d] intrusive lists, with
        // desc_ptr[d] = offset of d's first pending row.
        const NONE: usize = usize::MAX;
        let mut head = vec![NONE; ns];
        let mut next = vec![NONE; ns];
        let mut desc_ptr = vec![0usize; ns];
        // Scratch buffer for GEMM results, sized to the largest panel.
        let max_panel = (0..ns).map(|s| lay.ld(s)).max().unwrap_or(0);
        let max_width = (0..ns).map(|s| lay.part.width(s)).max().unwrap_or(0);
        let mut w_buf = vec![0.0f64; max_panel * max_width];

        for s in 0..ns {
            let first = lay.part.first_col[s];
            let width = lay.part.width(s);
            let s_end = first + width;
            let rows = lay.panel_rows(s);
            let ld = rows.len();
            let base = lay.val_ptr[s];

            // Relative indices for this panel (symbolic work in numeric).
            for (r, &row) in rows.iter().enumerate() {
                pos[row] = r;
            }

            // Scatter A's columns (both triangles) into the panel.
            {
                let panel = &mut values[base..base + ld * width];
                for c in 0..width {
                    let j = first + c;
                    for (i, v) in a_lower.col_iter(j) {
                        panel[c * ld + pos[i]] = v;
                    }
                    // Strict upper part of the diagonal block, read off
                    // A^T: harmless for the lower-triangular kernels but
                    // keeps the assembled block symmetric — and models
                    // the library's numeric-phase A^T access (§4.2).
                    for (i, v) in at.col_iter(j) {
                        if i >= first && i < j {
                            panel[c * ld + pos[i]] = v;
                        }
                    }
                }
            }

            // Apply descendant updates.
            let mut d = head[s];
            head[s] = NONE;
            while d != NONE {
                let d_next = next[d];
                let d_rows = lay.panel_rows(d);
                let d_ld = d_rows.len();
                let d_width = lay.part.width(d);
                let d_base = lay.val_ptr[d];
                let lo = desc_ptr[d];
                // Rows of d inside [first, s_end) are the target columns.
                let mut hi = lo;
                while hi < d_ld && d_rows[hi] < s_end {
                    hi += 1;
                }
                let m = d_ld - lo; // rows I (suffix)
                let ncols = hi - lo; // rows J (columns of s)
                debug_assert!(ncols > 0, "descendant without pending rows");
                // W[0..m, 0..ncols] = L_d(I, :) * L_d(J, :)^T, computed
                // as a subtraction into a zeroed buffer.
                let w = &mut w_buf[..m * ncols];
                w.fill(0.0);
                let d_panel = &values[d_base..d_base + d_ld * d_width];
                gemm_nt_sub(
                    m,
                    ncols,
                    d_width,
                    &d_panel[lo..],
                    d_ld,
                    &d_panel[lo..],
                    d_ld,
                    w,
                    m,
                );
                // Scatter-add (W already carries the minus sign).
                {
                    let panel = &mut values[base..base + ld * width];
                    for jj in 0..ncols {
                        let col = d_rows[lo + jj] - first;
                        let dst = &mut panel[col * ld..(col + 1) * ld];
                        let wcol = &w[jj * m..(jj + 1) * m];
                        // Only rows at or below the diagonal of the
                        // target column matter; they start at index jj.
                        for (ii, &wv) in wcol.iter().enumerate().skip(jj) {
                            dst[pos[d_rows[lo + ii]]] += wv;
                        }
                    }
                }
                // Re-attach d to the supernode owning its next row.
                if hi < d_ld {
                    desc_ptr[d] = hi;
                    let owner = lay.part.col_to_super[d_rows[hi]];
                    next[d] = head[owner];
                    head[owner] = d;
                }
                d = d_next;
            }

            // Dense factorization of the diagonal block + panel solve.
            {
                let panel = &mut values[base..base + ld * width];
                potrf_lower(width, panel, ld)
                    .map_err(|c| CholeskyError::NotPositiveDefinite { column: first + c })?;
                if ld > width {
                    let (diag_cols, _) = panel.split_at_mut(ld * width);
                    // trsm needs L (read) and B (write) from the same
                    // buffer: split by columns is impossible since B is
                    // the lower part of each column. Use a copy of the
                    // diagonal block instead.
                    let mut diag = vec![0.0f64; width * width];
                    for c in 0..width {
                        for r in c..width {
                            diag[c * width + r] = diag_cols[c * ld + r];
                        }
                    }
                    trsm_right_lower_trans(
                        ld - width,
                        width,
                        &diag,
                        width,
                        &mut diag_cols[width..],
                        ld,
                    );
                }
            }

            // Enter s into the descendant list of the first supernode
            // its off-diagonal rows touch.
            if ld > width {
                desc_ptr[s] = width;
                let owner = lay.part.col_to_super[rows[width]];
                next[s] = head[owner];
                head[owner] = s;
            }
        }
        Ok(SupernodalFactor {
            layout: lay,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::simplicial::SimplicialCholesky;
    use crate::verify;
    use sympiler_sparse::gen;

    fn check_matches_simplicial(a: &CscMatrix, max_width: usize) {
        let sup = SupernodalCholesky::analyze(a, max_width).unwrap();
        let f = sup.factor(a).unwrap();
        let l_sup = f.to_csc();
        let simp = SimplicialCholesky::analyze(a).unwrap();
        let l_simp = simp.factor(a).unwrap();
        assert!(l_sup.same_pattern(&l_simp), "patterns differ");
        for (p, q) in l_sup.values().iter().zip(l_simp.values()) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn matches_simplicial_on_random() {
        for seed in 0..6u64 {
            let a = gen::random_spd(40, 4, seed);
            check_matches_simplicial(&a, 0);
        }
    }

    #[test]
    fn matches_simplicial_on_structured() {
        for a in [
            gen::grid2d_laplacian(6, 6, false, 1),
            gen::grid2d_laplacian(5, 5, true, 2),
            gen::banded_spd(30, 4, 3),
            gen::circuit_like(50, 4, 2, 4),
            gen::tridiagonal_spd(20),
        ] {
            check_matches_simplicial(&a, 0);
        }
    }

    #[test]
    fn width_cap_does_not_change_values() {
        let a = gen::banded_spd(32, 4, 7);
        check_matches_simplicial(&a, 2);
        check_matches_simplicial(&a, 3);
    }

    #[test]
    fn dense_arrow_single_supernode() {
        // Dense first column: L completely dense, one supernode.
        let mut t = sympiler_sparse::TripletMatrix::new(8, 8);
        for j in 0..8 {
            t.push(j, j, 10.0);
        }
        for i in 1..8 {
            t.push(i, 0, -1.0);
        }
        let a = t.to_csc().unwrap();
        let sup = SupernodalCholesky::analyze(&a, 0).unwrap();
        assert_eq!(sup.layout().n_supernodes(), 1);
        let f = sup.factor(&a).unwrap();
        assert!(verify::reconstruction_error(&a, &f.to_csc()) < 1e-10);
    }

    #[test]
    fn reconstruction_on_grid() {
        let a = gen::grid2d_laplacian(8, 7, false, 9);
        let sup = SupernodalCholesky::analyze(&a, 0).unwrap();
        let f = sup.factor(&a).unwrap();
        assert!(verify::reconstruction_error(&a, &f.to_csc()) < 1e-10);
    }

    #[test]
    fn panel_solve_matches_csc_solve() {
        let a = gen::grid2d_laplacian(6, 6, false, 4);
        let sup = SupernodalCholesky::analyze(&a, 0).unwrap();
        let f = sup.factor(&a).unwrap();
        let b: Vec<f64> = (0..36).map(|i| (i as f64 * 0.7).cos()).collect();
        let x = f.solve(&b);
        let resid = ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-12, "residual {resid}");
        // Cross-check against CSC-based substitution.
        let l = f.to_csc();
        let mut x2 = b.clone();
        crate::trisolve::naive_forward(&l, &mut x2);
        crate::trisolve::backward_transposed(&l, &mut x2);
        for (p, q) in x.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn repeated_factorizations_are_independent() {
        let a = gen::grid2d_laplacian(5, 5, false, 6);
        let sup = SupernodalCholesky::analyze(&a, 0).unwrap();
        let f1 = sup.factor(&a).unwrap();
        let f2 = sup.factor(&a).unwrap();
        for (p, q) in f1.values.iter().zip(&f2.values) {
            assert_eq!(p, q, "repeat factorization must be bit-identical");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = sympiler_sparse::TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 1.0);
        let a = t.to_csc().unwrap();
        let sup = SupernodalCholesky::analyze(&a, 0).unwrap();
        assert!(matches!(
            sup.factor(&a),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_factor_input() {
        let a = gen::random_spd(10, 3, 1);
        let b = gen::random_spd(11, 3, 2);
        let sup = SupernodalCholesky::analyze(&a, 0).unwrap();
        assert!(matches!(
            sup.factor(&b),
            Err(CholeskyError::PatternMismatch)
        ));
    }
}
