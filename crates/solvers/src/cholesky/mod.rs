//! Sparse Cholesky baselines: simplicial (Eigen-like), supernodal
//! (CHOLMOD-like), and up-looking LDL^T (CSparse-like, extension).

pub mod ichol;
pub mod ldl;
pub mod simplicial;
pub mod supernodal;
pub mod updown;

use std::fmt;

/// Errors from numeric factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholeskyError {
    /// A pivot was zero, negative, or not finite: the matrix is not
    /// positive definite (or is numerically broken).
    NotPositiveDefinite { column: usize },
    /// The matrix handed to `factor` does not match the analyzed
    /// pattern (Sympiler's static-sparsity contract, §1.2).
    PatternMismatch,
    /// Input is not square or not lower-triangular storage.
    BadInput(String),
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite { column } => {
                write!(f, "matrix not positive definite at column {column}")
            }
            CholeskyError::PatternMismatch => {
                write!(f, "matrix pattern differs from the analyzed pattern")
            }
            CholeskyError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Pattern fingerprint taken at analysis time and verified on every
/// numeric call — enforcing the static-sparsity contract instead of
/// assuming it.
#[derive(Debug, Clone)]
pub(crate) struct PatternGuard {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl PatternGuard {
    pub(crate) fn new(a: &sympiler_sparse::CscMatrix) -> Self {
        Self {
            n: a.n_cols(),
            col_ptr: a.col_ptr().to_vec(),
            row_idx: a.row_idx().to_vec(),
        }
    }

    pub(crate) fn check(&self, a: &sympiler_sparse::CscMatrix) -> Result<(), CholeskyError> {
        if a.n_cols() != self.n
            || a.col_ptr() != self.col_ptr.as_slice()
            || a.row_idx() != self.row_idx.as_slice()
        {
            return Err(CholeskyError::PatternMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = CholeskyError::NotPositiveDefinite { column: 3 };
        assert!(e.to_string().contains("column 3"));
        assert!(CholeskyError::PatternMismatch
            .to_string()
            .contains("pattern"));
        assert!(CholeskyError::BadInput("x".into())
            .to_string()
            .contains("x"));
    }
}
