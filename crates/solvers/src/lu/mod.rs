//! Sparse LU baselines — the unsymmetric-system comparators for the
//! Sympiler-style LU plan in `sympiler-core::plan::lu`.
//!
//! * [`gplu`] — the reference left-looking Gilbert–Peierls LU: symbolic
//!   work (per-column DFS reach computation) is **coupled into every
//!   numeric factorization**, exactly the library behaviour the paper's
//!   decoupling removes. Supports static (diagonal) pivoting — the
//!   regime Sympiler compiles for — and classic partial pivoting as a
//!   numerical verification mode.
//! * [`lu_solve`](gplu::GpLuFactors::solve) — the end-to-end
//!   `P A x = b` solve path (`P b -> L y = P b -> U x = y`).

//! * [`gplu::OrderedGpLuFactors`] — the baseline under the same
//!   fill-reducing [`Ordering`](sympiler_graph::ordering::Ordering)
//!   knob the compiled pipeline uses, so decoupling comparisons stay
//!   apples-to-apples when orderings are on.
//! * [`gplu::PrePivotedGpLuFactors`] — the baseline under the static
//!   [`PrePivot`](sympiler_graph::transversal::PrePivot) row-matching
//!   knob composed with an ordering (`Qᵀ·P·A·Q`), the comparator for
//!   compiled plans on matrices whose raw diagonal is structurally
//!   zero.
//! * [`gplu::ScaledPrePivotedGpLuFactors`] — the same baseline on the
//!   MC64-equilibrated matrix `Dr·A·Dc`, the comparator for compiled
//!   plans running with `mc64_scale` on.

pub mod gplu;

pub use gplu::{
    lu_backward_error, lu_reconstruction_error, lu_solve, GpLu, GpLuFactors, LuError,
    OrderedGpLuFactors, Pivoting, PrePivotedGpLuFactors, ScaledPrePivotedGpLuFactors,
};
