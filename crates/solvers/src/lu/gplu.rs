//! Left-looking Gilbert–Peierls sparse LU (the algorithm of
//! "Sparse partial pivoting in time proportional to arithmetic
//! operations", Gilbert & Peierls 1988) — the runtime baseline whose
//! symbolic phase (per-column DFS) re-runs inside **every** numeric
//! factorization, the coupling Sympiler's compiled LU plan removes.
//!
//! Column `j` is produced by solving `L(:, 0:j-1) x = A(:, j)` with the
//! already-computed columns: the solution pattern is the reach of
//! `SP(A(:,j))` on the dependence graph of `L`, computed here by DFS at
//! run time. Row indices are kept in **original** coordinates during
//! factorization (pivoting permutes rows lazily via `pinv`); the final
//! factors are re-mapped and sorted into permuted coordinates, so `L`
//! is unit lower triangular with diagonal-first columns and `U` upper
//! triangular with diagonal-last columns, satisfying
//! `P A = L U` with `P` the returned row permutation.

use sympiler_sparse::CscMatrix;

/// Pivoting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pivoting {
    /// Static diagonal pivoting — the fixed-pattern regime Sympiler
    /// compiles for. Fails with [`LuError::ZeroPivot`] when a diagonal
    /// entry is structurally or numerically zero.
    None,
    /// Classic partial pivoting: choose the largest-magnitude candidate
    /// row. Used as the numerical verification mode for workloads where
    /// static pivoting is assumed safe.
    Partial,
}

/// LU factorization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// Bad input shape.
    BadInput(String),
    /// No admissible pivot at this column (structural or numeric zero).
    ZeroPivot { column: usize },
    /// A pre-pivot was requested but the pattern has no perfect
    /// row/column matching — no row permutation can make any pivoting
    /// strategy work (see
    /// [`sympiler_sparse::SparseError::StructurallySingular`]).
    StructurallySingular {
        /// Matrix order.
        n: usize,
        /// Size of the maximum matching (`< n`).
        structural_rank: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::BadInput(m) => write!(f, "bad input: {m}"),
            LuError::ZeroPivot { column } => {
                write!(f, "zero pivot at column {column}")
            }
            LuError::StructurallySingular { n, structural_rank } => write!(
                f,
                "structurally singular: maximum matching covers \
                 {structural_rank} of {n} columns"
            ),
        }
    }
}

impl std::error::Error for LuError {}

/// The factors of `P A = L U`.
#[derive(Debug, Clone)]
pub struct GpLuFactors {
    /// Unit lower triangular (diagonal-first columns, value 1.0), in
    /// permuted row coordinates.
    pub l: CscMatrix,
    /// Upper triangular (diagonal-last columns).
    pub u: CscMatrix,
    /// Row permutation: `row_perm[new] = old`, i.e. `(P A)[new, :] =
    /// A[row_perm[new], :]`.
    pub row_perm: Vec<usize>,
}

impl GpLuFactors {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.l.n_cols()
    }

    /// True when no rows were actually exchanged.
    pub fn is_identity_perm(&self) -> bool {
        self.row_perm.iter().enumerate().all(|(k, &p)| k == p)
    }

    /// Solve `A x = b` through `P b -> L y = P b -> U x = y`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n(), "rhs length mismatch");
        let mut x: Vec<f64> = self.row_perm.iter().map(|&old| b[old]).collect();
        crate::trisolve::naive_forward(&self.l, &mut x);
        crate::trisolve::naive_backward_upper(&self.u, &mut x);
        x
    }

    /// Determinant of `A` up to the permutation sign: the product of
    /// `U`'s diagonal (L's diagonal is unit).
    pub fn det_magnitude(&self) -> f64 {
        (0..self.n())
            .map(|j| {
                let vals = self.u.col_values(j);
                vals[vals.len() - 1].abs()
            })
            .product()
    }
}

/// Solve `A x = b` given precomputed factors (free-function form of
/// [`GpLuFactors::solve`] for call sites that read better with one).
pub fn lu_solve(f: &GpLuFactors, b: &[f64]) -> Vec<f64> {
    f.solve(b)
}

/// [`GpLuFactors`] under a fill-reducing ordering: the factors satisfy
/// `P (Qᵀ A Q) = L U`, and [`Self::solve`] maps between the original
/// coordinates of `A` and the ordered coordinates of the factors.
///
/// This is the runtime baseline's half of the ordering story: the
/// compiled plan (`sympiler-core`) bakes the same `Q` at compile time,
/// so with both engines ordered identically, the measured gap is the
/// decoupling win alone — apples to apples.
#[derive(Debug, Clone)]
pub struct OrderedGpLuFactors {
    /// Factors of the symmetrically permuted matrix `Qᵀ A Q`.
    pub factors: GpLuFactors,
    /// `col_perm[new] = old`; `None` under
    /// [`sympiler_graph::ordering::Ordering::Natural`], in which case
    /// the factors are plainly those of `A`.
    pub col_perm: Option<Vec<usize>>,
}

impl OrderedGpLuFactors {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.factors.n()
    }

    /// Solve `A x = b` in original coordinates: gather `b` into
    /// ordered coordinates, run the factors' permuted solve, scatter
    /// the result back.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        match &self.col_perm {
            None => self.factors.solve(b),
            Some(q) => {
                let bq = sympiler_sparse::ops::gather_perm(q, b);
                let y = self.factors.solve(&bq);
                sympiler_sparse::ops::scatter_perm(q, &y)
            }
        }
    }
}

impl GpLu {
    /// Factor `a` under a fill-reducing ordering from the same
    /// [`sympiler_graph::ordering::Ordering`] knob the compiled
    /// pipeline uses: compute `Q`, form `Qᵀ A Q` (symmetric
    /// application keeps the diagonal in place, so
    /// [`Pivoting::None`] stays meaningful), and run the coupled
    /// factorization on it.
    pub fn factor_ordered(
        a: &CscMatrix,
        pivoting: Pivoting,
        ordering: sympiler_graph::ordering::Ordering,
    ) -> Result<OrderedGpLuFactors, LuError> {
        if !a.is_square() {
            return Err(LuError::BadInput("matrix must be square".into()));
        }
        match sympiler_graph::ordering::compute_ordering(a, ordering) {
            None => Ok(OrderedGpLuFactors {
                factors: Self::factor(a, pivoting)?,
                col_perm: None,
            }),
            Some(q) => {
                let b = sympiler_sparse::ops::permute_rows_cols(a, &q)
                    .map_err(|e| LuError::BadInput(format!("ordering application: {e}")))?;
                Ok(OrderedGpLuFactors {
                    factors: Self::factor(&b, pivoting)?,
                    col_perm: Some(q),
                })
            }
        }
    }

    /// Factor `a` under a static pre-pivot **and** a fill-reducing
    /// ordering, the same two knobs (and the same graph algorithms)
    /// the compiled pipeline resolves at inspection time: compute the
    /// row matching `P` ([`sympiler_graph::transversal`]), the
    /// ordering `Q` of `P·A`, and run the coupled factorization on
    /// `Qᵀ·P·A·Q`. With both engines pivoted and ordered identically,
    /// the measured gap against the compiled plan is the decoupling
    /// win alone — apples to apples on matrices whose raw diagonal is
    /// structurally zero.
    pub fn factor_prepivoted(
        a: &CscMatrix,
        pivoting: Pivoting,
        pre_pivot: sympiler_graph::transversal::PrePivot,
        ordering: sympiler_graph::ordering::Ordering,
    ) -> Result<PrePivotedGpLuFactors, LuError> {
        if !a.is_square() {
            return Err(LuError::BadInput("matrix must be square".into()));
        }
        let rowp =
            sympiler_graph::transversal::compute_pre_pivot(a, pre_pivot).map_err(|e| match e {
                sympiler_sparse::SparseError::StructurallySingular { n, structural_rank } => {
                    LuError::StructurallySingular { n, structural_rank }
                }
                other => LuError::BadInput(format!("pre-pivot: {other}")),
            })?;
        let pivoted_storage;
        let pivoted = match &rowp {
            Some(p) => {
                pivoted_storage = sympiler_sparse::ops::permute_rows(a, p)
                    .map_err(|e| LuError::BadInput(format!("pre-pivot application: {e}")))?;
                &pivoted_storage
            }
            None => a,
        };
        let ordered = Self::factor_ordered(pivoted, pivoting, ordering)?;
        // Compose the row maps: row `new` of the factored system is
        // row `rowp[q[new]]` of the caller's matrix.
        let (row_perm, col_perm) = match (rowp, ordered.col_perm) {
            (None, None) => (None, None),
            (Some(p), None) => (Some(p), None),
            (None, Some(q)) => (Some(q.clone()), Some(q)),
            (Some(p), Some(q)) => {
                let composed: Vec<usize> = q.iter().map(|&jq| p[jq]).collect();
                (Some(composed), Some(q))
            }
        };
        Ok(PrePivotedGpLuFactors {
            factors: ordered.factors,
            row_perm,
            col_perm,
        })
    }

    /// [`Self::factor_prepivoted`] on the MC64-equilibrated matrix
    /// `Dr·A·Dc` ([`sympiler_graph::transversal::weighted_matching_scaled`]):
    /// the identically-scaled coupled baseline for a compiled plan
    /// running with `mc64_scale` on. The scaled entries are formed
    /// with the same `(dr[i] * v) * dc[j]` expression shape the
    /// plan's baked gather maps use, so both engines factor the
    /// bitwise-same numbers; [`ScaledPrePivotedGpLuFactors::solve`]
    /// unscales back to the original coordinates of `A`.
    pub fn factor_prepivoted_scaled(
        a: &CscMatrix,
        pivoting: Pivoting,
        pre_pivot: sympiler_graph::transversal::PrePivot,
        ordering: sympiler_graph::ordering::Ordering,
    ) -> Result<ScaledPrePivotedGpLuFactors, LuError> {
        let scaled =
            sympiler_graph::transversal::weighted_matching_scaled(a).map_err(|e| match e {
                sympiler_sparse::SparseError::StructurallySingular { n, structural_rank } => {
                    LuError::StructurallySingular { n, structural_rank }
                }
                other => LuError::BadInput(format!("mc64 scaling: {other}")),
            })?;
        let sa = sympiler_sparse::ops::scale_rows_cols(a, &scaled.row_scale, &scaled.col_scale)
            .map_err(|e| LuError::BadInput(format!("scaling application: {e}")))?;
        let inner = Self::factor_prepivoted(&sa, pivoting, pre_pivot, ordering)?;
        Ok(ScaledPrePivotedGpLuFactors {
            inner,
            row_scale: scaled.row_scale,
            col_scale: scaled.col_scale,
        })
    }
}

/// [`PrePivotedGpLuFactors`] of the MC64-equilibrated system
/// `(Dr·A·Dc)·(Dc⁻¹x) = Dr·b`: [`Self::solve`] scales the right-hand
/// side by `Dr` going in and the solution by `Dc` coming out, so the
/// caller still speaks the original coordinates of `A`.
#[derive(Debug, Clone)]
pub struct ScaledPrePivotedGpLuFactors {
    /// Factors of the scaled, pre-pivoted, ordered matrix.
    pub inner: PrePivotedGpLuFactors,
    /// Row equilibration `Dr` (`row_scale[i]` multiplies row `i`).
    pub row_scale: Vec<f64>,
    /// Column equilibration `Dc` (`col_scale[j]` multiplies column `j`).
    pub col_scale: Vec<f64>,
}

impl ScaledPrePivotedGpLuFactors {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Solve `A x = b` in original coordinates through the scaled
    /// system.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let bs: Vec<f64> = b
            .iter()
            .zip(&self.row_scale)
            .map(|(&v, &dr)| dr * v)
            .collect();
        let y = self.inner.solve(&bs);
        y.iter()
            .zip(&self.col_scale)
            .map(|(&v, &dc)| dc * v)
            .collect()
    }
}

/// [`GpLuFactors`] under a static pre-pivot composed with a
/// fill-reducing ordering: the factors satisfy `P' (Qᵀ·P·A·Q) = L U`
/// (`P'` the identity under [`Pivoting::None`]), and [`Self::solve`]
/// maps between the original coordinates of `A` and the factored
/// system's — gather through the composed row map, scatter back
/// through the column map. The runtime counterpart of the compiled
/// plan's pre-pivoted gather maps.
#[derive(Debug, Clone)]
pub struct PrePivotedGpLuFactors {
    /// Factors of the pre-pivoted, ordered matrix `Qᵀ·P·A·Q`.
    pub factors: GpLuFactors,
    /// Composed row gather map (`row_perm[new] = old` row of `A`,
    /// pre-pivot and ordering combined); `None` when both knobs
    /// resolved to the identity.
    pub row_perm: Option<Vec<usize>>,
    /// Column gather map (`col_perm[new] = old`, the ordering alone);
    /// `None` under a natural ordering.
    pub col_perm: Option<Vec<usize>>,
}

impl PrePivotedGpLuFactors {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.factors.n()
    }

    /// Solve `A x = b` in original coordinates: gather `b` through the
    /// composed row map, run the factors' solve, scatter the result
    /// back through the column map.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let y = match &self.row_perm {
            None => self.factors.solve(b),
            Some(p) => self.factors.solve(&sympiler_sparse::ops::gather_perm(p, b)),
        };
        match &self.col_perm {
            None => y,
            Some(q) => sympiler_sparse::ops::scatter_perm(q, &y),
        }
    }
}

/// The factorizer. Stateless — both symbolic and numeric work happen
/// inside [`GpLu::factor`], which is exactly what makes this the
/// coupled baseline.
pub struct GpLu;

const UNASSIGNED: usize = usize::MAX;

impl GpLu {
    /// Factor the square matrix `a` (full, generally unsymmetric
    /// storage) as `P A = L U`.
    pub fn factor(a: &CscMatrix, pivoting: Pivoting) -> Result<GpLuFactors, LuError> {
        if !a.is_square() {
            return Err(LuError::BadInput("matrix must be square".into()));
        }
        let n = a.n_cols();

        // Growing L in original row coordinates; the first entry of each
        // column is the pivot row with value 1.0.
        let mut lp: Vec<usize> = Vec::with_capacity(n + 1);
        let mut li: Vec<usize> = Vec::with_capacity(2 * a.nnz());
        let mut lx: Vec<f64> = Vec::with_capacity(2 * a.nnz());
        lp.push(0);
        // U built as per-column (row, value) lists, already in final
        // coordinates (U row indices are pivot positions).
        let mut up: Vec<usize> = Vec::with_capacity(n + 1);
        let mut ui: Vec<usize> = Vec::with_capacity(2 * a.nnz());
        let mut ux: Vec<f64> = Vec::with_capacity(2 * a.nnz());
        up.push(0);

        // pinv[old_row] = pivot position, or UNASSIGNED.
        let mut pinv = vec![UNASSIGNED; n];
        // Dense accumulator + DFS state (original row coordinates).
        let mut x = vec![0.0f64; n];
        let mut ws = sympiler_graph::dfs::ReachWorkspace::new(n);
        let mut topo: Vec<usize> = Vec::with_capacity(64);
        let mut u_entries: Vec<(usize, f64)> = Vec::with_capacity(64);

        for j in 0..n {
            // --- Symbolic (coupled): reach of SP(A(:,j)) via the shared
            // reach driver. A node (original row) with an assigned pivot
            // position k has the off-diagonal pattern of L(:,k) as
            // successors; unpivoted rows are leaves.
            sympiler_graph::dfs::reach_adjacency_into(
                n,
                a.col_rows(j),
                |v| {
                    let k = pinv[v];
                    if k != UNASSIGNED {
                        &li[lp[k] + 1..lp[k + 1]]
                    } else {
                        &[]
                    }
                },
                &mut ws,
                &mut topo,
            );

            // --- Numeric: sparse triangular solve in topological order.
            for (i, v) in a.col_iter(j) {
                x[i] = v;
            }
            for &v in topo.iter() {
                let k = pinv[v];
                if k == UNASSIGNED {
                    continue;
                }
                let xk = x[v];
                if xk != 0.0 {
                    for (&r, &lrk) in li[lp[k] + 1..lp[k + 1]]
                        .iter()
                        .zip(&lx[lp[k] + 1..lp[k + 1]])
                    {
                        x[r] -= lrk * xk;
                    }
                }
            }

            // --- Pivot among the not-yet-pivotal candidates.
            let pivot_row = match pivoting {
                Pivoting::None => {
                    // The diagonal must be numerically usable; x[j] is
                    // only written when row j is in the reach pattern,
                    // so a structural absence also lands here.
                    debug_assert_eq!(pinv[j], UNASSIGNED);
                    if x[j] == 0.0 {
                        Self::clear(&mut x, &topo);
                        return Err(LuError::ZeroPivot { column: j });
                    }
                    j
                }
                Pivoting::Partial => {
                    let mut best = UNASSIGNED;
                    let mut best_mag = 0.0f64;
                    for &v in topo.iter() {
                        if pinv[v] == UNASSIGNED && x[v].abs() > best_mag {
                            best = v;
                            best_mag = x[v].abs();
                        }
                    }
                    if best == UNASSIGNED {
                        Self::clear(&mut x, &topo);
                        return Err(LuError::ZeroPivot { column: j });
                    }
                    best
                }
            };
            let pivot = x[pivot_row];
            pinv[pivot_row] = j;

            // --- Gather U(:, j): pivotal rows sorted by position, then
            // the diagonal.
            u_entries.clear();
            for &v in topo.iter() {
                let k = pinv[v];
                if k != UNASSIGNED && k < j {
                    u_entries.push((k, x[v]));
                }
            }
            u_entries.sort_unstable_by_key(|&(k, _)| k);
            for &(k, val) in &u_entries {
                ui.push(k);
                ux.push(val);
            }
            ui.push(j);
            ux.push(pivot);
            up.push(ui.len());

            // --- Gather L(:, j): unit pivot first, then the remaining
            // candidates scaled by the pivot (original coordinates).
            li.push(pivot_row);
            lx.push(1.0);
            let l_start = li.len();
            for &v in topo.iter() {
                if pinv[v] == UNASSIGNED {
                    li.push(v);
                    lx.push(x[v] / pivot);
                }
            }
            if matches!(pivoting, Pivoting::None) {
                // Static pivoting assigns every row its own index, so
                // sorting by original row is already final pivot order.
                // Keeping columns sorted as they are built makes later
                // columns' DFS walk the same (sorted) adjacency lists a
                // compiled plan's symbolic pass uses — update sums then
                // run in the identical order, and the factors of the
                // two engines agree **bitwise**, which is what lets the
                // comparison harness hold one strict tolerance even on
                // ill-conditioned pivot sequences. (Per-entry division
                // by the pivot commutes with the reorder; the final
                // global sort pass becomes a no-op for these columns.)
                let mut pairs: Vec<(usize, f64)> = li[l_start..]
                    .iter()
                    .copied()
                    .zip(lx[l_start..].iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|&(r, _)| r);
                for (off, &(r, v)) in pairs.iter().enumerate() {
                    li[l_start + off] = r;
                    lx[l_start + off] = v;
                }
            }
            lp.push(li.len());

            Self::clear(&mut x, &topo);
        }

        // --- Finalize: remap L rows to pivot coordinates and sort each
        // column (the pivot row maps to j, every other candidate was
        // assigned later, so sorting puts the unit diagonal first).
        for r in li.iter_mut() {
            debug_assert_ne!(pinv[*r], UNASSIGNED, "unpivoted row survived");
            *r = pinv[*r];
        }
        let mut cols: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            let range = lp[j]..lp[j + 1];
            cols.clear();
            cols.extend(
                li[range.clone()]
                    .iter()
                    .copied()
                    .zip(lx[range.clone()].iter().copied()),
            );
            cols.sort_unstable_by_key(|&(r, _)| r);
            for (slot, &(r, v)) in range.clone().zip(cols.iter()) {
                li[slot] = r;
                lx[slot] = v;
            }
        }
        let mut row_perm = vec![0usize; n];
        for (old, &new) in pinv.iter().enumerate() {
            row_perm[new] = old;
        }
        let l = CscMatrix::try_new(n, n, lp, li, lx)
            .map_err(|e| LuError::BadInput(format!("internal L assembly: {e}")))?;
        let u = CscMatrix::try_new(n, n, up, ui, ux)
            .map_err(|e| LuError::BadInput(format!("internal U assembly: {e}")))?;
        Ok(GpLuFactors { l, u, row_perm })
    }

    /// Clear the dense accumulator, touching only the reach.
    fn clear(x: &mut [f64], reach: &[usize]) {
        for &v in reach {
            x[v] = 0.0;
        }
    }
}

/// Factorization backward error normalized the way rounding-error
/// analysis bounds it: per column `j`,
/// `max_i |(P A - L U)[i, j]|  /  (|L| |U|)(:, j) column sum`,
/// maximized over columns. A stable LU satisfies
/// `|P A - L U| ≤ c(n) · eps · |L| |U|` **regardless of element
/// growth** (Higham, ch. 9), so this quantity sits at O(n·eps) for
/// every correctly implemented engine — including ones that pivot on
/// tiny static entries, where any `‖A‖`-relative residual is
/// unavoidably inflated by `‖L‖‖U‖/‖A‖`. The growth-independent
/// verification metric for comparing factorization engines.
pub fn lu_backward_error(a: &CscMatrix, f: &GpLuFactors) -> f64 {
    let n = a.n_cols();
    assert_eq!(f.n(), n, "dimension mismatch");
    let mut pinv = vec![0usize; n];
    for (new, &old) in f.row_perm.iter().enumerate() {
        pinv[old] = new;
    }
    // Column sums of |L| — one pass, reused for every |L||U| column.
    let mut l_colsum = vec![0.0f64; n];
    for k in 0..n {
        l_colsum[k] = f.l.col_iter(k).map(|(_, v)| v.abs()).sum();
    }
    let mut acc = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut eta = 0.0f64;
    for j in 0..n {
        touched.clear();
        let mut denom = 0.0f64;
        for (k, ukj) in f.u.col_iter(j) {
            denom += ukj.abs() * l_colsum[k];
            for (i, lik) in f.l.col_iter(k) {
                if acc[i] == 0.0 {
                    touched.push(i);
                }
                acc[i] += lik * ukj;
            }
        }
        for (i, v) in a.col_iter(j) {
            let r = pinv[i];
            if acc[r] == 0.0 {
                touched.push(r);
            }
            acc[r] -= v;
        }
        let mut err = 0.0f64;
        for &i in &touched {
            err = err.max(acc[i].abs());
            acc[i] = 0.0;
        }
        eta = eta.max(err / denom.max(f64::MIN_POSITIVE));
    }
    eta
}

/// Max-norm reconstruction error `max |(P A - L U)[i, j]|` scaled by
/// the 1-norm of `A` — the LU analogue of
/// [`crate::verify::reconstruction_error`]. O(flops(LU)).
pub fn lu_reconstruction_error(a: &CscMatrix, f: &GpLuFactors) -> f64 {
    let n = a.n_cols();
    assert_eq!(f.n(), n, "dimension mismatch");
    // pinv[old] = new.
    let mut pinv = vec![0usize; n];
    for (new, &old) in f.row_perm.iter().enumerate() {
        pinv[old] = new;
    }
    let a_norm = sympiler_sparse::ops::norm_1(a).max(1.0);
    let mut acc = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut max_err = 0.0f64;
    for j in 0..n {
        // acc = (L U)(:, j) = sum_k U[k, j] * L(:, k).
        touched.clear();
        for (k, ukj) in f.u.col_iter(j) {
            for (i, lik) in f.l.col_iter(k) {
                if acc[i] == 0.0 {
                    touched.push(i);
                }
                acc[i] += lik * ukj;
            }
        }
        // Subtract (P A)(:, j).
        for (i, v) in a.col_iter(j) {
            let r = pinv[i];
            if acc[r] == 0.0 {
                touched.push(r);
            }
            acc[r] -= v;
        }
        for &i in &touched {
            max_err = max_err.max(acc[i].abs());
            acc[i] = 0.0;
        }
    }
    max_err / a_norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::{gen, ops};

    fn dense_lu_no_pivot(a: &CscMatrix) -> (Vec<f64>, usize) {
        let n = a.n_cols();
        let mut m = a.to_dense();
        for k in 0..n {
            let piv = m[k * n + k];
            assert!(piv != 0.0, "dense reference hit zero pivot");
            for i in k + 1..n {
                m[k * n + i] /= piv;
            }
            for j in k + 1..n {
                let ukj = m[j * n + k];
                if ukj == 0.0 {
                    continue;
                }
                for i in k + 1..n {
                    m[j * n + i] -= m[k * n + i] * ukj;
                }
            }
        }
        (m, n)
    }

    #[test]
    fn static_pivot_matches_dense_reference() {
        for seed in 0..8u64 {
            let a = gen::circuit_unsym(35, 3, 1, seed);
            let f = GpLu::factor(&a, Pivoting::None).unwrap();
            assert!(f.is_identity_perm(), "static pivoting must not permute");
            let (dense, n) = dense_lu_no_pivot(&a);
            for j in 0..n {
                for (i, v) in f.l.col_iter(j) {
                    if i > j {
                        assert!(
                            (v - dense[j * n + i]).abs() < 1e-10,
                            "seed {seed}: L[{i},{j}] = {v} vs {}",
                            dense[j * n + i]
                        );
                    }
                }
                for (i, v) in f.u.col_iter(j) {
                    assert!(
                        (v - dense[j * n + i]).abs() < 1e-10,
                        "seed {seed}: U[{i},{j}] = {v} vs {}",
                        dense[j * n + i]
                    );
                }
            }
        }
    }

    #[test]
    fn reconstruction_and_solve_static() {
        for seed in 0..6u64 {
            let a = gen::convection_diffusion_2d(6, 6, 1.2, seed);
            let f = GpLu::factor(&a, Pivoting::None).unwrap();
            assert!(lu_reconstruction_error(&a, &f) < 1e-12, "seed {seed}");
            let n = a.n_cols();
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
            let x = f.solve(&b);
            assert!(ops::rel_residual(&a, &x, &b) < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn partial_pivoting_verification_mode() {
        // A matrix that *breaks* static pivoting: zero diagonal entry.
        let mut t = sympiler_sparse::TripletMatrix::new(3, 3);
        t.push(1, 0, 2.0);
        t.push(0, 0, 1e-30);
        t.push(0, 1, 3.0);
        t.push(2, 1, 1.0);
        t.push(1, 2, 1.0);
        t.push(2, 2, 4.0);
        let a = t.to_csc().unwrap();
        // Static pivoting survives structurally but produces huge
        // growth; partial pivoting permutes and stays accurate.
        let f = GpLu::factor(&a, Pivoting::Partial).unwrap();
        assert!(!f.is_identity_perm(), "partial pivoting must permute here");
        assert!(lu_reconstruction_error(&a, &f) < 1e-12);
        let b = vec![1.0, 2.0, 3.0];
        let x = f.solve(&b);
        assert!(ops::rel_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn partial_matches_static_on_dominant_matrices() {
        // On diagonally dominant systems both modes solve equally well
        // (the verification argument for compiling with static pivots).
        let a = gen::random_unsym(40, 4, 7);
        let fs = GpLu::factor(&a, Pivoting::None).unwrap();
        let fp = GpLu::factor(&a, Pivoting::Partial).unwrap();
        let b: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let xs = fs.solve(&b);
        let xp = fp.solve(&b);
        for (p, q) in xs.iter().zip(&xp) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn pattern_matches_symbolic_prediction() {
        for seed in 0..6u64 {
            let a = gen::random_unsym(30, 3, seed);
            let sym = sympiler_graph::lu_symbolic(&a);
            let f = GpLu::factor(&a, Pivoting::None).unwrap();
            assert_eq!(f.l.col_ptr(), sym.l_col_ptr.as_slice(), "seed {seed}");
            assert_eq!(f.l.row_idx(), sym.l_row_idx.as_slice(), "seed {seed}");
            assert_eq!(f.u.col_ptr(), sym.u_col_ptr.as_slice(), "seed {seed}");
            assert_eq!(f.u.row_idx(), sym.u_row_idx.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn zero_pivot_detected() {
        // Structurally zero diagonal at column 1 and no path to fill it.
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(0, 1, 1.0);
        let a = t.to_csc().unwrap();
        // Column 1 fills at row 1? A(:,1) = {0}; reach of {0} includes
        // row 1 via L(1,0) — so the diagonal fills and this factors.
        assert!(GpLu::factor(&a, Pivoting::None).is_ok());
        // But a truly empty pivot column fails.
        let mut t2 = sympiler_sparse::TripletMatrix::new(2, 2);
        t2.push(0, 0, 1.0);
        t2.push(0, 1, 1.0);
        let a2 = t2.to_csc().unwrap();
        assert!(matches!(
            GpLu::factor(&a2, Pivoting::None),
            Err(LuError::ZeroPivot { column: 1 })
        ));
        assert!(matches!(
            GpLu::factor(&a2, Pivoting::Partial),
            Err(LuError::ZeroPivot { column: 1 })
        ));
    }

    #[test]
    fn ordered_baseline_solves_original_system() {
        use sympiler_graph::ordering::Ordering;
        for seed in 0..4u64 {
            let a = gen::circuit_unsym(60, 4, 2, seed);
            let n = a.n_cols();
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 6) as f64).collect();
            let x_ref = GpLu::factor(&a, Pivoting::None).unwrap().solve(&b);
            for ord in [Ordering::Natural, Ordering::Rcm, Ordering::Colamd] {
                let f = GpLu::factor_ordered(&a, Pivoting::None, ord).unwrap();
                assert_eq!(f.col_perm.is_none(), ord == Ordering::Natural);
                let x = f.solve(&b);
                assert!(ops::rel_residual(&a, &x, &b) < 1e-10, "{ord:?} seed {seed}");
                for (p, q) in x.iter().zip(&x_ref) {
                    assert!((p - q).abs() < 1e-9, "{ord:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn ordered_baseline_reduces_fill_with_colamd() {
        use sympiler_graph::ordering::Ordering;
        let a = gen::circuit_unsym(200, 4, 2, 3);
        let nat = GpLu::factor(&a, Pivoting::None).unwrap();
        let ord = GpLu::factor_ordered(&a, Pivoting::None, Ordering::Colamd).unwrap();
        assert!(
            ord.factors.l.nnz() + ord.factors.u.nnz() < nat.l.nnz() + nat.u.nnz(),
            "colamd must cut baseline fill too"
        );
        // Partial pivoting also runs on the ordered matrix.
        let pp = GpLu::factor_ordered(&a, Pivoting::Partial, Ordering::Colamd).unwrap();
        let b: Vec<f64> = (0..200).map(|i| (i as f64).sin() + 2.0).collect();
        assert!(ops::rel_residual(&a, &pp.solve(&b), &b) < 1e-10);
    }

    #[test]
    fn prepivoted_baseline_factors_zero_diag_systems() {
        use sympiler_graph::ordering::Ordering;
        use sympiler_graph::transversal::PrePivot;
        for (name, a) in [
            ("circuit", gen::circuit_zero_diag(80, 4, 2, 2)),
            ("saddle", gen::saddle_point_2x2(60, 12, 4)),
        ] {
            // Static pivoting without a pre-pivot is a hard error.
            assert!(
                matches!(
                    GpLu::factor(&a, Pivoting::None),
                    Err(LuError::ZeroPivot { .. })
                ),
                "{name}: raw static pivoting must fail"
            );
            let n = a.n_cols();
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
            for ord in [Ordering::Natural, Ordering::Colamd] {
                for pp in [PrePivot::Transversal, PrePivot::WeightedMatching] {
                    let f = GpLu::factor_prepivoted(&a, Pivoting::None, pp, ord).unwrap();
                    assert!(f.row_perm.is_some(), "{name}: rows must move");
                    let x = f.solve(&b);
                    assert!(
                        ops::rel_residual(&a, &x, &b) < 1e-9,
                        "{name} {ord:?} {pp:?}: residual"
                    );
                }
            }
        }
    }

    #[test]
    fn prepivoted_identity_fast_path_matches_ordered() {
        use sympiler_graph::ordering::Ordering;
        use sympiler_graph::transversal::PrePivot;
        // Zero-free diagonal: Transversal is a no-op and the result
        // must match factor_ordered exactly.
        let a = gen::circuit_unsym(50, 4, 2, 8);
        let f =
            GpLu::factor_prepivoted(&a, Pivoting::None, PrePivot::Transversal, Ordering::Colamd)
                .unwrap();
        let g = GpLu::factor_ordered(&a, Pivoting::None, Ordering::Colamd).unwrap();
        assert_eq!(f.col_perm, g.col_perm);
        assert_eq!(f.row_perm, f.col_perm, "no pre-pivot: row map is Q");
        for (x, y) in f.factors.u.values().iter().zip(g.factors.u.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn prepivoted_structurally_singular_is_typed() {
        use sympiler_graph::ordering::Ordering;
        use sympiler_graph::transversal::PrePivot;
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        let a = t.to_csc().unwrap();
        assert_eq!(
            GpLu::factor_prepivoted(&a, Pivoting::None, PrePivot::Transversal, Ordering::Natural)
                .unwrap_err(),
            LuError::StructurallySingular {
                n: 2,
                structural_rank: 1
            }
        );
    }

    #[test]
    fn one_by_one_and_diagonal() {
        let a = CscMatrix::identity(1);
        let f = GpLu::factor(&a, Pivoting::None).unwrap();
        assert_eq!(f.solve(&[5.0]), vec![5.0]);
        let d = CscMatrix::identity(6);
        let f = GpLu::factor(&d, Pivoting::Partial).unwrap();
        assert!(f.is_identity_perm());
        assert_eq!(f.l.nnz(), 6);
        assert_eq!(f.u.nnz(), 6);
    }

    #[test]
    fn upper_backward_solver_is_exact() {
        // U from a factorization, solved against the dense reference.
        let a = gen::circuit_unsym(25, 3, 1, 3);
        let f = GpLu::factor(&a, Pivoting::None).unwrap();
        let n = 25;
        let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = x.clone();
        crate::trisolve::naive_backward_upper(&f.u, &mut x);
        // Check U x = b.
        let mut y = vec![0.0; n];
        ops::spmv(&f.u, &x, &mut y);
        for (p, q) in y.iter().zip(&b) {
            assert!((p - q).abs() < 1e-10);
        }
    }
}
