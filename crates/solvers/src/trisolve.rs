//! Sparse triangular solve baselines — the four code variants of the
//! paper's Figure 1 except the Sympiler-generated one (which lives in
//! `sympiler-core::plan::tri`).
//!
//! All solvers take `L` in CSC with a diagonal-first lower-triangular
//! structure (`{n, Lp, Li, Lx}` in the paper) and solve `L x = b`.

use sympiler_sparse::{CscMatrix, SparseVec};

/// Figure 1b — naive forward substitution: visits **every** column.
/// `x` enters holding `b` (dense) and leaves holding the solution.
pub fn naive_forward(l: &CscMatrix, x: &mut [f64]) {
    debug_assert!(l.is_lower_triangular_with_diag());
    assert_eq!(x.len(), l.n_cols(), "x length mismatch");
    let col_ptr = l.col_ptr();
    let row_idx = l.row_idx();
    let values = l.values();
    for j in 0..l.n_cols() {
        let range = col_ptr[j]..col_ptr[j + 1];
        let xj = x[j] / values[range.start];
        x[j] = xj;
        for (&i, &lij) in row_idx[range.start + 1..range.end]
            .iter()
            .zip(&values[range.start + 1..range.end])
        {
            x[i] -= lij * xj;
        }
    }
}

/// Figure 1c — the library implementation (Eigen's strategy): identical
/// to the naive loop but skips columns whose current `x[j]` is zero.
/// Still O(n) loop overhead even for very sparse `b` — the cost the
/// paper's decoupling removes.
pub fn library_forward(l: &CscMatrix, x: &mut [f64]) {
    debug_assert!(l.is_lower_triangular_with_diag());
    assert_eq!(x.len(), l.n_cols(), "x length mismatch");
    let col_ptr = l.col_ptr();
    let row_idx = l.row_idx();
    let values = l.values();
    for j in 0..l.n_cols() {
        if x[j] != 0.0 {
            let range = col_ptr[j]..col_ptr[j + 1];
            let xj = x[j] / values[range.start];
            x[j] = xj;
            for (&i, &lij) in row_idx[range.start + 1..range.end]
                .iter()
                .zip(&values[range.start + 1..range.end])
            {
                x[i] -= lij * xj;
            }
        }
    }
}

/// Figure 1d — the decoupled solver: consumes a precomputed reach-set
/// (in topological order) and touches only those columns. Run-time is
/// O(|b| + f) instead of O(|b| + n + f).
///
/// `x` must be a zero-initialized dense buffer of length `n`; the sparse
/// `b` is scattered into it here (the O(|b|) term).
pub fn decoupled_forward(l: &CscMatrix, b: &SparseVec, reach_set: &[usize], x: &mut [f64]) {
    debug_assert!(l.is_lower_triangular_with_diag());
    assert_eq!(x.len(), l.n_cols(), "x length mismatch");
    for (i, v) in b.iter() {
        x[i] = v;
    }
    let col_ptr = l.col_ptr();
    let row_idx = l.row_idx();
    let values = l.values();
    for &j in reach_set {
        let range = col_ptr[j]..col_ptr[j + 1];
        let xj = x[j] / values[range.start];
        x[j] = xj;
        for (&i, &lij) in row_idx[range.start + 1..range.end]
            .iter()
            .zip(&values[range.start + 1..range.end])
        {
            x[i] -= lij * xj;
        }
    }
}

/// Backward substitution `L^T x = b` (dense), the second half of an SPD
/// solve. Included for the end-to-end solver path.
pub fn backward_transposed(l: &CscMatrix, x: &mut [f64]) {
    debug_assert!(l.is_lower_triangular_with_diag());
    assert_eq!(x.len(), l.n_cols(), "x length mismatch");
    let col_ptr = l.col_ptr();
    let row_idx = l.row_idx();
    let values = l.values();
    for j in (0..l.n_cols()).rev() {
        let range = col_ptr[j]..col_ptr[j + 1];
        let mut dot = 0.0;
        for (&i, &lij) in row_idx[range.start + 1..range.end]
            .iter()
            .zip(&values[range.start + 1..range.end])
        {
            dot += lij * x[i];
        }
        x[j] = (x[j] - dot) / values[range.start];
    }
}

/// Backward substitution `U x = b` for an **upper**-triangular `U` in
/// CSC with diagonal-last columns — the second half of an LU solve
/// (`x` enters holding `b`, leaves holding the solution).
pub fn naive_backward_upper(u: &CscMatrix, x: &mut [f64]) {
    debug_assert!(u.is_upper_triangular_with_diag());
    assert_eq!(x.len(), u.n_cols(), "x length mismatch");
    let col_ptr = u.col_ptr();
    let row_idx = u.row_idx();
    let values = u.values();
    for j in (0..u.n_cols()).rev() {
        let range = col_ptr[j]..col_ptr[j + 1];
        let xj = x[j] / values[range.end - 1];
        x[j] = xj;
        for (&i, &uij) in row_idx[range.start..range.end - 1]
            .iter()
            .zip(&values[range.start..range.end - 1])
        {
            x[i] -= uij * xj;
        }
    }
}

/// Flop count of a reach-set-pruned triangular solve: one division per
/// reached column plus two flops per off-diagonal entry of reached
/// columns. Used for GFLOP/s reporting (Figure 6).
pub fn trisolve_flops(l: &CscMatrix, reach_set: &[usize]) -> u64 {
    reach_set
        .iter()
        .map(|&j| 1 + 2 * (l.col_nnz(j) as u64 - 1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_graph::reach;
    use sympiler_sparse::gen::random_lower_triangular;
    use sympiler_sparse::rhs;

    fn dense_reference(l: &CscMatrix, b: &[f64]) -> Vec<f64> {
        // Straightforward O(n^2) dense forward substitution.
        let n = l.n_cols();
        let d = l.to_dense();
        let mut x = b.to_vec();
        for j in 0..n {
            x[j] /= d[j * n + j];
            for i in j + 1..n {
                x[i] -= d[j * n + i] * x[j];
            }
        }
        x
    }

    #[test]
    fn naive_matches_dense_reference() {
        let l = random_lower_triangular(40, 3, 1);
        let b: Vec<f64> = (0..40).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut x = b.clone();
        naive_forward(&l, &mut x);
        let expect = dense_reference(&l, &b);
        for (p, q) in x.iter().zip(&expect) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn all_variants_agree_on_sparse_rhs() {
        for seed in 0..10u64 {
            let l = random_lower_triangular(80, 4, seed);
            let b = rhs::random_sparse_rhs(80, 0.04, seed + 100);
            let bd = b.to_dense();

            let mut x_naive = bd.clone();
            naive_forward(&l, &mut x_naive);

            let mut x_lib = bd.clone();
            library_forward(&l, &mut x_lib);

            let r = reach(&l, b.indices());
            let mut x_dec = vec![0.0; 80];
            decoupled_forward(&l, &b, &r, &mut x_dec);

            for i in 0..80 {
                assert!(
                    (x_naive[i] - x_lib[i]).abs() < 1e-12,
                    "lib seed {seed} i {i}"
                );
                assert!(
                    (x_naive[i] - x_dec[i]).abs() < 1e-12,
                    "dec seed {seed} i {i}"
                );
            }
        }
    }

    #[test]
    fn library_skips_exact_zeros_correctly() {
        // b with a single nonzero late in the matrix: the library code
        // must not touch earlier columns.
        let l = random_lower_triangular(30, 2, 3);
        let mut x = vec![0.0; 30];
        x[29] = 5.0;
        library_forward(&l, &mut x);
        assert!((x[29] - 5.0 / l.get(29, 29)).abs() < 1e-12);
        for i in 0..29 {
            assert_eq!(x[i], 0.0);
        }
    }

    #[test]
    fn decoupled_solution_pattern_is_reach_set() {
        let l = random_lower_triangular(50, 3, 7);
        let b = rhs::random_sparse_rhs(50, 0.04, 11);
        let r = reach(&l, b.indices());
        let mut x = vec![0.0; 50];
        decoupled_forward(&l, &b, &r, &mut x);
        // Nonzeros of x are contained in the reach set (Gilbert-Peierls).
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                assert!(r.contains(&i), "x[{i}] nonzero outside reach set");
            }
        }
    }

    #[test]
    fn forward_then_backward_solves_normal_equations() {
        // L L^T x = b via the two substitutions.
        let l = random_lower_triangular(25, 2, 9);
        let xs: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        // b = L L^T xs
        let mut tmp = xs.clone();
        // tmp = L^T xs
        let lt = sympiler_sparse::ops::transpose(&l);
        let mut b = vec![0.0; 25];
        sympiler_sparse::ops::spmv(&lt, &tmp, &mut b);
        let mut b2 = vec![0.0; 25];
        sympiler_sparse::ops::spmv(&l, &b, &mut b2);
        // Solve.
        tmp = b2;
        naive_forward(&l, &mut tmp);
        backward_transposed(&l, &mut tmp);
        for (p, q) in tmp.iter().zip(&xs) {
            assert!((p - q).abs() < 1e-8);
        }
    }

    #[test]
    fn flop_accounting() {
        let l = random_lower_triangular(10, 0, 1); // diagonal only
        let r: Vec<usize> = vec![0, 5];
        assert_eq!(trisolve_flops(&l, &r), 2);
        let l2 = random_lower_triangular(10, 2, 1);
        let all: Vec<usize> = (0..10).collect();
        let expected: u64 = (0..10).map(|j| 1 + 2 * (l2.col_nnz(j) as u64 - 1)).sum();
        assert_eq!(trisolve_flops(&l2, &all), expected);
    }

    #[test]
    fn singleton_system() {
        let l = CscMatrix::try_new(1, 1, vec![0, 1], vec![0], vec![4.0]).unwrap();
        let mut x = vec![8.0];
        naive_forward(&l, &mut x);
        assert_eq!(x[0], 2.0);
    }
}
