//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing or manipulating sparse matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Column pointer array has the wrong length or is not monotone.
    BadColPtr(String),
    /// A row index is out of range or out of order within its column.
    BadRowIndex(String),
    /// `values` and `row_indices` lengths disagree, or nnz mismatch.
    LengthMismatch(String),
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch(String),
    /// The matrix is structurally or numerically unsuitable
    /// (e.g. not lower triangular, zero/negative pivot, not symmetric).
    InvalidMatrix(String),
    /// The matrix is structurally rank-deficient: no row permutation
    /// can produce a zero-free diagonal, because the maximum
    /// row/column matching of the pattern covers only
    /// `structural_rank` of the `n` columns. Surfaced by the
    /// pre-pivoting inspectors (max transversal / weighted matching)
    /// so static-pivot factorization fails at *inspection* time with a
    /// diagnosis, instead of deep in the numeric phase with a bare
    /// zero pivot.
    StructurallySingular {
        /// Matrix order.
        n: usize,
        /// Size of the maximum matching (`< n`).
        structural_rank: usize,
    },
    /// Parsing a Matrix Market (or other) file failed.
    Parse(String),
    /// Underlying I/O failure.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::BadColPtr(m) => write!(f, "bad column pointer: {m}"),
            SparseError::BadRowIndex(m) => write!(f, "bad row index: {m}"),
            SparseError::LengthMismatch(m) => write!(f, "length mismatch: {m}"),
            SparseError::DimensionMismatch(m) => write!(f, "dimension mismatch: {m}"),
            SparseError::InvalidMatrix(m) => write!(f, "invalid matrix: {m}"),
            SparseError::StructurallySingular { n, structural_rank } => write!(
                f,
                "structurally singular: maximum matching covers \
                 {structural_rank} of {n} columns (no perfect transversal)"
            ),
            SparseError::Parse(m) => write!(f, "parse error: {m}"),
            SparseError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_distinct() {
        let variants = [
            SparseError::BadColPtr("a".into()),
            SparseError::BadRowIndex("b".into()),
            SparseError::LengthMismatch("c".into()),
            SparseError::DimensionMismatch("d".into()),
            SparseError::InvalidMatrix("e".into()),
            SparseError::Parse("f".into()),
            SparseError::Io("g".into()),
            SparseError::StructurallySingular {
                n: 4,
                structural_rank: 3,
            },
        ];
        let mut texts: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), 8, "each error variant renders distinctly");
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
