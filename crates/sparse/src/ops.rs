//! Core sparse operations: SpMV, transpose, permutation, symmetrization,
//! triangular extraction, and norms.
//!
//! The transpose here is the same O(|A|) counting-sort transpose that the
//! paper notes Eigen and CHOLMOD perform *inside their numeric phase* to
//! reach the upper triangle of a symmetric matrix stored lower (§4.2) —
//! one of the costs Sympiler's decoupling removes.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::sparsevec::SparseVec;
use crate::Result;

/// `y = A * x` for dense `x`, dense `y`. `y` is overwritten.
pub fn spmv(a: &CscMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.n_cols(), "x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "y length mismatch");
    y.fill(0.0);
    for j in 0..a.n_cols() {
        let xj = x[j];
        if xj == 0.0 {
            continue;
        }
        for (i, v) in a.col_iter(j) {
            y[i] += v * xj;
        }
    }
}

/// `y = A * x` where `A` is a *symmetric* matrix stored lower-triangular
/// (the paper's storage convention for Cholesky inputs).
pub fn spmv_sym_lower(a: &CscMatrix, x: &[f64], y: &mut [f64]) {
    assert!(a.is_square(), "symmetric matrix must be square");
    assert_eq!(x.len(), a.n_cols(), "x length mismatch");
    assert_eq!(y.len(), a.n_rows(), "y length mismatch");
    y.fill(0.0);
    for j in 0..a.n_cols() {
        let xj = x[j];
        for (i, v) in a.col_iter(j) {
            y[i] += v * xj;
            if i != j {
                // Mirror entry (j, i) in the upper triangle.
                y[j] += v * x[i];
            }
        }
    }
}

/// Transpose via counting sort; O(|A| + n).
pub fn transpose(a: &CscMatrix) -> CscMatrix {
    let m = a.n_rows();
    let n = a.n_cols();
    let nnz = a.nnz();
    // Count per row of A = per column of A^T.
    let mut count = vec![0usize; m];
    for &i in a.row_idx() {
        count[i] += 1;
    }
    let mut col_ptr = vec![0usize; m + 1];
    for i in 0..m {
        col_ptr[i + 1] = col_ptr[i] + count[i];
    }
    let mut next = col_ptr[..m].to_vec();
    let mut row_idx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    for j in 0..n {
        for (i, v) in a.col_iter(j) {
            let p = next[i];
            row_idx[p] = j;
            values[p] = v;
            next[i] += 1;
        }
    }
    // Row indices within each output column arrive in increasing order
    // because we scan source columns left to right.
    CscMatrix::from_parts_unchecked(n, m, col_ptr, row_idx, values)
}

/// Expand a symmetric matrix stored lower-triangular into full storage
/// (both triangles explicit).
pub fn symmetrize_from_lower(a: &CscMatrix) -> Result<CscMatrix> {
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch(
            "symmetrize requires a square matrix".into(),
        ));
    }
    if !a.is_lower_storage() {
        return Err(SparseError::InvalidMatrix(
            "symmetrize_from_lower requires lower-triangular storage".into(),
        ));
    }
    let n = a.n_cols();
    let mut t = crate::triplet::TripletMatrix::with_capacity(n, n, a.nnz() * 2);
    for j in 0..n {
        for (i, v) in a.col_iter(j) {
            t.push(i, j, v);
            if i != j {
                t.push(j, i, v);
            }
        }
    }
    t.to_csc()
}

/// Extract the lower triangle (including diagonal) of a full-storage
/// matrix.
pub fn extract_lower(a: &CscMatrix) -> CscMatrix {
    let n = a.n_cols();
    let mut col_ptr = vec![0usize; n + 1];
    let mut row_idx = Vec::new();
    let mut values = Vec::new();
    for j in 0..n {
        for (i, v) in a.col_iter(j) {
            if i >= j {
                row_idx.push(i);
                values.push(v);
            }
        }
        col_ptr[j + 1] = row_idx.len();
    }
    CscMatrix::from_parts_unchecked(a.n_rows(), n, col_ptr, row_idx, values)
}

/// Symmetric permutation `P A P^T` of a square full-storage matrix, where
/// `perm[new] = old` (i.e. `perm` lists old indices in their new order).
pub fn permute_sym(a: &CscMatrix, perm: &[usize]) -> Result<CscMatrix> {
    let n = a.n_cols();
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch(
            "permute_sym requires square".into(),
        ));
    }
    if perm.len() != n {
        return Err(SparseError::DimensionMismatch(format!(
            "perm.len() = {} != n = {n}",
            perm.len()
        )));
    }
    // inv[old] = new
    let mut inv = vec![usize::MAX; n];
    for (new, &old) in perm.iter().enumerate() {
        if old >= n || inv[old] != usize::MAX {
            return Err(SparseError::InvalidMatrix(
                "perm is not a permutation".into(),
            ));
        }
        inv[old] = new;
    }
    let mut t = crate::triplet::TripletMatrix::with_capacity(n, n, a.nnz());
    for j in 0..n {
        let nj = inv[j];
        for (i, v) in a.col_iter(j) {
            t.push(inv[i], nj, v);
        }
    }
    t.to_csc()
}

/// Invert a permutation given as `perm[new] = old`, returning
/// `inv[old] = new`. Doubles as the validity check every ordering must
/// pass: the input is rejected unless it is a bijection of `0..n`.
pub fn inverse_permutation(perm: &[usize]) -> Result<Vec<usize>> {
    let n = perm.len();
    let mut inv = vec![usize::MAX; n];
    for (new, &old) in perm.iter().enumerate() {
        if old >= n {
            return Err(SparseError::InvalidMatrix(format!(
                "perm[{new}] = {old} out of bounds for n = {n}"
            )));
        }
        if inv[old] != usize::MAX {
            return Err(SparseError::InvalidMatrix(format!(
                "perm is not a bijection: {old} appears twice"
            )));
        }
        inv[old] = new;
    }
    Ok(inv)
}

/// Gather a dense vector into ordered coordinates: `out[new] =
/// x[perm[new]]` — the `Qᵀ x` half of applying an ordering to a solve.
///
/// # Panics
/// If `perm` and `x` have different lengths (indices are bounds-checked
/// by the gather itself).
pub fn gather_perm(perm: &[usize], x: &[f64]) -> Vec<f64> {
    assert_eq!(perm.len(), x.len(), "permutation/vector length mismatch");
    perm.iter().map(|&old| x[old]).collect()
}

/// Scatter a vector from ordered coordinates back to the original:
/// `out[perm[new]] = y[new]` — the `Q y` half of applying an ordering
/// to a solve. Inverse of [`gather_perm`] for any bijective `perm`.
///
/// # Panics
/// If `perm` and `y` have different lengths.
pub fn scatter_perm(perm: &[usize], y: &[f64]) -> Vec<f64> {
    assert_eq!(perm.len(), y.len(), "permutation/vector length mismatch");
    let mut out = vec![0.0; y.len()];
    for (new, &old) in perm.iter().enumerate() {
        out[old] = y[new];
    }
    out
}

/// Column permutation `A Q`, where `q[new] = old`: column `new` of the
/// result is column `q[new]` of `a`. Row indices are untouched, so the
/// construction is a direct O(|A|) CSC copy — no triplet round-trip.
pub fn permute_cols(a: &CscMatrix, q: &[usize]) -> Result<CscMatrix> {
    let n = a.n_cols();
    if q.len() != n {
        return Err(SparseError::DimensionMismatch(format!(
            "q.len() = {} != n_cols = {n}",
            q.len()
        )));
    }
    inverse_permutation(q)?;
    let mut col_ptr = Vec::with_capacity(n + 1);
    let mut row_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    col_ptr.push(0);
    for &old in q {
        row_idx.extend_from_slice(a.col_rows(old));
        values.extend_from_slice(a.col_values(old));
        col_ptr.push(row_idx.len());
    }
    Ok(CscMatrix::from_parts_unchecked(
        a.n_rows(),
        n,
        col_ptr,
        row_idx,
        values,
    ))
}

/// Row permutation `P A`, where `p[new] = old`: row `new` of the
/// result is row `p[new]` of `a`, i.e. `B[i, j] = A[p[i], j]`. This is
/// how a static pre-pivot (maximum transversal / weighted matching) is
/// applied: `p[j]` is the row matched to column `j`, so `B[j, j] =
/// A[p[j], j]` is the matched — structurally nonzero — diagonal.
/// Column pointers are untouched; each column's rows map through the
/// inverse and re-sort, O(|A| log maxcol) with no triplet round-trip.
pub fn permute_rows(a: &CscMatrix, p: &[usize]) -> Result<CscMatrix> {
    if p.len() != a.n_rows() {
        return Err(SparseError::DimensionMismatch(format!(
            "p.len() = {} != n_rows = {}",
            p.len(),
            a.n_rows()
        )));
    }
    let inv = inverse_permutation(p)?;
    let n = a.n_cols();
    let mut row_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    let mut entries: Vec<(usize, f64)> = Vec::new();
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0);
    for j in 0..n {
        entries.clear();
        entries.extend(a.col_iter(j).map(|(i, v)| (inv[i], v)));
        entries.sort_unstable_by_key(|&(i, _)| i);
        for &(i, v) in &entries {
            row_idx.push(i);
            values.push(v);
        }
        col_ptr.push(row_idx.len());
    }
    Ok(CscMatrix::from_parts_unchecked(
        a.n_rows(),
        n,
        col_ptr,
        row_idx,
        values,
    ))
}

/// Two-sided diagonal scaling: `B[i, j] = dr[i] * A[i, j] * dc[j]`,
/// evaluated left-to-right (`(dr[i] * v) * dc[j]`) so callers that
/// scale on the fly with the same expression shape (the compiled
/// plan's baked gather maps, the emitted C) produce **bitwise**
/// identical entries — `dr`/`dc` are generally not powers of two, so
/// association order matters at the ULP level. The pattern is shared
/// with `a` unchanged.
pub fn scale_rows_cols(a: &CscMatrix, dr: &[f64], dc: &[f64]) -> Result<CscMatrix> {
    if dr.len() != a.n_rows() || dc.len() != a.n_cols() {
        return Err(SparseError::DimensionMismatch(format!(
            "dr.len() = {} / dc.len() = {} != {} x {}",
            dr.len(),
            dc.len(),
            a.n_rows(),
            a.n_cols()
        )));
    }
    let mut values = Vec::with_capacity(a.nnz());
    for j in 0..a.n_cols() {
        let dcj = dc[j];
        for (i, v) in a.col_iter(j) {
            values.push(dr[i] * v * dcj);
        }
    }
    Ok(CscMatrix::from_parts_unchecked(
        a.n_rows(),
        a.n_cols(),
        a.col_ptr().to_vec(),
        a.row_idx().to_vec(),
        values,
    ))
}

/// General two-sided permutation of a square full-storage matrix:
/// `B[i, j] = A[rperm[i], cperm[j]]` with independent row and column
/// maps (`perm[new] = old` on both sides). This is the matrix a
/// compiled LU plan actually factors when a static pre-pivot `P` is
/// composed with a fill-reducing ordering `Q`: `B = Qᵀ P A Q`, whose
/// row map is `rperm[new] = rowp[q[new]]` and column map `cperm = q`.
/// [`permute_rows_cols`] is the `rperm == cperm` special case;
/// [`permute_rows`] the `cperm == identity` one.
pub fn permute_general(a: &CscMatrix, rperm: &[usize], cperm: &[usize]) -> Result<CscMatrix> {
    let n = a.n_cols();
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch(
            "permute_general requires a square matrix".into(),
        ));
    }
    if rperm.len() != n || cperm.len() != n {
        return Err(SparseError::DimensionMismatch(format!(
            "rperm.len() = {}, cperm.len() = {} != n = {n}",
            rperm.len(),
            cperm.len()
        )));
    }
    let rinv = inverse_permutation(rperm)?;
    inverse_permutation(cperm)?;
    let mut col_ptr = Vec::with_capacity(n + 1);
    let mut row_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    let mut entries: Vec<(usize, f64)> = Vec::new();
    col_ptr.push(0);
    for &old_j in cperm {
        entries.clear();
        entries.extend(a.col_iter(old_j).map(|(i, v)| (rinv[i], v)));
        entries.sort_unstable_by_key(|&(i, _)| i);
        for &(i, v) in &entries {
            row_idx.push(i);
            values.push(v);
        }
        col_ptr.push(row_idx.len());
    }
    Ok(CscMatrix::from_parts_unchecked(
        n, n, col_ptr, row_idx, values,
    ))
}

/// Count the structurally **missing** entries on the main diagonal
/// (`min(n_rows, n_cols)` positions) — on square matrices, the columns
/// a statically pivoted LU cannot serve without a pre-pivot. Zero
/// means the diagonal is structurally full (values may still be
/// numerically zero). The single diagonal-census implementation;
/// `sympiler_graph::transversal::structural_diag_count` is its
/// complement.
pub fn structurally_zero_diagonals(a: &CscMatrix) -> usize {
    (0..a.n_cols().min(a.n_rows()))
        .filter(|&j| a.col_rows(j).binary_search(&j).is_err())
        .count()
}

/// Symmetric application of one ordering to a square full-storage
/// matrix: `B = Qᵀ A Q` with `B[i, j] = A[perm[i], perm[j]]`
/// (`perm[new] = old`). This is how a fill-reducing *column* ordering
/// is applied under **static diagonal pivoting**: permuting rows by
/// the same `Q` keeps every diagonal entry on the diagonal (so
/// diagonal dominance survives), while the column intersection graph
/// of `AᵀA` — the structure COLAMD minimizes fill over — is identical
/// to that of `A Q`, because `(Qᵀ A Q)ᵀ (Qᵀ A Q) = Qᵀ (AᵀA) Q`.
///
/// Unlike [`permute_sym`] this is a direct CSC construction (gather
/// each permuted column, map rows through the inverse, one sort per
/// column) — O(|A| log maxcol) with no triplet round-trip.
pub fn permute_rows_cols(a: &CscMatrix, perm: &[usize]) -> Result<CscMatrix> {
    let n = a.n_cols();
    if !a.is_square() {
        return Err(SparseError::DimensionMismatch(
            "permute_rows_cols requires a square matrix".into(),
        ));
    }
    if perm.len() != n {
        return Err(SparseError::DimensionMismatch(format!(
            "perm.len() = {} != n = {n}",
            perm.len()
        )));
    }
    let inv = inverse_permutation(perm)?;
    let mut col_ptr = Vec::with_capacity(n + 1);
    let mut row_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    let mut entries: Vec<(usize, f64)> = Vec::new();
    col_ptr.push(0);
    for &old_j in perm {
        entries.clear();
        entries.extend(a.col_iter(old_j).map(|(i, v)| (inv[i], v)));
        entries.sort_unstable_by_key(|&(i, _)| i);
        for &(i, v) in &entries {
            row_idx.push(i);
            values.push(v);
        }
        col_ptr.push(row_idx.len());
    }
    Ok(CscMatrix::from_parts_unchecked(
        n, n, col_ptr, row_idx, values,
    ))
}

/// `||A x - b||_inf / (||A||_1 ||x||_inf + ||b||_inf)` — the scaled
/// residual used to verify solves.
pub fn rel_residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let mut ax = vec![0.0; a.n_rows()];
    spmv(a, x, &mut ax);
    scaled_residual_from(&ax, a, x, b)
}

/// Residual for a symmetric matrix stored lower.
pub fn rel_residual_sym_lower(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let mut ax = vec![0.0; a.n_rows()];
    spmv_sym_lower(a, x, &mut ax);
    scaled_residual_from(&ax, a, x, b)
}

fn scaled_residual_from(ax: &[f64], a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let num = ax
        .iter()
        .zip(b.iter())
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    let a1 = norm_1(a);
    let xi = x.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let bi = b.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let den = a1 * xi + bi;
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Componentwise backward error of an approximate solution to
/// `A x = b`: `max_i |b - A x|_i / (|A| |x| + |b|)_i` — the smallest
/// relative entrywise perturbation of `A` and `b` that makes `x`
/// exact (Oettli–Prager). The standard stopping criterion of
/// iterative refinement: a berr near machine epsilon certifies the
/// solve regardless of how ill-conditioned the factorization path
/// was. Rows where both numerator and denominator vanish contribute
/// zero; a nonzero residual over a zero denominator yields infinity.
pub fn componentwise_berr(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    assert_eq!(x.len(), a.n_cols(), "x length mismatch");
    assert_eq!(b.len(), a.n_rows(), "b length mismatch");
    let n = a.n_rows();
    let mut ax = vec![0.0f64; n];
    spmv(a, x, &mut ax);
    // |A| |x| accumulated per row.
    let mut denom = vec![0.0f64; n];
    for j in 0..a.n_cols() {
        let xj = x[j].abs();
        if xj == 0.0 {
            continue;
        }
        for (i, v) in a.col_iter(j) {
            denom[i] += v.abs() * xj;
        }
    }
    let mut berr = 0.0f64;
    for i in 0..n {
        let num = (b[i] - ax[i]).abs();
        let den = denom[i] + b[i].abs();
        if den > 0.0 {
            berr = berr.max(num / den);
        } else if num > 0.0 {
            return f64::INFINITY;
        }
    }
    berr
}

/// Maximum absolute column sum.
pub fn norm_1(a: &CscMatrix) -> f64 {
    (0..a.n_cols())
        .map(|j| a.col_values(j).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
}

/// Frobenius norm.
pub fn norm_fro(a: &CscMatrix) -> f64 {
    a.values().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// `y = L * x` for sparse `x`, used to manufacture consistent RHS vectors
/// for triangular-solve benchmarks: with sparse `x`, `b = L x` is sparse.
pub fn spmv_sparse(a: &CscMatrix, x: &SparseVec) -> SparseVec {
    assert_eq!(x.dim(), a.n_cols(), "x dimension mismatch");
    let mut dense = vec![0.0; a.n_rows()];
    for (j, xj) in x.iter() {
        for (i, v) in a.col_iter(j) {
            dense[i] += v * xj;
        }
    }
    SparseVec::from_dense(&dense)
}

/// Check structural symmetry (pattern of `A` equals pattern of `A^T`)
/// and numeric symmetry within `tol`.
pub fn is_symmetric(a: &CscMatrix, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let at = transpose(a);
    if !a.same_pattern(&at) {
        return false;
    }
    a.values()
        .iter()
        .zip(at.values())
        .all(|(x, y)| (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn lower3() -> CscMatrix {
        // [2 . .; 1 3 .; . 4 5]
        CscMatrix::try_new(
            3,
            3,
            vec![0, 2, 4, 5],
            vec![0, 1, 1, 2, 2],
            vec![2.0, 1.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn spmv_simple() {
        let a = lower3();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        spmv(&a, &x, &mut y);
        assert_eq!(y, [2.0, 7.0, 23.0]);
    }

    #[test]
    fn spmv_skips_zero_x() {
        let a = lower3();
        let x = [0.0, 0.0, 1.0];
        let mut y = [9.0; 3];
        spmv(&a, &x, &mut y);
        assert_eq!(y, [0.0, 0.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = lower3();
        let at = transpose(&a);
        assert_eq!(at.get(0, 1), 1.0);
        assert_eq!(at.get(1, 2), 4.0);
        assert_eq!(at.get(1, 0), 0.0);
        let att = transpose(&at);
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_rectangular() {
        let mut t = TripletMatrix::new(2, 3);
        t.push(0, 2, 1.0);
        t.push(1, 0, 2.0);
        let a = t.to_csc().unwrap();
        let at = transpose(&a);
        assert_eq!(at.n_rows(), 3);
        assert_eq!(at.n_cols(), 2);
        assert_eq!(at.get(2, 0), 1.0);
        assert_eq!(at.get(0, 1), 2.0);
    }

    #[test]
    fn symmetrize_and_extract_roundtrip() {
        let a = lower3();
        let full = symmetrize_from_lower(&a).unwrap();
        assert!(is_symmetric(&full, 0.0));
        assert_eq!(full.get(0, 1), 1.0);
        assert_eq!(full.get(1, 0), 1.0);
        let lower = extract_lower(&full);
        assert_eq!(lower, a);
    }

    #[test]
    fn symmetrize_rejects_nonlower() {
        let full = symmetrize_from_lower(&lower3()).unwrap();
        assert!(symmetrize_from_lower(&full).is_err());
    }

    #[test]
    fn spmv_sym_lower_matches_full() {
        let a = lower3();
        let full = symmetrize_from_lower(&a).unwrap();
        let x = [1.0, -2.0, 0.5];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        spmv_sym_lower(&a, &x, &mut y1);
        spmv(&full, &x, &mut y2);
        for (p, q) in y1.iter().zip(y2.iter()) {
            assert!((p - q).abs() < 1e-14);
        }
    }

    #[test]
    fn permute_sym_identity_is_noop() {
        let a = symmetrize_from_lower(&lower3()).unwrap();
        let p: Vec<usize> = (0..3).collect();
        let b = permute_sym(&a, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn permute_sym_reversal() {
        let a = symmetrize_from_lower(&lower3()).unwrap();
        let p = vec![2, 1, 0];
        let b = permute_sym(&a, &p).unwrap();
        // new (0,0) is old (2,2) = 5
        assert_eq!(b.get(0, 0), 5.0);
        assert_eq!(b.get(2, 2), 2.0);
        // new (1,0) is old (1,2) = 4
        assert_eq!(b.get(1, 0), 4.0);
        assert!(is_symmetric(&b, 0.0));
    }

    #[test]
    fn permute_sym_rejects_bad_perm() {
        let a = symmetrize_from_lower(&lower3()).unwrap();
        assert!(permute_sym(&a, &[0, 0, 1]).is_err());
        assert!(permute_sym(&a, &[0, 1]).is_err());
        assert!(permute_sym(&a, &[0, 1, 5]).is_err());
    }

    #[test]
    fn inverse_permutation_round_trips() {
        let p = vec![2usize, 0, 3, 1];
        let inv = inverse_permutation(&p).unwrap();
        assert_eq!(inv, vec![1, 3, 0, 2]);
        // Inverting twice recovers the original.
        assert_eq!(inverse_permutation(&inv).unwrap(), p);
        // Identity and empty are their own inverses.
        assert_eq!(inverse_permutation(&[0, 1, 2]).unwrap(), vec![0, 1, 2]);
        assert!(inverse_permutation(&[]).unwrap().is_empty());
    }

    #[test]
    fn inverse_permutation_rejects_non_bijections() {
        assert!(inverse_permutation(&[0, 0, 1]).is_err());
        assert!(inverse_permutation(&[0, 1, 5]).is_err());
    }

    #[test]
    fn gather_scatter_perm_round_trip() {
        let perm = vec![2usize, 0, 3, 1];
        let x = vec![10.0, 11.0, 12.0, 13.0];
        let gathered = gather_perm(&perm, &x);
        assert_eq!(gathered, vec![12.0, 10.0, 13.0, 11.0]);
        assert_eq!(scatter_perm(&perm, &gathered), x);
        // And the other composition order.
        assert_eq!(gather_perm(&perm, &scatter_perm(&perm, &x)), x);
    }

    #[test]
    fn permute_cols_reorders_columns_only() {
        let a = lower3();
        let q = vec![2usize, 0, 1];
        let b = permute_cols(&a, &q).unwrap();
        for (new, &old) in q.iter().enumerate() {
            assert_eq!(b.col_rows(new), a.col_rows(old), "col {new}");
            assert_eq!(b.col_values(new), a.col_values(old), "col {new}");
        }
        assert_eq!(b.nnz(), a.nnz());
        assert!(permute_cols(&a, &[0, 0, 1]).is_err());
        assert!(permute_cols(&a, &[0, 1]).is_err());
    }

    #[test]
    fn permute_rows_cols_matches_permute_sym() {
        // On a full-storage symmetric matrix the direct construction
        // must agree with the triplet-based symmetric permutation.
        let full = symmetrize_from_lower(&lower3()).unwrap();
        let perm = vec![1usize, 2, 0];
        let direct = permute_rows_cols(&full, &perm).unwrap();
        let via_triplets = permute_sym(&full, &perm).unwrap();
        assert_eq!(direct, via_triplets);
        // Diagonal entries stay diagonal under symmetric application.
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(direct.get(new, new), full.get(old, old));
        }
    }

    #[test]
    fn permute_rows_cols_entrywise_on_unsymmetric_input() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 0, 2.0);
        t.push(0, 1, 3.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, 5.0);
        let a = t.to_csc().unwrap();
        let perm = vec![2usize, 0, 1];
        let b = permute_rows_cols(&a, &perm).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), a.get(perm[i], perm[j]), "({i}, {j})");
            }
        }
        assert!(permute_rows_cols(&a, &[1, 0]).is_err());
        assert!(permute_rows_cols(&CscMatrix::zeros(2, 3), &[0, 1, 2]).is_err());
    }

    #[test]
    fn norms() {
        let a = lower3();
        assert_eq!(norm_1(&a), 7.0); // column 1: |3| + |4|
        assert!((norm_fro(&a) - (4.0f64 + 1.0 + 9.0 + 16.0 + 25.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let a = lower3();
        // x = [1, 1, 1], b = A x
        let x = [1.0, 1.0, 1.0];
        let mut b = [0.0; 3];
        spmv(&a, &x, &mut b);
        assert!(rel_residual(&a, &x, &b) < 1e-15);
    }

    #[test]
    fn spmv_sparse_matches_dense() {
        let a = lower3();
        let x = SparseVec::try_new(3, vec![1], vec![2.0]).unwrap();
        let b = spmv_sparse(&a, &x);
        let mut expect = [0.0; 3];
        spmv(&a, &x.to_dense(), &mut expect);
        assert_eq!(b.to_dense(), expect.to_vec());
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 2.0);
        let a = t.to_csc().unwrap();
        assert!(!is_symmetric(&a, 1e-12));
    }

    #[test]
    fn permute_rows_moves_rows_only() {
        let a = crate::gen::random_unsym(12, 3, 4);
        let p: Vec<usize> = (0..12).rev().collect();
        let b = permute_rows(&a, &p).unwrap();
        assert_eq!(b.col_ptr(), a.col_ptr(), "column layout untouched");
        for j in 0..12 {
            for (i, v) in b.col_iter(j) {
                assert_eq!(v, a.get(p[i], j), "B[{i},{j}] = A[p[{i}],{j}]");
            }
        }
        // Identity is a no-op.
        let id: Vec<usize> = (0..12).collect();
        assert_eq!(permute_rows(&a, &id).unwrap(), a);
        // Non-bijections are rejected.
        assert!(permute_rows(&a, &[0; 12]).is_err());
        assert!(permute_rows(&a, &[0, 1]).is_err());
    }

    #[test]
    fn permute_general_composes_row_and_col_maps() {
        let a = crate::gen::random_unsym(10, 3, 7);
        let rp: Vec<usize> = (0..10).map(|i| (i + 3) % 10).collect();
        let cp: Vec<usize> = (0..10).map(|i| (i * 7) % 10).collect();
        let b = permute_general(&a, &rp, &cp).unwrap();
        for j in 0..10 {
            for (i, v) in b.col_iter(j) {
                assert_eq!(v, a.get(rp[i], cp[j]));
            }
            assert_eq!(b.col_nnz(j), a.col_nnz(cp[j]));
        }
        // Equal maps reduce to the symmetric application; identity
        // columns reduce to the row permutation.
        assert_eq!(
            permute_general(&a, &rp, &rp).unwrap(),
            permute_rows_cols(&a, &rp).unwrap()
        );
        let id: Vec<usize> = (0..10).collect();
        assert_eq!(
            permute_general(&a, &rp, &id).unwrap(),
            permute_rows(&a, &rp).unwrap()
        );
    }

    #[test]
    fn zero_diagonal_census() {
        let mut t = TripletMatrix::new(4, 4);
        t.push(0, 0, 1.0);
        t.push(2, 2, 0.0); // numerically zero still counts as present
        t.push(1, 0, 1.0);
        t.push(3, 1, 1.0);
        t.push(0, 3, 1.0);
        let a = t.to_csc().unwrap();
        assert_eq!(structurally_zero_diagonals(&a), 2);
        assert_eq!(structurally_zero_diagonals(&CscMatrix::identity(5)), 0);
    }
}
