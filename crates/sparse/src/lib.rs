//! # sympiler-sparse
//!
//! Sparse matrix substrate for the `sympiler-rs` workspace: compressed
//! sparse column (CSC) storage, coordinate (triplet) builders, core
//! operations (SpMV, transpose, permutation, symmetrization), sparse
//! vectors, Matrix Market I/O, and the workload generators that stand in
//! for the SuiteSparse matrices used in the Sympiler paper (SC'17,
//! Table 2).
//!
//! All matrices are `f64` and column-oriented, matching the paper's
//! convention (`{n, Lp, Li, Lx}` in its Figure 1). Row indices within a
//! column are kept sorted ascending; the structural invariants are
//! enforced by [`CscMatrix::try_new`] and checked throughout in debug
//! builds.

pub mod csc;
pub mod error;
pub mod faults;
pub mod gen;
pub mod io;
pub mod ops;
pub mod rhs;
pub mod sparsevec;
pub mod suite;
pub mod triplet;

pub use csc::CscMatrix;
pub use error::SparseError;
pub use sparsevec::SparseVec;
pub use triplet::TripletMatrix;

/// Result alias used across the sparse substrate.
pub type Result<T> = std::result::Result<T, SparseError>;
