//! Matrix Market (`.mtx`) I/O.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` headers, which covers
//! the SuiteSparse matrices the paper evaluates on (Table 2). Symmetric
//! files store the lower triangle, matching this library's convention for
//! Cholesky inputs.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::triplet::TripletMatrix;
use crate::Result;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    General,
    Symmetric,
}

/// A parsed Matrix Market file: the matrix (as stored — symmetric files
/// keep lower-triangle-only storage) plus its declared symmetry.
#[derive(Debug, Clone)]
pub struct MmMatrix {
    pub matrix: CscMatrix,
    pub symmetry: MmSymmetry,
}

/// Read a Matrix Market file from a reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<MmMatrix> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?
        .map_err(SparseError::from)?;
    let head: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if head.len() != 5 || head[0] != "%%matrixmarket" || head[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {header}")));
    }
    if head[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "unsupported format {} (only coordinate)",
            head[2]
        )));
    }
    let pattern = match head[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported field type {other}"
            )))
        }
    };
    let symmetry = match head[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => return Err(SparseError::Parse(format!("unsupported symmetry {other}"))),
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| SparseError::Parse(format!("bad size token {t}: {e}")))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line: {size_line}")));
    }
    let (n_rows, n_cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut t = TripletMatrix::with_capacity(n_rows, n_cols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing row".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad row: {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing col".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad col: {e}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value: {e}")))?
        };
        if i == 0 || j == 0 || i > n_rows || j > n_cols {
            return Err(SparseError::Parse(format!(
                "entry ({i},{j}) out of 1-based bounds {n_rows}x{n_cols}"
            )));
        }
        if symmetry == MmSymmetry::Symmetric && j > i {
            return Err(SparseError::Parse(format!(
                "symmetric file stores upper entry ({i},{j})"
            )));
        }
        t.push(i - 1, j - 1, v);
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(MmMatrix {
        matrix: t.to_csc()?,
        symmetry,
    })
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<MmMatrix> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Write a matrix in Matrix Market coordinate-real format. When
/// `symmetry` is [`MmSymmetry::Symmetric`], the matrix must already be in
/// lower-triangular storage.
pub fn write_matrix_market<W: Write>(writer: W, a: &CscMatrix, symmetry: MmSymmetry) -> Result<()> {
    if symmetry == MmSymmetry::Symmetric && !a.is_lower_storage() {
        return Err(SparseError::InvalidMatrix(
            "symmetric output requires lower-triangular storage".into(),
        ));
    }
    let mut w = BufWriter::new(writer);
    let sym = match symmetry {
        MmSymmetry::General => "general",
        MmSymmetry::Symmetric => "symmetric",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate real {sym}")?;
    writeln!(w, "% generated by sympiler-rs")?;
    writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for j in 0..a.n_cols() {
        for (i, v) in a.col_iter(j) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(
    path: P,
    a: &CscMatrix,
    symmetry: MmSymmetry,
) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(f, a, symmetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower3() -> CscMatrix {
        CscMatrix::try_new(
            3,
            3,
            vec![0, 2, 4, 5],
            vec![0, 1, 1, 2, 2],
            vec![2.0, 1.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_general() {
        let a = lower3();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a, MmSymmetry::General).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back.symmetry, MmSymmetry::General);
        assert_eq!(back.matrix, a);
    }

    #[test]
    fn roundtrip_symmetric() {
        let a = lower3();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a, MmSymmetry::Symmetric).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back.symmetry, MmSymmetry::Symmetric);
        assert_eq!(back.matrix, a);
    }

    #[test]
    fn reads_pattern_files() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.matrix.nnz(), 2);
        assert_eq!(m.matrix.get(0, 0), 1.0);
        assert_eq!(m.matrix.get(1, 0), 1.0);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n% another\n2 1 3.5\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.matrix.get(1, 0), 3.5);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
        let zero = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(zero.as_bytes()).is_err());
    }

    #[test]
    fn rejects_upper_entry_in_symmetric_file() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn symmetric_write_requires_lower() {
        let full = crate::ops::symmetrize_from_lower(&lower3()).unwrap();
        let mut buf = Vec::new();
        assert!(write_matrix_market(&mut buf, &full, MmSymmetry::Symmetric).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let a = lower3();
        let dir = std::env::temp_dir().join("sympiler_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        write_matrix_market_file(&path, &a, MmSymmetry::Symmetric).unwrap();
        let back = read_matrix_market_file(&path).unwrap();
        assert_eq!(back.matrix, a);
        std::fs::remove_file(&path).ok();
    }
}
