//! Sparse vectors — the right-hand sides of the paper's triangular
//! systems (`b` in `Lx = b`, Figure 1), where only a few percent of the
//! entries are nonzero.

use crate::error::SparseError;
use crate::Result;

/// A sparse vector stored as parallel `(index, value)` arrays with
/// strictly increasing indices.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Build from parallel arrays, validating order and bounds.
    pub fn try_new(dim: usize, indices: Vec<usize>, values: Vec<f64>) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(SparseError::LengthMismatch(format!(
                "indices.len() = {}, values.len() = {}",
                indices.len(),
                values.len()
            )));
        }
        for (k, &i) in indices.iter().enumerate() {
            if i >= dim {
                return Err(SparseError::BadRowIndex(format!("index {i} >= dim {dim}")));
            }
            if k > 0 && indices[k - 1] >= i {
                return Err(SparseError::BadRowIndex(format!(
                    "indices not strictly increasing: {} then {i}",
                    indices[k - 1]
                )));
            }
        }
        Ok(Self {
            dim,
            indices,
            values,
        })
    }

    /// The all-zero vector.
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Gather the nonzeros of a dense slice.
    pub fn from_dense(x: &[f64]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                indices.push(i);
                values.push(v);
            }
        }
        Self {
            dim: x.len(),
            indices,
            values,
        }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nonzeros (`|b|` in the paper's complexity bounds).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate over `(index, value)` pairs in increasing index order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Scatter into a dense vector (allocates).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.dim];
        self.scatter_into(&mut x);
        x
    }

    /// Scatter into a caller-provided buffer that must already be zeroed
    /// where this vector has no entries. The buffer is fully zeroed first.
    pub fn scatter_into(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "buffer length mismatch");
        x.fill(0.0);
        for (i, v) in self.iter() {
            x[i] = v;
        }
    }

    /// The fill ratio `nnz / dim`, as used for the paper's "<5% RHS"
    /// workload constraint (§4.2).
    pub fn fill_ratio(&self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.dim as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = SparseVec::try_new(6, vec![0, 5], vec![1.0, 2.0]).unwrap();
        assert_eq!(v.dim(), 6);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), vec![1.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn rejects_bad_indices() {
        assert!(SparseVec::try_new(3, vec![3], vec![1.0]).is_err());
        assert!(SparseVec::try_new(3, vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseVec::try_new(3, vec![2, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseVec::try_new(3, vec![0], vec![]).is_err());
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = vec![0.0, 3.0, 0.0, -1.0];
        let v = SparseVec::from_dense(&d);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.to_dense(), d);
    }

    #[test]
    fn fill_ratio() {
        let v = SparseVec::try_new(100, vec![3, 50], vec![1.0, 1.0]).unwrap();
        assert!((v.fill_ratio() - 0.02).abs() < 1e-15);
        assert_eq!(SparseVec::zeros(0).fill_ratio(), 0.0);
    }

    #[test]
    fn scatter_into_zeroes_buffer() {
        let v = SparseVec::try_new(3, vec![1], vec![5.0]).unwrap();
        let mut buf = vec![9.0; 3];
        v.scatter_into(&mut buf);
        assert_eq!(buf, vec![0.0, 5.0, 0.0]);
    }
}
