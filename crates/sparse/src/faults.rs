//! Deterministic numerical fault injectors.
//!
//! The robustness ladder (static pivot perturbation → iterative
//! refinement → partial-pivoting re-factorization) is validated against
//! *injected* faults, not hoped-for natural ones: these helpers take a
//! healthy matrix and degrade its **values only** — the sparsity
//! pattern, and therefore every compiled plan, is untouched. That is
//! exactly the failure shape Sympiler's decoupling exposes: the
//! symbolic phase ran once against the pattern, then the values drifted
//! (Newton steps, circuit transients) into numerically hostile
//! territory the static pivot order never anticipated.
//!
//! Every injector is seeded and pure: the same `(matrix, seed)` pair
//! always produces the same fault set, so recovery-rate benchmarks and
//! regression tests are bit-reproducible.

use crate::csc::CscMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministically pick `count` distinct columns of an `n`-column
/// matrix (seeded Fisher–Yates prefix). Sorted ascending so fault
/// reports read naturally.
pub fn pick_columns(n: usize, count: usize, seed: u64) -> Vec<usize> {
    let count = count.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<usize> = (0..n).collect();
    for k in 0..count {
        let j = k + rng.random_range(0..(n - k));
        cols.swap(k, j);
    }
    let mut picked = cols[..count].to_vec();
    picked.sort_unstable();
    picked
}

/// Zero the stored diagonal entry of each listed column (values only;
/// the entries stay structurally present, so the plan is unchanged).
/// Columns without a stored diagonal are skipped. Returns the faulted
/// copy and the columns actually zeroed.
pub fn zero_diagonals(a: &CscMatrix, columns: &[usize]) -> (CscMatrix, Vec<usize>) {
    scale_diagonals(a, columns, 0.0)
}

/// Shrink the stored diagonal entry of each listed column to
/// `scale` times its value — `scale = 1e-300` manufactures pivots that
/// are formally nonzero but numerically meaningless, the classic
/// "tiny pivot" hazard static pivoting cannot see coming.
pub fn tiny_diagonals(a: &CscMatrix, columns: &[usize], scale: f64) -> (CscMatrix, Vec<usize>) {
    scale_diagonals(a, columns, scale)
}

fn scale_diagonals(a: &CscMatrix, columns: &[usize], scale: f64) -> (CscMatrix, Vec<usize>) {
    let mut out = a.clone();
    let mut hit = Vec::with_capacity(columns.len());
    for &j in columns {
        if j < out.n_cols() {
            if let Some(p) = out.find(j, j) {
                out.values_mut()[p] *= scale;
                hit.push(j);
            }
        }
    }
    (out, hit)
}

/// Ill-scale the matrix: every row `i` is multiplied by
/// `10^{e_i}` with `e_i` drawn uniformly from `[-decades, decades]`
/// (seeded). Row scaling preserves exact solvability — `D·A·x = D·b`
/// has the same `x` — but wrecks the componentwise conditioning that
/// static pivot orders were chosen under, which is precisely what
/// iterative refinement is supposed to absorb. Returns the scaled
/// matrix and the per-row scale factors (apply them to `b` yourself to
/// keep the system consistent).
pub fn ill_scale_rows(a: &CscMatrix, decades: f64, seed: u64) -> (CscMatrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let scales: Vec<f64> = (0..a.n_rows())
        .map(|_| 10.0_f64.powf(rng.random_range(-decades..decades)))
        .collect();
    let mut out = a.clone();
    // CSC walk: entry p in column j sits on row row_idx[p].
    let rows = out.row_idx().to_vec();
    for (p, v) in out.values_mut().iter_mut().enumerate() {
        *v *= scales[rows[p]];
    }
    (out, scales)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn pick_columns_is_deterministic_and_distinct() {
        let a = pick_columns(100, 10, 42);
        let b = pick_columns(100, 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup, a, "picked columns must be distinct and sorted");
        assert_ne!(a, pick_columns(100, 10, 43), "seed must matter");
    }

    #[test]
    fn zero_diagonals_only_touches_the_targets() {
        let a = gen::circuit_unsym(50, 4, 2, 7);
        let cols = pick_columns(a.n_cols(), 5, 11);
        let (faulted, hit) = zero_diagonals(&a, &cols);
        assert!(faulted.same_pattern(&a), "pattern must be untouched");
        assert!(!hit.is_empty());
        for &j in &hit {
            assert_eq!(faulted.get(j, j), 0.0, "column {j} diagonal not zeroed");
        }
        // Everything off the fault set is bitwise identical.
        let n_changed = a
            .values()
            .iter()
            .zip(faulted.values())
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
        assert_eq!(n_changed, hit.len());
    }

    #[test]
    fn tiny_diagonals_shrink_without_zeroing() {
        let a = gen::circuit_unsym(50, 4, 2, 7);
        let (faulted, hit) = tiny_diagonals(&a, &[0, 3], 1e-200);
        for &j in &hit {
            let v = faulted.get(j, j);
            assert!(v != 0.0 && v.abs() < 1e-150, "col {j}: got {v}");
        }
    }

    #[test]
    fn ill_scaling_preserves_the_solution() {
        use crate::ops::spmv;
        let a = gen::circuit_unsym(30, 4, 2, 7);
        let x: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut b = vec![0.0; 30];
        spmv(&a, &x, &mut b);
        let (scaled, d) = ill_scale_rows(&a, 6.0, 99);
        assert!(scaled.same_pattern(&a));
        let mut b_scaled = vec![0.0; 30];
        spmv(&scaled, &x, &mut b_scaled);
        for i in 0..30 {
            let want = d[i] * b[i];
            assert!(
                (b_scaled[i] - want).abs() <= 1e-9 * want.abs().max(1.0),
                "row {i}: D·A·x = {} but D·b = {want}",
                b_scaled[i]
            );
        }
    }
}
