//! Coordinate-format (triplet) builder.
//!
//! The usual entry point for assembling a sparse matrix: push `(i, j, v)`
//! entries in any order (duplicates summed, as in FEM assembly), then
//! convert to CSC with [`TripletMatrix::to_csc`].

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::Result;

/// An unassembled sparse matrix in coordinate form.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// An empty triplet matrix of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Pre-allocate space for `cap` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of pushed entries (before duplicate summation).
    #[inline]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Add an entry; duplicates are summed during [`Self::to_csc`].
    ///
    /// # Panics
    /// If the index is out of bounds.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.n_rows && j < self.n_cols,
            "triplet index ({i},{j}) out of bounds for {}x{}",
            self.n_rows,
            self.n_cols
        );
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Add `v` at `(i, j)` and `(j, i)`; the diagonal is added once.
    pub fn push_sym(&mut self, i: usize, j: usize, v: f64) {
        self.push(i, j, v);
        if i != j {
            self.push(j, i, v);
        }
    }

    /// Assemble into CSC: counting sort by column, then per-column sort by
    /// row with duplicate summation. Entries that sum to exactly zero are
    /// **kept** as explicit (structural) zeros, matching the convention of
    /// symbolic analysis where structure is independent of values.
    pub fn to_csc(&self) -> Result<CscMatrix> {
        let n_cols = self.n_cols;
        // Count entries per column.
        let mut count = vec![0usize; n_cols];
        for &j in &self.cols {
            count[j] += 1;
        }
        let mut col_ptr = vec![0usize; n_cols + 1];
        for j in 0..n_cols {
            col_ptr[j + 1] = col_ptr[j] + count[j];
        }
        // Scatter into position.
        let mut next = col_ptr[..n_cols].to_vec();
        let mut row_idx = vec![0usize; self.len()];
        let mut values = vec![0.0f64; self.len()];
        for k in 0..self.len() {
            let j = self.cols[k];
            let p = next[j];
            row_idx[p] = self.rows[k];
            values[p] = self.vals[k];
            next[j] += 1;
        }
        // Sort each column by row and merge duplicates (compacting).
        let mut out_ptr = vec![0usize; n_cols + 1];
        let mut out_rows = Vec::with_capacity(self.len());
        let mut out_vals = Vec::with_capacity(self.len());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..n_cols {
            scratch.clear();
            scratch.extend(
                row_idx[col_ptr[j]..col_ptr[j + 1]]
                    .iter()
                    .copied()
                    .zip(values[col_ptr[j]..col_ptr[j + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut k = 0;
            while k < scratch.len() {
                let (r, mut v) = scratch[k];
                let mut k2 = k + 1;
                while k2 < scratch.len() && scratch[k2].0 == r {
                    v += scratch[k2].1;
                    k2 += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
                k = k2;
            }
            out_ptr[j + 1] = out_rows.len();
        }
        CscMatrix::try_new(self.n_rows, n_cols, out_ptr, out_rows, out_vals)
    }

    /// Assemble, requiring the result to be square.
    pub fn to_square_csc(&self) -> Result<CscMatrix> {
        if self.n_rows != self.n_cols {
            return Err(SparseError::DimensionMismatch(format!(
                "expected square, got {}x{}",
                self.n_rows, self.n_cols
            )));
        }
        self.to_csc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_sorted_and_deduped() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(2, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(2, 0, 0.5); // duplicate, summed
        t.push(1, 2, 3.0);
        let m = t.to_csc().unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 0), 1.5);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.col_rows(0), &[0, 2]);
    }

    #[test]
    fn empty_matrix() {
        let t = TripletMatrix::new(4, 4);
        let m = t.to_csc().unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.n_rows(), 4);
    }

    #[test]
    fn push_sym_adds_mirror() {
        let mut t = TripletMatrix::new(3, 3);
        t.push_sym(0, 0, 4.0);
        t.push_sym(2, 0, -1.0);
        let m = t.to_csc().unwrap();
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(0, 2), -1.0);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn zero_sum_entries_stay_structural() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 0, 1.0);
        t.push(1, 0, -1.0);
        let m = t.to_csc().unwrap();
        assert_eq!(m.nnz(), 1, "cancelled entry must stay structural");
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn rectangular_assembly() {
        let mut t = TripletMatrix::new(2, 4);
        t.push(0, 3, 7.0);
        t.push(1, 0, 5.0);
        let m = t.to_csc().unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.get(0, 3), 7.0);
        assert!(t.to_square_csc().is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut t = TripletMatrix::with_capacity(3, 3, 16);
        assert!(t.is_empty());
        t.push(0, 0, 1.0);
        assert_eq!(t.len(), 1);
    }
}
