//! Right-hand-side generators for triangular systems.
//!
//! The paper's triangular-solve experiments use **sparse** RHS vectors
//! with under 5% fill whose sparsity "is close to the sparsity of the
//! columns of a sparse matrix" (§4.2) — because in left-looking LU /
//! Cholesky rank updates the RHS of the inner triangular solve *is* a
//! matrix column. These helpers construct exactly those workloads.

use crate::csc::CscMatrix;
use crate::sparsevec::SparseVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// RHS whose pattern is the pattern of column `j` of `L` — the workload
/// of a factorization inner solve. Values are deterministic pseudo-random
/// in `[1, 2)`.
pub fn rhs_from_column_pattern(l: &CscMatrix, j: usize, seed: u64) -> SparseVec {
    assert!(j < l.n_cols(), "column out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let indices: Vec<usize> = l.col_rows(j).to_vec();
    let values: Vec<f64> = indices.iter().map(|_| rng.random_range(1.0..2.0)).collect();
    SparseVec::try_new(l.n_rows(), indices, values).expect("column pattern is sorted")
}

/// Random sparse RHS with `max(1, round(fill * n))` nonzeros at uniformly
/// random positions.
pub fn random_sparse_rhs(n: usize, fill: f64, seed: u64) -> SparseVec {
    assert!(n > 0, "empty vector");
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0,1]");
    let k = ((fill * n as f64).round() as usize).clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        picked.insert(rng.random_range(0..n));
    }
    let indices: Vec<usize> = picked.into_iter().collect();
    let values: Vec<f64> = indices.iter().map(|_| rng.random_range(1.0..2.0)).collect();
    SparseVec::try_new(n, indices, values).expect("BTreeSet iterates sorted")
}

/// Build `b = L x` for a known sparse solution `x`, so solvers can be
/// verified against `x` exactly.
pub fn rhs_with_known_solution(l: &CscMatrix, x: &SparseVec) -> SparseVec {
    crate::ops::spmv_sparse(l, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_lower_triangular;

    #[test]
    fn column_pattern_rhs_matches_column() {
        let l = random_lower_triangular(40, 3, 1);
        let b = rhs_from_column_pattern(&l, 10, 7);
        assert_eq!(b.indices(), l.col_rows(10));
        assert!(b.values().iter().all(|&v| (1.0..2.0).contains(&v)));
    }

    #[test]
    fn random_rhs_respects_fill() {
        let b = random_sparse_rhs(1000, 0.03, 5);
        assert_eq!(b.nnz(), 30);
        assert!(b.fill_ratio() <= 0.05, "paper's <5% constraint");
        let tiny = random_sparse_rhs(10, 0.0, 5);
        assert_eq!(tiny.nnz(), 1, "at least one nonzero");
    }

    #[test]
    fn random_rhs_is_deterministic() {
        assert_eq!(
            random_sparse_rhs(100, 0.05, 9),
            random_sparse_rhs(100, 0.05, 9)
        );
        assert_ne!(
            random_sparse_rhs(100, 0.05, 9),
            random_sparse_rhs(100, 0.05, 10)
        );
    }

    #[test]
    fn known_solution_roundtrip() {
        let l = random_lower_triangular(30, 2, 3);
        let x = random_sparse_rhs(30, 0.1, 4);
        let b = rhs_with_known_solution(&l, &x);
        // Forward substitution (dense, reference) must recover x.
        let mut xd = b.to_dense();
        for j in 0..30 {
            let r = l.col_range(j);
            let rows = &l.row_idx()[r.clone()];
            let vals = &l.values()[r];
            xd[j] /= vals[0];
            let xj = xd[j];
            for (&i, &v) in rows[1..].iter().zip(&vals[1..]) {
                xd[i] -= v * xj;
            }
        }
        let expect = x.to_dense();
        for (a, b) in xd.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }
}
