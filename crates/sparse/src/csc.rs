//! Compressed sparse column (CSC) storage.
//!
//! This mirrors the `{n, Lp, Li, Lx}` quadruple used throughout the
//! Sympiler paper (Figure 1): `col_ptr` (`Lp`) has `n_cols + 1` entries,
//! `row_idx` (`Li`) holds the row index of each stored entry, and
//! `values` (`Lx`) the numeric value. Entries within a column are sorted
//! by row index and duplicate-free.

use crate::error::SparseError;
use crate::Result;

/// A sparse matrix in compressed sparse column format.
///
/// Invariants (enforced by [`CscMatrix::try_new`], assumed everywhere):
/// * `col_ptr.len() == n_cols + 1`, `col_ptr[0] == 0`, monotone
///   non-decreasing, `col_ptr[n_cols] == row_idx.len() == values.len()`;
/// * within each column, row indices are strictly increasing and
///   `< n_rows`.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build a CSC matrix, validating every structural invariant.
    pub fn try_new(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if col_ptr.len() != n_cols + 1 {
            return Err(SparseError::BadColPtr(format!(
                "col_ptr.len() = {} but n_cols + 1 = {}",
                col_ptr.len(),
                n_cols + 1
            )));
        }
        if col_ptr[0] != 0 {
            return Err(SparseError::BadColPtr(format!(
                "col_ptr[0] = {} (must be 0)",
                col_ptr[0]
            )));
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::LengthMismatch(format!(
                "row_idx.len() = {} but values.len() = {}",
                row_idx.len(),
                values.len()
            )));
        }
        if *col_ptr.last().unwrap() != row_idx.len() {
            return Err(SparseError::BadColPtr(format!(
                "col_ptr[n_cols] = {} but nnz = {}",
                col_ptr.last().unwrap(),
                row_idx.len()
            )));
        }
        for j in 0..n_cols {
            if col_ptr[j] > col_ptr[j + 1] {
                return Err(SparseError::BadColPtr(format!(
                    "col_ptr not monotone at column {j}"
                )));
            }
            let col = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            for (k, &r) in col.iter().enumerate() {
                if r >= n_rows {
                    return Err(SparseError::BadRowIndex(format!(
                        "row index {r} >= n_rows {n_rows} in column {j}"
                    )));
                }
                if k > 0 && col[k - 1] >= r {
                    return Err(SparseError::BadRowIndex(format!(
                        "row indices not strictly increasing in column {j}: {} then {r}",
                        col[k - 1]
                    )));
                }
            }
        }
        Ok(Self {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Build without validation. Used on hot paths where the caller has
    /// just constructed provably valid arrays; debug builds still verify.
    pub fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert!(
            Self::try_new(
                n_rows,
                n_cols,
                col_ptr.clone(),
                row_idx.clone(),
                values.clone()
            )
            .is_ok(),
            "from_parts_unchecked given invalid CSC arrays"
        );
        Self {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let col_ptr: Vec<usize> = (0..=n).collect();
        let row_idx: Vec<usize> = (0..n).collect();
        let values = vec![1.0; n];
        Self::from_parts_unchecked(n, n, col_ptr, row_idx, values)
    }

    /// A matrix with no stored entries.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self::from_parts_unchecked(n_rows, n_cols, vec![0; n_cols + 1], Vec::new(), Vec::new())
    }

    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structural) nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The column pointer array (`Lp` in the paper).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index array (`Li` in the paper).
    #[inline]
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The value array (`Lx` in the paper).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to values only — the pattern stays fixed, which is
    /// exactly the contract Sympiler relies on (static sparsity, §1.2).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The half-open range of storage indices for column `j`.
    #[inline]
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j]..self.col_ptr[j + 1]
    }

    /// Row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_range(j)]
    }

    /// Values of column `j`.
    #[inline]
    pub fn col_values(&self, j: usize) -> &[f64] {
        &self.values[self.col_range(j)]
    }

    /// Number of stored entries in column `j`
    /// (the paper's "column count" for `L`).
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Iterate over `(row, value)` pairs of column `j`.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.col_range(j);
        self.row_idx[r.clone()]
            .iter()
            .copied()
            .zip(self.values[r].iter().copied())
    }

    /// Value at `(i, j)`, or 0.0 if the entry is not stored.
    /// Binary search; O(log nnz(col j)). For tests and convenience, not
    /// for inner loops.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        let rows = self.col_rows(j);
        match rows.binary_search(&i) {
            Ok(k) => self.values[self.col_ptr[j] + k],
            Err(_) => 0.0,
        }
    }

    /// Storage position of entry `(i, j)` if present.
    pub fn find(&self, i: usize, j: usize) -> Option<usize> {
        let rows = self.col_rows(j);
        rows.binary_search(&i).ok().map(|k| self.col_ptr[j] + k)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.n_rows == self.n_cols
    }

    /// True if every stored entry lies on or below the diagonal **and**
    /// every column's first stored entry is exactly the diagonal — the
    /// shape required of the `L` operand in triangular solve.
    pub fn is_lower_triangular_with_diag(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        (0..self.n_cols).all(|j| {
            let rows = self.col_rows(j);
            rows.first() == Some(&j)
        })
    }

    /// True if only entries on or below the diagonal are stored
    /// (the symmetric-lower storage convention of the paper's `A`).
    pub fn is_lower_storage(&self) -> bool {
        (0..self.n_cols).all(|j| self.col_rows(j).iter().all(|&i| i >= j))
    }

    /// True if every column's last stored entry is exactly the
    /// diagonal — the shape of the `U` factor in LU (diagonal-last
    /// columns). Under the struct's strictly-increasing-rows invariant
    /// this implies every stored entry lies on or above the diagonal
    /// (the same argument [`Self::is_lower_triangular_with_diag`]
    /// makes with the first entry).
    pub fn is_upper_triangular_with_diag(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        (0..self.n_cols).all(|j| {
            let rows = self.col_rows(j);
            rows.last() == Some(&j)
        })
    }

    /// Densify into a column-major `Vec` (`n_rows * n_cols`).
    /// For tests and small examples only.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n_rows * self.n_cols];
        for j in 0..self.n_cols {
            for (i, v) in self.col_iter(j) {
                d[j * self.n_rows + i] = v;
            }
        }
        d
    }

    /// The sparsity pattern with all values set to a constant. Useful for
    /// symbolic-phase tests where only structure matters.
    pub fn pattern_only(&self, fill: f64) -> CscMatrix {
        CscMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            col_ptr: self.col_ptr.clone(),
            row_idx: self.row_idx.clone(),
            values: vec![fill; self.nnz()],
        }
    }

    /// True if the two matrices have the identical sparsity pattern.
    pub fn same_pattern(&self, other: &CscMatrix) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.col_ptr == other.col_ptr
            && self.row_idx == other.row_idx
    }

    /// Consume the matrix, returning `(n_rows, n_cols, col_ptr, row_idx,
    /// values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<f64>) {
        (
            self.n_rows,
            self.n_cols,
            self.col_ptr,
            self.row_idx,
            self.values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3 lower triangular:
    /// [2 . .]
    /// [1 3 .]
    /// [. 4 5]
    fn small_lower() -> CscMatrix {
        CscMatrix::try_new(
            3,
            3,
            vec![0, 2, 4, 5],
            vec![0, 1, 1, 2, 2],
            vec![2.0, 1.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn valid_construction() {
        let m = small_lower();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(2), 1);
    }

    #[test]
    fn rejects_bad_colptr_length() {
        let e = CscMatrix::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::BadColPtr(_))));
    }

    #[test]
    fn rejects_nonzero_first_colptr() {
        let e = CscMatrix::try_new(2, 2, vec![1, 1, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::BadColPtr(_))));
    }

    #[test]
    fn rejects_nonmonotone_colptr() {
        let e = CscMatrix::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::BadColPtr(_))));
    }

    #[test]
    fn rejects_row_out_of_range() {
        let e = CscMatrix::try_new(2, 2, vec![0, 1, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(SparseError::BadRowIndex(_))));
    }

    #[test]
    fn rejects_unsorted_rows() {
        let e = CscMatrix::try_new(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::BadRowIndex(_))));
    }

    #[test]
    fn rejects_duplicate_rows() {
        let e = CscMatrix::try_new(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::BadRowIndex(_))));
    }

    #[test]
    fn rejects_value_length_mismatch() {
        let e = CscMatrix::try_new(2, 1, vec![0, 1], vec![0], vec![1.0, 2.0]);
        assert!(matches!(e, Err(SparseError::LengthMismatch(_))));
    }

    #[test]
    fn rejects_colptr_nnz_mismatch() {
        let e = CscMatrix::try_new(2, 1, vec![0, 2], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::BadColPtr(_))));
    }

    #[test]
    fn get_and_find() {
        let m = small_lower();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.find(2, 2), Some(4));
        assert_eq!(m.find(0, 1), None);
    }

    #[test]
    fn identity_shape() {
        let i = CscMatrix::identity(4);
        assert!(i.is_lower_triangular_with_diag());
        assert_eq!(i.nnz(), 4);
        for k in 0..4 {
            assert_eq!(i.get(k, k), 1.0);
        }
    }

    #[test]
    fn lower_triangular_detection() {
        assert!(small_lower().is_lower_triangular_with_diag());
        // Missing diagonal in column 0.
        let no_diag = CscMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 1], vec![1.0, 1.0]).unwrap();
        assert!(!no_diag.is_lower_triangular_with_diag());
        assert!(no_diag.is_lower_storage());
    }

    #[test]
    fn to_dense_roundtrip_values() {
        let m = small_lower();
        let d = m.to_dense();
        // column-major
        assert_eq!(d[0], 2.0); // (0,0)
        assert_eq!(d[1], 1.0); // (1,0)
        assert_eq!(d[3 + 1], 3.0); // (1,1)
        assert_eq!(d[3 + 2], 4.0); // (2,1)
        assert_eq!(d[6 + 2], 5.0); // (2,2)
        assert_eq!(d.iter().filter(|&&x| x != 0.0).count(), 5);
    }

    #[test]
    fn pattern_only_and_same_pattern() {
        let m = small_lower();
        let p = m.pattern_only(1.0);
        assert!(m.same_pattern(&p));
        assert!(p.values().iter().all(|&v| v == 1.0));
        let other = CscMatrix::identity(3);
        assert!(!m.same_pattern(&other));
    }

    #[test]
    fn col_iter_matches_get() {
        let m = small_lower();
        for j in 0..3 {
            for (i, v) in m.col_iter(j) {
                assert_eq!(m.get(i, j), v);
            }
        }
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CscMatrix::zeros(3, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.n_rows(), 3);
        assert_eq!(z.n_cols(), 2);
        assert_eq!(z.get(2, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        small_lower().get(3, 0);
    }
}
