//! Synthetic matrix generators.
//!
//! The Sympiler paper evaluates on SuiteSparse matrices whose structure
//! comes from physical discretizations (§1.2): power grids and circuits,
//! FEM meshes, fluid and thermal problems. Offline, we generate matrices
//! from the same structural families: grid Laplacians (5/9/7-point
//! stencils), banded shell-like operators, and irregular circuit-like
//! graphs. All SPD generators emit the **lower triangle** (the storage
//! convention for Cholesky inputs throughout this workspace) and are made
//! strictly diagonally dominant so factorizations cannot break down.

use crate::csc::CscMatrix;
use crate::triplet::TripletMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// 5-point (when `nine_point == false`) or 9-point 2-D Laplacian stencil
/// on an `nx x ny` grid, SPD, lower-triangle storage. `jitter` adds a
/// deterministic value perturbation (pattern unchanged) so repeated
/// factorizations see different numerics, mirroring the paper's
/// "values change, pattern fixed" scenario.
pub fn grid2d_laplacian(nx: usize, ny: usize, nine_point: bool, seed: u64) -> CscMatrix {
    assert!(nx >= 2 && ny >= 2, "grid must be at least 2x2");
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize| y * nx + x;
    let mut t = TripletMatrix::with_capacity(n, n, n * 5);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            let mut degree = 0.0;
            let push_edge = |t: &mut TripletMatrix, a: usize, b: usize, w: f64| {
                // lower triangle only: row >= col
                let (r, c) = if a > b { (a, b) } else { (b, a) };
                t.push(r, c, -w);
            };
            let w_card = 1.0 + 0.05 * rng.random_range(0.0..1.0);
            if x + 1 < nx {
                push_edge(&mut t, i, idx(x + 1, y), w_card);
                degree += w_card;
            }
            if x > 0 {
                degree += 1.0 + 0.0; // neighbour already pushed from its side
            }
            if y + 1 < ny {
                let w = 1.0 + 0.05 * rng.random_range(0.0..1.0);
                push_edge(&mut t, i, idx(x, y + 1), w);
                degree += w;
            }
            if y > 0 {
                degree += 1.0;
            }
            if nine_point {
                if x + 1 < nx && y + 1 < ny {
                    let w = 0.5 + 0.02 * rng.random_range(0.0..1.0);
                    push_edge(&mut t, i, idx(x + 1, y + 1), w);
                    degree += w;
                }
                if x > 0 && y + 1 < ny {
                    let w = 0.5 + 0.02 * rng.random_range(0.0..1.0);
                    push_edge(&mut t, i, idx(x - 1, y + 1), w);
                    degree += w;
                }
                if x > 0 && y > 0 {
                    degree += 0.5;
                }
                if x + 1 < nx && y > 0 {
                    degree += 0.5;
                }
            }
            // Strict diagonal dominance: degree upper bound + shift.
            t.push(i, i, degree.max(1.0) + 4.0);
        }
    }
    t.to_csc().expect("grid laplacian assembly cannot fail")
}

/// 7-point 3-D Laplacian on an `nx x ny x nz` grid, SPD, lower storage.
pub fn grid3d_laplacian(nx: usize, ny: usize, nz: usize, seed: u64) -> CscMatrix {
    assert!(nx >= 2 && ny >= 2 && nz >= 2, "grid must be at least 2^3");
    let n = nx * ny * nz;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut t = TripletMatrix::with_capacity(n, n, n * 4);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                let mut deg = 0.0;
                let mut w = || 1.0 + 0.05 * rng.random_range(0.0..1.0);
                if x + 1 < nx {
                    let wv = w();
                    t.push(idx(x + 1, y, z), i, -wv);
                    deg += wv;
                }
                if y + 1 < ny {
                    let wv = w();
                    t.push(idx(x, y + 1, z), i, -wv);
                    deg += wv;
                }
                if z + 1 < nz {
                    let wv = w();
                    t.push(idx(x, y, z + 1), i, -wv);
                    deg += wv;
                }
                deg += (x > 0) as usize as f64 + (y > 0) as usize as f64 + (z > 0) as usize as f64;
                t.push(i, i, deg.max(1.0) + 6.0);
            }
        }
    }
    t.to_csc().expect("3d laplacian assembly cannot fail")
}

/// Banded SPD matrix of semi-bandwidth `band` with a dense band and a
/// dominant diagonal — a stand-in for shell/buckling structural problems
/// (large, regular supernodes). Lower storage.
pub fn banded_spd(n: usize, band: usize, seed: u64) -> CscMatrix {
    assert!(band >= 1 && band < n, "need 1 <= band < n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(n, n, n * (band + 1));
    for j in 0..n {
        let hi = (j + band).min(n - 1);
        let mut colsum = 0.0;
        for i in (j + 1)..=hi {
            let v = -rng.random_range(0.1..1.0);
            t.push(i, j, v);
            colsum += v.abs();
        }
        // Row sum bound: at most `band` entries on either side, each < 1.
        t.push(j, j, colsum + band as f64 + 1.0);
    }
    t.to_csc().expect("banded assembly cannot fail")
}

/// Irregular circuit-like SPD matrix: a sparse random graph with a few
/// high-degree "rail" hubs, like the Jacobians of circuit and power-grid
/// simulations (§1.2). Produces small, irregular supernodes — the regime
/// where the paper says CHOLMOD-style supernodal code underperforms.
/// Lower storage.
pub fn circuit_like(n: usize, avg_degree: usize, n_hubs: usize, seed: u64) -> CscMatrix {
    circuit_like_spanned(n, avg_degree, n_hubs, 0, seed)
}

/// As [`circuit_like`], but random connections are limited to a span of
/// `span` positions (0 = unlimited). Realistic circuit topologies are
/// mostly local (components connect to near neighbours on the board)
/// with a few global rails; locality keeps fill low under RCM, matching
/// the low-fill, small-supernode profile of matrices like `gyro` in the
/// paper's Table 2.
pub fn circuit_like_spanned(
    n: usize,
    avg_degree: usize,
    n_hubs: usize,
    span: usize,
    seed: u64,
) -> CscMatrix {
    assert!(n >= 4, "matrix too small");
    let span = if span == 0 { n } else { span };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(n, n, n * (avg_degree + 2));
    let mut rowsum = vec![0.0f64; n];
    let n_edges = n * avg_degree / 2;
    let mut seen = std::collections::HashSet::with_capacity(n_edges * 2);
    let mut added = 0usize;
    // Local, short-range connections (component chains).
    for i in 1..n {
        let j = i - 1 - rng.random_range(0..(i.min(4)));
        if seen.insert((i, j)) {
            let v = -rng.random_range(0.2..1.0);
            t.push(i, j, v);
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
            added += 1;
        }
    }
    // Random connections within the locality span.
    let mut attempts = 0usize;
    while added < n_edges && attempts < 50 * n_edges {
        attempts += 1;
        let a = rng.random_range(0..n);
        let d = rng.random_range(1..=span.min(n - 1));
        let b = if a >= d { a - d } else { a + d };
        if a == b || b >= n {
            continue;
        }
        let (i, j) = if a > b { (a, b) } else { (b, a) };
        if seen.insert((i, j)) {
            let v = -rng.random_range(0.05..0.5);
            t.push(i, j, v);
            rowsum[i] += v.abs();
            rowsum[j] += v.abs();
            added += 1;
        }
    }
    // Hubs: connect a few nodes (voltage rails) to many others.
    for h in 0..n_hubs {
        let hub = (h * n) / n_hubs.max(1);
        for _ in 0..(n / 50).max(4) {
            let other = rng.random_range(0..n);
            if other == hub {
                continue;
            }
            let (i, j) = if other > hub {
                (other, hub)
            } else {
                (hub, other)
            };
            if seen.insert((i, j)) {
                let v = -rng.random_range(0.05..0.3);
                t.push(i, j, v);
                rowsum[i] += v.abs();
                rowsum[j] += v.abs();
            }
        }
    }
    for (i, &rs) in rowsum.iter().enumerate() {
        t.push(i, i, rs + 1.0);
    }
    t.to_csc().expect("circuit assembly cannot fail")
}

/// Random sparse SPD matrix with roughly `avg_degree` off-diagonal
/// entries per row, diagonally dominant. Lower storage.
pub fn random_spd(n: usize, avg_degree: usize, seed: u64) -> CscMatrix {
    circuit_like(n, avg_degree, 0, seed)
}

/// Random lower-triangular matrix with unit-scaled diagonal, for
/// triangular-solve tests. Each column gets ~`extra_per_col` off-diagonal
/// entries below the diagonal. Well conditioned by construction.
pub fn random_lower_triangular(n: usize, extra_per_col: usize, seed: u64) -> CscMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(n, n, n * (extra_per_col + 1));
    for j in 0..n {
        t.push(j, j, 1.0 + rng.random_range(0.0..1.0));
        let below = n - 1 - j;
        let k = extra_per_col.min(below);
        let mut used = std::collections::HashSet::new();
        let mut placed = 0;
        while placed < k {
            let i = j + 1 + rng.random_range(0..below);
            if used.insert(i) {
                t.push(
                    i,
                    j,
                    rng.random_range(-0.5..0.5) / (extra_per_col.max(1) as f64),
                );
                placed += 1;
            }
        }
    }
    t.to_csc().expect("lower-triangular assembly cannot fail")
}

/// Tridiagonal SPD matrix (the smallest interesting banded case).
pub fn tridiagonal_spd(n: usize) -> CscMatrix {
    banded_spd(n, 1, 0)
}

/// Block-banded SPD matrix: nodes grouped into dense blocks of size
/// `block` (like the multiple degrees of freedom per mesh node of
/// shell/structural FEM problems), with banded coupling between
/// adjacent blocks. The factor's columns nest inside each block, giving
/// *natural supernodes* of width ~`block` — the structure that makes
/// supernodal factorization pay off on matrices like cbuckle.
pub fn blocked_banded_spd(
    n_blocks: usize,
    block: usize,
    band_blocks: usize,
    seed: u64,
) -> CscMatrix {
    assert!(block >= 1 && n_blocks >= 2 && band_blocks >= 1);
    let n = n_blocks * block;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(n, n, n * block * (band_blocks + 1));
    let mut rowsum = vec![0.0f64; n];
    for bj in 0..n_blocks {
        let hi = (bj + band_blocks).min(n_blocks - 1);
        for bi in bj..=hi {
            // Dense coupling block (bi, bj); lower storage only.
            for cj in 0..block {
                let j = bj * block + cj;
                for ci in 0..block {
                    let i = bi * block + ci;
                    if i <= j {
                        continue;
                    }
                    let v = -rng.random_range(0.05..0.5);
                    t.push(i, j, v);
                    rowsum[i] += v.abs();
                    rowsum[j] += v.abs();
                }
            }
        }
    }
    for (i, &rs) in rowsum.iter().enumerate() {
        t.push(i, i, rs + 1.0);
    }
    t.to_csc().expect("block-banded assembly cannot fail")
}

/// 2-D convection–diffusion operator on an `nx x ny` grid with upwind
/// discretization of the convection term — the canonical **unsymmetric**
/// CFD workload for sparse LU. `peclet` scales the convection strength
/// (0 recovers the symmetric Laplacian; larger values skew the stencil
/// harder). The matrix is stored **full** (both triangles) and kept
/// strictly diagonally dominant so statically pivoted (diagonal) LU is
/// numerically safe, mirroring how the SPD generators guarantee
/// factorizability.
pub fn convection_diffusion_2d(nx: usize, ny: usize, peclet: f64, seed: u64) -> CscMatrix {
    assert!(nx >= 2 && ny >= 2, "grid must be at least 2x2");
    assert!(peclet >= 0.0, "peclet must be non-negative");
    let n = nx * ny;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize| y * nx + x;
    let mut t = TripletMatrix::with_capacity(n, n, n * 5);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            // Per-node flow direction jitter keeps the pattern
            // structurally unsymmetric in value but symmetric in shape.
            let cx = peclet * (0.6 + 0.4 * rng.random_range(0.0..1.0));
            let cy = peclet * (0.3 + 0.3 * rng.random_range(0.0..1.0));
            let mut off_sum = 0.0;
            // Upwind: the coefficient against the flow (west/south) is
            // strengthened by the convection term; the downstream
            // (east/north) coefficient stays diffusive.
            if x > 0 {
                let w = 1.0 + cx;
                t.push(i, idx(x - 1, y), -w);
                off_sum += w;
            }
            if x + 1 < nx {
                t.push(i, idx(x + 1, y), -1.0);
                off_sum += 1.0;
            }
            if y > 0 {
                let w = 1.0 + cy;
                t.push(i, idx(x, y - 1), -w);
                off_sum += w;
            }
            if y + 1 < ny {
                t.push(i, idx(x, y + 1), -1.0);
                off_sum += 1.0;
            }
            // Strict row-wise diagonal dominance.
            t.push(i, i, off_sum + 1.0 + 0.1 * rng.random_range(0.0..1.0));
        }
    }
    t.to_csc()
        .expect("convection-diffusion assembly cannot fail")
}

/// Unsymmetric circuit-style matrix: the sparse graph of
/// [`circuit_like_spanned`] with **direction-dependent couplings**
/// (like the Jacobians of circuits with controlled sources or
/// transistors, where `dI_i/dV_j != dI_j/dV_i`), stored full. The
/// pattern is structurally symmetric (both `(i,j)` and `(j,i)` are
/// stored) but the values are not; the diagonal dominates each row so
/// static pivoting is safe.
pub fn circuit_unsym(n: usize, avg_degree: usize, n_hubs: usize, seed: u64) -> CscMatrix {
    assert!(n >= 2, "matrix too small");
    let mut rng = StdRng::seed_from_u64(seed);
    let lower = circuit_like(n, avg_degree, n_hubs, seed);
    let mut t = TripletMatrix::with_capacity(n, n, 2 * lower.nnz());
    let mut rowsum = vec![0.0f64; n];
    for j in 0..n {
        for (i, v) in lower.col_iter(j) {
            if i == j {
                continue;
            }
            // Forward and backward conductances differ.
            let asym = rng.random_range(0.3..1.0);
            let (f, b) = (v, v * asym);
            t.push(i, j, f);
            t.push(j, i, b);
            rowsum[i] += f.abs();
            rowsum[j] += b.abs();
        }
    }
    for (i, &rs) in rowsum.iter().enumerate() {
        t.push(i, i, rs + 1.0 + 0.1 * rng.random_range(0.0..1.0));
    }
    t.to_csc()
        .expect("unsymmetric circuit assembly cannot fail")
}

/// Random square unsymmetric matrix with ~`extra_per_col` off-diagonal
/// entries per column at arbitrary positions, strictly diagonally
/// dominant by rows. The pattern is generally **structurally
/// unsymmetric** — the stress case for symbolic LU.
pub fn random_unsym(n: usize, extra_per_col: usize, seed: u64) -> CscMatrix {
    assert!(n >= 1, "empty matrix");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(n, n, n * (extra_per_col + 1));
    let mut rowsum = vec![0.0f64; n];
    for j in 0..n {
        let mut used = std::collections::HashSet::new();
        used.insert(j);
        let k = extra_per_col.min(n - 1);
        let mut placed = 0;
        while placed < k {
            let i = rng.random_range(0..n);
            if used.insert(i) {
                let v = rng.random_range(-1.0..1.0);
                t.push(i, j, v);
                rowsum[i] += v.abs();
                placed += 1;
            }
        }
    }
    for (i, &rs) in rowsum.iter().enumerate() {
        t.push(i, i, rs + 1.0 + rng.random_range(0.0..1.0));
    }
    t.to_csc().expect("random unsymmetric assembly cannot fail")
}

/// Circuit-style matrix with **structurally zero diagonal entries** —
/// the matrices Sympiler's static-pivot contract rejects without a
/// pre-pivot (circuit Jacobians with ideal voltage sources, where a
/// branch-current unknown has no self-term). Built as `P·A` for a
/// diagonally dominant [`circuit_unsym`] `A` and a pairwise row swap
/// `P` over non-adjacent node pairs: each swapped pair leaves both its
/// diagonal positions structurally empty, and a maximum-transversal /
/// weighted-matching pre-pivot can restore a (dominant) diagonal
/// exactly by undoing the swaps — so the pre-pivoted factorization is
/// as well-conditioned as the underlying circuit matrix. Roughly half
/// the rows move (`~n/4` swapped pairs).
pub fn circuit_zero_diag(n: usize, avg_degree: usize, n_hubs: usize, seed: u64) -> CscMatrix {
    assert!(n >= 8, "matrix too small to scramble");
    let a = circuit_unsym(n, avg_degree, n_hubs, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_d1a6);
    let mut rowp: Vec<usize> = (0..n).collect();
    let mut used = vec![false; n];
    let target = n / 4;
    let mut swapped = 0usize;
    let mut attempts = 0usize;
    while swapped < target && attempts < 40 * n {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j || used[i] || used[j] {
            continue;
        }
        // Swapping rows i and j zeroes both diagonals iff neither
        // coupling entry exists (the pattern is structurally
        // symmetric, so one find suffices — checked both ways anyway).
        if a.find(i, j).is_some() || a.find(j, i).is_some() {
            continue;
        }
        rowp.swap(i, j);
        used[i] = true;
        used[j] = true;
        swapped += 1;
    }
    assert!(swapped > 0, "no swappable pair found — graph too dense");
    crate::ops::permute_rows(&a, &rowp).expect("pairwise swaps form a permutation")
}

/// Saddle-point (KKT) system `[[A, Bᵀ], [B, 0]]` with **interleaved**
/// unknowns: `m` primal variables with a diagonally dominant
/// unsymmetric `A` block, and `k` constraints whose `2×1` coupling
/// blocks tie constraint `c` to a dedicated primal pair — the
/// canonical optimization/incompressible-flow structure whose
/// constraint block has **no diagonal at all**. Constraint `c` sits at
/// index `3c`, *before* its partners at `3c+1` and `3c+2` (a natural
/// elimination order interleaves multipliers with the variables they
/// constrain), so its column is entirely sub-diagonal: statically
/// pivoted LU hits a hard zero at the very first constraint column —
/// fill-in cannot rescue it. A maximum transversal pairs each
/// constraint with one of its two primal partners (and the displaced
/// primal column with the constraint row), after which the
/// factorization goes through. Requires `2k ≤ m` so the coupling pairs
/// are disjoint.
pub fn saddle_point_2x2(m: usize, k: usize, seed: u64) -> CscMatrix {
    assert!(k >= 1 && 2 * k <= m, "need 1 <= k and 2k <= m");
    let n = m + k;
    let mut rng = StdRng::seed_from_u64(seed);
    // Global index maps: constraint c -> 3c; primal slot t -> its
    // global index (the first 2k slots are the constraint partners).
    let con = |c: usize| 3 * c;
    let prim = |t: usize| {
        if t < 2 * k {
            3 * (t / 2) + 1 + (t % 2)
        } else {
            t + k
        }
    };
    let mut t = TripletMatrix::with_capacity(n, n, m * 5 + 4 * k);
    let mut rowsum = vec![0.0f64; n];
    // A block: sparse unsymmetric couplings among the primal unknowns.
    for jt in 0..m {
        let j = prim(jt);
        let mut used = std::collections::HashSet::new();
        used.insert(jt);
        let mut placed = 0usize;
        while placed < 3.min(m - 1) {
            let it = rng.random_range(0..m);
            if used.insert(it) {
                let i = prim(it);
                let v = rng.random_range(-1.0..1.0);
                t.push(i, j, v);
                rowsum[i] += v.abs();
                placed += 1;
            }
        }
    }
    // B / Bᵀ blocks: constraint c couples primal slots 2c, 2c+1
    // (global indices 3c+1, 3c+2, right after the constraint).
    for c in 0..k {
        for dx in 0..2usize {
            let p = prim(2 * c + dx);
            let w = 1.0 + rng.random_range(0.0..1.0);
            t.push(con(c), p, w); // B
            let wt = 1.0 + rng.random_range(0.0..1.0);
            t.push(p, con(c), wt); // Bᵀ (values differ: unsymmetric)
            rowsum[p] += wt;
        }
    }
    // Dominant primal diagonal (covers A-row sums and Bᵀ couplings).
    for it in 0..m {
        let i = prim(it);
        t.push(i, i, rowsum[i] + 2.0 + rng.random_range(0.0..1.0));
    }
    // Constraint rows get no diagonal: the zero block.
    t.to_csc().expect("saddle-point assembly cannot fail")
}

/// Geometric nested-dissection ordering for an `nx x ny` grid (node
/// `(x, y)` has index `y * nx + x`, matching [`grid2d_laplacian`]).
/// Returns `perm` with `perm[new] = old`, suitable for
/// `ops::permute_sym`.
///
/// Real sparse-direct workflows order FEM/grid systems with nested
/// dissection (METIS) or AMD; separators then form the large, dense
/// supernodes that supernodal factorization exploits. For generated
/// grids the dissection is computable directly from the geometry.
pub fn grid2d_nd_perm(nx: usize, ny: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(nx * ny);
    nd2d_rec(0, nx, 0, ny, nx, &mut out);
    debug_assert_eq!(out.len(), nx * ny);
    out
}

fn nd2d_rec(x0: usize, x1: usize, y0: usize, y1: usize, nx: usize, out: &mut Vec<usize>) {
    let w = x1 - x0;
    let h = y1 - y0;
    if w == 0 || h == 0 {
        return;
    }
    // Small regions: natural order.
    if w * h <= 16 {
        for y in y0..y1 {
            for x in x0..x1 {
                out.push(y * nx + x);
            }
        }
        return;
    }
    if w >= h {
        // Vertical separator column at the midpoint.
        let xm = x0 + w / 2;
        nd2d_rec(x0, xm, y0, y1, nx, out);
        nd2d_rec(xm + 1, x1, y0, y1, nx, out);
        for y in y0..y1 {
            out.push(y * nx + xm);
        }
    } else {
        let ym = y0 + h / 2;
        nd2d_rec(x0, x1, y0, ym, nx, out);
        nd2d_rec(x0, x1, ym + 1, y1, nx, out);
        for x in x0..x1 {
            out.push(ym * nx + x);
        }
    }
}

/// Geometric nested-dissection ordering for an `nx x ny x nz` grid
/// (node `(x, y, z)` has index `(z * ny + y) * nx + x`, matching
/// [`grid3d_laplacian`]).
pub fn grid3d_nd_perm(nx: usize, ny: usize, nz: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(nx * ny * nz);
    nd3d_rec([0, 0, 0], [nx, ny, nz], [nx, ny], &mut out);
    debug_assert_eq!(out.len(), nx * ny * nz);
    out
}

fn nd3d_rec(lo: [usize; 3], hi: [usize; 3], dims: [usize; 2], out: &mut Vec<usize>) {
    let ext = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
    if ext.contains(&0) {
        return;
    }
    let idx = |x: usize, y: usize, z: usize| (z * dims[1] + y) * dims[0] + x;
    if ext[0] * ext[1] * ext[2] <= 32 {
        for z in lo[2]..hi[2] {
            for y in lo[1]..hi[1] {
                for x in lo[0]..hi[0] {
                    out.push(idx(x, y, z));
                }
            }
        }
        return;
    }
    // Split the longest axis.
    let axis = (0..3).max_by_key(|&a| ext[a]).unwrap();
    let mid = lo[axis] + ext[axis] / 2;
    let (mut hi_a, mut lo_b) = (hi, lo);
    hi_a[axis] = mid;
    lo_b[axis] = mid + 1;
    nd3d_rec(lo, hi_a, dims, out);
    nd3d_rec(lo_b, hi, dims, out);
    // Separator plane.
    let (mut s_lo, mut s_hi) = (lo, hi);
    s_lo[axis] = mid;
    s_hi[axis] = mid + 1;
    for z in s_lo[2]..s_hi[2] {
        for y in s_lo[1]..s_hi[1] {
            for x in s_lo[0]..s_hi[0] {
                out.push(idx(x, y, z));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn grid2d_is_spd_shaped() {
        let a = grid2d_laplacian(5, 4, false, 7);
        assert_eq!(a.n_rows(), 20);
        assert!(a.is_lower_storage());
        // Diagonal dominance implies SPD for symmetric matrices.
        let full = ops::symmetrize_from_lower(&a).unwrap();
        for j in 0..full.n_cols() {
            let diag = full.get(j, j);
            let off: f64 = full
                .col_iter(j)
                .filter(|&(i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "column {j} not diagonally dominant");
        }
    }

    #[test]
    fn grid2d_nine_point_has_more_entries() {
        let five = grid2d_laplacian(6, 6, false, 1);
        let nine = grid2d_laplacian(6, 6, true, 1);
        assert!(nine.nnz() > five.nnz());
    }

    #[test]
    fn grid2d_interior_node_has_four_neighbors() {
        let a = grid2d_laplacian(5, 5, false, 3);
        let full = ops::symmetrize_from_lower(&a).unwrap();
        // node (2,2) = 12 is interior
        assert_eq!(full.col_nnz(12), 5); // diagonal + 4 neighbours
    }

    #[test]
    fn grid3d_shapes() {
        let a = grid3d_laplacian(3, 3, 3, 5);
        assert_eq!(a.n_rows(), 27);
        assert!(a.is_lower_storage());
        let full = ops::symmetrize_from_lower(&a).unwrap();
        // center node 13 has 6 neighbours
        assert_eq!(full.col_nnz(13), 7);
    }

    #[test]
    fn banded_has_expected_band() {
        let a = banded_spd(10, 3, 1);
        for j in 0..10 {
            for &i in a.col_rows(j) {
                assert!(i >= j && i <= j + 3, "entry ({i},{j}) outside band");
            }
            assert_eq!(a.col_rows(j)[0], j, "diagonal present");
        }
        // interior columns are full-band
        assert_eq!(a.col_nnz(0), 4);
        assert_eq!(a.col_nnz(9), 1);
    }

    #[test]
    fn banded_diagonally_dominant() {
        let a = banded_spd(30, 4, 9);
        let full = ops::symmetrize_from_lower(&a).unwrap();
        for j in 0..30 {
            let diag = full.get(j, j);
            let off: f64 = full
                .col_iter(j)
                .filter(|&(i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off);
        }
    }

    #[test]
    fn circuit_like_is_connected_enough_and_dominant() {
        let a = circuit_like(200, 4, 3, 11);
        assert!(a.is_lower_storage());
        assert!(a.nnz() >= 200 + 200 * 2, "expected edges + diagonal");
        let full = ops::symmetrize_from_lower(&a).unwrap();
        for j in 0..200 {
            let diag = full.get(j, j);
            let off: f64 = full
                .col_iter(j)
                .filter(|&(i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "column {j} not dominant");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            grid2d_laplacian(6, 5, true, 42),
            grid2d_laplacian(6, 5, true, 42)
        );
        assert_eq!(banded_spd(20, 3, 42), banded_spd(20, 3, 42));
        assert_eq!(circuit_like(100, 4, 2, 42), circuit_like(100, 4, 2, 42));
        assert_ne!(banded_spd(20, 3, 1), banded_spd(20, 3, 2));
    }

    #[test]
    fn spanned_circuit_is_local() {
        let a = circuit_like_spanned(400, 4, 0, 16, 9);
        let mut max_span = 0usize;
        for j in 0..400 {
            for &i in a.col_rows(j) {
                if i != j {
                    max_span = max_span.max(i - j);
                }
            }
        }
        assert!(
            max_span <= 16,
            "edges must respect the span, got {max_span}"
        );
        // Unlimited span reaches farther.
        let b = circuit_like_spanned(400, 4, 0, 0, 9);
        let mut far = 0usize;
        for j in 0..400 {
            for &i in b.col_rows(j) {
                if i != j {
                    far = far.max(i - j);
                }
            }
        }
        assert!(far > 16);
    }

    #[test]
    fn blocked_banded_shape_and_dominance() {
        let a = blocked_banded_spd(8, 4, 1, 3);
        assert_eq!(a.n_cols(), 32);
        assert!(a.is_lower_storage());
        let full = ops::symmetrize_from_lower(&a).unwrap();
        for j in 0..32 {
            let diag = full.get(j, j);
            let off: f64 = full
                .col_iter(j)
                .filter(|&(i, _)| i != j)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "column {j} not dominant");
        }
        // Within-block coupling is dense: the first block's first
        // column touches all rows of its own and the next block.
        assert_eq!(a.col_nnz(0), 2 * 4);
    }

    #[test]
    fn nd2d_perm_is_permutation() {
        let p = grid2d_nd_perm(13, 9);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..13 * 9).collect::<Vec<_>>());
    }

    #[test]
    fn nd2d_top_separator_comes_last() {
        let (nx, ny) = (9usize, 9usize);
        let p = grid2d_nd_perm(nx, ny);
        // The last `ny` entries are the vertical midline x = nx/2.
        let sep: Vec<usize> = p[p.len() - ny..].to_vec();
        for &old in &sep {
            assert_eq!(old % nx, nx / 2, "top separator must be the midline");
        }
    }

    #[test]
    fn nd3d_perm_is_permutation() {
        let p = grid3d_nd_perm(6, 5, 4);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn nd_ordering_reduces_grid_fill_vs_natural() {
        // Compare fill under natural vs ND ordering on a 2-D grid.
        let (nx, ny) = (24usize, 24usize);
        let a = grid2d_laplacian(nx, ny, false, 3);
        let full = ops::symmetrize_from_lower(&a).unwrap();
        let nd = grid2d_nd_perm(nx, ny);
        let a_nd = ops::extract_lower(&ops::permute_sym(&full, &nd).unwrap());
        // Use the public symbolic tools from this crate's tests via a
        // quick dense symbolic factorization.
        let fill = |m: &CscMatrix| {
            let n = m.n_cols();
            let mut pat = vec![vec![false; n]; n];
            for j in 0..n {
                for &i in m.col_rows(j) {
                    pat[j][i] = true;
                }
            }
            for j in 0..n {
                let rows: Vec<usize> = (j + 1..n).filter(|&i| pat[j][i]).collect();
                if let Some(&f) = rows.first() {
                    for &k in &rows[1..] {
                        pat[f][k] = true;
                    }
                }
            }
            pat.iter()
                .map(|r| r.iter().filter(|&&b| b).count())
                .sum::<usize>()
        };
        let natural = fill(&a);
        let dissected = fill(&a_nd);
        assert!(
            dissected < natural,
            "nested dissection must reduce fill: {dissected} vs {natural}"
        );
    }

    fn assert_row_diag_dominant(a: &CscMatrix) {
        let n = a.n_cols();
        let mut diag = vec![0.0f64; n];
        let mut off = vec![0.0f64; n];
        for j in 0..n {
            for (i, v) in a.col_iter(j) {
                if i == j {
                    diag[i] = v.abs();
                } else {
                    off[i] += v.abs();
                }
            }
        }
        for i in 0..n {
            assert!(
                diag[i] > off[i],
                "row {i} not dominant: {} <= {}",
                diag[i],
                off[i]
            );
        }
    }

    #[test]
    fn convection_diffusion_is_unsymmetric_and_dominant() {
        let a = convection_diffusion_2d(7, 6, 1.5, 3);
        assert_eq!(a.n_cols(), 42);
        assert!(
            !ops::is_symmetric(&a, 1e-12),
            "upwinding must break symmetry"
        );
        assert_row_diag_dominant(&a);
        // Zero peclet recovers a symmetric operator up to the diagonal
        // jitter (off-diagonals are the plain Laplacian stencil).
        let sym = convection_diffusion_2d(7, 6, 0.0, 3);
        for j in 0..42 {
            for (i, v) in sym.col_iter(j) {
                if i != j {
                    assert!((v - sym.get(j, i)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn circuit_unsym_shape_and_dominance() {
        let a = circuit_unsym(80, 4, 2, 5);
        assert!(a.is_square());
        assert!(!ops::is_symmetric(&a, 1e-12));
        assert_row_diag_dominant(&a);
        // Structurally symmetric: (i,j) stored iff (j,i) stored.
        for j in 0..80 {
            for &i in a.col_rows(j) {
                assert!(a.find(j, i).is_some(), "missing transpose entry ({j},{i})");
            }
        }
        assert_eq!(circuit_unsym(80, 4, 2, 5), circuit_unsym(80, 4, 2, 5));
    }

    #[test]
    fn random_unsym_has_full_diagonal() {
        let a = random_unsym(50, 3, 11);
        assert_row_diag_dominant(&a);
        for j in 0..50 {
            assert!(a.find(j, j).is_some(), "diagonal missing at {j}");
        }
        assert_eq!(random_unsym(50, 3, 11), random_unsym(50, 3, 11));
        assert_ne!(random_unsym(50, 3, 11), random_unsym(50, 3, 12));
    }

    #[test]
    fn random_lower_triangular_shape() {
        let l = random_lower_triangular(50, 3, 4);
        assert!(l.is_lower_triangular_with_diag());
        assert!(l.nnz() >= 50);
        for j in 0..50 {
            assert!(l.get(j, j) >= 1.0, "diagonal must be >= 1");
        }
    }

    #[test]
    fn tridiagonal_shape() {
        let a = tridiagonal_spd(6);
        assert_eq!(a.nnz(), 6 + 5);
    }

    #[test]
    fn circuit_zero_diag_has_structural_zero_diagonals() {
        let a = circuit_zero_diag(100, 4, 2, 3);
        let zeros = ops::structurally_zero_diagonals(&a);
        assert!(zeros > 0, "generator must produce zero diagonals");
        assert!(zeros.is_multiple_of(2), "rows move in disjoint pairs");
        assert!(zeros <= 100 / 2, "at most n/4 pairs swap");
        // Same pattern family as the source circuit: the row
        // permutation preserves nnz and column layout.
        let src = circuit_unsym(100, 4, 2, 3);
        assert_eq!(a.nnz(), src.nnz());
        assert_eq!(a.col_ptr(), src.col_ptr());
        assert_eq!(
            circuit_zero_diag(100, 4, 2, 3),
            circuit_zero_diag(100, 4, 2, 3)
        );
    }

    #[test]
    fn saddle_point_shape_and_zero_block() {
        let a = saddle_point_2x2(30, 6, 1);
        assert_eq!(a.n_cols(), 36);
        assert!(a.is_square());
        // Exactly the k constraint columns miss their diagonal.
        assert_eq!(ops::structurally_zero_diagonals(&a), 6);
        for c in 0..6 {
            let jc = 3 * c;
            assert!(a.find(jc, jc).is_none(), "zero block must stay zero");
            // Each constraint couples its primal pair, both ways, and
            // the partners sit right after it (entirely sub-diagonal
            // constraint column: static pivoting must hit a hard zero).
            for dx in 1..=2usize {
                assert!(a.find(jc, jc + dx).is_some(), "B entry");
                assert!(a.find(jc + dx, jc).is_some(), "Bt entry");
            }
            assert!(
                a.col_rows(jc).iter().all(|&i| i > jc),
                "constraint column {jc} must be entirely sub-diagonal"
            );
        }
        // Primal rows keep a dominant diagonal.
        let mut diag = vec![0.0f64; 36];
        let mut off = vec![0.0f64; 36];
        for j in 0..36 {
            for (i, v) in a.col_iter(j) {
                if i == j {
                    diag[i] = v.abs();
                } else {
                    off[i] += v.abs();
                }
            }
        }
        for j in 0..36 {
            if a.find(j, j).is_some() {
                assert!(diag[j] > off[j], "primal row {j} not dominant");
            }
        }
        assert_eq!(saddle_point_2x2(30, 6, 1), saddle_point_2x2(30, 6, 1));
    }

    #[test]
    #[should_panic(expected = "2k <= m")]
    fn saddle_point_rejects_overlapping_pairs() {
        saddle_point_2x2(5, 3, 0);
    }
}
