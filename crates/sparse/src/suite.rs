//! The benchmark matrix suite — laptop-scale stand-ins for the eleven
//! SuiteSparse matrices of the paper's Table 2.
//!
//! We cannot download the SuiteSparse collection offline, so each matrix
//! is replaced by a synthetic generator from the same structural family
//! and regime (see `DESIGN.md` §2). Matrices are sorted by problem ID
//! like the paper's table, and the suite deliberately covers both
//! regimes the evaluation depends on:
//!
//! * **supernode-rich** problems — element-blocked banded operators
//!   (shell FEM: natural supernodes of one block width) and
//!   nested-dissection-ordered grid Laplacians (separators become wide
//!   dense supernodes), where VS-Block and supernodal baselines shine;
//! * **supernode-poor** problems — local circuit graphs and thin grids
//!   with small column counts, the paper's matrices 3, 4, 5, 7, where
//!   Sympiler skips VS-Block and CHOLMOD-style code underperforms.
//!
//! Grid problems are pre-ordered with geometric nested dissection at
//! generation time (real workflows order with METIS/AMD before
//! factoring); the benchmark harness applies RCM only to the families
//! that are not already ordered.

use crate::csc::CscMatrix;
use crate::{gen, ops};

/// A named benchmark problem: an SPD matrix in lower-triangle storage.
#[derive(Debug, Clone)]
pub struct SuiteProblem {
    /// Problem ID, 1-based like the paper's Table 2.
    pub id: usize,
    /// Stand-in name (suffix `_s` marks "synthetic stand-in").
    pub name: &'static str,
    /// The SuiteSparse matrix this stands in for.
    pub stands_in_for: &'static str,
    /// Structural family used for generation.
    pub family: &'static str,
    /// Whether the matrix is already fill-reducing-ordered (nested
    /// dissection / block order); if false, benchmarks apply RCM.
    pub preordered: bool,
    /// The matrix (SPD, lower-triangle storage).
    pub matrix: CscMatrix,
}

impl SuiteProblem {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Stored nonzeros of the lower triangle.
    pub fn nnz_lower(&self) -> usize {
        self.matrix.nnz()
    }

    /// Nonzeros of the full symmetric matrix (paper's Table 2 counts).
    pub fn nnz_full(&self) -> usize {
        2 * self.matrix.nnz() - self.n()
    }
}

/// Scale factor for the suite. `Test` is for unit/integration tests
/// (sub-second), `Bench` for the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Tiny matrices for fast unit/integration tests.
    Test,
    /// The benchmark-scale suite used by the figure/table binaries.
    Bench,
}

/// 2-D grid Laplacian pre-ordered with geometric nested dissection.
fn nd_grid2d(nx: usize, ny: usize, nine_point: bool, seed: u64) -> CscMatrix {
    let g = gen::grid2d_laplacian(nx, ny, nine_point, seed);
    let full = ops::symmetrize_from_lower(&g).expect("generator emits lower storage");
    let p = gen::grid2d_nd_perm(nx, ny);
    ops::extract_lower(&ops::permute_sym(&full, &p).expect("valid permutation"))
}

/// 3-D grid Laplacian pre-ordered with geometric nested dissection.
fn nd_grid3d(nx: usize, ny: usize, nz: usize, seed: u64) -> CscMatrix {
    let g = gen::grid3d_laplacian(nx, ny, nz, seed);
    let full = ops::symmetrize_from_lower(&g).expect("generator emits lower storage");
    let p = gen::grid3d_nd_perm(nx, ny, nz);
    ops::extract_lower(&ops::permute_sym(&full, &p).expect("valid permutation"))
}

/// Generate the full 11-problem suite at the given scale.
pub fn suite(scale: SuiteScale) -> Vec<SuiteProblem> {
    let s = match scale {
        SuiteScale::Test => 0,
        SuiteScale::Bench => 1,
    };
    let mk = |id: usize,
              name: &'static str,
              stands_in_for: &'static str,
              family: &'static str,
              preordered: bool,
              matrix: CscMatrix| SuiteProblem {
        id,
        name,
        stands_in_for,
        family,
        preordered,
        matrix,
    };
    vec![
        mk(
            1,
            "cbuckle_s",
            "cbuckle (shell buckling)",
            "blocked-banded",
            true,
            gen::blocked_banded_spd([50, 600][s], [4, 6][s], [3, 6][s], 101),
        ),
        mk(
            2,
            "pres_poisson_s",
            "Pres_Poisson (pressure Poisson FEM)",
            "grid3d-nd",
            true,
            nd_grid3d([6, 16][s], [6, 16][s], [6, 16][s], 102),
        ),
        mk(
            3,
            "gyro_s",
            "gyro (MEMS model reduction)",
            "circuit-local",
            false,
            gen::circuit_like_spanned([400, 3600][s], 6, 1, [16, 28][s], 103),
        ),
        mk(
            4,
            "gyro_k_s",
            "gyro_k (MEMS, stiffness)",
            "circuit-local",
            false,
            gen::circuit_like_spanned([400, 3600][s], 6, 1, [16, 28][s], 104),
        ),
        mk(
            5,
            "dubcova2_s",
            "Dubcova2 (2-D PDE)",
            "grid2d-nd-5pt",
            true,
            nd_grid2d([20, 80][s], [20, 80][s], false, 105),
        ),
        mk(
            6,
            "msc23052_s",
            "msc23052 (structural)",
            "blocked-banded",
            true,
            gen::blocked_banded_spd([60, 520][s], [4, 5][s], [2, 5][s], 106),
        ),
        mk(
            7,
            "thermomech_s",
            "thermomech_dM (thermal)",
            "grid2d-nd-thin",
            true,
            nd_grid2d([12, 36][s], [36, 400][s], false, 107),
        ),
        mk(
            8,
            "dubcova3_s",
            "Dubcova3 (2-D PDE, refined)",
            "grid2d-nd-9pt",
            true,
            nd_grid2d([20, 104][s], [20, 104][s], true, 108),
        ),
        mk(
            9,
            "parabolic_fem_s",
            "parabolic_fem (CFD, parabolic)",
            "grid2d-nd-5pt",
            true,
            nd_grid2d([22, 116][s], [22, 116][s], false, 109),
        ),
        mk(
            10,
            "ecology2_s",
            "ecology2 (2-D grid, ecology)",
            "grid2d-nd-5pt",
            true,
            nd_grid2d([24, 126][s], [24, 126][s], false, 110),
        ),
        mk(
            11,
            "tmt_sym_s",
            "tmt_sym (electromagnetics)",
            "grid2d-nd-9pt",
            true,
            nd_grid2d([22, 110][s], [22, 110][s], true, 111),
        ),
    ]
}

/// An unsymmetric benchmark problem for the LU subsystem: a square
/// matrix in **full** storage with a dominant diagonal (statically
/// pivotable).
#[derive(Debug, Clone)]
pub struct UnsymProblem {
    /// Problem ID, 1-based.
    pub id: usize,
    /// Stand-in name (suffix `_u` marks "unsymmetric synthetic").
    pub name: &'static str,
    /// Structural family used for generation.
    pub family: &'static str,
    /// True when the matrix has **structurally zero diagonal
    /// entries**: statically pivoted LU is a hard error without a
    /// pre-pivot (max transversal / weighted matching), which is
    /// exactly the scenario these problems exist to exercise.
    /// Consumers that pin `PrePivot::Off` must skip them.
    pub zero_diag: bool,
    /// The matrix (square, full storage).
    pub matrix: CscMatrix,
}

impl UnsymProblem {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.matrix.n_cols()
    }
}

/// The unsymmetric suite for the sparse LU experiments: the workload
/// classes the paper names as LU's home turf (§1.2) — circuit
/// simulation Jacobians and convection-dominated CFD operators — plus
/// a structurally unsymmetric stress case and two **zero-diagonal**
/// problems (circuit with voltage-source-like row scrambling, and a
/// saddle-point/KKT system) that only factor under a static pre-pivot.
pub fn unsym_suite(scale: SuiteScale) -> Vec<UnsymProblem> {
    let s = match scale {
        SuiteScale::Test => 0,
        SuiteScale::Bench => 1,
    };
    let mk =
        |id: usize, name: &'static str, family: &'static str, matrix: CscMatrix| UnsymProblem {
            id,
            name,
            family,
            zero_diag: false,
            matrix,
        };
    let mk_zd =
        |id: usize, name: &'static str, family: &'static str, matrix: CscMatrix| UnsymProblem {
            id,
            name,
            family,
            zero_diag: true,
            matrix,
        };
    vec![
        mk(
            1,
            "convdiff_mild_u",
            "convection-diffusion-2d",
            gen::convection_diffusion_2d([16, 64][s], [16, 64][s], 0.5, 201),
        ),
        mk(
            2,
            "convdiff_strong_u",
            "convection-diffusion-2d",
            gen::convection_diffusion_2d([20, 90][s], [12, 48][s], 3.0, 202),
        ),
        mk(
            3,
            "circuit_small_u",
            "circuit-unsym",
            gen::circuit_unsym([300, 2400][s], 4, 2, 203),
        ),
        mk(
            4,
            "circuit_rails_u",
            "circuit-unsym",
            gen::circuit_unsym([350, 3000][s], 5, 4, 204),
        ),
        mk(
            5,
            "scrambled_u",
            "random-unsym",
            gen::random_unsym([250, 2000][s], 4, 205),
        ),
        mk_zd(
            6,
            "circuit_zdiag_u",
            "circuit-zero-diag",
            gen::circuit_zero_diag([300, 2400][s], 4, 2, 206),
        ),
        mk_zd(
            7,
            "saddle_point_u",
            "saddle-point-2x2",
            gen::saddle_point_2x2([200, 1600][s], [36, 280][s], 207),
        ),
    ]
}

/// Fetch one suite problem by paper ID (1-based).
pub fn problem(id: usize, scale: SuiteScale) -> SuiteProblem {
    suite(scale)
        .into_iter()
        .find(|p| p.id == id)
        .unwrap_or_else(|| panic!("no suite problem with id {id}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn suite_has_eleven_sorted_problems() {
        let s = suite(SuiteScale::Test);
        assert_eq!(s.len(), 11);
        for (k, p) in s.iter().enumerate() {
            assert_eq!(p.id, k + 1);
        }
    }

    #[test]
    fn all_problems_are_spd_candidates() {
        for p in suite(SuiteScale::Test) {
            assert!(p.matrix.is_lower_storage(), "{} not lower storage", p.name);
            assert!(p.matrix.is_square());
            let full = ops::symmetrize_from_lower(&p.matrix).unwrap();
            for j in 0..full.n_cols() {
                let diag = full.get(j, j);
                let off: f64 = full
                    .col_iter(j)
                    .filter(|&(i, _)| i != j)
                    .map(|(_, v)| v.abs())
                    .sum();
                assert!(
                    diag > off,
                    "{}: column {j} not strictly diagonally dominant",
                    p.name
                );
            }
        }
    }

    #[test]
    fn suite_covers_both_supernode_regimes() {
        let s = suite(SuiteScale::Test);
        let families: Vec<&str> = s.iter().map(|p| p.family).collect();
        assert!(families.contains(&"blocked-banded"));
        assert!(families.contains(&"circuit-local"));
        assert!(families.iter().any(|f| f.starts_with("grid2d-nd")));
        assert!(families.iter().any(|f| f.starts_with("grid3d-nd")));
    }

    #[test]
    fn grid_problems_are_preordered_circuits_are_not() {
        for p in suite(SuiteScale::Test) {
            if p.family.starts_with("grid") || p.family == "blocked-banded" {
                assert!(p.preordered, "{}", p.name);
            } else {
                assert!(!p.preordered, "{}", p.name);
            }
        }
    }

    #[test]
    fn nnz_full_accounting() {
        for p in suite(SuiteScale::Test) {
            assert_eq!(p.nnz_full(), 2 * p.nnz_lower() - p.n());
        }
    }

    #[test]
    fn unsym_suite_is_statically_pivotable_except_zero_diag() {
        let s = unsym_suite(SuiteScale::Test);
        assert_eq!(s.len(), 7);
        for (k, p) in s.iter().enumerate() {
            assert_eq!(p.id, k + 1);
            assert!(p.matrix.is_square(), "{}", p.name);
            if p.zero_diag {
                // The pre-pivot showcase: structurally zero diagonals.
                assert!(
                    ops::structurally_zero_diagonals(&p.matrix) > 0,
                    "{}: zero_diag flag must match the pattern",
                    p.name
                );
                continue;
            }
            assert_eq!(
                ops::structurally_zero_diagonals(&p.matrix),
                0,
                "{}: unflagged problems keep a full diagonal",
                p.name
            );
            // Row-wise diagonal dominance (static pivoting safe).
            let n = p.n();
            let mut diag = vec![0.0f64; n];
            let mut off = vec![0.0f64; n];
            for j in 0..n {
                for (i, v) in p.matrix.col_iter(j) {
                    if i == j {
                        diag[i] = v.abs();
                    } else {
                        off[i] += v.abs();
                    }
                }
            }
            for i in 0..n {
                assert!(diag[i] > off[i], "{}: row {i} not dominant", p.name);
            }
        }
        // At least one problem is genuinely unsymmetric in structure.
        assert!(s.iter().any(|p| {
            (0..p.n()).any(|j| {
                p.matrix
                    .col_rows(j)
                    .iter()
                    .any(|&i| i != j && p.matrix.find(j, i).is_none())
            })
        }));
        // Both zero-diagonal families are present, at both scales.
        for scale in [SuiteScale::Test, SuiteScale::Bench] {
            let zd: Vec<&str> = unsym_suite(scale)
                .iter()
                .filter(|p| p.zero_diag)
                .map(|p| p.family)
                .collect();
            assert_eq!(zd, vec!["circuit-zero-diag", "saddle-point-2x2"]);
        }
    }

    #[test]
    fn problem_lookup() {
        let p = problem(3, SuiteScale::Test);
        assert_eq!(p.name, "gyro_s");
    }

    #[test]
    #[should_panic(expected = "no suite problem")]
    fn problem_lookup_out_of_range_panics() {
        problem(12, SuiteScale::Test);
    }
}
