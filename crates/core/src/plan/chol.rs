//! The executable Cholesky plan: a left-looking supernodal
//! factorization with **all symbolic work hoisted to compile time**.
//!
//! Compared to the CHOLMOD-like baseline
//! (`sympiler_solvers::SupernodalCholesky`), the plan's `factor`:
//!
//! * performs **no transpose** of `A` — assembly positions are
//!   precomputed source/destination index pairs (§4.2: "both the reach
//!   function and the matrix transpose operations are removed from the
//!   numeric code");
//! * walks **no descendant lists** — the update schedule, including
//!   `lo/hi` row windows and relative scatter indices, is precomputed
//!   per target supernode (the prune-set made executable);
//! * performs **no relative-index computation** — scatter maps are
//!   baked in;
//! * dispatches to **specialized unrolled kernels** for small blocks,
//!   chosen at compile time (§4.2's generated small dense sub-kernels).

use crate::inspector::{CholVIPruneInspector, CholVSBlockInspector};
use crate::report::{timed, SymbolicReport};
use sympiler_dense::small::potrf_small;
use sympiler_dense::{
    gemm_nt_sub, potrf_lower, trsm_right_lower_trans, trsv_lower, trsv_lower_trans,
};
use sympiler_graph::supernode::SupernodePartition;
use sympiler_graph::symbolic::SymbolicFactor;
use sympiler_sparse::CscMatrix;

/// Factorization error (mirrors the baseline error type; kept separate
/// so `sympiler-core` does not depend on `sympiler-solvers`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CholPlanError {
    /// Not positive definite at this column.
    NotPositiveDefinite { column: usize },
    /// The numeric input does not match the compiled pattern.
    PatternMismatch,
    /// Bad input shape/storage.
    BadInput(String),
}

impl std::fmt::Display for CholPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholPlanError::NotPositiveDefinite { column } => {
                write!(f, "matrix not positive definite at column {column}")
            }
            CholPlanError::PatternMismatch => write!(f, "pattern mismatch"),
            CholPlanError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for CholPlanError {}

/// One precomputed descendant update: subtract
/// `L_d(I, :) * L_d(J, :)^T` into the target panel through baked-in
/// scatter indices.
#[derive(Debug, Clone)]
struct UpdateOp {
    /// Source supernode.
    d: u32,
    /// Row-window of `d`'s row list: `I = rows[lo..]`, `J = rows[lo..hi]`.
    lo: u32,
    hi: u32,
    /// Offset into `scatter_pool`: `m = d_ld - lo` row positions in the
    /// target panel followed by `hi - lo` target column offsets.
    scatter_off: u32,
}

/// Per-supernode compiled schedule.
#[derive(Debug, Clone)]
struct SnSchedule {
    /// Assembly range into `asm_src`/`asm_dst`.
    asm_range: (u32, u32),
    /// Update range into `updates`.
    upd_range: (u32, u32),
    /// Kernel tier for the diagonal block.
    specialized: bool,
}

/// A compiled Cholesky factorization specialized to one pattern.
#[derive(Debug, Clone)]
pub struct CholPlan {
    n: usize,
    a_nnz: usize,
    /// Copy of the compiled pattern, checked on every `factor` call —
    /// the static-sparsity contract (§1.2) made enforceable. O(|A|)
    /// per check, negligible next to the factorization itself.
    a_col_ptr: Vec<usize>,
    a_row_idx: Vec<u32>,
    /// Elimination tree (carried into factors for sparse-RHS solves).
    parent: Vec<usize>,
    part: SupernodePartition,
    /// Panel row lists (`rows_ptr[s]..rows_ptr[s+1]`).
    rows_ptr: Vec<usize>,
    rows: Vec<u32>,
    /// Panel value offsets.
    val_ptr: Vec<usize>,
    /// Assembly maps: `panel_values[asm_dst[k]] = a_values[asm_src[k]]`.
    asm_src: Vec<u32>,
    asm_dst: Vec<u32>,
    /// Update schedule + scatter pool.
    updates: Vec<UpdateOp>,
    scatter_pool: Vec<u32>,
    schedule: Vec<SnSchedule>,
    /// Largest `m * ncols` of any update (GEMM scratch size).
    max_update_buf: usize,
    /// Largest diagonal block (TRSM scratch size).
    max_width: usize,
    /// Exact factorization flops (for Figure 7's GFLOP/s).
    flops: u64,
    /// Symbolic phase report (inspection timings, set sizes).
    report: SymbolicReport,
}

/// A numeric factor produced by [`CholPlan::factor`].
#[derive(Debug, Clone)]
pub struct CholFactor {
    n: usize,
    part: SupernodePartition,
    /// Elimination tree, kept for sparse-RHS solves: the pattern of the
    /// forward-solve solution is the union of etree paths from the
    /// nonzeros of `b` (the reach-set specialized to Cholesky factors).
    parent: Vec<usize>,
    rows_ptr: Vec<usize>,
    rows: Vec<u32>,
    val_ptr: Vec<usize>,
    values: Vec<f64>,
}

impl CholPlan {
    /// Compile a plan for the SPD matrix `a_lower` (lower storage).
    /// `max_width` caps supernode width (0 = unlimited); when
    /// `low_level` is set, small diagonal blocks use the specialized
    /// kernel tier.
    pub fn build(
        a_lower: &CscMatrix,
        max_width: usize,
        low_level: bool,
    ) -> Result<Self, CholPlanError> {
        if !a_lower.is_square() {
            return Err(CholPlanError::BadInput("matrix must be square".into()));
        }
        if !a_lower.is_lower_storage() {
            return Err(CholPlanError::BadInput(
                "matrix must be in lower-triangular storage".into(),
            ));
        }
        let n = a_lower.n_cols();
        let mut report = SymbolicReport::default();

        // --- Inspection (Table 1) ---
        let prune = timed(&mut report, "inspect: etree + row patterns", || {
            CholVIPruneInspector.inspect(a_lower)
        });
        let sym = &prune.symbolic;
        let block = timed(&mut report, "inspect: supernodes (block-set)", || {
            CholVSBlockInspector.inspect(sym, max_width)
        });
        let part = block.partition;
        report.set_size("nnz(A) lower", a_lower.nnz());
        report.set_size("nnz(L)", sym.l_nnz());
        report.set_size("supernodes", part.n_supernodes());

        // --- Layout ---
        let ns = part.n_supernodes();
        let mut rows_ptr = Vec::with_capacity(ns + 1);
        let mut rows: Vec<u32> = Vec::new();
        let mut val_ptr = Vec::with_capacity(ns + 1);
        rows_ptr.push(0usize);
        val_ptr.push(0usize);
        for s in 0..ns {
            let first = part.first_col[s];
            let width = part.width(s);
            let pat = sym.col_pattern(first);
            rows.extend(pat.iter().map(|&r| r as u32));
            rows_ptr.push(rows.len());
            val_ptr.push(val_ptr.last().unwrap() + pat.len() * width);
        }

        // --- Compile: assembly maps, update schedule, kernel choices ---
        let (asm_src, asm_dst, updates, scatter_pool, schedule, max_update_buf) =
            timed(&mut report, "compile: schedules + scatter maps", || {
                Self::compile_schedule(a_lower, sym, &part, &rows_ptr, &rows, low_level)
            });
        report.set_size("update ops", updates.len());
        report.set_size("scatter pool", scatter_pool.len());

        let max_width_actual = (0..ns).map(|s| part.width(s)).max().unwrap_or(0);
        let flops = sym.factor_flops();
        Ok(Self {
            n,
            a_nnz: a_lower.nnz(),
            a_col_ptr: a_lower.col_ptr().to_vec(),
            a_row_idx: a_lower.row_idx().iter().map(|&r| r as u32).collect(),
            parent: prune.symbolic.parent.clone(),
            part,
            rows_ptr,
            rows,
            val_ptr,
            asm_src,
            asm_dst,
            updates,
            scatter_pool,
            schedule,
            max_update_buf,
            max_width: max_width_actual,
            flops,
            report,
        })
    }

    #[allow(clippy::type_complexity)]
    fn compile_schedule(
        a_lower: &CscMatrix,
        sym: &SymbolicFactor,
        part: &SupernodePartition,
        rows_ptr: &[usize],
        rows: &[u32],
        low_level: bool,
    ) -> (
        Vec<u32>,
        Vec<u32>,
        Vec<UpdateOp>,
        Vec<u32>,
        Vec<SnSchedule>,
        usize,
    ) {
        let n = a_lower.n_cols();
        let ns = part.n_supernodes();
        let mut asm_src = Vec::with_capacity(a_lower.nnz());
        let mut asm_dst = Vec::with_capacity(a_lower.nnz());
        let mut updates: Vec<UpdateOp> = Vec::new();
        let mut scatter_pool: Vec<u32> = Vec::new();
        let mut schedule = Vec::with_capacity(ns);
        let mut max_update_buf = 0usize;

        // pos[row] = offset within the current target panel rows.
        let mut pos = vec![u32::MAX; n];
        // Symbolic replay of the descendant lists (same walk the
        // baseline does numerically; here it runs once, at compile
        // time).
        const NONE: usize = usize::MAX;
        let mut head = vec![NONE; ns];
        let mut next = vec![NONE; ns];
        let mut desc_ptr = vec![0usize; ns];

        for s in 0..ns {
            let first = part.first_col[s];
            let width = part.width(s);
            let s_end = first + width;
            let s_rows = &rows[rows_ptr[s]..rows_ptr[s + 1]];
            let ld = s_rows.len();
            for (r, &row) in s_rows.iter().enumerate() {
                pos[row as usize] = r as u32;
            }
            // Assembly map for A's columns in this supernode. The value
            // offset is relative to the panel base (val_ptr[s]).
            let asm_start = asm_src.len() as u32;
            for c in 0..width {
                let j = first + c;
                for (k, &i) in a_lower.col_rows(j).iter().enumerate() {
                    let src = a_lower.col_ptr()[j] + k;
                    let dst = c * ld + pos[i] as usize;
                    asm_src.push(src as u32);
                    asm_dst.push(dst as u32);
                }
            }
            let asm_end = asm_src.len() as u32;

            // Update schedule: replay the descendant lists.
            let upd_start = updates.len() as u32;
            let mut d = head[s];
            head[s] = NONE;
            while d != NONE {
                let d_next = next[d];
                let d_rows = &rows[rows_ptr[d]..rows_ptr[d + 1]];
                let d_ld = d_rows.len();
                let lo = desc_ptr[d];
                let mut hi = lo;
                while hi < d_ld && (d_rows[hi] as usize) < s_end {
                    hi += 1;
                }
                let m = d_ld - lo;
                let ncols = hi - lo;
                max_update_buf = max_update_buf.max(m * ncols);
                // Scatter map: m row positions then ncols column offsets.
                let scatter_off = scatter_pool.len() as u32;
                for &r in &d_rows[lo..] {
                    scatter_pool.push(pos[r as usize]);
                }
                for &r in &d_rows[lo..hi] {
                    scatter_pool.push((r as usize - first) as u32);
                }
                updates.push(UpdateOp {
                    d: d as u32,
                    lo: lo as u32,
                    hi: hi as u32,
                    scatter_off,
                });
                if hi < d_ld {
                    desc_ptr[d] = hi;
                    let owner = part.col_to_super[d_rows[hi] as usize];
                    next[d] = head[owner];
                    head[owner] = d;
                }
                d = d_next;
            }
            let upd_end = updates.len() as u32;

            if ld > width {
                desc_ptr[s] = width;
                let owner = part.col_to_super[s_rows[width] as usize];
                next[s] = head[owner];
                head[owner] = s;
            }
            schedule.push(SnSchedule {
                asm_range: (asm_start, asm_end),
                upd_range: (upd_start, upd_end),
                specialized: low_level && width <= 4,
            });
        }
        let _ = sym;
        (
            asm_src,
            asm_dst,
            updates,
            scatter_pool,
            schedule,
            max_update_buf,
        )
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Exact factorization flops for GFLOP/s reporting.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// The symbolic report (inspection timings, set sizes).
    pub fn report(&self) -> &SymbolicReport {
        &self.report
    }

    /// The supernode partition the plan compiled.
    pub fn partition(&self) -> &SupernodePartition {
        &self.part
    }

    /// Numeric factorization: pure loads/stores/flops over precomputed
    /// indices.
    pub fn factor(&self, a_lower: &CscMatrix) -> Result<CholFactor, CholPlanError> {
        if a_lower.n_cols() != self.n
            || a_lower.nnz() != self.a_nnz
            || a_lower.col_ptr() != self.a_col_ptr.as_slice()
            || !a_lower
                .row_idx()
                .iter()
                .zip(&self.a_row_idx)
                .all(|(&r, &c)| r as u32 == c)
        {
            return Err(CholPlanError::PatternMismatch);
        }
        let a_values = a_lower.values();
        let mut values = vec![0.0f64; *self.val_ptr.last().unwrap()];
        let mut w_buf = vec![0.0f64; self.max_update_buf];
        let mut diag_buf = vec![0.0f64; self.max_width * self.max_width];

        for s in 0..self.part.n_supernodes() {
            let sched = &self.schedule[s];
            let first = self.part.first_col[s];
            let width = self.part.width(s);
            let ld = self.rows_ptr[s + 1] - self.rows_ptr[s];
            let base = self.val_ptr[s];

            // Assembly: straight indexed copies.
            {
                let panel = &mut values[base..base + ld * width];
                let (a0, a1) = (sched.asm_range.0 as usize, sched.asm_range.1 as usize);
                for (&src, &dst) in self.asm_src[a0..a1].iter().zip(&self.asm_dst[a0..a1]) {
                    panel[dst as usize] = a_values[src as usize];
                }
            }

            // Descendant updates: GEMM + precomputed scatter.
            let (u0, u1) = (sched.upd_range.0 as usize, sched.upd_range.1 as usize);
            for upd in &self.updates[u0..u1] {
                let d = upd.d as usize;
                let d_ld = self.rows_ptr[d + 1] - self.rows_ptr[d];
                let d_width = self.part.width(d);
                let d_base = self.val_ptr[d];
                let lo = upd.lo as usize;
                let hi = upd.hi as usize;
                let m = d_ld - lo;
                let ncols = hi - lo;
                let w = &mut w_buf[..m * ncols];
                w.fill(0.0);
                let d_panel = &values[d_base..d_base + d_ld * d_width];
                gemm_nt_sub(
                    m,
                    ncols,
                    d_width,
                    &d_panel[lo..],
                    d_ld,
                    &d_panel[lo..],
                    d_ld,
                    w,
                    m,
                );
                let sc = upd.scatter_off as usize;
                let row_pos = &self.scatter_pool[sc..sc + m];
                let col_off = &self.scatter_pool[sc + m..sc + m + ncols];
                let panel = &mut values[base..base + ld * width];
                for (jj, &c) in col_off.iter().enumerate() {
                    let dst = &mut panel[c as usize * ld..(c as usize + 1) * ld];
                    let wcol = &w[jj * m..(jj + 1) * m];
                    for (&p, &wv) in row_pos[jj..].iter().zip(&wcol[jj..]) {
                        dst[p as usize] += wv;
                    }
                }
            }

            // Dense factorization with the compile-time kernel choice.
            {
                let panel = &mut values[base..base + ld * width];
                let res = if sched.specialized {
                    potrf_small(width, panel, ld)
                } else {
                    potrf_lower(width, panel, ld)
                };
                res.map_err(|c| CholPlanError::NotPositiveDefinite { column: first + c })?;
                if ld > width {
                    let diag = &mut diag_buf[..width * width];
                    for c in 0..width {
                        for r in c..width {
                            diag[c * width + r] = panel[c * ld + r];
                        }
                    }
                    trsm_right_lower_trans(ld - width, width, diag, width, &mut panel[width..], ld);
                }
            }
        }
        Ok(CholFactor {
            n: self.n,
            part: self.part.clone(),
            parent: self.parent.clone(),
            rows_ptr: self.rows_ptr.clone(),
            rows: self.rows.clone(),
            val_ptr: self.val_ptr.clone(),
            values,
        })
    }
}

impl CholFactor {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Extract the factor as CSC (verification / interop).
    pub fn to_csc(&self) -> CscMatrix {
        let mut t = sympiler_sparse::TripletMatrix::new(self.n, self.n);
        for s in 0..self.part.n_supernodes() {
            let first = self.part.first_col[s];
            let width = self.part.width(s);
            let rows = &self.rows[self.rows_ptr[s]..self.rows_ptr[s + 1]];
            let ld = rows.len();
            let base = self.val_ptr[s];
            for c in 0..width {
                for (r, &row) in rows.iter().enumerate().skip(c) {
                    t.push(row as usize, first + c, self.values[base + c * ld + r]);
                }
            }
        }
        t.to_csc().expect("panel extraction is structurally valid")
    }

    /// Forward solve `L y = x` in place.
    pub fn forward_solve(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "x length mismatch");
        for s in 0..self.part.n_supernodes() {
            let first = self.part.first_col[s];
            let width = self.part.width(s);
            let rows = &self.rows[self.rows_ptr[s]..self.rows_ptr[s + 1]];
            let ld = rows.len();
            let base = self.val_ptr[s];
            let panel = &self.values[base..base + ld * width];
            trsv_lower(width, panel, ld, &mut x[first..first + width]);
            for c in 0..width {
                let xc = x[first + c];
                if xc == 0.0 {
                    continue;
                }
                let col = &panel[c * ld + width..(c + 1) * ld];
                for (&row, &v) in rows[width..].iter().zip(col) {
                    x[row as usize] -= v * xc;
                }
            }
        }
    }

    /// Backward solve `L^T y = x` in place.
    pub fn backward_solve(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "x length mismatch");
        for s in (0..self.part.n_supernodes()).rev() {
            let first = self.part.first_col[s];
            let width = self.part.width(s);
            let rows = &self.rows[self.rows_ptr[s]..self.rows_ptr[s + 1]];
            let ld = rows.len();
            let base = self.val_ptr[s];
            let panel = &self.values[base..base + ld * width];
            for c in 0..width {
                let col = &panel[c * ld + width..(c + 1) * ld];
                let mut dot = 0.0;
                for (&row, &v) in rows[width..].iter().zip(col) {
                    dot += v * x[row as usize];
                }
                x[first + c] -= dot;
            }
            trsv_lower_trans(width, panel, ld, &mut x[first..first + width]);
        }
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.forward_solve(&mut x);
        self.backward_solve(&mut x);
        x
    }

    /// The supernodes a sparse forward solve must visit: for a Cholesky
    /// factor, the solution pattern of `L y = b` is the union of etree
    /// paths from the nonzeros of `b` (the reach-set specialized to
    /// filled patterns). Returned in ascending (topological) order.
    pub fn reach_supernodes(&self, beta: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.part.n_supernodes()];
        const NONE: usize = usize::MAX;
        for &i in beta {
            let mut s = self.part.col_to_super[i];
            while s != NONE && !seen[s] {
                seen[s] = true;
                // Jump to the supernode owning the parent of this
                // supernode's last column.
                let last = self.part.first_col[s + 1] - 1;
                let p = self.parent[last];
                s = if p == NONE {
                    NONE
                } else {
                    self.part.col_to_super[p]
                };
            }
        }
        (0..seen.len()).filter(|&s| seen[s]).collect()
    }

    /// Forward solve `L y = b` for a **sparse** `b`, visiting only the
    /// reached supernodes — the paper's §1.1 pipeline (triangular solve
    /// as a sub-kernel after factorization). `x` must be zeroed; the
    /// result's nonzeros lie within the reached supernodes' columns.
    pub fn forward_solve_sparse(&self, b: &sympiler_sparse::SparseVec, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "x length mismatch");
        for (i, v) in b.iter() {
            x[i] = v;
        }
        for s in self.reach_supernodes(b.indices()) {
            let first = self.part.first_col[s];
            let width = self.part.width(s);
            let rows = &self.rows[self.rows_ptr[s]..self.rows_ptr[s + 1]];
            let ld = rows.len();
            let base = self.val_ptr[s];
            let panel = &self.values[base..base + ld * width];
            trsv_lower(width, panel, ld, &mut x[first..first + width]);
            for c in 0..width {
                let xc = x[first + c];
                if xc == 0.0 {
                    continue;
                }
                let col = &panel[c * ld + width..(c + 1) * ld];
                for (&row, &v) in rows[width..].iter().zip(col) {
                    x[row as usize] -= v * xc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_solvers::SimplicialCholesky;
    use sympiler_sparse::gen;

    fn check_matches_simplicial(a: &CscMatrix, max_width: usize, low_level: bool) {
        let plan = CholPlan::build(a, max_width, low_level).unwrap();
        let f = plan.factor(a).unwrap();
        let l_plan = f.to_csc();
        let l_ref = SimplicialCholesky::analyze(a).unwrap().factor(a).unwrap();
        assert!(l_plan.same_pattern(&l_ref), "patterns differ");
        for (p, q) in l_plan.values().iter().zip(l_ref.values()) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn matches_simplicial_on_random() {
        for seed in 0..6u64 {
            let a = gen::random_spd(40, 4, seed);
            check_matches_simplicial(&a, 0, true);
            check_matches_simplicial(&a, 0, false);
        }
    }

    #[test]
    fn matches_simplicial_on_structured() {
        for a in [
            gen::grid2d_laplacian(7, 6, false, 1),
            gen::grid2d_laplacian(5, 5, true, 2),
            gen::banded_spd(35, 5, 3),
            gen::circuit_like(60, 4, 2, 4),
            gen::tridiagonal_spd(25),
        ] {
            check_matches_simplicial(&a, 0, true);
        }
    }

    #[test]
    fn width_cap_respected_and_correct() {
        let a = gen::banded_spd(30, 4, 7);
        check_matches_simplicial(&a, 2, true);
        check_matches_simplicial(&a, 3, false);
    }

    #[test]
    fn repeated_factorization_same_pattern_new_values() {
        let a1 = gen::grid2d_laplacian(6, 6, false, 9);
        let plan = CholPlan::build(&a1, 0, true).unwrap();
        let mut a2 = a1.clone();
        for v in a2.values_mut() {
            *v *= 3.0;
        }
        let f2 = plan.factor(&a2).unwrap();
        let l_ref = SimplicialCholesky::analyze(&a2)
            .unwrap()
            .factor(&a2)
            .unwrap();
        for (p, q) in f2.to_csc().values().iter().zip(l_ref.values()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_end_to_end() {
        let a = gen::grid2d_laplacian(6, 7, false, 11);
        let plan = CholPlan::build(&a, 0, true).unwrap();
        let f = plan.factor(&a).unwrap();
        let b: Vec<f64> = (0..42).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let x = f.solve(&b);
        let resid = sympiler_sparse::ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-12, "residual {resid}");
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0);
        let a = t.to_csc().unwrap();
        let plan = CholPlan::build(&a, 0, true).unwrap();
        assert!(matches!(
            plan.factor(&a),
            Err(CholPlanError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_pattern_mismatch() {
        let a = gen::random_spd(20, 3, 1);
        let b = gen::random_spd(21, 3, 2);
        let plan = CholPlan::build(&a, 0, true).unwrap();
        assert!(matches!(
            plan.factor(&b),
            Err(CholPlanError::PatternMismatch)
        ));
    }

    #[test]
    fn report_contains_inspection_stages() {
        let a = gen::grid2d_laplacian(5, 5, false, 3);
        let plan = CholPlan::build(&a, 0, true).unwrap();
        let r = plan.report();
        assert!(r.stages.len() >= 3, "expected inspection + compile stages");
        assert!(r.size_of("nnz(L)").unwrap() >= a.nnz());
        assert!(r.size_of("supernodes").unwrap() >= 1);
    }

    #[test]
    fn flops_match_symbolic_prediction() {
        let a = gen::grid2d_laplacian(5, 4, false, 5);
        let plan = CholPlan::build(&a, 0, true).unwrap();
        let sym = sympiler_graph::symbolic_cholesky(&a);
        assert_eq!(plan.flops(), sym.factor_flops());
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut t = sympiler_sparse::TripletMatrix::new(2, 3);
        t.push(0, 0, 1.0);
        let rect = t.to_csc().unwrap();
        assert!(matches!(
            CholPlan::build(&rect, 0, true),
            Err(CholPlanError::BadInput(_))
        ));
    }

    #[test]
    fn sparse_forward_solve_matches_dense() {
        let a = gen::grid2d_laplacian(7, 7, false, 13);
        let plan = CholPlan::build(&a, 0, true).unwrap();
        let f = plan.factor(&a).unwrap();
        let b = sympiler_sparse::SparseVec::try_new(49, vec![3, 20], vec![2.0, -1.0]).unwrap();
        let mut x_sparse = vec![0.0; 49];
        f.forward_solve_sparse(&b, &mut x_sparse);
        let mut x_dense = b.to_dense();
        f.forward_solve(&mut x_dense);
        for i in 0..49 {
            assert!(
                (x_sparse[i] - x_dense[i]).abs() < 1e-12,
                "x[{i}]: {} vs {}",
                x_sparse[i],
                x_dense[i]
            );
        }
    }

    #[test]
    fn reach_supernodes_is_minimal_and_sufficient() {
        let a = gen::random_spd(40, 4, 17);
        let plan = CholPlan::build(&a, 0, true).unwrap();
        let f = plan.factor(&a).unwrap();
        let l = f.to_csc();
        // Reference reach on the extracted factor.
        let reach_cols = sympiler_graph::reach(&l, &[5]);
        let reach_supers = f.reach_supernodes(&[5]);
        // Every reached column's supernode must be visited.
        for &j in &reach_cols {
            assert!(
                reach_supers.contains(&plan.partition().col_to_super[j]),
                "column {j} reached but its supernode not visited"
            );
        }
        // And visited supernodes contain at least one reached column
        // (path minimality at supernode granularity).
        for &s in &reach_supers {
            let cols = plan.partition().cols(s);
            assert!(
                cols.clone().any(|c| reach_cols.contains(&c)),
                "supernode {s} visited without any reached column"
            );
        }
    }

    #[test]
    fn factor_error_cleanup_is_safe() {
        // An indefinite late pivot must not poison a reused plan.
        let a = gen::random_spd(15, 3, 8);
        let plan = CholPlan::build(&a, 0, true).unwrap();
        let mut bad = a.clone();
        // Make the last diagonal entry very negative.
        let n = bad.n_cols();
        if let Some(p) = bad.find(n - 1, n - 1) {
            bad.values_mut()[p] = -1000.0;
        }
        assert!(plan.factor(&bad).is_err());
        // Plan still produces a correct factor for the good matrix.
        let f = plan.factor(&a).unwrap();
        let l_ref = SimplicialCholesky::analyze(&a).unwrap().factor(&a).unwrap();
        for (p, q) in f.to_csc().values().iter().zip(l_ref.values()) {
            assert!((p - q).abs() < 1e-9);
        }
    }
}
