//! Level-scheduled parallel LU numeric phase (the ROADMAP's "parallel
//! LU over the column elimination DAG").
//!
//! Once symbolic analysis is decoupled, the numeric factorization is a
//! pure schedule — and a schedule can be re-ordered any way its
//! dependences allow. The dependences of left-looking LU are exactly
//! the column elimination DAG the inspector already computed: column
//! `j` consumes `L(:, k)` for every `k` in its baked update schedule
//! (equivalently, every `k < j` with `U(k, j) != 0`). Columns in the
//! same longest-path level of that DAG touch only *finalized* columns
//! from earlier levels, so they can execute concurrently — the
//! H-Level idea the paper applies to triangular solve
//! ([`super::tri_parallel`]), applied here to factorization.
//!
//! Execution model:
//!
//! * the DAG is leveled at **compile time** with the generalized
//!   scheduler ([`sympiler_graph::levels::dag_levels_from_preds`]);
//! * each level's columns are split into per-worker chunks at compile
//!   time, **cost-balanced** with the exact per-column flop counts the
//!   inspector computed ([`sympiler_graph::levels::balanced_partition`]);
//! * `factor` spawns its workers **once** (`std::thread::scope`) and
//!   separates levels with a [`std::sync::Barrier`] — no per-level
//!   spawn cost, which matters because elimination DAGs are much
//!   deeper than triangular-solve DAGs;
//! * every column runs the same per-column kernel as the serial plan
//!   (`LuPlan::column_numeric`), each worker owning a private dense accumulator
//!   and writing only its own columns' value ranges — results are
//!   therefore **bitwise identical** across thread counts, including
//!   `n_threads = 1`;
//! * barriers are **elided at compile time** between consecutive
//!   levels owned entirely by the same worker: program order already
//!   sequences same-thread work, so chain-shaped stretches of the DAG
//!   (ubiquitous when matrices factor unordered — a banded `U` makes
//!   column `j` depend on `j - 1`) run at serial speed instead of
//!   paying one barrier per column.

use super::lu::{LuFactor, LuPlan, LuPlanError, PerturbReport, PivotStatus};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use sympiler_graph::levels::{balanced_partition, dag_levels_from_preds};
use sympiler_sparse::CscMatrix;

/// Avoid clashing with `std::sync::atomic::Ordering` in this module.
use sympiler_graph::ordering::Ordering as FillOrdering;

/// A compiled LU factorization whose numeric phase executes the column
/// elimination DAG level by level across a fixed number of threads.
#[derive(Debug, Clone)]
pub struct ParallelLuPlan {
    plan: LuPlan,
    n_threads: usize,
    /// Columns flattened level by level (ascending within a level):
    /// level `lv` is `level_cols[level_ptr[lv]..level_ptr[lv + 1]]`.
    level_cols: Vec<usize>,
    level_ptr: Vec<usize>,
    /// Per-level worker chunks: `n_threads + 1` boundaries per level,
    /// relative to the level start. Worker `t` of level `lv` owns
    /// `chunk_bounds[lv * (T+1) + t]..chunk_bounds[lv * (T+1) + t + 1]`.
    chunk_bounds: Vec<usize>,
    /// `barrier_after[lv]`: whether workers must synchronize after
    /// level `lv`. Compile-time constant, so every worker agrees.
    /// Elided when levels `lv` and `lv + 1` are single-owner by the
    /// same worker — see [`Self::factor`]'s safety argument.
    barrier_after: Vec<bool>,
}

/// Shared mutable view of the factor value arrays, handed to the
/// scoped workers.
///
/// SAFETY ARGUMENT: each column's `L`/`U` value ranges are written by
/// exactly one worker (the compile-time chunk owner) during the
/// column's level, and read by other workers only in strictly later
/// levels; a [`Barrier`] separates levels, establishing happens-before
/// between the write and every read. No location is ever accessed
/// concurrently with a write, so handing every worker raw pointers is
/// data-race-free.
struct SharedFactor {
    lx: *mut f64,
    ux: *mut f64,
}

// SAFETY: see the struct-level safety argument — disjoint writes,
// barrier-ordered reads.
unsafe impl Sync for SharedFactor {}

impl ParallelLuPlan {
    /// Compile a parallel plan for the square matrix `a`. `low_level`
    /// and `peel_col_count` select the peeled update tier exactly like
    /// [`LuPlan::build`]; `n_threads` fixes the worker count baked
    /// into the schedule.
    pub fn build(
        a: &CscMatrix,
        low_level: bool,
        peel_col_count: usize,
        n_threads: usize,
    ) -> Result<Self, LuPlanError> {
        Ok(Self::from_plan(
            LuPlan::build(a, low_level, peel_col_count)?,
            n_threads,
        ))
    }

    /// Compile a parallel plan under a fill-reducing ordering
    /// ([`LuPlan::build_ordered`]). This is where orderings pay twice:
    /// less fill means fewer numeric flops, and the reordered column
    /// elimination DAG is shallower and bushier, so the leveling below
    /// finds real concurrency where the natural order yields
    /// near-chains.
    pub fn build_ordered(
        a: &CscMatrix,
        low_level: bool,
        peel_col_count: usize,
        ordering: FillOrdering,
        n_threads: usize,
    ) -> Result<Self, LuPlanError> {
        Ok(Self::from_plan(
            LuPlan::build_ordered(a, low_level, peel_col_count, ordering)?,
            n_threads,
        ))
    }

    /// Level and chunk an already-compiled serial plan. Pure schedule
    /// re-arrangement: no symbolic analysis re-runs — the elimination
    /// DAG is read straight off the baked update schedules.
    pub fn from_plan(plan: LuPlan, n_threads: usize) -> Self {
        assert!(n_threads >= 1, "need at least one thread");
        let n = plan.n();
        let levels = dag_levels_from_preds(n, |j| plan.schedule(j));
        let costs = plan.per_column_costs();
        let mut level_cols = Vec::with_capacity(n);
        let mut level_ptr = Vec::with_capacity(levels.n_levels() + 1);
        let mut chunk_bounds = Vec::with_capacity(levels.n_levels() * (n_threads + 1));
        level_ptr.push(0);
        // Whether worker 0 owns the level wholesale (the common case
        // on chain-shaped stretches of the DAG, where levels are
        // singletons).
        let mut sole_owner: Vec<bool> = Vec::with_capacity(levels.n_levels());
        for cols in &levels.levels {
            let col_costs: Vec<u64> = cols.iter().map(|&j| costs[j]).collect();
            let mut bounds = balanced_partition(&col_costs, n_threads);
            // When the cost split hands one worker the whole level
            // (whichever worker the prefix-sum targets landed it on —
            // that varies with the cost magnitude for singletons),
            // normalize ownership to worker 0: same work, and giving
            // consecutive such levels one fixed owner is what lets
            // their barriers elide below.
            let whole = (0..n_threads).any(|t| bounds[t + 1] - bounds[t] == cols.len());
            if whole {
                for b in bounds.iter_mut().skip(1) {
                    *b = cols.len();
                }
            }
            sole_owner.push(whole);
            chunk_bounds.extend(bounds);
            level_cols.extend_from_slice(cols);
            level_ptr.push(level_cols.len());
        }
        // Elide the barrier after level lv when lv and lv + 1 are both
        // owned wholesale by worker 0: program order already sequences
        // that worker's columns, and no other worker wrote anything
        // since the last kept barrier. No barrier is needed after the
        // last level (the scope join synchronizes).
        let n_levels = sole_owner.len();
        let barrier_after: Vec<bool> = (0..n_levels)
            .map(|lv| lv + 1 < n_levels && !(sole_owner[lv] && sole_owner[lv + 1]))
            .collect();
        Self {
            plan,
            n_threads,
            level_cols,
            level_ptr,
            chunk_bounds,
            barrier_after,
        }
    }

    /// The underlying serial plan (shared symbolic analysis, report,
    /// flop counts, C emission).
    pub fn serial(&self) -> &LuPlan {
        &self.plan
    }

    /// Worker count baked into the schedule.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Number of levels (critical-path length of the elimination DAG).
    pub fn n_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Average available parallelism: columns per level.
    pub fn avg_parallelism(&self) -> f64 {
        if self.n_levels() == 0 {
            0.0
        } else {
            self.level_cols.len() as f64 / self.n_levels() as f64
        }
    }

    /// Barriers the numeric phase actually executes (after compile-time
    /// elision between same-owner levels). A chain-shaped DAG owned by
    /// one worker costs zero barriers.
    pub fn n_barriers(&self) -> usize {
        self.barrier_after.iter().filter(|&&b| b).count()
    }

    /// The columns of level `lv`, ascending.
    pub fn level(&self, lv: usize) -> &[usize] {
        &self.level_cols[self.level_ptr[lv]..self.level_ptr[lv + 1]]
    }

    /// The chunk of level `lv` owned by worker `t`.
    fn chunk(&self, lv: usize, t: usize) -> &[usize] {
        let base = self.level_ptr[lv];
        let o = lv * (self.n_threads + 1);
        let lo = base + self.chunk_bounds[o + t];
        let hi = base + self.chunk_bounds[o + t + 1];
        &self.level_cols[lo..hi]
    }

    /// Parallel numeric factorization: identical results to
    /// [`LuPlan::factor`], bit for bit, at any thread count.
    pub fn factor(&self, a: &CscMatrix) -> Result<LuFactor, LuPlanError> {
        if self.n_threads == 1 {
            // No point paying for the barrier protocol; the serial
            // plan runs the same columns in a level-compatible order.
            return self.plan.factor(a);
        }
        self.plan.check_pattern(a)?;
        let n = self.plan.n();
        let n_levels = self.n_levels();
        let mut lx = vec![0.0f64; self.plan.l_nnz()];
        let mut ux = vec![0.0f64; self.plan.u_nnz()];
        let shared = SharedFactor {
            lx: lx.as_mut_ptr(),
            ux: ux.as_mut_ptr(),
        };
        let barrier = Barrier::new(self.n_threads);
        // Smallest column with a zero pivot; `usize::MAX` = all good.
        // Workers flag and keep going (the kernel's values stay
        // IEEE-defined), so no consensus protocol is needed mid-run.
        let first_bad = AtomicUsize::new(usize::MAX);
        // Static perturbation threshold (0.0 = off) and the merged
        // perturbed-column record. Workers buffer locally and push once
        // at the end, so the hot loop never touches the mutex.
        let thresh = self.plan.perturb_threshold(a);
        let perturbed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        // Observability (active only when the plan was compiled with
        // profiling): each worker records a `work` span per
        // barrier-separated segment and a `barrier` span per wait on
        // its own lane, and accumulates busy/wait time and executed
        // flops locally — one atomic store per worker at the end, so
        // the instrumented hot loop stays contention-free. Nothing
        // here touches numeric state: results stay bitwise identical.
        let prof = self.plan.profiler().as_ref();
        let enabled = prof.is_enabled();
        let outer = if enabled {
            prof.begin(0, "factor:parallel")
        } else {
            None
        };
        let busy: Vec<AtomicU64> = (0..self.n_threads).map(|_| AtomicU64::new(0)).collect();
        let wait: Vec<AtomicU64> = (0..self.n_threads).map(|_| AtomicU64::new(0)).collect();
        let flops_done = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..self.n_threads {
                let shared = &shared;
                let barrier = &barrier;
                let first_bad = &first_bad;
                let (busy, wait, flops_done) = (&busy, &wait, &flops_done);
                let perturbed = &perturbed;
                scope.spawn(move || {
                    let mut x = vec![0.0f64; n];
                    let mut my_perturbed: Vec<usize> = Vec::new();
                    let mut my_busy = 0u64;
                    let mut my_wait = 0u64;
                    let mut my_flops = 0u64;
                    let mut seg_start = prof.now_ns();
                    let mut seg_first_lv = 0usize;
                    for lv in 0..n_levels {
                        for &j in self.chunk(lv, t) {
                            // SAFETY: this worker is the unique owner
                            // of column j (compile-time chunking);
                            // every scheduled update column sits in an
                            // earlier level, finalized either by this
                            // same worker in program order (elided
                            // barriers only span same-single-owner
                            // levels) or before the last kept barrier.
                            // See SharedFactor.
                            let status = unsafe {
                                self.plan
                                    .column_numeric(j, a, &mut x, shared.lx, shared.ux, thresh)
                            };
                            match status {
                                PivotStatus::Clean => {}
                                PivotStatus::Perturbed => my_perturbed.push(j),
                                PivotStatus::Zero => {
                                    first_bad.fetch_min(j, Ordering::Relaxed);
                                }
                            }
                            if enabled {
                                my_flops += self.plan.col_flops[j];
                            }
                        }
                        // Compile-time constant, so every worker takes
                        // the same barriers.
                        if self.barrier_after[lv] {
                            if enabled {
                                let now = prof.now_ns();
                                prof.add_span(
                                    t,
                                    "work",
                                    seg_start,
                                    now - seg_start,
                                    &[
                                        ("level_first", seg_first_lv as f64),
                                        ("level_last", lv as f64),
                                    ],
                                );
                                my_busy += now - seg_start;
                                barrier.wait();
                                let after = prof.now_ns();
                                prof.add_span(
                                    t,
                                    "barrier",
                                    now,
                                    after - now,
                                    &[("level", lv as f64)],
                                );
                                my_wait += after - now;
                                seg_start = after;
                                seg_first_lv = lv + 1;
                            } else {
                                barrier.wait();
                            }
                        }
                    }
                    if enabled {
                        if n_levels > 0 && seg_first_lv < n_levels {
                            let now = prof.now_ns();
                            prof.add_span(
                                t,
                                "work",
                                seg_start,
                                now - seg_start,
                                &[
                                    ("level_first", seg_first_lv as f64),
                                    ("level_last", (n_levels - 1) as f64),
                                ],
                            );
                            my_busy += now - seg_start;
                        }
                        busy[t].store(my_busy, Ordering::Relaxed);
                        wait[t].store(my_wait, Ordering::Relaxed);
                        flops_done.fetch_add(my_flops, Ordering::Relaxed);
                    }
                    if !my_perturbed.is_empty() {
                        perturbed.lock().unwrap().extend(my_perturbed);
                    }
                });
            }
        });
        if enabled {
            let busys: Vec<u64> = busy.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            for (t, (&b, w)) in busys.iter().zip(&wait).enumerate() {
                prof.counter(&format!("par.t{t}.busy_ns")).add(b);
                prof.counter(&format!("par.t{t}.wait_ns"))
                    .add(w.load(Ordering::Relaxed));
            }
            let max = busys.iter().copied().max().unwrap_or(0) as f64;
            let mean = busys.iter().sum::<u64>() as f64 / busys.len().max(1) as f64;
            if mean > 0.0 {
                prof.gauge("par.imbalance", max / mean);
            }
            prof.counter("flops.scalar")
                .add(flops_done.load(Ordering::Relaxed));
            prof.end_with(
                outer,
                &[
                    ("threads", self.n_threads as f64),
                    ("levels", n_levels as f64),
                    ("flops", flops_done.load(Ordering::Relaxed) as f64),
                ],
            );
        }
        // The scope join synchronizes every worker's writes, including
        // the relaxed flag. The smallest flagged column is exactly the
        // column the serial plan would have reported: all columns
        // before it have clean ancestors and thus identical pivots.
        let column = first_bad.into_inner();
        if column != usize::MAX {
            return Err(LuPlanError::ZeroPivot { column });
        }
        // Merge order depends on worker timing; sort so the report is
        // deterministic (column order, like the serial kernel's).
        let mut columns = perturbed.into_inner().unwrap();
        columns.sort_unstable();
        Ok(self.plan.finish(
            a,
            lx,
            ux,
            PerturbReport {
                columns,
                threshold: thresh,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    fn bitwise_eq(a: &LuFactor, b: &LuFactor) -> bool {
        a.l()
            .values()
            .iter()
            .zip(b.l().values())
            .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.u()
                .values()
                .iter()
                .zip(b.u().values())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        for seed in 0..4u64 {
            for a in [
                gen::circuit_unsym(120, 4, 2, seed),
                gen::random_unsym(90, 4, seed + 40),
                gen::convection_diffusion_2d(9, 8, 1.5, seed + 80),
            ] {
                let serial = LuPlan::build(&a, true, 2).unwrap();
                let f_serial = serial.factor(&a).unwrap();
                for threads in [2, 3, 4] {
                    let par = ParallelLuPlan::from_plan(serial.clone(), threads);
                    let f_par = par.factor(&a).unwrap();
                    assert!(
                        bitwise_eq(&f_serial, &f_par),
                        "seed {seed}, {threads} threads: factors must be bitwise identical"
                    );
                }
            }
        }
    }

    #[test]
    fn ordered_parallel_plan_matches_ordered_serial_bitwise() {
        let a = gen::circuit_unsym(110, 4, 2, 6);
        for ordering in [FillOrdering::Rcm, FillOrdering::Colamd] {
            let serial = LuPlan::build_ordered(&a, true, 2, ordering).unwrap();
            let f_serial = serial.factor(&a).unwrap();
            let par = ParallelLuPlan::build_ordered(&a, true, 2, ordering, 3).unwrap();
            assert_eq!(par.serial().ordering(), ordering);
            let f_par = par.factor(&a).unwrap();
            assert!(
                bitwise_eq(&f_serial, &f_par),
                "{ordering:?}: ordered parallel factors must be bitwise serial"
            );
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let a = gen::circuit_unsym(100, 4, 2, 11);
        let par = ParallelLuPlan::build(&a, true, 2, 4).unwrap();
        let f1 = par.factor(&a).unwrap();
        let f2 = par.factor(&a).unwrap();
        assert!(bitwise_eq(&f1, &f2), "same plan, same input, same bits");
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let a = gen::random_unsym(50, 3, 5);
        let par = ParallelLuPlan::build(&a, true, 2, 1).unwrap();
        let serial = LuPlan::build(&a, true, 2).unwrap();
        let f1 = par.factor(&a).unwrap();
        let f2 = serial.factor(&a).unwrap();
        assert!(bitwise_eq(&f1, &f2));
        assert_eq!(par.n_threads(), 1);
    }

    #[test]
    fn levels_partition_all_columns_and_respect_deps() {
        let a = gen::circuit_unsym(80, 4, 2, 3);
        let par = ParallelLuPlan::build(&a, true, 2, 3).unwrap();
        let n = a.n_cols();
        // Every column appears exactly once across levels, and exactly
        // once across the per-worker chunks of its level.
        let mut seen = vec![false; n];
        for lv in 0..par.n_levels() {
            let mut level_cols: Vec<usize> = Vec::new();
            for t in 0..par.n_threads() {
                level_cols.extend_from_slice(par.chunk(lv, t));
            }
            assert_eq!(level_cols, par.level(lv), "level {lv} chunk cover");
            for &j in par.level(lv) {
                assert!(!seen[j], "column {j} scheduled twice");
                seen[j] = true;
                // Dependences point strictly to earlier levels.
                for k in par.serial().schedule(j) {
                    let kl = (0..par.n_levels())
                        .find(|&l| par.level(l).contains(&k))
                        .unwrap();
                    assert!(kl < lv, "update {k}->{j} must cross levels downward");
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all columns scheduled");
        assert!(par.avg_parallelism() >= 1.0);
    }

    #[test]
    fn chain_dag_elides_every_barrier() {
        // Diag + superdiagonal: column j depends on j - 1, a pure
        // chain. Every level is a singleton owned by worker 0, so the
        // compiled schedule must contain no barriers at all — and the
        // factor must still be bitwise serial.
        let n = 40;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 2.0);
            if j + 1 < n {
                t.push(j, j + 1, 1.0);
            }
        }
        let a = t.to_csc().unwrap();
        let par = ParallelLuPlan::build(&a, true, 2, 4).unwrap();
        assert_eq!(par.n_levels(), n);
        assert_eq!(par.n_barriers(), 0, "chain must cost zero barriers");
        let serial = LuPlan::build(&a, true, 2).unwrap();
        let f1 = par.factor(&a).unwrap();
        let f2 = serial.factor(&a).unwrap();
        assert!(bitwise_eq(&f1, &f2));
    }

    #[test]
    fn heterogeneous_chain_still_elides_every_barrier() {
        // A superdiagonal chain whose per-column costs alternate
        // (every third column carries a sub-diagonal entry, which is
        // absorbed as the next column's diagonal — no fill, but the
        // costs cycle 5, 5, 3). A singleton level's cost used to pick
        // its owner (the prefix-sum target lands a cost-3 column on
        // worker 1 at 4 threads, a cost-5 column on worker 0), so the
        // owners alternated and most barriers survived. Ownership is
        // now normalized to worker 0, so the chain must cost zero
        // barriers.
        let n = 40;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 3.0);
            if j + 1 < n {
                t.push(j, j + 1, 1.0); // the chain edge j -> j + 1
                if j % 3 == 0 {
                    t.push(j + 1, j, 0.25); // heavier column, no fill
                }
            }
        }
        let a = t.to_csc().unwrap();
        let par = ParallelLuPlan::build(&a, true, 2, 4).unwrap();
        assert_eq!(par.n_levels(), n, "superdiagonal chain dominates");
        assert_eq!(
            par.n_barriers(),
            0,
            "cost-heterogeneous chain must still elide all barriers"
        );
        let serial = LuPlan::build(&a, true, 2).unwrap();
        assert!(bitwise_eq(
            &par.factor(&a).unwrap(),
            &serial.factor(&a).unwrap()
        ));
    }

    #[test]
    fn wide_dag_keeps_barriers() {
        // An arrow pointing up-left (dense last row and column): the
        // first n - 1 columns are mutually independent and all feed
        // the last one — two levels, multiple owners, so the single
        // level boundary must keep its barrier.
        let n = 32;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
            if j + 1 < n {
                t.push(n - 1, j, 1.0);
                t.push(j, n - 1, 1.0);
            }
        }
        let a = t.to_csc().unwrap();
        let par = ParallelLuPlan::build(&a, true, 2, 4).unwrap();
        assert_eq!(par.n_levels(), 2);
        assert_eq!(par.n_barriers(), 1);
        assert_eq!(par.level(1), &[n - 1]);
        let serial = LuPlan::build(&a, true, 2).unwrap();
        assert!(bitwise_eq(
            &par.factor(&a).unwrap(),
            &serial.factor(&a).unwrap()
        ));
    }

    #[test]
    fn zero_pivot_reported_like_serial() {
        // Diagonal matrix with one zeroed value: the parallel plan must
        // report the same column as the serial plan.
        let mut t = sympiler_sparse::TripletMatrix::new(6, 6);
        for j in 0..6 {
            t.push(j, j, 1.0);
        }
        let a0 = t.to_csc().unwrap();
        let mut a = a0.clone();
        a.values_mut()[3] = 0.0;
        let serial = LuPlan::build(&a0, true, 2).unwrap();
        let serial_err = serial.factor(&a).unwrap_err();
        let par = ParallelLuPlan::from_plan(serial, 3);
        let par_err = par.factor(&a).unwrap_err();
        assert_eq!(serial_err, par_err);
        assert!(matches!(par_err, LuPlanError::ZeroPivot { column: 3 }));
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let a = gen::random_unsym(30, 3, 1);
        let par = ParallelLuPlan::build(&a, true, 2, 2).unwrap();
        let other = gen::random_unsym(30, 3, 2);
        assert!(matches!(
            par.factor(&other),
            Err(LuPlanError::PatternMismatch)
        ));
    }

    #[test]
    fn more_threads_than_columns() {
        let a = gen::random_unsym(5, 2, 9);
        let par = ParallelLuPlan::build(&a, true, 2, 8).unwrap();
        let serial = LuPlan::build(&a, true, 2).unwrap();
        let f1 = par.factor(&a).unwrap();
        let f2 = serial.factor(&a).unwrap();
        assert!(bitwise_eq(&f1, &f2));
    }

    #[test]
    fn empty_matrix() {
        let a = sympiler_sparse::CscMatrix::zeros(0, 0);
        let par = ParallelLuPlan::build(&a, true, 2, 2).unwrap();
        assert_eq!(par.n_levels(), 0);
        assert_eq!(par.avg_parallelism(), 0.0);
        let f = par.factor(&a).unwrap();
        assert_eq!(f.l().nnz(), 0);
    }

    #[test]
    fn solve_through_parallel_factor() {
        let a = gen::convection_diffusion_2d(8, 8, 2.0, 7);
        let par = ParallelLuPlan::build(&a, true, 2, 4).unwrap();
        let f = par.factor(&a).unwrap();
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let x = f.solve(&b);
        assert!(sympiler_sparse::ops::rel_residual(&a, &x, &b) < 1e-12);
    }
}
