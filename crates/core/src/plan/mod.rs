//! Executable plans: inspection sets compiled into flat instruction
//! streams.
//!
//! The paper's Sympiler emits C and compiles it with GCC; the numeric
//! binary then contains *no* symbolic work — every loop bound, every
//! index, every kernel choice is already resolved. The plans here are
//! the same object in library form: [`tri::TriSolvePlan`],
//! [`chol::CholPlan`], and [`lu::LuPlan`] hold precomputed schedules
//! (pruned column lists, packed panels, descendant-update scatter maps,
//! per-column LU update schedules, kernel selections), and their
//! `solve`/`factor` methods execute only numeric loads, stores, and
//! floating-point operations. See DESIGN.md §2 for the substitution
//! argument.
//!
//! The LU pipeline compiles to one of three execution tiers:
//! [`lu::LuPlan`] (serial columns), `lu_parallel::ParallelLuPlan`
//! (columns leveled over the elimination DAG across workers), and
//! [`lu_supernodal::SupernodalLuPlan`] (VS-Block column panels routed
//! through dense GETRF/TRSM/GEMM kernels, leveled over the panel DAG).

pub mod chol;
pub mod lu;
pub mod lu_supernodal;
pub mod tri;

#[cfg(feature = "parallel")]
pub mod lu_parallel;
#[cfg(feature = "parallel")]
pub mod tri_parallel;

/// Kernel tier selected at compile (inspection) time for a dense
/// sub-block — the low-level-transformation decision of §2.4(3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Fully unrolled specialized kernel (width 1..=4).
    Specialized,
    /// Generic mini-BLAS kernel.
    Generic,
}

impl KernelChoice {
    /// The width-based dispatch rule used by both plans.
    pub fn for_width(width: usize, low_level: bool) -> Self {
        if low_level && width <= 4 {
            KernelChoice::Specialized
        } else {
            KernelChoice::Generic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_dispatch_rule() {
        assert_eq!(KernelChoice::for_width(1, true), KernelChoice::Specialized);
        assert_eq!(KernelChoice::for_width(4, true), KernelChoice::Specialized);
        assert_eq!(KernelChoice::for_width(5, true), KernelChoice::Generic);
        assert_eq!(KernelChoice::for_width(2, false), KernelChoice::Generic);
    }
}
