//! The executable LU plan: left-looking Gilbert–Peierls factorization
//! with **all symbolic work hoisted to compile time**.
//!
//! Compared to the runtime baseline (`sympiler-solvers`' GPLU), the
//! plan's `factor`:
//!
//! * runs **no DFS** — every column's update schedule (its reach set in
//!   topological order) is baked in, VI-Prune applied to the column
//!   updates exactly as `plan/tri.rs` applies it to the solve loop;
//! * allocates **nothing per column** — the patterns of `L` and `U`
//!   are precomputed, so factor storage is laid out once and values
//!   stream into fixed slots (the gather maps are baked index lists);
//! * needs **no pivot search** — static diagonal pivoting is the
//!   compiled contract (the paper's fixed-pattern premise), with the
//!   numeric value checked and reported per column;
//! * applies the low-level tier to heavy updates: columns whose
//!   off-diagonal count exceeds the peel threshold execute through an
//!   unrolled-by-two update loop, mirroring `TriOp::PeeledCol`;
//! * optionally bakes a **fill-reducing ordering** (`build_ordered`):
//!   `Q` is computed once at inspection time, the symbolic analysis
//!   runs on `Qᵀ A Q`, and the numeric phase reads the caller's
//!   original matrix through compiled gather maps — so ordered plans
//!   carry less fill (fewer flops) at zero per-factorization
//!   permutation cost, and [`LuFactor::solve`] still speaks the
//!   original coordinates.

use crate::inspector::LuVIPruneInspector;
use crate::report::{timed_traced, SymbolicReport};
use std::sync::Arc;
use sympiler_graph::ordering::Ordering;
use sympiler_graph::transversal::PrePivot;
use sympiler_obs::{LuHealth, Profiler};
use sympiler_sparse::{CscMatrix, SparseVec};

/// LU plan error (kept separate from the solvers' [`LuError`] — the
/// plan's failure modes are pattern- and schedule-shaped, the
/// baseline's are not; [`crate::robust::RecoveryError`] wraps both
/// when the recovery ladder exhausts its rungs).
///
/// [`LuError`]: sympiler_solvers::lu::LuError
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuPlanError {
    /// Bad input shape/storage.
    BadInput(String),
    /// The numeric input does not match the compiled pattern.
    PatternMismatch,
    /// Structurally or numerically zero diagonal pivot.
    ZeroPivot { column: usize },
    /// A pre-pivot was requested but the pattern admits no perfect
    /// row/column matching: **no** row permutation can give this
    /// matrix a zero-free diagonal, so statically pivoted LU is
    /// structurally impossible. Reported from *inspection* (compile
    /// time), never from the numeric phase.
    StructurallySingular {
        /// Matrix order.
        n: usize,
        /// Size of the maximum matching (`< n`).
        structural_rank: usize,
    },
}

impl std::fmt::Display for LuPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuPlanError::BadInput(m) => write!(f, "bad input: {m}"),
            LuPlanError::PatternMismatch => write!(f, "pattern mismatch"),
            LuPlanError::ZeroPivot { column } => {
                write!(f, "zero pivot at column {column}")
            }
            LuPlanError::StructurallySingular { n, structural_rank } => write!(
                f,
                "structurally singular: maximum matching covers \
                 {structural_rank} of {n} columns"
            ),
        }
    }
}

impl std::error::Error for LuPlanError {}

/// A failure inside a batched factorization ([`LuPlan::factor_batch`]):
/// the error plus the index of the matrix (within the batch) that
/// produced it. The batch is all-or-nothing — on the first failure the
/// whole call returns this error and no factors are produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Index into the batch slice of the failing matrix.
    pub index: usize,
    /// What went wrong for that matrix.
    pub error: LuPlanError,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch matrix {}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Record of the static pivot perturbations a factorization applied
/// (SuperLU_DIST's recovery idea under the static-pivoting contract):
/// every column whose pivot magnitude fell below `tol · max|A|` had the
/// pivot replaced by `±tol · max|A|` so factorization could continue.
/// Empty — and the factorization bitwise identical to an unperturbed
/// run — whenever no pivot crossed the threshold or perturbation is
/// off (`tol = 0`). A non-empty report means the factors solve a
/// *nearby* system; run [`LuFactor::solve_refined`] against the
/// original matrix to repair the answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerturbReport {
    /// Columns (factor coordinates) whose pivot was replaced, in
    /// ascending order.
    pub columns: Vec<usize>,
    /// The replacement magnitude used for this factorization:
    /// `tol · max|A values|` (0 when perturbation is off).
    pub threshold: f64,
}

impl PerturbReport {
    /// True when no pivot was touched.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Number of perturbed columns.
    pub fn count(&self) -> usize {
        self.columns.len()
    }
}

/// Outcome of [`LuFactor::solve_refined`]'s iterative-refinement loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineReport {
    /// Correction iterations performed (0 when the direct solve was
    /// already below tolerance).
    pub iterations: usize,
    /// Componentwise backward error of the direct solve.
    pub initial_berr: f64,
    /// Componentwise backward error of the returned solution.
    pub final_berr: f64,
    /// True when `final_berr <= tol`.
    pub converged: bool,
}

/// Per-column pivot outcome of the shared column kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PivotStatus {
    /// Pivot used as computed.
    Clean,
    /// Pivot magnitude fell below the perturbation threshold and was
    /// replaced by `±threshold`.
    Perturbed,
    /// Pivot exactly zero with perturbation off — the column failed.
    Zero,
}

/// Run the residual/correction loop of iterative refinement around an
/// arbitrary solver: `x = solve(b)`, then repeatedly `x += solve(b -
/// A·x)` until the componentwise backward error
/// `max_i |r_i| / (|A||x| + |b|)_i` drops to `tol`, `max_iter`
/// corrections have run, or the error stagnates (not halved by an
/// iteration — the LAPACK `xGERFS` stopping rule). Returns the best
/// iterate seen. Shared by [`LuFactor::solve_refined`] and the
/// recovery driver's last-resort rung, which refines around the
/// partial-pivoting baseline.
pub fn refine_with<F: Fn(&[f64]) -> Vec<f64>>(
    a: &CscMatrix,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    solve: F,
) -> (Vec<f64>, RefineReport) {
    use sympiler_sparse::ops::componentwise_berr;
    let n = a.n_rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut x = solve(b);
    let initial_berr = componentwise_berr(a, &x, b);
    let mut best = x.clone();
    let mut best_berr = initial_berr;
    let mut berr = initial_berr;
    let mut iterations = 0;
    let mut r = vec![0.0f64; n];
    while berr > tol && iterations < max_iter && berr.is_finite() {
        sympiler_sparse::ops::spmv(a, &x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let d = solve(&r);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        iterations += 1;
        let new_berr = componentwise_berr(a, &x, b);
        if new_berr < best_berr {
            best_berr = new_berr;
            best.copy_from_slice(&x);
        }
        let stagnated = new_berr > 0.5 * berr;
        berr = new_berr;
        if stagnated {
            break;
        }
    }
    let report = RefineReport {
        iterations,
        initial_berr,
        final_berr: best_berr,
        converged: best_berr <= tol,
    };
    (best, report)
}

/// Reusable per-factorization scratch state, split out of the
/// (immutable, shareable) [`LuPlan`] so N threads can factor against
/// one `Arc<LuPlan>` without cloning any compiled tables: the plan
/// holds everything decided at compile time, the workspace holds the
/// dense accumulator a numeric factorization scatters into.
///
/// A workspace is plan-agnostic — it grows to the largest `n` it has
/// served and can be reused across plans (a serving worker keeps one
/// for its whole lifetime, whatever patterns flow through). The
/// accumulator is maintained all-zeros between calls by the column
/// kernel itself, so reuse costs nothing per factorization.
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    /// Dense accumulator, all zeros between factorizations.
    x: Vec<f64>,
}

impl LuWorkspace {
    /// A fresh, empty workspace (grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity in matrix order currently held.
    pub fn capacity(&self) -> usize {
        self.x.len()
    }

    /// Make the accumulator at least `n` long (new tail zeroed; the
    /// existing prefix is already all-zeros by the kernel invariant).
    fn ensure(&mut self, n: usize) -> &mut [f64] {
        if self.x.len() < n {
            self.x.resize(n, 0.0);
        }
        &mut self.x[..n]
    }
}

/// The compile-time permutations baked into a plan: a composed **row**
/// gather map and a **column** gather map (`perm[new] = old` on both
/// sides), from the static pre-pivot `P` and/or the fill-reducing
/// ordering `Q`. The plan factors `B = Qᵀ·P·A·Q`, i.e. `B[i, j] =
/// A[rperm[i], cperm[j]]` with `rperm[new] = P[Q[new]]` and `cperm =
/// Q` — under an ordering alone the two maps coincide (the historical
/// symmetric application), under a pre-pivot alone `cperm` is the
/// identity.
///
/// The numeric phase reads the caller's *original* matrix through
/// these gather maps, so applying either permutation costs nothing per
/// factorization — one extra index indirection during the scatter of
/// `A`'s columns, on memory the scatter touches anyway. The maps are
/// `Arc`-shared with every [`LuFactor`] the plan produces, so repeated
/// factorization never copies them.
#[derive(Debug, Clone)]
pub(crate) struct BakedPerm {
    /// `rperm[new] = old` row of `A` — the composed row map `P·Q`.
    pub(crate) rperm: std::sync::Arc<[usize]>,
    /// `irperm[old] = new` — the inverse row map, `Arc`-shared with
    /// the factors so sparse-RHS solves can map input patterns without
    /// re-inverting.
    pub(crate) irperm: std::sync::Arc<[usize]>,
    /// `cperm[new] = old` column of `A` — the ordering `Q` (identity
    /// when only a pre-pivot is baked).
    pub(crate) cperm: std::sync::Arc<[usize]>,
}

/// MC64 equilibration scalings derived from the weighted-matching dual
/// potentials, stored in **original** coordinates: the compiled system
/// becomes `Qᵀ·P·(Dr·A·Dc)·Q`, with every matched diagonal scaled to
/// exactly 1 and every entry to magnitude ≤ 1. The diagonal matrices
/// never materialize — the numeric scatter multiplies entries on the
/// fly (`B[i, j] = dr[r]·A[r, c]·dc[c]` for `r = rperm[i]`, `c =
/// cperm[j]`), so a scaled factorization costs zero extra passes, and
/// solves scale `b` by `Dr` on the way in and the solution by `Dc` on
/// the way out (`(Dr·A·Dc)(Dc⁻¹x) = Dr·b`). `Arc`-shared with every
/// factor, like the baked permutations.
#[derive(Debug, Clone)]
pub(crate) struct ScalePair {
    /// `dr[old_row]` — row scaling of `A`'s original rows.
    pub(crate) dr: std::sync::Arc<[f64]>,
    /// `dc[old_col]` — column scaling of `A`'s original columns.
    pub(crate) dc: std::sync::Arc<[f64]>,
}

/// A compiled LU factorization specialized to one sparsity pattern
/// (static diagonal pivoting), optionally under a fill-reducing
/// ordering applied symmetrically (`Qᵀ A Q`) so the diagonal-pivot
/// contract survives.
#[derive(Debug, Clone)]
pub struct LuPlan {
    pub(crate) n: usize,
    a_nnz: usize,
    /// Compiled input pattern, checked on every `factor` call (the
    /// static-sparsity contract made enforceable, like `CholPlan`).
    /// Always the **original** (unordered) pattern: callers hand
    /// `factor` the same matrix they compiled for, and the baked
    /// permutation is the plan's internal affair.
    a_col_ptr: Vec<usize>,
    a_row_idx: Vec<u32>,
    /// Which ordering strategy contributed to [`Self::baked`].
    ordering: Ordering,
    /// Which pre-pivoting strategy contributed to [`Self::baked`].
    pre_pivot: PrePivot,
    /// Count of columns whose compiled pivot position is structurally
    /// present in `A` (the matched diagonals, `n` after any successful
    /// pre-pivot) — the deterministic quantity the perf gate tracks.
    matched_diag: usize,
    /// Static pivot-perturbation tolerance: a pivot whose magnitude
    /// falls below `perturb_tol · max|A values|` is replaced by the
    /// signed threshold and recorded, instead of failing (or silently
    /// amplifying). `0.0` disables perturbation entirely — the guard
    /// `|pivot| < 0` never fires, so the numeric phase is bitwise the
    /// unperturbed code path.
    perturb_tol: f64,
    /// The compiled permutations, `None` when both knobs resolve to
    /// the identity. All factor layouts and schedules below live in
    /// pivoted + ordered coordinates.
    baked: Option<BakedPerm>,
    /// MC64 row/column scalings ([`Self::with_mc64_scaling`]), `None`
    /// unless scaling was compiled in. Purely numeric: the factor
    /// patterns, schedules, and permutations above are unaffected.
    scaling: Option<ScalePair>,
    /// Factor layouts (patterns fixed at compile time). Shared with
    /// `plan::lu_parallel`, which executes the same schedule leveled
    /// over the column elimination DAG.
    pub(crate) l_col_ptr: Vec<usize>,
    pub(crate) l_row_idx: Vec<u32>,
    pub(crate) u_col_ptr: Vec<usize>,
    pub(crate) u_row_idx: Vec<u32>,
    /// Update schedule: column `j` executes `upd_cols[upd_ptr[j]..
    /// upd_ptr[j+1]]` in topological order. The high bit of each entry
    /// marks the peeled (unrolled) low-level tier.
    pub(crate) upd_ptr: Vec<usize>,
    pub(crate) upd_cols: Vec<u32>,
    /// Exact factorization flops.
    flops: u64,
    /// Exact per-column flops (sums to `flops`) — the attribution
    /// table the observability layer charges scalar/dense work
    /// against, so profiled flop accounting closes exactly.
    pub(crate) col_flops: Vec<u64>,
    report: SymbolicReport,
    /// The observability sink every execution tier built from this
    /// plan records into. Disabled (a no-op) unless the plan was
    /// compiled with profiling on; `Arc`-shared so plan clones — and
    /// the parallel/supernodal plans wrapping them — feed one trace.
    profiler: Arc<Profiler>,
}

pub(crate) const PEEL_BIT: u32 = 1 << 31;

/// A numeric factorization produced by [`LuPlan::factor`]:
/// `Qᵀ·P·A·Q = L U` with unit-lower-triangular `L` (diagonal-first
/// columns) and upper-triangular `U` (diagonal-last columns), where
/// `P` is the plan's static pre-pivot and `Q` its compiled ordering
/// (both the identity by default, in which case this is plainly
/// `A = L U`). [`Self::solve`] handles the permutations transparently:
/// it takes and returns vectors in the **original** coordinates of
/// `A`.
#[derive(Debug, Clone)]
pub struct LuFactor {
    l: CscMatrix,
    u: CscMatrix,
    /// Composed row gather `rperm[new] = old` (`P·Q`); `None` when no
    /// permutation was compiled. Shared with the producing plan
    /// (`Arc`), not copied per factor.
    rperm: Option<std::sync::Arc<[usize]>>,
    /// `irperm[old] = new`, shared likewise; present iff `rperm` is.
    irperm: Option<std::sync::Arc<[usize]>>,
    /// Column gather `cperm[new] = old` (`Q` alone); `None` whenever
    /// no *ordering* was compiled — in particular under a pre-pivot
    /// alone, where the column map is the identity — matching
    /// [`LuPlan::col_perm`]'s contract exactly (and skipping the
    /// then-pointless scatter pass in [`Self::solve`]).
    cperm: Option<std::sync::Arc<[usize]>>,
    /// MC64 scalings the factors were computed under (`Some` iff the
    /// plan compiled with [`LuPlan::with_mc64_scaling`]); solves apply
    /// `Dr` to the RHS and `Dc` to the solution so callers stay in
    /// unscaled original coordinates throughout.
    scaling: Option<ScalePair>,
    /// Numerical-health monitors, recorded only when the producing
    /// plan was compiled with profiling enabled.
    health: Option<LuHealth>,
    /// Which columns (if any) had their pivot statically perturbed.
    perturb: PerturbReport,
}

impl LuFactor {
    /// The unit lower-triangular factor (pivoted/ordered coordinates).
    pub fn l(&self) -> &CscMatrix {
        &self.l
    }

    /// The upper-triangular factor (pivoted/ordered coordinates).
    pub fn u(&self) -> &CscMatrix {
        &self.u
    }

    /// The column map the factors live under (`cperm[new] = old` —
    /// the ordering `Q`), or `None` for natural column order — the
    /// same contract as [`LuPlan::col_perm`], so a pre-pivot alone
    /// reports `None` here while [`Self::row_perm`] reports the row
    /// moves.
    pub fn col_perm(&self) -> Option<&[usize]> {
        self.cperm.as_deref()
    }

    /// The composed row map the factors live under (`rperm[new] =
    /// old`, the row of `A` that became row `new` of the factored
    /// system — pre-pivot and ordering combined), or `None` when no
    /// permutation is baked. Equal to [`Self::col_perm`] when no
    /// pre-pivot moved rows.
    pub fn row_perm(&self) -> Option<&[usize]> {
        self.rperm.as_deref()
    }

    /// Numerical-health monitors (pivot growth, min/max pivot,
    /// matched-diagonal quality) recorded during `factor()` —
    /// `Some` only when the plan was compiled with
    /// `SympilerOptions::profile`. For an on-demand computation on an
    /// unprofiled factor, see [`LuPlan::health_of`].
    pub fn health(&self) -> Option<&LuHealth> {
        self.health.as_ref()
    }

    /// The static pivot perturbations this factorization applied —
    /// empty unless the producing plan had perturbation enabled *and*
    /// at least one pivot fell below the threshold. A non-empty report
    /// means the factors belong to a nearby matrix; pair with
    /// [`Self::solve_refined`] to recover solutions of the original.
    pub fn perturb_report(&self) -> &PerturbReport {
        &self.perturb
    }

    /// Consume into `(L, U)`.
    pub fn into_parts(self) -> (CscMatrix, CscMatrix) {
        (self.l, self.u)
    }

    /// Solve `A x = b` in original coordinates: gather `b` through the
    /// composed row map (`Qᵀ·P·b`, scaled by `Dr` first when the plan
    /// compiled MC64 scaling), run `L y = Qᵀ·P·Dr·b` then `U z = y`,
    /// and scatter back through the column map, unscaling by `Dc`
    /// (`x = Dc·Q·z`). The permutation and scaling applications are
    /// O(n) gathers — no per-solve symbolic work of any kind.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.n_cols();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut x = vec![0.0f64; n];
        self.gather_rhs_into(b, &mut x);
        self.solve_in_factor_coords(&mut x);
        if self.cperm.is_none() && self.scaling.is_none() {
            return x;
        }
        let mut out = vec![0.0f64; n];
        self.scatter_solution_into(&x, &mut out);
        out
    }

    /// Map one RHS from original coordinates into factor coordinates:
    /// scale by `Dr` (when scaling is compiled) and gather through the
    /// composed row map. The scale factor multiplies the *original*
    /// row's entry — `x[new] = dr[old]·b[old]` for `old = rperm[new]`.
    fn gather_rhs_into(&self, b: &[f64], x: &mut [f64]) {
        match (&self.scaling, &self.rperm) {
            (None, None) => x.copy_from_slice(b),
            (None, Some(p)) => {
                for (d, &old) in x.iter_mut().zip(p.iter()) {
                    *d = b[old];
                }
            }
            (Some(s), None) => {
                for ((d, &v), &dr) in x.iter_mut().zip(b).zip(s.dr.iter()) {
                    *d = dr * v;
                }
            }
            (Some(s), Some(p)) => {
                for (d, &old) in x.iter_mut().zip(p.iter()) {
                    *d = s.dr[old] * b[old];
                }
            }
        }
    }

    /// Map one solved vector from factor coordinates back to original
    /// coordinates: scatter through the column map and unscale by `Dc`
    /// (the factored unknown is `Dc⁻¹x`, so `out[old] = dc[old]·z[new]`
    /// for `old = cperm[new]`).
    fn scatter_solution_into(&self, z: &[f64], out: &mut [f64]) {
        match (&self.scaling, &self.cperm) {
            (None, None) => out.copy_from_slice(z),
            (None, Some(q)) => {
                for (&v, &old) in z.iter().zip(q.iter()) {
                    out[old] = v;
                }
            }
            (Some(s), None) => {
                for ((o, &v), &dc) in out.iter_mut().zip(z).zip(s.dc.iter()) {
                    *o = dc * v;
                }
            }
            (Some(s), Some(q)) => {
                for (&v, &old) in z.iter().zip(q.iter()) {
                    out[old] = s.dc[old] * v;
                }
            }
        }
    }

    /// Solve `A X = B` for a block of right-hand sides stored
    /// column-major (`b[r*n..(r+1)*n]` is RHS `r`), returning the
    /// solutions in the same layout. The triangular sweeps are
    /// **blocked**: each factor column is loaded once per sweep and
    /// applied to every RHS while it is hot in cache, instead of
    /// re-streaming both factors per RHS the way an [`Self::solve`]
    /// loop would. Per RHS, the arithmetic order (including the skip
    /// of structurally-zero columns) is exactly [`Self::solve`]'s, so
    /// each returned column is bitwise identical to a one-at-a-time
    /// solve of that RHS.
    pub fn solve_multi(&self, b: &[f64], nrhs: usize) -> Vec<f64> {
        let n = self.l.n_cols();
        assert_eq!(b.len(), n * nrhs, "rhs block length mismatch");
        let mut x = vec![0.0f64; n * nrhs];
        for r in 0..nrhs {
            self.gather_rhs_into(&b[r * n..(r + 1) * n], &mut x[r * n..(r + 1) * n]);
        }
        // Forward: L has diagonal-first unit columns; the column's
        // rows/values are hoisted out of the RHS loop.
        let (col_ptr, row_idx, values) = (self.l.col_ptr(), self.l.row_idx(), self.l.values());
        for j in 0..n {
            let range = col_ptr[j] + 1..col_ptr[j + 1];
            let rows = &row_idx[range.clone()];
            let vals = &values[range];
            for r in 0..nrhs {
                let xr = &mut x[r * n..(r + 1) * n];
                let xj = xr[j]; // unit diagonal: no division
                if xj != 0.0 {
                    for (&i, &lij) in rows.iter().zip(vals) {
                        xr[i] -= lij * xj;
                    }
                }
            }
        }
        // Backward: U has diagonal-last columns.
        let (col_ptr, row_idx, values) = (self.u.col_ptr(), self.u.row_idx(), self.u.values());
        for j in (0..n).rev() {
            let range = col_ptr[j]..col_ptr[j + 1];
            let rows = &row_idx[range.start..range.end - 1];
            let vals = &values[range.start..range.end - 1];
            let pivot = values[range.end - 1];
            for r in 0..nrhs {
                let xr = &mut x[r * n..(r + 1) * n];
                let xj = xr[j] / pivot;
                xr[j] = xj;
                if xj != 0.0 {
                    for (&i, &uij) in rows.iter().zip(vals) {
                        xr[i] -= uij * xj;
                    }
                }
            }
        }
        if self.cperm.is_none() && self.scaling.is_none() {
            return x;
        }
        let mut out = vec![0.0f64; n * nrhs];
        for r in 0..nrhs {
            self.scatter_solution_into(&x[r * n..(r + 1) * n], &mut out[r * n..(r + 1) * n]);
        }
        out
    }

    /// [`Self::solve_multi`] over a slice of independent right-hand
    /// sides — packs them into one column-major block, runs the
    /// blocked sweeps, and unpacks. Each returned vector is bitwise
    /// identical to `self.solve(&rhs[r])`.
    ///
    /// ```
    /// use sympiler_core::{SympilerLu, SympilerOptions};
    /// use sympiler_sparse::gen;
    ///
    /// let a = gen::circuit_unsym(40, 4, 2, 7);
    /// let lu = SympilerLu::compile(&a, &SympilerOptions::default())?;
    /// let f = lu.factor(&a)?;
    ///
    /// let rhs = vec![vec![1.0; 40], vec![-2.0; 40]];
    /// let xs = f.solve_batch(&rhs);
    /// assert_eq!(xs[0], f.solve(&rhs[0]));
    /// assert_eq!(xs[1], f.solve(&rhs[1]));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_batch<S: AsRef<[f64]>>(&self, rhs: &[S]) -> Vec<Vec<f64>> {
        let n = self.l.n_cols();
        if n == 0 {
            return rhs.iter().map(|_| Vec::new()).collect();
        }
        let mut block = Vec::with_capacity(n * rhs.len());
        for r in rhs {
            assert_eq!(r.as_ref().len(), n, "rhs length mismatch");
            block.extend_from_slice(r.as_ref());
        }
        let flat = self.solve_multi(&block, rhs.len());
        flat.chunks(n).map(<[f64]>::to_vec).collect()
    }

    /// The two triangular sweeps, entirely in the factors' (ordered)
    /// coordinate system.
    fn solve_in_factor_coords(&self, x: &mut [f64]) {
        let n = self.l.n_cols();
        // Forward: L has diagonal-first unit columns.
        let (col_ptr, row_idx, values) = (self.l.col_ptr(), self.l.row_idx(), self.l.values());
        for j in 0..n {
            let range = col_ptr[j]..col_ptr[j + 1];
            let xj = x[j]; // unit diagonal: no division
            if xj != 0.0 {
                for (&i, &lij) in row_idx[range.start + 1..range.end]
                    .iter()
                    .zip(&values[range.start + 1..range.end])
                {
                    x[i] -= lij * xj;
                }
            }
        }
        // Backward: U has diagonal-last columns.
        let (col_ptr, row_idx, values) = (self.u.col_ptr(), self.u.row_idx(), self.u.values());
        for j in (0..n).rev() {
            let range = col_ptr[j]..col_ptr[j + 1];
            let xj = x[j] / values[range.end - 1];
            x[j] = xj;
            if xj != 0.0 {
                for (&i, &uij) in row_idx[range.start..range.end - 1]
                    .iter()
                    .zip(&values[range.start..range.end - 1])
                {
                    x[i] -= uij * xj;
                }
            }
        }
    }

    /// Solve `A x = b` for a **sparse** right-hand side, touching only
    /// the reach sets of `b`'s pattern on the factors' dependence
    /// graphs — the Gilbert–Peierls theory (§1.1) applied at solve
    /// time, with the same DFS machinery the symbolic LU inspection
    /// uses ([`sympiler_graph::dfs`]).
    ///
    /// Two reach computations schedule the two sweeps: the forward
    /// solve visits `Reach_{DG_L}(SP(b))`, the backward solve
    /// `Reach_{DG_U}` of the intermediate's pattern (edges of `DG_U`
    /// point *up*: column `j` of `U` feeds rows `i < j`). Arithmetic
    /// and pattern traversal are `O(|b| + flops of the pruned solve)`;
    /// only the dense scratch initialization is `O(n)`.
    ///
    /// Takes and returns **original** coordinates, exactly like
    /// [`Self::solve`]: under baked permutations the input pattern
    /// maps through the inverse row map (`(P·Q)⁻¹`) and the result
    /// pattern back through the column map (`Q`). The returned
    /// vector's pattern is the structural reach — entries that cancel
    /// numerically are stored as explicit zeros.
    pub fn solve_sparse(&self, b: &SparseVec) -> SparseVec {
        let n = self.l.n_cols();
        assert_eq!(b.dim(), n, "rhs dimension mismatch");
        let mut x = vec![0.0f64; n];
        // Pattern and values of Qᵀ·P·(Dr·b) in factor coordinates —
        // the row scaling (identity without compiled MC64 scaling)
        // touches values only, never the pattern.
        let dr = |i: usize| self.scaling.as_ref().map_or(1.0, |s| s.dr[i]);
        let beta: Vec<usize> = match &self.irperm {
            None => {
                for (i, v) in b.iter() {
                    x[i] = dr(i) * v;
                }
                b.indices().to_vec()
            }
            Some(ip) => {
                let mut idx: Vec<usize> = b.indices().iter().map(|&i| ip[i]).collect();
                for (&i, &v) in b.indices().iter().zip(b.values()) {
                    x[ip[i]] = dr(i) * v;
                }
                idx.sort_unstable();
                idx
            }
        };
        let mut ws = sympiler_graph::dfs::ReachWorkspace::new(n);
        let mut order: Vec<usize> = Vec::with_capacity(beta.len() * 4);
        // Forward: L y = Qᵀ b over Reach_{DG_L}(SP(b)), topological.
        sympiler_graph::dfs::reach_adjacency_into(
            n,
            &beta,
            |v| &self.l.col_rows(v)[1..],
            &mut ws,
            &mut order,
        );
        let (col_ptr, row_idx, values) = (self.l.col_ptr(), self.l.row_idx(), self.l.values());
        for &j in &order {
            let xj = x[j]; // unit diagonal
            if xj != 0.0 {
                for (&i, &lij) in row_idx[col_ptr[j] + 1..col_ptr[j + 1]]
                    .iter()
                    .zip(&values[col_ptr[j] + 1..col_ptr[j + 1]])
                {
                    x[i] -= lij * xj;
                }
            }
        }
        // Backward: U z = y over Reach_{DG_U}(SP(y)); U's columns
        // store the diagonal last, so the edge set of node v is every
        // stored row but the last.
        let beta_u = std::mem::take(&mut order);
        let mut order_u: Vec<usize> = Vec::with_capacity(beta_u.len() * 2);
        sympiler_graph::dfs::reach_adjacency_into(
            n,
            &beta_u,
            |v| {
                let rows = self.u.col_rows(v);
                &rows[..rows.len() - 1]
            },
            &mut ws,
            &mut order_u,
        );
        let (col_ptr, row_idx, values) = (self.u.col_ptr(), self.u.row_idx(), self.u.values());
        for &j in &order_u {
            let range = col_ptr[j]..col_ptr[j + 1];
            let xj = x[j] / values[range.end - 1];
            x[j] = xj;
            if xj != 0.0 {
                for (&i, &uij) in row_idx[range.start..range.end - 1]
                    .iter()
                    .zip(&values[range.start..range.end - 1])
                {
                    x[i] -= uij * xj;
                }
            }
        }
        // Gather the solution pattern back to original coordinates,
        // unscaling by Dc (the solution lives on the column side:
        // x = Dc·Q·z).
        let dc = |i: usize| self.scaling.as_ref().map_or(1.0, |s| s.dc[i]);
        let mut pairs: Vec<(usize, f64)> = match &self.cperm {
            None => order_u.iter().map(|&j| (j, dc(j) * x[j])).collect(),
            Some(q) => order_u.iter().map(|&j| (q[j], dc(q[j]) * x[j])).collect(),
        };
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let (indices, vals): (Vec<usize>, Vec<f64>) = pairs.into_iter().unzip();
        SparseVec::try_new(n, indices, vals).expect("reach emits unique in-range indices")
    }

    /// Solve `A x = b` with iterative refinement against the caller's
    /// **original** matrix: the direct [`Self::solve`], then
    /// residual/correction sweeps (`x += solve(b - A·x)`) until the
    /// componentwise backward error reaches `tol`, `max_iter`
    /// corrections have run, or the error stagnates. Returns the best
    /// iterate together with a [`RefineReport`].
    ///
    /// This is the recovery ladder's second rung: it repairs both
    /// static pivot perturbation ([`Self::perturb_report`]) and the
    /// element growth a pattern-only pre-pivot can admit — at the cost
    /// of a few O(nnz) sweeps, with **no** recompilation and no
    /// refactorization. `a` must be the matrix this factor was
    /// computed from (any same-pattern matrix is accepted; the report
    /// then describes backward error with respect to the matrix
    /// given).
    pub fn solve_refined(
        &self,
        a: &CscMatrix,
        b: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> (Vec<f64>, RefineReport) {
        refine_with(a, b, tol, max_iter, |rhs| self.solve(rhs))
    }

    /// Magnitude of `det(A)`: the product of `U`'s diagonal.
    pub fn det_magnitude(&self) -> f64 {
        (0..self.u.n_cols())
            .map(|j| {
                let vals = self.u.col_values(j);
                vals[vals.len() - 1].abs()
            })
            .product()
    }
}

impl LuPlan {
    /// Compile a plan for the square (generally unsymmetric) matrix
    /// `a` in its natural order. `low_level` enables the peeled update
    /// tier; `peel_col_count` is the peeling threshold (update columns
    /// with more than this many off-diagonal entries unroll, Figure
    /// 1e's rule applied to factorization updates).
    pub fn build(
        a: &CscMatrix,
        low_level: bool,
        peel_col_count: usize,
    ) -> Result<Self, LuPlanError> {
        Self::build_ordered(a, low_level, peel_col_count, Ordering::Natural)
    }

    /// Compile a plan with a fill-reducing ordering (no pre-pivot);
    /// see [`Self::build_pivoted`].
    pub fn build_ordered(
        a: &CscMatrix,
        low_level: bool,
        peel_col_count: usize,
        ordering: Ordering,
    ) -> Result<Self, LuPlanError> {
        Self::build_pivoted(a, low_level, peel_col_count, ordering, PrePivot::Off)
    }

    /// Compile a plan with a static pre-pivot and a fill-reducing
    /// ordering. Both are pure symbolic-phase decisions: the row
    /// matching `P` (maximum transversal / weighted matching) and the
    /// ordering `Q` are computed once here, the symbolic factorization
    /// runs on `Qᵀ·P·A·Q`, and the composed gather maps are baked into
    /// the plan — [`Self::factor`] still takes the **original** matrix
    /// and pays no per-factorization permutation cost. A
    /// [`LuPlanError::ZeroPivot`] column index is reported in
    /// pivoted + ordered coordinates (the coordinates of the factors
    /// themselves); a structurally singular pattern fails here, at
    /// compile time, with [`LuPlanError::StructurallySingular`].
    pub fn build_pivoted(
        a: &CscMatrix,
        low_level: bool,
        peel_col_count: usize,
        ordering: Ordering,
        pre_pivot: PrePivot,
    ) -> Result<Self, LuPlanError> {
        Self::build_profiled(
            a,
            low_level,
            peel_col_count,
            ordering,
            pre_pivot,
            Arc::new(Profiler::disabled()),
        )
    }

    /// [`Self::build_pivoted`] with an observability sink attached:
    /// compile stages land on the profiler as `compile: ...` spans,
    /// inspection-set sizes as `sets.*` gauges, and every execution
    /// tier built from the plan records its numeric-phase spans,
    /// counters, and health monitors into the same trace. Passing
    /// `Profiler::disabled()` (what [`Self::build_pivoted`] does)
    /// makes all of that a no-op.
    pub fn build_profiled(
        a: &CscMatrix,
        low_level: bool,
        peel_col_count: usize,
        ordering: Ordering,
        pre_pivot: PrePivot,
        profiler: Arc<Profiler>,
    ) -> Result<Self, LuPlanError> {
        if !a.is_square() {
            return Err(LuPlanError::BadInput("matrix must be square".into()));
        }
        let n = a.n_cols();
        // Schedule entries pack a column index with the peel tag in bit
        // 31, and factor rows narrow to u32 — reject orders where that
        // packing would silently corrupt instead of erroring.
        if n >= (1 << 31) {
            return Err(LuPlanError::BadInput(format!(
                "matrix order {n} exceeds the plan's 2^31 - 1 index limit"
            )));
        }
        let mut report = SymbolicReport::default();

        // --- Inspection: static pre-pivot (row matching) and
        // fill-reducing ordering (both resolved once), then per-column
        // reach sets (Gilbert–Peierls symbolic factorization) of the
        // pivoted + ordered pattern.
        let sets = timed_traced(
            &mut report,
            &profiler,
            "inspect: pre-pivot + ordering + LU reach sets (DFS)",
            || LuVIPruneInspector.inspect_pivoted(a, ordering, pre_pivot),
        );
        let sets = sets.map_err(|e| match e {
            sympiler_sparse::SparseError::StructurallySingular { n, structural_rank } => {
                LuPlanError::StructurallySingular { n, structural_rank }
            }
            other => LuPlanError::BadInput(format!("inspection: {other}")),
        })?;
        let baked = match (&sets.row_perm, &sets.col_perm) {
            (None, None) => None,
            (rowp, q) => {
                // Compose: row new of the factored system is row
                // rowp[q[new]] of A; the column side is q alone.
                // Inverting through the sparse helper doubles as the
                // bijection check every permutation must pass.
                let identity: Vec<usize>;
                let q = match q {
                    Some(q) => &q[..],
                    None => {
                        identity = (0..n).collect();
                        &identity[..]
                    }
                };
                let rperm: Vec<usize> = match rowp {
                    Some(p) => q.iter().map(|&jq| p[jq]).collect(),
                    None => q.to_vec(),
                };
                let irperm = sympiler_sparse::ops::inverse_permutation(&rperm)
                    .expect("composed row map is a valid permutation");
                Some(BakedPerm {
                    rperm: rperm.into(),
                    irperm: irperm.into(),
                    cperm: q.to_vec().into(),
                })
            }
        };
        // The deterministic pre-pivot quality stat: how many compiled
        // pivot positions are structurally present in A. Any
        // successful matching makes this n; Off on a zero-diag
        // pattern leaves it short.
        let matched_diag = match &baked {
            None => n - sympiler_sparse::ops::structurally_zero_diagonals(a),
            Some(bp) => (0..n)
                .filter(|&j| a.find(bp.rperm[j], bp.cperm[j]).is_some())
                .count(),
        };
        let sym = sets.symbolic;
        report.set_size("nnz(A)", a.nnz());
        report.set_size("nnz(L)", sym.l_nnz());
        report.set_size("nnz(U)", sym.u_nnz());
        report.set_size("update ops", sym.reach_cols.len());

        // --- Transform + pack: bake the schedule with the low-level
        // tier decision resolved per update (VI-Prune made executable).
        let (upd_ptr, upd_cols) = timed_traced(
            &mut report,
            &profiler,
            "transform + pack (schedule)",
            || {
                let mut upd_ptr = Vec::with_capacity(n + 1);
                let mut upd_cols = Vec::with_capacity(sym.reach_cols.len());
                upd_ptr.push(0usize);
                for j in 0..n {
                    for &k in sym.reach(j) {
                        let heavy = sym.l_col_pattern(k).len() - 1 > peel_col_count;
                        let tag = if low_level && heavy { PEEL_BIT } else { 0 };
                        upd_cols.push(k as u32 | tag);
                    }
                    upd_ptr.push(upd_cols.len());
                }
                (upd_ptr, upd_cols)
            },
        );
        report.set_size(
            "peeled updates",
            upd_cols.iter().filter(|&&c| c & PEEL_BIT != 0).count(),
        );

        let flops = sym.factor_flops();
        let col_flops = sym.per_column_flops();
        report.export_gauges(&profiler);
        Ok(Self {
            n,
            a_nnz: a.nnz(),
            a_col_ptr: a.col_ptr().to_vec(),
            a_row_idx: a.row_idx().iter().map(|&r| r as u32).collect(),
            ordering,
            pre_pivot,
            matched_diag,
            perturb_tol: 0.0,
            baked,
            scaling: None,
            l_col_ptr: sym.l_col_ptr,
            l_row_idx: sym.l_row_idx.iter().map(|&r| r as u32).collect(),
            u_col_ptr: sym.u_col_ptr,
            u_row_idx: sym.u_row_idx.iter().map(|&r| r as u32).collect(),
            upd_ptr,
            upd_cols,
            flops,
            col_flops,
            report,
            profiler,
        })
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Predicted nonzeros of `L`.
    pub fn l_nnz(&self) -> usize {
        self.l_row_idx.len()
    }

    /// Predicted nonzeros of `U`.
    pub fn u_nnz(&self) -> usize {
        self.u_row_idx.len()
    }

    /// Exact factorization flops.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Number of scheduled column updates.
    pub fn n_updates(&self) -> usize {
        self.upd_cols.len()
    }

    /// Number of updates compiled to the peeled (unrolled) tier.
    pub fn n_peeled(&self) -> usize {
        self.upd_cols.iter().filter(|&&c| c & PEEL_BIT != 0).count()
    }

    /// The ordering strategy this plan was compiled with.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// The pre-pivoting strategy this plan was compiled with.
    pub fn pre_pivot(&self) -> PrePivot {
        self.pre_pivot
    }

    /// Enable SuperLU_DIST-style static pivot perturbation: during a
    /// factorization of `a`, any pivot with `|pivot| < tol · max|A
    /// values|` is replaced by `±tol · max|A values|` (keeping its
    /// sign; `+` for an exact zero), the column is recorded in the
    /// factor's [`PerturbReport`], and factorization continues. The
    /// perturbed factors solve a nearby system — follow with
    /// [`LuFactor::solve_refined`]. `tol = 0.0` (the default) turns
    /// the mechanism off, leaving every numeric path bitwise
    /// unchanged. Applies to all execution tiers built from this plan.
    pub fn with_pivot_perturbation(mut self, tol: f64) -> Self {
        assert!(
            tol >= 0.0 && tol.is_finite(),
            "perturbation tolerance must be finite and non-negative"
        );
        self.perturb_tol = tol;
        self
    }

    /// The configured perturbation tolerance (0 when off).
    pub fn pivot_perturbation(&self) -> f64 {
        self.perturb_tol
    }

    /// Finish MC64: compile row/column equilibration scalings derived
    /// from the weighted-matching dual potentials of `a` into the
    /// plan. The factored system becomes `Qᵀ·P·(Dr·A·Dc)·Q` — every
    /// matched diagonal is scaled to exactly 1 and every entry to
    /// magnitude ≤ 1, which is what collapses pivot growth from ~1e8
    /// to O(1) on zero-diagonal problems. Like the baked permutations,
    /// the scalings are a pure compile-time decision folded into the
    /// numeric scatter (`B[i, j] = dr[r]·A[r, c]·dc[c]`): a scaled
    /// factorization costs zero extra passes over the data, and
    /// [`LuFactor::solve`]/[`LuFactor::solve_sparse`]/
    /// [`LuFactor::solve_batch`] unscale transparently, staying in
    /// original coordinates ([`LuFactor::solve_refined`] composes
    /// through `solve` automatically).
    ///
    /// The scalings are computed from `a`'s *values* here, once;
    /// later `factor` calls on same-pattern matrices with different
    /// values reuse them (the usual static-MC64 contract — re-compile
    /// to re-equilibrate). Pairs naturally with `PrePivot::
    /// WeightedMatching` (the duals then belong to the baked
    /// matching), but is valid under any compiled permutation — the
    /// `≤ 1` entry bound holds regardless, which is what the growth
    /// monitors and perturbation thresholds rely on.
    pub fn with_mc64_scaling(mut self, a: &CscMatrix) -> Result<Self, LuPlanError> {
        self.check_pattern(a)?;
        let scaled =
            sympiler_graph::transversal::weighted_matching_scaled(a).map_err(|e| match e {
                sympiler_sparse::SparseError::StructurallySingular { n, structural_rank } => {
                    LuPlanError::StructurallySingular { n, structural_rank }
                }
                other => LuPlanError::BadInput(format!("mc64 scaling: {other}")),
            })?;
        self.scaling = Some(ScalePair {
            dr: scaled.row_scale.into(),
            dc: scaled.col_scale.into(),
        });
        Ok(self)
    }

    /// The compiled MC64 scalings `(Dr, Dc)` in original coordinates,
    /// or `None` when scaling is off.
    pub fn mc64_scaling(&self) -> Option<(&[f64], &[f64])> {
        self.scaling.as_ref().map(|s| (&s.dr[..], &s.dc[..]))
    }

    /// The magnitude of `A[i, j]` as the compiled numeric phase sees
    /// it — scaled by `dr[i]·dc[j]` when MC64 scaling is compiled,
    /// plain `|v|` otherwise. Indices are original coordinates.
    fn scaled_abs(&self, i: usize, j: usize, v: f64) -> f64 {
        match &self.scaling {
            None => v.abs(),
            Some(s) => (s.dr[i] * v * s.dc[j]).abs(),
        }
    }

    /// Max entry magnitude of `a` as the numeric phase sees it (the
    /// scaled matrix when scaling is compiled) — the reference value
    /// for pivot-perturbation thresholds and growth monitors.
    fn max_abs_compiled(&self, a: &CscMatrix) -> f64 {
        match &self.scaling {
            None => a.values().iter().fold(0.0f64, |m, v| m.max(v.abs())),
            Some(_) => {
                let mut m = 0.0f64;
                for j in 0..a.n_cols() {
                    for (i, v) in a.col_iter(j) {
                        m = m.max(self.scaled_abs(i, j, v));
                    }
                }
                m
            }
        }
    }

    /// The absolute replacement threshold for one factorization of
    /// `a`: `perturb_tol · max|A values|` (0 when perturbation is off
    /// — the column kernels' `|pivot| < 0` guard then never fires).
    pub(crate) fn perturb_threshold(&self, a: &CscMatrix) -> f64 {
        if self.perturb_tol == 0.0 {
            return 0.0;
        }
        self.perturb_tol * self.max_abs_compiled(a)
    }

    /// The compiled ordering `Q` (`perm[new] = old`), or `None` for
    /// natural order.
    pub fn col_perm(&self) -> Option<&[usize]> {
        self.baked
            .as_ref()
            .filter(|_| self.ordering != Ordering::Natural)
            .map(|b| &b.cperm[..])
    }

    /// The composed row map (`rperm[new] = old`, pre-pivot and
    /// ordering combined), or `None` when neither knob moved anything.
    /// Equal to [`Self::col_perm`] when no pre-pivot moved rows.
    pub fn row_perm(&self) -> Option<&[usize]> {
        self.baked.as_ref().map(|b| &b.rperm[..])
    }

    /// Count of columns whose compiled pivot position `(rperm[j],
    /// cperm[j])` is structurally present in `A` — `n` after any
    /// successful pre-pivot, short of `n` exactly when the numeric
    /// phase is guaranteed to hit [`LuPlanError::ZeroPivot`].
    /// Deterministic (pattern + knobs only), so it gates pre-pivot
    /// quality in CI the way fill gain gates ordering quality.
    pub fn matched_diagonals(&self) -> usize {
        self.matched_diag
    }

    /// Count of rows the static pre-pivot moved: positions where the
    /// composed row map differs from the column map. Zero without a
    /// pre-pivot (or on its identity fast path).
    pub fn moved_rows(&self) -> usize {
        match &self.baked {
            None => 0,
            Some(b) => (0..self.n).filter(|&j| b.rperm[j] != b.cperm[j]).count(),
        }
    }

    /// Fill ratio `nnz(L + U) / nnz(A)` of the compiled factorization
    /// (diagonal counted once) — the headline number a fill-reducing
    /// ordering exists to shrink.
    pub fn fill_ratio(&self) -> f64 {
        if self.a_nnz == 0 {
            return 0.0;
        }
        (self.l_nnz() + self.u_nnz() - self.n) as f64 / self.a_nnz as f64
    }

    /// Exact per-column factorization flops (sums to [`Self::flops`]).
    pub fn per_column_flops(&self) -> &[u64] {
        &self.col_flops
    }

    /// The observability sink attached at compile time — disabled (a
    /// no-op) unless the plan was built via [`Self::build_profiled`]
    /// with an enabled profiler.
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.profiler
    }

    /// Symbolic (compile-time) report.
    pub fn report(&self) -> &SymbolicReport {
        &self.report
    }

    /// The update schedule of column `j` (peel tags stripped).
    pub fn schedule(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        self.upd_cols[self.upd_ptr[j]..self.upd_ptr[j + 1]]
            .iter()
            .map(|&c| (c & !PEEL_BIT) as usize)
    }

    /// The update schedule of column `j` with the compiled low-level
    /// tier decision per update.
    fn schedule_with_tiers(&self, j: usize) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.upd_cols[self.upd_ptr[j]..self.upd_ptr[j + 1]]
            .iter()
            .map(|&c| ((c & !PEEL_BIT) as usize, c & PEEL_BIT != 0))
    }

    /// Check that `a` carries exactly the compiled sparsity pattern
    /// (shared by the serial and parallel numeric phases).
    pub(crate) fn check_pattern(&self, a: &CscMatrix) -> Result<(), LuPlanError> {
        if a.n_cols() != self.n || a.nnz() != self.a_nnz {
            return Err(LuPlanError::PatternMismatch);
        }
        if a.col_ptr() != self.a_col_ptr.as_slice()
            || a.row_idx()
                .iter()
                .zip(&self.a_row_idx)
                .any(|(&r, &c)| r as u32 != c)
        {
            return Err(LuPlanError::PatternMismatch);
        }
        Ok(())
    }

    /// Assemble the factor object from filled value arrays laid out by
    /// the compiled patterns, carrying the baked permutations so the
    /// factor's `solve` speaks original coordinates.
    pub(crate) fn assemble(&self, lx: Vec<f64>, ux: Vec<f64>) -> LuFactor {
        let l = CscMatrix::from_parts_unchecked(
            self.n,
            self.n,
            self.l_col_ptr.clone(),
            self.l_row_idx.iter().map(|&r| r as usize).collect(),
            lx,
        );
        let u = CscMatrix::from_parts_unchecked(
            self.n,
            self.n,
            self.u_col_ptr.clone(),
            self.u_row_idx.iter().map(|&r| r as usize).collect(),
            ux,
        );
        LuFactor {
            l,
            u,
            rperm: self.baked.as_ref().map(|b| b.rperm.clone()),
            irperm: self.baked.as_ref().map(|b| b.irperm.clone()),
            // One contract with `LuPlan::col_perm`: the column map is
            // only reported (and only applied in solves) when an
            // ordering actually reordered columns.
            cperm: self
                .baked
                .as_ref()
                .filter(|_| self.ordering != Ordering::Natural)
                .map(|b| b.cperm.clone()),
            scaling: self.scaling.clone(),
            health: None,
            perturb: PerturbReport::default(),
        }
    }

    /// [`Self::assemble`] plus the profiling-only epilogue shared by
    /// all three execution tiers: when the profiler is enabled,
    /// compute the numerical-health monitors from the filled `U`
    /// values, record them as `health.*` gauges, and surface them on
    /// the factor. With profiling off this *is* `assemble` — no health
    /// pass runs, and the factor value arrays are untouched either
    /// way, so results stay bitwise identical.
    pub(crate) fn finish(
        &self,
        a: &CscMatrix,
        lx: Vec<f64>,
        ux: Vec<f64>,
        perturb: PerturbReport,
    ) -> LuFactor {
        let health = if self.profiler.is_enabled() {
            let h = self.compute_health(a, &ux);
            self.profiler.gauge("health.growth", h.growth);
            self.profiler.gauge("health.min_pivot", h.min_pivot);
            self.profiler.gauge("health.max_pivot", h.max_pivot);
            self.profiler
                .gauge("health.min_matched_diag", h.min_matched_diag);
            Some(h)
        } else {
            None
        };
        if !perturb.is_empty() {
            self.profiler
                .counter("lu.perturbed_cols")
                .add(perturb.count() as u64);
        }
        let mut f = self.assemble(lx, ux);
        f.health = health;
        f.perturb = perturb;
        f
    }

    /// Numerical-health monitors of a completed factorization of `a`
    /// by this plan: element growth `max|U| / max|A|`, min/max pivot
    /// magnitude on `U`'s diagonal, and the smallest magnitude the
    /// static matching placed on the diagonal (`min_j |A[rperm[j],
    /// cperm[j]]|`). Works on any factor the plan produced, profiled
    /// or not — `lu_compare` uses it to put recorded growth numbers in
    /// the comparison table.
    pub fn health_of(&self, a: &CscMatrix, f: &LuFactor) -> LuHealth {
        self.compute_health(a, f.u().values())
    }

    fn compute_health(&self, a: &CscMatrix, ux: &[f64]) -> LuHealth {
        // Growth is measured against the matrix the numeric phase
        // actually factored — the scaled one when scaling is compiled.
        let max_abs_a = self.max_abs_compiled(a);
        let max_abs_u = ux.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let mut min_pivot = f64::INFINITY;
        let mut max_pivot = 0.0f64;
        for j in 0..self.n {
            let p = ux[self.u_col_ptr[j + 1] - 1].abs();
            min_pivot = min_pivot.min(p);
            max_pivot = max_pivot.max(p);
        }
        let mut min_matched_diag = f64::INFINITY;
        for j in 0..self.n {
            let (r, c) = match &self.baked {
                None => (j, j),
                Some(bp) => (bp.rperm[j], bp.cperm[j]),
            };
            let v = a
                .find(r, c)
                .map_or(0.0, |p| self.scaled_abs(r, c, a.values()[p]));
            min_matched_diag = min_matched_diag.min(v);
        }
        if self.n == 0 {
            min_pivot = 0.0;
            min_matched_diag = 0.0;
        }
        LuHealth {
            max_abs_a,
            max_abs_u,
            growth: if max_abs_a > 0.0 {
                max_abs_u / max_abs_a
            } else {
                0.0
            },
            min_pivot,
            max_pivot,
            min_matched_diag,
        }
    }

    /// Scatter column `j` of the compiled system into a dense
    /// accumulator: `A(:, j)` directly when nothing is baked, or
    /// column `cperm[j]` of the caller's original matrix with rows
    /// mapped through the inverse row map under baked permutations
    /// (`B[i, j] = A[rperm[i], cperm[j]]`). Shared by the per-column
    /// kernel below and the supernodal plan's panel scatter.
    pub(crate) fn scatter_a_column(&self, j: usize, a: &CscMatrix, x: &mut [f64]) {
        // With compiled MC64 scaling, entries are multiplied by
        // dr[row]·dc[col] (original coordinates) as they scatter —
        // the diagonal scaling matrices never materialize. The
        // expression shape `dr·v·dc` (left-to-right) is fixed: the
        // batched kernel evaluates the identical sequence so scaled
        // batch factors stay bitwise equal to one-at-a-time ones.
        match (&self.baked, &self.scaling) {
            (None, None) => {
                for (i, v) in a.col_iter(j) {
                    x[i] = v;
                }
            }
            (None, Some(s)) => {
                let dcj = s.dc[j];
                for (i, v) in a.col_iter(j) {
                    x[i] = s.dr[i] * v * dcj;
                }
            }
            (Some(bp), None) => {
                for (i, v) in a.col_iter(bp.cperm[j]) {
                    x[bp.irperm[i]] = v;
                }
            }
            (Some(bp), Some(s)) => {
                let oc = bp.cperm[j];
                let dcj = s.dc[oc];
                for (i, v) in a.col_iter(oc) {
                    x[bp.irperm[i]] = s.dr[i] * v * dcj;
                }
            }
        }
    }

    /// The per-column numeric solve shared by the serial and parallel
    /// executors: scatter `A(:, j)`, apply the baked update schedule in
    /// topological order, gather `U(:, j)`/`L(:, j)` through the fixed
    /// layouts, and clear the accumulator back to zero. `thresh` is
    /// the absolute pivot-perturbation threshold for this
    /// factorization ([`Self::perturb_threshold`]); a pivot below it
    /// is replaced by the signed threshold and reported as
    /// [`PivotStatus::Perturbed`]. Returns [`PivotStatus::Zero`] on a
    /// zero pivot with perturbation off; the column's values are still
    /// written (division by zero is IEEE-defined), so a parallel
    /// caller may keep going and report the error after the fact.
    ///
    /// Keeping this in one place is what makes the parallel plan
    /// **bitwise deterministic**: every executor performs the exact
    /// same operation sequence per column, whatever the thread count.
    ///
    /// # Safety
    /// `lx` and `ux` must point to the plan's full factor value arrays
    /// (`l_nnz()` / `u_nnz()` elements). The caller must guarantee that
    /// (a) no other thread accesses column `j`'s value ranges during
    /// the call, and (b) every update column scheduled for `j` has been
    /// fully written and synchronized before the call. In-order serial
    /// execution satisfies both trivially; the level-scheduled parallel
    /// executor satisfies them with barrier-separated levels and
    /// per-thread column ownership. `x` must be an all-zeros dense
    /// accumulator of length `n` (restored to zeros before returning).
    pub(crate) unsafe fn column_numeric(
        &self,
        j: usize,
        a: &CscMatrix,
        x: &mut [f64],
        lx: *mut f64,
        ux: *mut f64,
        thresh: f64,
    ) -> PivotStatus {
        // Scatter A(:, j) (fixed pattern, numeric-only). Under a baked
        // ordering, column j of Qᵀ A Q is column perm[j] of the
        // caller's original matrix with rows mapped through Q⁻¹ — the
        // permutation is applied here, inside the scatter the column
        // solve performs anyway, so ordered plans pay zero extra
        // passes over the data.
        self.scatter_a_column(j, a, x);
        // Apply the baked update schedule in topological order.
        for &tagged in &self.upd_cols[self.upd_ptr[j]..self.upd_ptr[j + 1]] {
            let k = (tagged & !PEEL_BIT) as usize;
            let xk = x[k];
            let range = self.l_col_ptr[k] + 1..self.l_col_ptr[k + 1];
            let rows = &self.l_row_idx[range.clone()];
            // SAFETY: column k precedes j in the schedule, so by the
            // caller's contract its values are final and no thread
            // writes them concurrently.
            let vals = std::slice::from_raw_parts(lx.add(range.start), range.len());
            if tagged & PEEL_BIT != 0 {
                // Peeled tier: no zero guard (the reach set
                // guarantees structural work), unrolled by two.
                let mut t = 0;
                while t + 1 < rows.len() {
                    let (r0, r1) = (rows[t] as usize, rows[t + 1] as usize);
                    let (v0, v1) = (vals[t], vals[t + 1]);
                    x[r0] -= v0 * xk;
                    x[r1] -= v1 * xk;
                    t += 2;
                }
                if t < rows.len() {
                    x[rows[t] as usize] -= vals[t] * xk;
                }
            } else if xk != 0.0 {
                for (&r, &v) in rows.iter().zip(vals) {
                    x[r as usize] -= v * xk;
                }
            }
        }
        // Gather U(:, j) through the fixed layout; diagonal last.
        let u_range = self.u_col_ptr[j]..self.u_col_ptr[j + 1];
        for p in u_range.clone() {
            *ux.add(p) = x[self.u_row_idx[p] as usize];
        }
        let mut pivot = *ux.add(u_range.end - 1);
        let mut status = PivotStatus::Clean;
        // Static perturbation: with thresh == 0.0 (perturbation off)
        // the strict `<` can never hold, so this branch compiles to
        // the historical code path bit for bit.
        if pivot.abs() < thresh {
            pivot = if pivot.is_sign_negative() {
                -thresh
            } else {
                thresh
            };
            *ux.add(u_range.end - 1) = pivot;
            status = PivotStatus::Perturbed;
        } else if pivot == 0.0 {
            status = PivotStatus::Zero;
        }
        // Gather L(:, j): unit diagonal, scaled sub-diagonal.
        let l_range = self.l_col_ptr[j]..self.l_col_ptr[j + 1];
        *lx.add(l_range.start) = 1.0;
        for p in l_range.start + 1..l_range.end {
            *lx.add(p) = x[self.l_row_idx[p] as usize] / pivot;
        }
        // Clear the accumulator (touch only the column's pattern).
        for p in u_range {
            x[self.u_row_idx[p] as usize] = 0.0;
        }
        for p in l_range.start + 1..l_range.end {
            x[self.l_row_idx[p] as usize] = 0.0;
        }
        status
    }

    /// Numeric factorization — no DFS, no allocation besides the factor
    /// value arrays and one dense accumulator, no pivot search.
    ///
    /// Allocates a fresh dense accumulator per call; a caller
    /// factoring in a loop (or a serving worker) should hold a
    /// [`LuWorkspace`] and use [`Self::factor_with`] to skip that
    /// `O(n)` allocation. Same-pattern streams go faster still through
    /// [`Self::factor_batch`].
    pub fn factor(&self, a: &CscMatrix) -> Result<LuFactor, LuPlanError> {
        self.factor_with(a, &mut LuWorkspace::new())
    }

    /// [`Self::factor`] against a caller-held [`LuWorkspace`]: the
    /// plan stays immutable (`&self`, freely shared behind an `Arc`
    /// across threads), all mutable per-factorization state lives in
    /// `ws`. Results are bitwise identical to [`Self::factor`] — the
    /// workspace only replaces the accumulator allocation, never the
    /// operation order.
    pub fn factor_with(
        &self,
        a: &CscMatrix,
        ws: &mut LuWorkspace,
    ) -> Result<LuFactor, LuPlanError> {
        self.check_pattern(a)?;
        let n = self.n;
        let mut lx = vec![0.0f64; self.l_row_idx.len()];
        let mut ux = vec![0.0f64; self.u_row_idx.len()];
        let x = ws.ensure(n);
        let thresh = self.perturb_threshold(a);
        let mut perturbed: Vec<usize> = Vec::new();

        // Instrumentation is purely observational (counts baked
        // pattern sizes, touches no numeric state), so profiled and
        // unprofiled runs produce bitwise-identical factors.
        let prof = &*self.profiler;
        let enabled = prof.is_enabled();
        let span = if enabled {
            prof.begin(0, "factor:serial")
        } else {
            None
        };
        let mut flops_done = 0u64;
        let mut scatter_elems = 0u64;
        let mut gather_elems = 0u64;

        for j in 0..n {
            // SAFETY: single-threaded in-order execution — every
            // scheduled update column is already final, and column j's
            // value ranges are written exactly once, here.
            let status =
                unsafe { self.column_numeric(j, a, x, lx.as_mut_ptr(), ux.as_mut_ptr(), thresh) };
            match status {
                PivotStatus::Clean => {}
                PivotStatus::Perturbed => perturbed.push(j),
                PivotStatus::Zero => {
                    prof.end(span);
                    return Err(LuPlanError::ZeroPivot { column: j });
                }
            }
            if enabled {
                flops_done += self.col_flops[j];
                let oc = match &self.baked {
                    None => j,
                    Some(bp) => bp.cperm[j],
                };
                scatter_elems += (self.a_col_ptr[oc + 1] - self.a_col_ptr[oc]) as u64;
                gather_elems += (self.l_col_ptr[j + 1] - self.l_col_ptr[j] + self.u_col_ptr[j + 1]
                    - self.u_col_ptr[j]) as u64;
            }
        }

        if enabled {
            prof.counter("flops.scalar").add(flops_done);
            prof.counter("scalar.scatter_elems").add(scatter_elems);
            prof.counter("scalar.gather_elems").add(gather_elems);
            prof.end_with(span, &[("flops", flops_done as f64)]);
        }
        Ok(self.finish(
            a,
            lx,
            ux,
            PerturbReport {
                columns: perturbed,
                threshold: thresh,
            },
        ))
    }

    /// Factor a batch of **same-pattern** matrices in one fused pass
    /// over the compiled schedule — the structure-of-arrays layout the
    /// serving tier batches for. Factor values and the accumulator are
    /// stored entry-major (`value[p]` holds the batch's `B` copies of
    /// nonzero `p`, contiguously), and the numeric sweep walks columns
    /// once: every schedule entry, row index, and column bound is
    /// decoded **once per batch** instead of once per matrix, and the
    /// inner loop over the batch is unit-stride over adjacent values —
    /// exactly the per-entry bookkeeping the scalar kernel re-pays per
    /// matrix, amortized away.
    ///
    /// Per matrix, the arithmetic sequence is exactly [`Self::factor`]'s
    /// (same operations, same order — lanes are fully independent), so
    /// every returned factor is **bitwise identical** to factoring
    /// that matrix alone. The batch is all-or-nothing: the first zero
    /// pivot (in column order, then batch order) aborts with a
    /// [`BatchError`] naming the offending matrix and no factors are
    /// returned.
    ///
    /// ```
    /// use sympiler_core::plan::lu::LuPlan;
    /// use sympiler_sparse::gen;
    ///
    /// let a = gen::circuit_unsym(40, 4, 2, 7);
    /// let plan = LuPlan::build(&a, true, 2)?;
    ///
    /// // Three same-pattern matrices with different values.
    /// let mut mats = vec![a.clone(), a.clone(), a.clone()];
    /// for (k, m) in mats.iter_mut().enumerate() {
    ///     for v in m.values_mut() {
    ///         *v *= 1.0 + 0.25 * k as f64;
    ///     }
    /// }
    /// let refs: Vec<&_> = mats.iter().collect();
    /// let factors = plan.factor_batch(&refs)?;
    ///
    /// // Bitwise identical to the one-at-a-time loop.
    /// for (m, f) in mats.iter().zip(&factors) {
    ///     let single = plan.factor(m)?;
    ///     assert_eq!(single.l().values(), f.l().values());
    ///     assert_eq!(single.u().values(), f.u().values());
    /// }
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn factor_batch(&self, mats: &[&CscMatrix]) -> Result<Vec<LuFactor>, BatchError> {
        for (b, a) in mats.iter().enumerate() {
            self.check_pattern(a)
                .map_err(|error| BatchError { index: b, error })?;
        }
        let bsz = mats.len();
        if bsz == 0 {
            return Ok(Vec::new());
        }
        let n = self.n;
        let l_nnz = self.l_row_idx.len();
        let u_nnz = self.u_row_idx.len();
        // Entry-major SoA arenas: slot `p * bsz + b` is nonzero `p` of
        // matrix `b`. The accumulator interleaves the same way.
        let mut lxs = vec![0.0f64; l_nnz * bsz];
        let mut uxs = vec![0.0f64; u_nnz * bsz];
        let mut x = vec![0.0f64; n * bsz];
        // The multiplier row of the update being applied (x[k] may
        // itself still accumulate later updates of a *different*
        // column, but reads and writes within one update never alias —
        // copying it out keeps the borrow checker and the kernel both
        // simple).
        let mut xk = vec![0.0f64; bsz];
        let mut failed: Option<(usize, usize)> = None; // (column, batch)
                                                       // Per-lane perturbation thresholds (all 0.0 — and therefore
                                                       // bitwise inert — when perturbation is off).
        let threshs: Vec<f64> = mats.iter().map(|m| self.perturb_threshold(m)).collect();
        let mut perturbed: Vec<Vec<usize>> = vec![Vec::new(); bsz];

        let prof = &*self.profiler;
        let enabled = prof.is_enabled();
        let span = if enabled {
            prof.begin(0, "factor:batch")
        } else {
            None
        };

        // The sweep mirrors `column_numeric` with raw pointers (the
        // safe-slicing version re-pays a bounds check per entry per
        // lane group, which is exactly the bookkeeping batching exists
        // to amortize). SAFETY throughout: all offsets come from the
        // compiled layouts, which index `n` lanes of width `bsz` in
        // arenas allocated above with those exact extents; `check_
        // pattern` pinned every matrix to the compiled `a` layout, so
        // `a_col_ptr`/`a_row_idx` positions are in range for each
        // `m.values()`; update reads (`lxs` columns k < j) never alias
        // update writes (`x` lanes), and each factor slot is written
        // exactly once, in column order.
        let xp = x.as_mut_ptr();
        let lxp = lxs.as_mut_ptr();
        let uxp = uxs.as_mut_ptr();
        let xkp = xk.as_mut_ptr();
        let mvals: Vec<*const f64> = mats.iter().map(|m| m.values().as_ptr()).collect();
        'columns: for j in 0..n {
            unsafe {
                // Scatter A(:, j) of every matrix: indices (and any
                // baked permutation lookups) resolved once, values
                // fanned out to the batch lanes.
                let (oc, irperm) = match &self.baked {
                    None => (j, None),
                    Some(bp) => (bp.cperm[j], Some(&bp.irperm)),
                };
                match &self.scaling {
                    None => {
                        for p in self.a_col_ptr[oc]..self.a_col_ptr[oc + 1] {
                            let i = self.a_row_idx[p] as usize;
                            let i = irperm.map_or(i, |ip| ip[i]);
                            let lane = xp.add(i * bsz);
                            for (b, m) in mvals.iter().enumerate() {
                                *lane.add(b) = *m.add(p);
                            }
                        }
                    }
                    Some(s) => {
                        // Same `dr·v·dc` expression shape as
                        // `scatter_a_column` — scaled lanes stay
                        // bitwise equal to one-at-a-time factors.
                        let dcj = s.dc[oc];
                        for p in self.a_col_ptr[oc]..self.a_col_ptr[oc + 1] {
                            let oi = self.a_row_idx[p] as usize;
                            let dri = s.dr[oi];
                            let i = irperm.map_or(oi, |ip| ip[oi]);
                            let lane = xp.add(i * bsz);
                            for (b, m) in mvals.iter().enumerate() {
                                *lane.add(b) = dri * *m.add(p) * dcj;
                            }
                        }
                    }
                }
                // Apply the baked update schedule in topological order.
                for &tagged in &self.upd_cols[self.upd_ptr[j]..self.upd_ptr[j + 1]] {
                    let k = (tagged & !PEEL_BIT) as usize;
                    std::ptr::copy_nonoverlapping(xp.add(k * bsz) as *const f64, xkp, bsz);
                    let range = self.l_col_ptr[k] + 1..self.l_col_ptr[k + 1];
                    let rows = &self.l_row_idx[range.clone()];
                    // The peeled tier runs unguarded; the guarded tier
                    // skips zero multipliers per lane — either way each
                    // lane performs exactly the scalar kernel's
                    // operations in the scalar kernel's order (lanes
                    // are independent, so batch interleaving cannot
                    // change any lane's arithmetic). The all-lanes-live
                    // fast path drops the inner branch and vectorizes.
                    let peeled = tagged & PEEL_BIT != 0;
                    let all_live = peeled || xk.iter().all(|&v| v != 0.0);
                    let base = lxp.add(range.start * bsz) as *const f64;
                    for (t, &r) in rows.iter().enumerate() {
                        let src = base.add(t * bsz);
                        let dst = xp.add(r as usize * bsz);
                        if all_live {
                            for b in 0..bsz {
                                *dst.add(b) -= *src.add(b) * *xkp.add(b);
                            }
                        } else {
                            for b in 0..bsz {
                                let m = *xkp.add(b);
                                if m != 0.0 {
                                    *dst.add(b) -= *src.add(b) * m;
                                }
                            }
                        }
                    }
                }
                // Gather U(:, j); diagonal (pivot) last.
                let u_range = self.u_col_ptr[j]..self.u_col_ptr[j + 1];
                for p in u_range.clone() {
                    let lane = xp.add(self.u_row_idx[p] as usize * bsz) as *const f64;
                    std::ptr::copy_nonoverlapping(lane, uxp.add(p * bsz), bsz);
                }
                let piv = uxp.add((u_range.end - 1) * bsz);
                for (b, &t) in threshs.iter().enumerate() {
                    let p = *piv.add(b);
                    if p.abs() < t {
                        *piv.add(b) = if p.is_sign_negative() { -t } else { t };
                        perturbed[b].push(j);
                    } else if p == 0.0 {
                        failed = Some((j, b));
                        break 'columns;
                    }
                }
                // Gather L(:, j): unit diagonal, sub-diagonal scaled
                // by each lane's pivot.
                let l_range = self.l_col_ptr[j]..self.l_col_ptr[j + 1];
                for b in 0..bsz {
                    *lxp.add(l_range.start * bsz + b) = 1.0;
                }
                for p in l_range.start + 1..l_range.end {
                    let lane = xp.add(self.l_row_idx[p] as usize * bsz) as *const f64;
                    let dst = lxp.add(p * bsz);
                    for b in 0..bsz {
                        *dst.add(b) = *lane.add(b) / *piv.add(b);
                    }
                }
                // Clear the accumulator (touch only the column's
                // pattern).
                for p in u_range {
                    let lane = xp.add(self.u_row_idx[p] as usize * bsz);
                    std::slice::from_raw_parts_mut(lane, bsz).fill(0.0);
                }
                for p in l_range.start + 1..l_range.end {
                    let lane = xp.add(self.l_row_idx[p] as usize * bsz);
                    std::slice::from_raw_parts_mut(lane, bsz).fill(0.0);
                }
            }
        }

        if let Some((column, index)) = failed {
            prof.end(span);
            return Err(BatchError {
                index,
                error: LuPlanError::ZeroPivot { column },
            });
        }

        if enabled {
            let flops_done = self.flops * bsz as u64;
            prof.counter("flops.scalar").add(flops_done);
            prof.counter("batch.matrices").add(bsz as u64);
            prof.end_with(span, &[("flops", flops_done as f64), ("batch", bsz as f64)]);
        }

        // De-interleave the lanes into per-matrix factors. Tiled
        // transpose: a naive per-matrix `lxs[p*bsz + b]` gather streams
        // the whole arena once per lane (bsz× the traffic); walking
        // entry tiles that fit in cache reads each arena line once.
        let deinterleave = |arena: &[f64], nnz: usize| -> Vec<Vec<f64>> {
            const TILE: usize = 1024;
            let mut cols: Vec<Vec<f64>> = (0..bsz).map(|_| Vec::with_capacity(nnz)).collect();
            let mut p0 = 0;
            while p0 < nnz {
                let p1 = (p0 + TILE).min(nnz);
                for (b, col) in cols.iter_mut().enumerate() {
                    col.extend((p0..p1).map(|p| arena[p * bsz + b]));
                }
                p0 = p1;
            }
            cols
        };
        let lx_cols = deinterleave(&lxs, l_nnz);
        let ux_cols = deinterleave(&uxs, u_nnz);
        let out = mats
            .iter()
            .zip(lx_cols.into_iter().zip(ux_cols))
            .zip(perturbed.into_iter().zip(threshs))
            .map(|((a, (lx, ux)), (columns, threshold))| {
                self.finish(a, lx, ux, PerturbReport { columns, threshold })
            })
            .collect();
        Ok(out)
    }

    /// Resident size, in bytes, of the compiled tables this plan keeps
    /// alive: factor layouts, the baked update schedule, the pattern
    /// copy backing [`Self::factor`]'s cheap pattern check, permutation
    /// maps, and the per-column cost model. This is the footprint a
    /// plan cache charges an entry for — factor *values* are per-call
    /// and not counted.
    pub fn table_bytes(&self) -> usize {
        use std::mem::size_of;
        let usz = size_of::<usize>();
        let mut bytes = (self.l_col_ptr.len() + self.u_col_ptr.len() + self.upd_ptr.len()) * usz
            + self.a_col_ptr.len() * usz
            + (self.l_row_idx.len() + self.u_row_idx.len() + self.upd_cols.len()) * 4
            + self.a_row_idx.len() * 4
            + self.col_flops.len() * 8;
        if self.baked.is_some() {
            // rperm + irperm + cperm, each n usizes.
            bytes += 3 * self.n * usz;
        }
        if self.scaling.is_some() {
            // Dr + Dc, each n f64s.
            bytes += 2 * self.n * 8;
        }
        bytes
    }

    /// Per-column cost model for balancing the parallel numeric phase:
    /// the column's exact flops plus its pattern size (memory traffic
    /// of the scatter/gather), so structurally trivial columns still
    /// carry nonzero weight.
    pub(crate) fn per_column_costs(&self) -> Vec<u64> {
        (0..self.n)
            .map(|j| {
                let l_nnz = (self.l_col_ptr[j + 1] - self.l_col_ptr[j]) as u64;
                let u_nnz = (self.u_col_ptr[j + 1] - self.u_col_ptr[j]) as u64;
                let mut c = l_nnz + u_nnz + (l_nnz - 1);
                for k in self.schedule(j) {
                    c += 2 * (self.l_col_ptr[k + 1] - self.l_col_ptr[k] - 1) as u64;
                }
                c
            })
            .collect()
    }

    /// Emit the matrix-specialized C factorization kernel (the LU
    /// analogue of Figure 1e, via the `emit/c.rs` path). Like
    /// [`Self::factor`], the emitted kernel takes the **original**
    /// matrix: under baked permutations it embeds the column-gather
    /// (`cperm`) and inverse-row (`irperm`) tables and permutes inside
    /// its scatter — one artifact for pre-pivot, ordering, or both.
    pub fn emit_c(&self) -> String {
        let l_pattern = CscMatrix::from_parts_unchecked(
            self.n,
            self.n,
            self.l_col_ptr.clone(),
            self.l_row_idx.iter().map(|&r| r as usize).collect(),
            vec![1.0; self.l_row_idx.len()],
        );
        let schedules: Vec<Vec<(usize, bool)>> = (0..self.n)
            .map(|j| self.schedule_with_tiers(j).collect())
            .collect();
        let perm = self.baked.as_ref().map(|b| (&b.cperm[..], &b.irperm[..]));
        let scaling = self.scaling.as_ref().map(|s| (&s.dr[..], &s.dc[..]));
        crate::emit::emit_lu_c(&l_pattern, &self.u_col_ptr, &schedules, perm, scaling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_solvers::lu::{GpLu, Pivoting};
    use sympiler_sparse::{gen, ops};

    fn check_against_baseline(a: &CscMatrix) {
        let plan = LuPlan::build(a, true, 2).unwrap();
        let f = plan.factor(a).unwrap();
        let base = GpLu::factor(a, Pivoting::None).unwrap();
        assert!(f.l().same_pattern(&base.l), "L pattern");
        assert!(f.u().same_pattern(&base.u), "U pattern");
        for (p, q) in f.l().values().iter().zip(base.l.values()) {
            assert!((p - q).abs() < 1e-10, "L value {p} vs {q}");
        }
        for (p, q) in f.u().values().iter().zip(base.u.values()) {
            assert!((p - q).abs() < 1e-10, "U value {p} vs {q}");
        }
    }

    #[test]
    fn plan_reproduces_baseline_factors() {
        for seed in 0..6u64 {
            check_against_baseline(&gen::circuit_unsym(40, 3, 2, seed));
            check_against_baseline(&gen::random_unsym(35, 4, seed + 100));
        }
        check_against_baseline(&gen::convection_diffusion_2d(7, 6, 1.5, 3));
    }

    #[test]
    fn factor_solve_has_small_residual() {
        let a = gen::convection_diffusion_2d(8, 8, 2.0, 5);
        let plan = LuPlan::build(&a, true, 2).unwrap();
        let f = plan.factor(&a).unwrap();
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let x = f.solve(&b);
        assert!(ops::rel_residual(&a, &x, &b) < 1e-12);
        assert!(f.det_magnitude() > 0.0);
    }

    #[test]
    fn repeated_factorization_with_changing_values() {
        // The core premise: one compile, many numeric factorizations.
        let a0 = gen::circuit_unsym(50, 4, 2, 7);
        let plan = LuPlan::build(&a0, true, 2).unwrap();
        let mut a = a0.clone();
        for round in 1..=4 {
            for v in a.values_mut() {
                *v *= 1.0 + 0.05 / round as f64;
            }
            let f = plan.factor(&a).unwrap();
            let base = GpLu::factor(&a, Pivoting::None).unwrap();
            for (p, q) in f.u().values().iter().zip(base.u.values()) {
                assert!((p - q).abs() < 1e-9, "round {round}");
            }
        }
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let a = gen::random_unsym(20, 3, 1);
        let plan = LuPlan::build(&a, true, 2).unwrap();
        let other = gen::random_unsym(20, 3, 2);
        assert!(matches!(
            plan.factor(&other),
            Err(LuPlanError::PatternMismatch)
        ));
        let smaller = gen::random_unsym(10, 3, 1);
        assert!(matches!(
            plan.factor(&smaller),
            Err(LuPlanError::PatternMismatch)
        ));
    }

    #[test]
    fn zero_pivot_reported() {
        let mut t = sympiler_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let a0 = t.to_csc().unwrap();
        let plan = LuPlan::build(&a0, true, 2).unwrap();
        let mut a = a0.clone();
        a.values_mut()[1] = 0.0;
        assert!(matches!(
            plan.factor(&a),
            Err(LuPlanError::ZeroPivot { column: 1 })
        ));
    }

    #[test]
    fn low_level_tier_fires_and_stays_correct() {
        // Heavy columns appear once fill cascades.
        let a = gen::convection_diffusion_2d(9, 9, 1.0, 2);
        let full = LuPlan::build(&a, true, 2).unwrap();
        assert!(full.n_peeled() > 0, "expected peeled updates");
        let plain = LuPlan::build(&a, false, 2).unwrap();
        assert_eq!(plain.n_peeled(), 0);
        let f1 = full.factor(&a).unwrap();
        let f2 = plain.factor(&a).unwrap();
        for (p, q) in f1.u().values().iter().zip(f2.u().values()) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn flops_match_symbolic() {
        let a = gen::circuit_unsym(30, 3, 1, 4);
        let plan = LuPlan::build(&a, true, 2).unwrap();
        let sym = sympiler_graph::lu_symbolic(&a);
        assert_eq!(plan.flops(), sym.factor_flops());
        assert_eq!(plan.n_updates(), sym.reach_cols.len());
        assert!(plan.report().total().as_nanos() > 0);
        assert_eq!(plan.report().size_of("nnz(L)"), Some(sym.l_nnz()));
    }

    #[test]
    fn ordered_plan_matches_baseline_on_permuted_matrix() {
        // An ordered plan factors Qᵀ A Q; GPLU handed that matrix
        // directly must produce the same factors to 1e-10.
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            for seed in 0..3u64 {
                let a = gen::circuit_unsym(50, 4, 2, seed);
                let plan = LuPlan::build_ordered(&a, true, 2, ordering).unwrap();
                let f = plan.factor(&a).unwrap();
                let perm = plan.col_perm().expect("non-natural ordering");
                let b = ops::permute_rows_cols(&a, perm).unwrap();
                let base = GpLu::factor(&b, Pivoting::None).unwrap();
                assert!(f.l().same_pattern(&base.l), "{ordering:?} L pattern");
                assert!(f.u().same_pattern(&base.u), "{ordering:?} U pattern");
                for (p, q) in f.u().values().iter().zip(base.u.values()) {
                    assert!((p - q).abs() < 1e-10, "{ordering:?} value drift");
                }
            }
        }
    }

    #[test]
    fn ordered_factor_solves_original_system() {
        // factor() takes the original matrix and solve() speaks
        // original coordinates — the permutation is invisible outside.
        let a = gen::circuit_unsym(60, 4, 2, 5);
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let natural = LuPlan::build(&a, true, 2).unwrap();
        let x_nat = natural.factor(&a).unwrap().solve(&b);
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            let plan = LuPlan::build_ordered(&a, true, 2, ordering).unwrap();
            let f = plan.factor(&a).unwrap();
            let x = f.solve(&b);
            assert!(
                ops::rel_residual(&a, &x, &b) < 1e-12,
                "{ordering:?} residual"
            );
            for (p, q) in x.iter().zip(&x_nat) {
                assert!((p - q).abs() < 1e-9, "{ordering:?}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn colamd_plan_reduces_fill_and_flops_on_circuits() {
        let a = gen::circuit_unsym(200, 4, 2, 9);
        let natural = LuPlan::build(&a, true, 2).unwrap();
        let ordered = LuPlan::build_ordered(&a, true, 2, Ordering::Colamd).unwrap();
        assert!(
            ordered.l_nnz() + ordered.u_nnz() < natural.l_nnz() + natural.u_nnz(),
            "colamd must cut fill: {} vs {}",
            ordered.l_nnz() + ordered.u_nnz(),
            natural.l_nnz() + natural.u_nnz()
        );
        assert!(ordered.flops() < natural.flops());
        assert!(ordered.fill_ratio() < natural.fill_ratio());
        assert_eq!(ordered.ordering(), Ordering::Colamd);
        assert_eq!(natural.col_perm(), None);
    }

    #[test]
    fn ordered_plan_checks_original_pattern() {
        // The compiled-pattern contract is stated on the matrix the
        // caller compiled, not its permuted image.
        let a = gen::random_unsym(40, 3, 3);
        let plan = LuPlan::build_ordered(&a, true, 2, Ordering::Colamd).unwrap();
        assert!(plan.factor(&a).is_ok());
        let perm = plan.col_perm().unwrap();
        assert!(
            perm.iter().enumerate().any(|(new, &old)| new != old),
            "this pattern must not order to the identity"
        );
        let permuted = ops::permute_rows_cols(&a, perm).unwrap();
        assert!(matches!(
            plan.factor(&permuted),
            Err(LuPlanError::PatternMismatch)
        ));
    }

    #[test]
    fn solve_sparse_matches_dense_solve() {
        for ordering in [Ordering::Natural, Ordering::Rcm, Ordering::Colamd] {
            for seed in 0..4u64 {
                let a = gen::circuit_unsym(80, 4, 2, seed);
                let n = a.n_cols();
                let plan = LuPlan::build_ordered(&a, true, 2, ordering).unwrap();
                let f = plan.factor(&a).unwrap();
                // A sparse RHS with a handful of scattered entries.
                let idx: Vec<usize> = (0..n)
                    .filter(|i| (i * 13 + seed as usize).is_multiple_of(29))
                    .collect();
                let vals: Vec<f64> = idx.iter().map(|&i| 1.0 + (i % 5) as f64).collect();
                let b = SparseVec::try_new(n, idx, vals).unwrap();
                let xs = f.solve_sparse(&b);
                let xd = f.solve(&b.to_dense());
                // Every dense-solve nonzero must appear in the sparse
                // pattern, and stored values must agree.
                let dense_of_sparse = xs.to_dense();
                for i in 0..n {
                    assert!(
                        (dense_of_sparse[i] - xd[i]).abs() < 1e-11,
                        "{ordering:?} seed {seed} row {i}: {} vs {}",
                        dense_of_sparse[i],
                        xd[i]
                    );
                }
                // The pattern is the structural reach: no index may be
                // *missing* where the dense solve is materially nonzero.
                for i in 0..n {
                    if xd[i].abs() > 1e-9 {
                        assert!(
                            xs.indices().binary_search(&i).is_ok(),
                            "{ordering:?} seed {seed}: nonzero row {i} missing from sparse pattern"
                        );
                    }
                }
                assert!(
                    xs.nnz() <= n,
                    "pattern is a subset of the dimension by construction"
                );
            }
        }
    }

    #[test]
    fn solve_sparse_touches_only_the_reach_on_chains() {
        // Bidiagonal L-shaped system: b = e_k solves to a suffix
        // pattern; earlier rows must not appear.
        let n = 12;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 2.0);
            if j + 1 < n {
                t.push(j + 1, j, -1.0);
            }
        }
        let a = t.to_csc().unwrap();
        let plan = LuPlan::build(&a, true, 2).unwrap();
        let f = plan.factor(&a).unwrap();
        let b = SparseVec::try_new(n, vec![7], vec![3.0]).unwrap();
        let x = f.solve_sparse(&b);
        assert!(
            x.indices().iter().all(|&i| i >= 7),
            "lower-bidiagonal reach of e_7 is the suffix, got {:?}",
            x.indices()
        );
        let xd = f.solve(&b.to_dense());
        for (i, v) in x.iter() {
            assert!((v - xd[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn prepivoted_plan_matches_baseline_on_composed_matrix() {
        // A pre-pivoted (and possibly ordered) plan factors Qᵀ·P·A·Q;
        // GPLU handed that matrix directly must produce the same
        // factors to 1e-10. Also checks the composed-map accessors.
        for ordering in [Ordering::Natural, Ordering::Rcm, Ordering::Colamd] {
            for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
                for seed in 0..2u64 {
                    let a = gen::circuit_zero_diag(60, 4, 2, seed);
                    let plan = LuPlan::build_pivoted(&a, true, 2, ordering, pre_pivot).unwrap();
                    assert_eq!(plan.pre_pivot(), pre_pivot);
                    assert_eq!(plan.matched_diagonals(), 60, "matching must cover all");
                    assert!(plan.moved_rows() > 0, "zero diagonals force row moves");
                    let rperm = plan.row_perm().expect("row map baked");
                    let cperm: Vec<usize> = match plan.col_perm() {
                        Some(q) => q.to_vec(),
                        None => (0..60).collect(),
                    };
                    let f = plan.factor(&a).unwrap();
                    let b = ops::permute_general(&a, rperm, &cperm).unwrap();
                    let base = GpLu::factor(&b, Pivoting::None).unwrap();
                    assert!(f.l().same_pattern(&base.l), "{ordering:?}+{pre_pivot:?} L");
                    assert!(f.u().same_pattern(&base.u), "{ordering:?}+{pre_pivot:?} U");
                    // Relative tolerance: the pattern-only transversal
                    // may pivot on small entries, so factor values can
                    // grow — agreement is per-value relative, like the
                    // supernodal tier's contract.
                    for (p, q) in f.u().values().iter().zip(base.u.values()) {
                        assert!(
                            (p - q).abs() < 1e-10 * (1.0 + q.abs()),
                            "{ordering:?}+{pre_pivot:?} drift: {p} vs {q}"
                        );
                    }
                    // And the solve speaks original coordinates.
                    let rhs: Vec<f64> = (0..60).map(|i| 1.0 + (i % 5) as f64).collect();
                    let x = f.solve(&rhs);
                    assert!(ops::rel_residual(&a, &x, &rhs) < 1e-10);
                }
            }
        }
    }

    #[test]
    fn off_on_zero_diag_fails_numerically_prepivot_succeeds() {
        // The historical contract: without a pre-pivot the plan
        // compiles (the symbolic phase forces the diagonal slot) and
        // the numeric phase hits the structural zero. With one, it
        // factors.
        let a = gen::circuit_zero_diag(40, 4, 1, 3);
        let off = LuPlan::build(&a, true, 2).unwrap();
        assert!(off.matched_diagonals() < 40, "Off must report the gap");
        assert!(matches!(off.factor(&a), Err(LuPlanError::ZeroPivot { .. })));
        let on =
            LuPlan::build_pivoted(&a, true, 2, Ordering::Natural, PrePivot::Transversal).unwrap();
        assert!(on.factor(&a).is_ok());
    }

    #[test]
    fn identity_fast_path_bakes_nothing() {
        // Zero-free diagonal + Transversal: the matching is the
        // identity, so the plan must carry no permutation at all and
        // produce the exact plan Off would.
        let a = gen::circuit_unsym(50, 4, 2, 9);
        let plan =
            LuPlan::build_pivoted(&a, true, 2, Ordering::Natural, PrePivot::Transversal).unwrap();
        assert!(plan.row_perm().is_none(), "identity matching bakes no map");
        assert_eq!(plan.moved_rows(), 0);
        assert_eq!(plan.matched_diagonals(), 50);
        let off = LuPlan::build(&a, true, 2).unwrap();
        let (f1, f2) = (plan.factor(&a).unwrap(), off.factor(&a).unwrap());
        for (x, y) in f1.u().values().iter().zip(f2.u().values()) {
            assert_eq!(x.to_bits(), y.to_bits(), "fast path must be a no-op");
        }
    }

    #[test]
    fn structurally_singular_is_a_compile_error() {
        // Two columns sharing one row: no perfect matching exists, so
        // compilation must fail with the typed diagnosis — the numeric
        // phase is never reached.
        let mut t = sympiler_sparse::TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 2, 3.0);
        t.push(2, 2, 4.0);
        let a = t.to_csc().unwrap();
        for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
            let err = LuPlan::build_pivoted(&a, true, 2, Ordering::Natural, pre_pivot).unwrap_err();
            assert_eq!(
                err,
                LuPlanError::StructurallySingular {
                    n: 3,
                    structural_rank: 2
                },
                "{pre_pivot:?}"
            );
        }
        // Off still compiles — and fails only at the numeric phase.
        let off = LuPlan::build(&a, true, 2).unwrap();
        assert!(matches!(off.factor(&a), Err(LuPlanError::ZeroPivot { .. })));
    }

    #[test]
    fn prepivoted_solve_sparse_matches_dense_solve() {
        for pre_pivot in [PrePivot::Transversal, PrePivot::WeightedMatching] {
            let a = gen::circuit_zero_diag(70, 4, 2, 11);
            let plan = LuPlan::build_pivoted(&a, true, 2, Ordering::Colamd, pre_pivot).unwrap();
            let f = plan.factor(&a).unwrap();
            let idx: Vec<usize> = (0..70).filter(|i| i % 17 == 3).collect();
            let vals: Vec<f64> = idx.iter().map(|&i| 1.0 + (i % 3) as f64).collect();
            let b = SparseVec::try_new(70, idx, vals).unwrap();
            let xs = f.solve_sparse(&b).to_dense();
            let xd = f.solve(&b.to_dense());
            for i in 0..70 {
                assert!(
                    (xs[i] - xd[i]).abs() < 1e-11,
                    "{pre_pivot:?} row {i}: {} vs {}",
                    xs[i],
                    xd[i]
                );
            }
        }
    }

    #[test]
    fn trivial_systems() {
        // 1x1.
        let mut t = sympiler_sparse::TripletMatrix::new(1, 1);
        t.push(0, 0, 4.0);
        let a = t.to_csc().unwrap();
        let plan = LuPlan::build(&a, true, 2).unwrap();
        let f = plan.factor(&a).unwrap();
        assert_eq!(f.solve(&[8.0]), vec![2.0]);
        // Diagonal.
        let d = CscMatrix::identity(5);
        let plan = LuPlan::build(&d, true, 2).unwrap();
        let f = plan.factor(&d).unwrap();
        assert_eq!(plan.n_updates(), 0);
        assert_eq!(
            f.solve(&[1.0, 2.0, 3.0, 4.0, 5.0]),
            vec![1.0, 2.0, 3.0, 4.0, 5.0]
        );
    }
}
