//! The executable triangular-solve plan — the paper's Figure 1e as a
//! data structure.
//!
//! `TriSolvePlan::build` runs at "compile time": it consumes the
//! inspection sets (reach-set from VI-Prune, block-set from VS-Block),
//! decides peeling and kernel tiers (the enabled low-level
//! transformations), and **packs the matrix values it will touch into
//! execution-order storage** (the "temporary block storage" of §2.3.2).
//! The resulting `solve` touches only numeric data: no DFS, no column
//! pointer chasing outside the schedule, no `x[j] != 0` guards.

use crate::inspector::{TriVIPruneInspector, TriVSBlockInspector};
use sympiler_dense::small::{gemv_sub_small, trsv_small};
use sympiler_dense::{gemv_sub, trsv_lower};
use sympiler_sparse::{CscMatrix, SparseVec};

/// Which transformations the plan applies — mirrors the stacked bars of
/// the paper's Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriVariant {
    /// Apply VS-Block (supernodal panels).
    pub vs_block: bool,
    /// Apply VI-Prune (reach-set pruning).
    pub vi_prune: bool,
    /// Apply the enabled low-level transformations (peeling + unrolled
    /// small kernels).
    pub low_level: bool,
}

impl TriVariant {
    /// Everything on — the full Sympiler configuration.
    pub fn full() -> Self {
        Self {
            vs_block: true,
            vi_prune: true,
            low_level: true,
        }
    }

    /// VS-Block only (first bar of Figure 6).
    pub fn vs_block_only() -> Self {
        Self {
            vs_block: true,
            vi_prune: false,
            low_level: false,
        }
    }

    /// VS-Block + VI-Prune (second bar of Figure 6).
    pub fn vs_block_vi_prune() -> Self {
        Self {
            vs_block: true,
            vi_prune: true,
            low_level: false,
        }
    }

    /// VI-Prune only (used when the supernode-size threshold rejects
    /// VS-Block, like the paper's matrices 3, 4, 5, 7).
    pub fn vi_prune_only() -> Self {
        Self {
            vs_block: false,
            vi_prune: true,
            low_level: false,
        }
    }
}

/// One scheduled operation. All indices are pre-resolved into the
/// plan-owned storage arrays.
#[derive(Debug, Clone, Copy)]
enum TriOp {
    /// A single column executed through packed scalar storage:
    /// divide by the diagonal, then a scatter-axpy of `len` entries.
    Col { j: u32, off: u32, len: u32 },
    /// A peeled single column with an unrolled/vectorizable update
    /// (low-level tier; semantics identical to `Col`).
    PeeledCol { j: u32, off: u32, len: u32 },
    /// A supernodal panel: dense triangular solve on the `width`-wide
    /// diagonal block, then a panel-vector product scattered to the
    /// shared off-diagonal row list.
    Panel {
        first_col: u32,
        width: u32,
        ld: u32,
        rows_off: u32,
        val_off: u32,
        specialized: bool,
    },
}

/// Reusable solve scratch (gather buffer for panel updates).
#[derive(Debug, Default, Clone)]
pub struct TriScratch {
    gather: Vec<f64>,
}

/// A compiled, value-bound triangular solve specialized to one matrix
/// pattern and one RHS pattern.
#[derive(Debug, Clone)]
pub struct TriSolvePlan {
    n: usize,
    variant: TriVariant,
    ops: Vec<TriOp>,
    /// Packed scalar columns: off-diagonal rows and values in execution
    /// order; the diagonal value of op `Col`/`PeeledCol` number `k` is
    /// `col_diag[k_th scalar op]` — stored inline before each column's
    /// values instead, at `col_vals[off - 1]`... kept simple: diagonal
    /// values parallel array indexed by scalar op order.
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
    col_diag: Vec<f64>,
    /// Packed panels (column-major, ld x width each).
    panel_rows: Vec<u32>,
    panel_vals: Vec<f64>,
    /// Columns the solution can touch (for O(reach) result reset).
    touched: Vec<u32>,
    /// Useful flop count of the pruned solve (for GFLOP/s reporting).
    flops: u64,
    /// Flops the schedule actually executes (>= `flops`: whole-supernode
    /// execution and dense diagonal blocks do extra work).
    executed_flops: u64,
    max_panel_rows: usize,
}

impl TriSolvePlan {
    /// Compile a plan for lower-triangular `l` and the RHS pattern
    /// `beta` (sorted nonzero indices of `b`). `max_width` caps
    /// supernode width (0 = unlimited); `peel_col_count` is the paper's
    /// peeling threshold (Figure 1e uses 2).
    pub fn build(
        l: &CscMatrix,
        beta: &[usize],
        variant: TriVariant,
        max_width: usize,
        peel_col_count: usize,
    ) -> Self {
        assert!(
            l.is_lower_triangular_with_diag(),
            "triangular solve needs lower-triangular L with diagonal-first columns"
        );
        let n = l.n_cols();

        // --- Inspection ---
        // VI-Prune set: reached columns (ascending order is topological
        // for a lower-triangular system).
        let mut reached: Vec<usize> = if variant.vi_prune {
            let mut r = TriVIPruneInspector.inspect(l, beta).reach;
            r.sort_unstable();
            r
        } else {
            (0..n).collect()
        };
        // VS-Block set: supernode partition.
        let partition = variant
            .vs_block
            .then(|| TriVSBlockInspector.inspect(l, max_width).partition);

        // --- Scheduling + packing ---
        let mut ops = Vec::new();
        let mut col_rows: Vec<u32> = Vec::new();
        let mut col_vals: Vec<f64> = Vec::new();
        let mut col_diag: Vec<f64> = Vec::new();
        let mut panel_rows: Vec<u32> = Vec::new();
        let mut panel_vals: Vec<f64> = Vec::new();
        let mut max_panel_rows = 0usize;

        let push_col = |ops: &mut Vec<TriOp>,
                        col_rows: &mut Vec<u32>,
                        col_vals: &mut Vec<f64>,
                        col_diag: &mut Vec<f64>,
                        j: usize| {
            let rows = l.col_rows(j);
            let vals = l.col_values(j);
            let off = col_rows.len() as u32;
            let len = (rows.len() - 1) as u32;
            col_diag.push(vals[0]);
            col_rows.extend(rows[1..].iter().map(|&r| r as u32));
            col_vals.extend_from_slice(&vals[1..]);
            // Peel columns with more than `peel_col_count` stored
            // nonzeros (Figure 1e's "more than 2 nonzeros" rule).
            let peeled = variant.low_level && rows.len() > peel_col_count;
            if peeled {
                ops.push(TriOp::PeeledCol {
                    j: j as u32,
                    off,
                    len,
                });
            } else {
                ops.push(TriOp::Col {
                    j: j as u32,
                    off,
                    len,
                });
            }
        };

        match &partition {
            Some(part) => {
                // Execute at supernode granularity; a supernode runs if
                // any of its columns is reached.
                let mut k = 0usize;
                let mut sched: Vec<usize> = Vec::new();
                while k < reached.len() {
                    let s = part.col_to_super[reached[k]];
                    sched.push(s);
                    let end = part.first_col[s + 1];
                    while k < reached.len() && reached[k] < end {
                        k += 1;
                    }
                }
                for s in sched {
                    let first = part.first_col[s];
                    let width = part.width(s);
                    if width == 1 {
                        push_col(&mut ops, &mut col_rows, &mut col_vals, &mut col_diag, first);
                        continue;
                    }
                    // Pack the trapezoidal panel: rows = pattern of the
                    // first column; nested columns padded with zeros in
                    // the (unused) upper-triangular corner.
                    let rows = l.col_rows(first);
                    let ld = rows.len();
                    max_panel_rows = max_panel_rows.max(ld - width);
                    let rows_off = panel_rows.len() as u32;
                    panel_rows.extend(rows.iter().map(|&r| r as u32));
                    let val_off = panel_vals.len() as u32;
                    panel_vals.resize(panel_vals.len() + ld * width, 0.0);
                    for c in 0..width {
                        let vals = l.col_values(first + c);
                        let dst_base = val_off as usize + c * ld + c;
                        panel_vals[dst_base..dst_base + vals.len()].copy_from_slice(vals);
                    }
                    ops.push(TriOp::Panel {
                        first_col: first as u32,
                        width: width as u32,
                        ld: ld as u32,
                        rows_off,
                        val_off,
                        specialized: variant.low_level && width <= 4,
                    });
                }
                // The touched set grows to whole supernodes.
                reached = ops
                    .iter()
                    .flat_map(|op| match *op {
                        TriOp::Col { j, .. } | TriOp::PeeledCol { j, .. } => {
                            (j as usize)..(j as usize + 1)
                        }
                        TriOp::Panel {
                            first_col, width, ..
                        } => (first_col as usize)..(first_col as usize + width as usize),
                    })
                    .collect();
            }
            None => {
                for &j in &reached {
                    push_col(&mut ops, &mut col_rows, &mut col_vals, &mut col_diag, j);
                }
            }
        }

        let flops = reached
            .iter()
            .map(|&j| 1 + 2 * (l.col_nnz(j) as u64 - 1))
            .sum();
        let executed_flops = ops
            .iter()
            .map(|op| match *op {
                TriOp::Col { len, .. } | TriOp::PeeledCol { len, .. } => 1 + 2 * len as u64,
                TriOp::Panel { width, ld, .. } => {
                    let (w, ld) = (width as u64, ld as u64);
                    // dense trsv on the diagonal block + panel GEMV
                    w * w + 2 * (ld - w) * w
                }
            })
            .sum();
        Self {
            n,
            variant,
            ops,
            col_rows,
            col_vals,
            col_diag,
            panel_rows,
            panel_vals,
            touched: reached.iter().map(|&j| j as u32).collect(),
            flops,
            executed_flops,
            max_panel_rows,
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The variant this plan was compiled with.
    pub fn variant(&self) -> TriVariant {
        self.variant
    }

    /// Useful flops of the pruned solve (paper's Figure 6 accounting).
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Flops the schedule actually executes (>= [`Self::flops`]; an
    /// unpruned or supernodal schedule does extra work).
    pub fn executed_flops(&self) -> u64 {
        self.executed_flops
    }

    /// Number of scheduled operations.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of panel (supernode) operations.
    pub fn n_panels(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TriOp::Panel { .. }))
            .count()
    }

    /// Number of peeled iterations (Figure 1e's straight-line columns).
    pub fn n_peeled(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TriOp::PeeledCol { .. }))
            .count()
    }

    /// Columns the solution may occupy.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Solve `L x = b` into `x`, which must be zero on entry (use
    /// [`Self::reset`] between repeated solves). `scratch` is reused
    /// across calls.
    ///
    /// This is the numeric-only code path: every branch below
    /// dispatches on *compile-time* decisions baked into the op stream.
    pub fn solve(&self, b: &SparseVec, x: &mut [f64], scratch: &mut TriScratch) {
        assert_eq!(x.len(), self.n, "x length mismatch");
        debug_assert!(x.iter().all(|&v| v == 0.0), "x must be zeroed");
        for (i, v) in b.iter() {
            x[i] = v;
        }
        scratch.gather.resize(self.max_panel_rows, 0.0);
        let mut scalar_idx = 0usize;
        for op in &self.ops {
            match *op {
                TriOp::Col { j, off, len } => {
                    let xj = x[j as usize] / self.col_diag[scalar_idx];
                    scalar_idx += 1;
                    x[j as usize] = xj;
                    if xj != 0.0 {
                        let rows = &self.col_rows[off as usize..(off + len) as usize];
                        let vals = &self.col_vals[off as usize..(off + len) as usize];
                        for (&r, &v) in rows.iter().zip(vals) {
                            x[r as usize] -= v * xj;
                        }
                    }
                }
                TriOp::PeeledCol { j, off, len } => {
                    // Peeled: no zero guard (the reach-set guarantees
                    // work), unrolled by two like the emitted C.
                    let xj = x[j as usize] / self.col_diag[scalar_idx];
                    scalar_idx += 1;
                    x[j as usize] = xj;
                    let rows = &self.col_rows[off as usize..(off + len) as usize];
                    let vals = &self.col_vals[off as usize..(off + len) as usize];
                    let mut k = 0;
                    while k + 1 < rows.len() {
                        let r0 = rows[k] as usize;
                        let r1 = rows[k + 1] as usize;
                        let v0 = vals[k];
                        let v1 = vals[k + 1];
                        x[r0] -= v0 * xj;
                        x[r1] -= v1 * xj;
                        k += 2;
                    }
                    if k < rows.len() {
                        x[rows[k] as usize] -= vals[k] * xj;
                    }
                }
                TriOp::Panel {
                    first_col,
                    width,
                    ld,
                    rows_off,
                    val_off,
                    specialized,
                } => {
                    let (first, w, ld) = (first_col as usize, width as usize, ld as usize);
                    let panel = &self.panel_vals[val_off as usize..val_off as usize + ld * w];
                    let xseg = &mut x[first..first + w];
                    if specialized {
                        trsv_small(w, panel, ld, xseg);
                    } else {
                        trsv_lower(w, panel, ld, xseg);
                    }
                    let m = ld - w;
                    if m == 0 {
                        continue;
                    }
                    // Gather: t = panel_offdiag * xseg (dense GEMV), then
                    // scatter-subtract through the shared row list.
                    let t = &mut scratch.gather[..m];
                    t.fill(0.0);
                    // gemv_sub computes t -= P * xseg, so t = -(P xseg).
                    let off_panel = &panel[w..];
                    let xseg = &x[first..first + w];
                    if specialized {
                        gemv_sub_small(m, w, off_panel, ld, xseg, t);
                    } else {
                        gemv_sub(m, w, off_panel, ld, xseg, t);
                    }
                    let rows = &self.panel_rows[rows_off as usize + w..rows_off as usize + ld];
                    for (&r, &tv) in rows.iter().zip(t.iter()) {
                        x[r as usize] += tv;
                    }
                }
            }
        }
    }

    /// Zero exactly the entries a previous [`Self::solve`] may have
    /// written — O(|reach|), preserving the decoupled complexity.
    ///
    /// Correctness: any row receiving a *nonzero* scatter contribution
    /// is the head of an edge from an executed column with nonzero
    /// solution — and the reach set is closed under such edges, so that
    /// row is itself a scheduled column, i.e. a member of `touched`.
    /// Extra columns pulled in by whole-supernode execution carry zero
    /// solution values and therefore scatter only zeros.
    pub fn reset(&self, x: &mut [f64]) {
        for &j in &self.touched {
            x[j as usize] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen::random_lower_triangular;
    use sympiler_sparse::rhs;

    fn reference_solution(l: &CscMatrix, b: &SparseVec) -> Vec<f64> {
        let mut x = b.to_dense();
        sympiler_solvers::trisolve::naive_forward(l, &mut x);
        x
    }

    fn check_variant(l: &CscMatrix, b: &SparseVec, variant: TriVariant) {
        let plan = TriSolvePlan::build(l, b.indices(), variant, 0, 2);
        let mut x = vec![0.0; l.n_cols()];
        let mut scratch = TriScratch::default();
        plan.solve(b, &mut x, &mut scratch);
        let expect = reference_solution(l, b);
        for i in 0..l.n_cols() {
            assert!(
                (x[i] - expect[i]).abs() < 1e-11,
                "variant {variant:?}: x[{i}] = {} vs {}",
                x[i],
                expect[i]
            );
        }
    }

    #[test]
    fn all_variants_match_reference() {
        for seed in 0..8u64 {
            let l = random_lower_triangular(60, 3, seed);
            let b = rhs::random_sparse_rhs(60, 0.05, seed + 50);
            check_variant(&l, &b, TriVariant::full());
            check_variant(&l, &b, TriVariant::vs_block_only());
            check_variant(&l, &b, TriVariant::vs_block_vi_prune());
            check_variant(&l, &b, TriVariant::vi_prune_only());
        }
    }

    #[test]
    fn supernodal_factor_pattern_exercises_panels() {
        // Use a banded factor pattern so real multi-column supernodes
        // appear (trailing dense block).
        let a = sympiler_sparse::gen::banded_spd(40, 5, 3);
        let l = sympiler_solvers::SimplicialCholesky::analyze(&a)
            .unwrap()
            .factor(&a)
            .unwrap();
        let b = rhs::rhs_from_column_pattern(&l, 2, 7);
        let plan = TriSolvePlan::build(&l, b.indices(), TriVariant::full(), 0, 2);
        assert!(plan.n_panels() > 0, "expected panel ops on banded factor");
        check_variant(&l, &b, TriVariant::full());
    }

    #[test]
    fn pruned_plan_is_smaller_than_full() {
        let l = random_lower_triangular(200, 2, 9);
        let b = rhs::random_sparse_rhs(200, 0.02, 1);
        let pruned = TriSolvePlan::build(&l, b.indices(), TriVariant::vi_prune_only(), 0, 2);
        let unpruned = TriSolvePlan::build(
            &l,
            b.indices(),
            TriVariant {
                vs_block: false,
                vi_prune: false,
                low_level: false,
            },
            0,
            2,
        );
        assert!(pruned.n_ops() < unpruned.n_ops());
        assert_eq!(unpruned.n_ops(), 200);
        assert!(pruned.flops() <= unpruned.flops());
    }

    #[test]
    fn peeling_fires_on_heavy_columns() {
        let l = random_lower_triangular(50, 6, 4); // ~6 off-diag per col
        let b = rhs::random_sparse_rhs(50, 0.1, 2);
        let plan = TriSolvePlan::build(&l, b.indices(), TriVariant::full(), 0, 2);
        assert!(plan.n_peeled() > 0, "columns with >2 entries must peel");
        check_variant(&l, &b, TriVariant::full());
    }

    #[test]
    fn reset_restores_zero_buffer() {
        let l = random_lower_triangular(80, 3, 5);
        let b = rhs::random_sparse_rhs(80, 0.05, 6);
        let plan = TriSolvePlan::build(&l, b.indices(), TriVariant::full(), 0, 2);
        let mut x = vec![0.0; 80];
        let mut scratch = TriScratch::default();
        plan.solve(&b, &mut x, &mut scratch);
        plan.reset(&mut x);
        assert!(x.iter().all(|&v| v == 0.0), "reset must zero the buffer");
        // And solving again gives the same answer.
        plan.solve(&b, &mut x, &mut scratch);
        let expect = reference_solution(&l, &b);
        for i in 0..80 {
            assert!((x[i] - expect[i]).abs() < 1e-11);
        }
    }

    #[test]
    fn flop_count_matches_reach_set() {
        let l = random_lower_triangular(60, 3, 8);
        let b = rhs::random_sparse_rhs(60, 0.05, 3);
        let plan = TriSolvePlan::build(&l, b.indices(), TriVariant::vi_prune_only(), 0, 2);
        let reach = sympiler_graph::reach(&l, b.indices());
        let expect = sympiler_solvers::trisolve::trisolve_flops(&l, &reach);
        assert_eq!(plan.flops(), expect);
    }

    #[test]
    fn dense_rhs_full_plan_still_correct() {
        let l = random_lower_triangular(30, 3, 11);
        let dense_b: Vec<f64> = (0..30).map(|i| 1.0 + i as f64).collect();
        let b = SparseVec::from_dense(&dense_b);
        check_variant(&l, &b, TriVariant::full());
    }
}
