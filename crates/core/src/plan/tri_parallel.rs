//! Level-set parallel triangular solve (extension X1 in DESIGN.md).
//!
//! The paper closes §1 noting its single-core transformations "should
//! extend to improve performance on shared and distributed memory
//! systems" — the direction later realized in ParSy. This module
//! implements the classic wavefront schedule: columns in the same level
//! of `DG_L` are independent and execute in parallel; levels are
//! barriers.
//!
//! Conflicting scatter updates from columns in the same level are made
//! safe by giving each worker a private accumulation buffer, merged at
//! the level barrier (sparse delta lists keep the merge O(touched)).

use sympiler_graph::levels::level_sets;
use sympiler_sparse::{CscMatrix, SparseVec};

/// A level-scheduled parallel solver for a fixed `L`.
#[derive(Debug, Clone)]
pub struct ParallelTriSolve {
    n: usize,
    /// Levels of reached columns only (pruned wavefronts).
    levels: Vec<Vec<usize>>,
    /// Copy of the matrix arrays (plan-owned, like the serial plan).
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
    n_threads: usize,
}

impl ParallelTriSolve {
    /// Build a schedule for `l` restricted to the reach of `beta`.
    pub fn build(l: &CscMatrix, beta: &[usize], n_threads: usize) -> Self {
        assert!(n_threads >= 1, "need at least one thread");
        let ls = level_sets(l);
        let mut reached = vec![false; l.n_cols()];
        for &j in sympiler_graph::reach(l, beta).iter() {
            reached[j] = true;
        }
        let levels: Vec<Vec<usize>> = ls
            .levels
            .iter()
            .map(|lvl| lvl.iter().copied().filter(|&j| reached[j]).collect())
            .filter(|lvl: &Vec<usize>| !lvl.is_empty())
            .collect();
        Self {
            n: l.n_cols(),
            levels,
            col_ptr: l.col_ptr().to_vec(),
            row_idx: l.row_idx().to_vec(),
            values: l.values().to_vec(),
            n_threads,
        }
    }

    /// Number of wavefronts.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Solve `L x = b` into a zeroed `x`.
    pub fn solve(&self, b: &SparseVec, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "x length mismatch");
        for (i, v) in b.iter() {
            x[i] = v;
        }
        for level in &self.levels {
            if level.len() < self.n_threads * 4 || self.n_threads == 1 {
                // Small level: serial execution avoids fork overhead.
                for &j in level {
                    self.column(j, x, None);
                }
                continue;
            }
            // Parallel: workers accumulate deltas privately, merge at
            // the barrier.
            let chunk = level.len().div_ceil(self.n_threads);
            let xr: &[f64] = x;
            let deltas: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for ch in level.chunks(chunk) {
                    handles.push(scope.spawn(move || {
                        let mut delta: Vec<(usize, f64)> = Vec::new();
                        for &j in ch {
                            // x[j] is final at this level (no writes to
                            // it from this level's columns).
                            let range = self.col_ptr[j]..self.col_ptr[j + 1];
                            let xj = xr[j] / self.values[range.start];
                            delta.push((j, xj - xr[j])); // set via delta
                            for (&i, &v) in self.row_idx[range.start + 1..range.end]
                                .iter()
                                .zip(&self.values[range.start + 1..range.end])
                            {
                                delta.push((i, -v * xj));
                            }
                        }
                        delta
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            for delta in deltas {
                for (i, dv) in delta {
                    x[i] += dv;
                }
            }
        }
    }

    fn column(&self, j: usize, x: &mut [f64], _tag: Option<()>) {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        let xj = x[j] / self.values[range.start];
        x[j] = xj;
        for (&i, &v) in self.row_idx[range.start + 1..range.end]
            .iter()
            .zip(&self.values[range.start + 1..range.end])
        {
            x[i] -= v * xj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen::random_lower_triangular;
    use sympiler_sparse::rhs;

    #[test]
    fn parallel_matches_serial() {
        for seed in 0..5u64 {
            let l = random_lower_triangular(300, 3, seed);
            let b = rhs::random_sparse_rhs(300, 0.05, seed + 9);
            let solver = ParallelTriSolve::build(&l, b.indices(), 4);
            let mut x = vec![0.0; 300];
            solver.solve(&b, &mut x);
            let mut expect = b.to_dense();
            sympiler_solvers::trisolve::naive_forward(&l, &mut expect);
            for i in 0..300 {
                assert!(
                    (x[i] - expect[i]).abs() < 1e-10,
                    "seed {seed}: x[{i}] {} vs {}",
                    x[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn single_thread_works() {
        let l = random_lower_triangular(50, 2, 1);
        let b = rhs::random_sparse_rhs(50, 0.1, 2);
        let solver = ParallelTriSolve::build(&l, b.indices(), 1);
        let mut x = vec![0.0; 50];
        solver.solve(&b, &mut x);
        let mut expect = b.to_dense();
        sympiler_solvers::trisolve::naive_forward(&l, &mut expect);
        for i in 0..50 {
            assert!((x[i] - expect[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn pruned_levels_only_contain_reach() {
        let l = random_lower_triangular(100, 2, 3);
        let b = rhs::random_sparse_rhs(100, 0.02, 4);
        let solver = ParallelTriSolve::build(&l, b.indices(), 2);
        let reach: std::collections::BTreeSet<usize> =
            sympiler_graph::reach(&l, b.indices()).into_iter().collect();
        let scheduled: usize = (0..solver.n_levels()).map(|k| solver.levels[k].len()).sum();
        assert_eq!(scheduled, reach.len());
    }
}
