//! Supernodal (VS-Block) LU: the third execution tier of the compiled
//! LU pipeline, beside the serial column plan ([`super::lu::LuPlan`])
//! and the level-scheduled column-parallel plan
//! (`super::lu_parallel::ParallelLuPlan`).
//!
//! The paper's VS-Block transformation (§3.2) converts column-at-a-time
//! sparse kernels into blocked code over supernodes so the numeric
//! phase runs on dense kernels. Applied to left-looking LU:
//!
//! * **Inspection** — adjacent columns of the predicted `L` whose
//!   patterns nest ([`sympiler_graph::lu_supernode`]) form a column
//!   **panel**: a dense trapezoid whose diagonal block is a full square
//!   and whose sub-diagonal rows are shared by every column. Panel
//!   layouts (trapezoid extents, value offsets, the panel-level update
//!   DAG) are all baked here at compile time.
//! * **Numeric phase** — panel by panel: gather the panel's columns
//!   into a dense block accumulator, apply each *source* panel's
//!   accumulated updates with a dense TRSM
//!   ([`sympiler_dense::trsm_right_lower_trans_unit`], the source's
//!   internal solve) followed by a dense GEMM
//!   ([`sympiler_dense::gemm_nt_sub`], the outer-panel update) and a
//!   scatter-add back into the accumulator; then factor the panel's own
//!   diagonal block with an unpivoted dense GETRF
//!   ([`sympiler_dense::getrf_nopiv`]) and divide out its `U` with a
//!   dense TRSM ([`sympiler_dense::trsm_right_upper`]). Width-1 panels
//!   fall back to the scalar per-column kernel
//!   (`LuPlan::column_numeric`), so sparsity that never blocks costs
//!   nothing extra.
//! * **Parallelism** — the panel DAG (panel `s` depends on every panel
//!   that sources one of its updates) feeds the same generalized
//!   scheduler the column-parallel plan uses
//!   ([`sympiler_graph::levels::dag_levels_from_preds`] +
//!   [`sympiler_graph::levels::balanced_partition`]): levels of
//!   independent panels execute across workers with one barrier per
//!   kept level boundary, barriers elided across same-owner runs.
//!
//! Results are **not** bit-identical to the scalar plans — dense
//! kernels reassociate the update sums — but agree to ~1e-12 relative
//! (verified across the suite by `lu_compare` and the property tests),
//! and the zero-pivot column reported is the same.

use super::lu::{LuFactor, LuPlan, LuPlanError, PerturbReport, PivotStatus};
use sympiler_dense::{
    gemm_nt_sub, getrf_nopiv_perturbed, trsm_right_lower_trans_unit, trsm_right_upper,
};
use sympiler_graph::levels::{balanced_partition, dag_levels_from_preds};
use sympiler_graph::lu_supernode::{supernodes_lu_relaxed_from_parts, LuPanels};
use sympiler_graph::supernode::SupernodePartition;
use sympiler_sparse::CscMatrix;

/// Avoid clashing with `std::sync::atomic::Ordering` in this module.
use sympiler_graph::ordering::Ordering as FillOrdering;

/// A compiled LU factorization whose numeric phase executes panel by
/// panel over the supernodes of the predicted `L`, with dense
/// GETRF/TRSM/GEMM kernels on the wide panels.
#[derive(Debug, Clone)]
pub struct SupernodalLuPlan {
    plan: LuPlan,
    /// Column panels of the predicted factor (ordered coordinates):
    /// the partition plus each panel's baked **union** row list. Under
    /// strict nesting every member column's pattern equals the union;
    /// under relaxed amalgamation
    /// ([`Self::from_plan_relaxed`]) the union is wider and the extra
    /// trapezoid slots hold explicit zeros, counted in
    /// `panels.padded_zeros`.
    panels: LuPanels,
    /// Trapezoid value offsets: wide panel `s` owns the column-major
    /// `m × w` block `sx[sx_ptr[s]..sx_ptr[s+1]]` of the supernodal
    /// workspace, `m` its row count, `w` its width; singleton panels
    /// own nothing (their columns live only in the CSC factor arrays).
    sx_ptr: Vec<usize>,
    /// Panel-level update schedule: panel `s` consumes the panels
    /// `upd_panels[upd_ptr[s]..upd_ptr[s+1]]`, ascending — exactly the
    /// predecessors of `s` in the panel DAG.
    upd_ptr: Vec<usize>,
    upd_panels: Vec<u32>,
    /// Worker count baked into the level schedule.
    n_threads: usize,
    /// Panels flattened level by level (ascending within levels).
    level_panels: Vec<usize>,
    level_ptr: Vec<usize>,
    /// Per-level worker chunks, `n_threads + 1` boundaries per level
    /// relative to the level start (see `ParallelLuPlan`).
    chunk_bounds: Vec<usize>,
    /// Compile-time barrier schedule with same-owner elision.
    barrier_after: Vec<bool>,
    /// Widest panel (workspace sizing).
    max_width: usize,
    /// Largest sub-diagonal row count over wide panels (workspace
    /// sizing for the GEMM gather block).
    max_sub_rows: usize,
    /// Fraction of factorization flops carried by wide panels — the
    /// share the dense kernels execute.
    dense_flop_share: f64,
    /// Exact compile-time flops per panel (the sum of its columns'
    /// flops) — what profiled panel spans report achieved GFLOP/s
    /// against, and what the flop-accounting gate charges dense vs.
    /// scalar work with.
    panel_flops: Vec<u64>,
}

/// Shared mutable view of the factor value arrays plus the supernodal
/// trapezoid storage, handed to the scoped workers.
///
/// SAFETY ARGUMENT: identical to `ParallelLuPlan`'s — every panel's
/// `L`/`U`/trapezoid value ranges are written by exactly one worker
/// (the compile-time chunk owner) during the panel's level and read by
/// other workers only in strictly later levels, with a barrier
/// separating levels. No location is accessed concurrently with a
/// write.
#[cfg(feature = "parallel")]
struct SharedPanels {
    lx: *mut f64,
    ux: *mut f64,
    sx: *mut f64,
}

// SAFETY: see the struct-level safety argument.
#[cfg(feature = "parallel")]
unsafe impl Sync for SharedPanels {}

/// Per-worker scratch: `x` is a dense `n × max_width` block accumulator
/// (column-major, all zeros between panels), `bt` a `max_width²`
/// gather block for source-panel solves and diagonal-block copies,
/// `cbuf` the GEMM gather/scatter block.
struct PanelWorkspace {
    x: Vec<f64>,
    bt: Vec<f64>,
    cbuf: Vec<f64>,
}

impl SupernodalLuPlan {
    /// Compile a supernodal plan for the square matrix `a` under a
    /// fill-reducing ordering. `low_level` / `peel_col_count` select
    /// the scalar fallback's peeled tier exactly like
    /// [`LuPlan::build_ordered`]; `max_panel` caps panel width (0 =
    /// unlimited); `n_threads` fixes the worker count baked into the
    /// panel-level schedule (1 = serial panel sweep).
    pub fn build(
        a: &CscMatrix,
        low_level: bool,
        peel_col_count: usize,
        ordering: FillOrdering,
        max_panel: usize,
        n_threads: usize,
    ) -> Result<Self, LuPlanError> {
        Ok(Self::from_plan(
            LuPlan::build_ordered(a, low_level, peel_col_count, ordering)?,
            max_panel,
            n_threads,
        ))
    }

    /// Detect **strictly nesting** panels on an already-compiled plan
    /// and bake the panel layouts and the leveled panel-DAG schedule.
    /// Pure schedule construction — no symbolic analysis re-runs.
    /// Equivalent to [`Self::from_plan_relaxed`] with a zero fill
    /// budget (relaxation off).
    pub fn from_plan(plan: LuPlan, max_panel: usize, n_threads: usize) -> Self {
        Self::from_plan_relaxed(plan, max_panel, n_threads, 0.0, 0)
    }

    /// [`Self::from_plan`] with CHOLMOD/SuperLU-style **relaxed
    /// amalgamation**: adjacent strict panels merge into one wider
    /// panel when the merged width stays within `relax_cols` (min'd
    /// with `max_panel` when that cap is nonzero) and the explicit
    /// zeros the merged trapezoid must carry stay within `relax_fill`
    /// × the panel's structural nonzeros. Padding lives **only** in
    /// the dense trapezoid workspace: padded slots provably compute to
    /// exact ±0.0 (every term feeding a structurally-zero position has
    /// a structurally-zero factor, and IEEE propagates those zeros
    /// exactly), the CSC factor layouts and patterns are untouched,
    /// and write-back walks each column's own pattern. `relax_fill <=
    /// 0` or `relax_cols < 2` disables merging and reproduces
    /// [`Self::from_plan`]'s panels bitwise.
    pub fn from_plan_relaxed(
        plan: LuPlan,
        max_panel: usize,
        n_threads: usize,
        relax_fill: f64,
        relax_cols: usize,
    ) -> Self {
        assert!(n_threads >= 1, "need at least one thread");
        let n = plan.n();
        let panels = supernodes_lu_relaxed_from_parts(
            n,
            &plan.l_col_ptr,
            &plan.l_row_idx,
            max_panel,
            relax_fill,
            relax_cols,
        );
        let part = &panels.part;
        let n_panels = part.n_supernodes();

        // Trapezoid layout: wide panels own an m × w value block, `m`
        // the panel's union row count (≥ any member column's CSC
        // length; equal under strict nesting).
        let mut sx_ptr = Vec::with_capacity(n_panels + 1);
        sx_ptr.push(0usize);
        let mut max_width = 1usize;
        let mut max_sub_rows = 0usize;
        for s in 0..n_panels {
            let w = part.width(s);
            let m = panels.panel_rows(s).len();
            let mut size = 0;
            if w > 1 {
                size = m * w;
                max_width = max_width.max(w);
                max_sub_rows = max_sub_rows.max(m - w);
            }
            sx_ptr.push(sx_ptr[s] + size);
        }

        // Panel-level update schedule = panel DAG predecessors: map
        // every column's baked schedule through col_to_super, dedup.
        let mut upd_ptr = Vec::with_capacity(n_panels + 1);
        let mut upd_panels: Vec<u32> = Vec::new();
        upd_ptr.push(0usize);
        let mut seen = vec![usize::MAX; n_panels];
        for s in 0..n_panels {
            let start = upd_panels.len();
            for j in part.cols(s) {
                for k in plan.schedule(j) {
                    let t = part.col_to_super[k];
                    if t != s && seen[t] != s {
                        seen[t] = s;
                        upd_panels.push(t as u32);
                    }
                }
            }
            upd_panels[start..].sort_unstable();
            upd_ptr.push(upd_panels.len());
        }

        // Dense flop share: the shared cost model from the graph
        // crate, read off the plan's compiled layouts. Charged against
        // **structural** column flops, never padded dense extents, so
        // profiled flop accounting still closes exactly.
        let dense_flop_share = sympiler_graph::lu_supernode::flop_share_in_wide_panels_from_parts(
            part,
            &plan.l_col_ptr,
            &plan.u_col_ptr,
            &plan.u_row_idx,
        );

        // Level the panel DAG and cost-balance each level's panels
        // across workers — the same generalized scheduler the
        // column-parallel plan drives, fed panels instead of columns.
        let levels = dag_levels_from_preds(n_panels, |s| {
            upd_panels[upd_ptr[s]..upd_ptr[s + 1]]
                .iter()
                .map(|&t| t as usize)
        });
        let col_costs = plan.per_column_costs();
        let panel_costs: Vec<u64> = (0..n_panels)
            .map(|s| part.cols(s).map(|j| col_costs[j]).sum())
            .collect();
        let mut level_panels = Vec::with_capacity(n_panels);
        let mut level_ptr = Vec::with_capacity(levels.n_levels() + 1);
        let mut chunk_bounds = Vec::with_capacity(levels.n_levels() * (n_threads + 1));
        level_ptr.push(0);
        let mut sole_owner: Vec<bool> = Vec::with_capacity(levels.n_levels());
        for panels in &levels.levels {
            let costs: Vec<u64> = panels.iter().map(|&s| panel_costs[s]).collect();
            let mut bounds = balanced_partition(&costs, n_threads);
            let whole = (0..n_threads).any(|t| bounds[t + 1] - bounds[t] == panels.len());
            if whole {
                for b in bounds.iter_mut().skip(1) {
                    *b = panels.len();
                }
            }
            sole_owner.push(whole);
            chunk_bounds.extend(bounds);
            level_panels.extend_from_slice(panels);
            level_ptr.push(level_panels.len());
        }
        let n_levels = sole_owner.len();
        let barrier_after: Vec<bool> = (0..n_levels)
            .map(|lv| lv + 1 < n_levels && !(sole_owner[lv] && sole_owner[lv + 1]))
            .collect();

        let col_flops = plan.per_column_flops();
        let panel_flops: Vec<u64> = (0..n_panels)
            .map(|s| part.cols(s).map(|j| col_flops[j]).sum())
            .collect();

        Self {
            plan,
            panels,
            sx_ptr,
            upd_ptr,
            upd_panels,
            n_threads,
            level_panels,
            level_ptr,
            chunk_bounds,
            barrier_after,
            max_width,
            max_sub_rows,
            dense_flop_share,
            panel_flops,
        }
    }

    /// The underlying serial plan (shared symbolic analysis, layouts,
    /// flop counts, scalar kernel).
    pub fn serial(&self) -> &LuPlan {
        &self.plan
    }

    /// Recover the serial plan (for compile drivers that decide after
    /// detection that blocking does not pay).
    pub fn into_plan(self) -> LuPlan {
        self.plan
    }

    /// The compiled panel partition.
    pub fn partition(&self) -> &SupernodePartition {
        &self.panels.part
    }

    /// The compiled panel layout: partition plus per-panel union row
    /// lists and the padded-zero census.
    pub fn panel_layout(&self) -> &LuPanels {
        &self.panels
    }

    /// Explicit zeros the relaxed amalgamation padded into trapezoid
    /// workspace across all panels (0 when relaxation is off or
    /// nothing merged). Padding never reaches the CSC factors.
    pub fn padded_zeros(&self) -> usize {
        self.panels.padded_zeros
    }

    /// Resident size, in bytes, of the supernodal tables this plan
    /// keeps alive beyond the serial plan's ([`LuPlan::table_bytes`]):
    /// panel row lists (padded layouts included), trapezoid offsets,
    /// the panel-level update schedule, and the leveled worker
    /// schedule. What a plan cache charges a supernodal entry for.
    pub fn table_bytes(&self) -> usize {
        use std::mem::size_of;
        let usz = size_of::<usize>();
        self.plan.table_bytes()
            + self.panels.rows.len() * 4
            + self.panels.row_ptr.len() * usz
            + (self.panels.part.first_col.len() + self.panels.part.col_to_super.len()) * usz
            + self.sx_ptr.len() * usz
            + self.upd_ptr.len() * usz
            + self.upd_panels.len() * 4
            + (self.level_panels.len() + self.level_ptr.len() + self.chunk_bounds.len()) * usz
            + self.barrier_after.len()
            + self.panel_flops.len() * 8
    }

    /// Number of panels.
    pub fn n_panels(&self) -> usize {
        self.panels.part.n_supernodes()
    }

    /// Mean panel width (columns per panel).
    pub fn mean_panel_width(&self) -> f64 {
        if self.n_panels() == 0 {
            0.0
        } else {
            self.plan.n() as f64 / self.n_panels() as f64
        }
    }

    /// Widest compiled panel.
    pub fn max_panel_width(&self) -> usize {
        self.max_width
    }

    /// Number of wide (width ≥ 2) panels — the ones the dense kernels
    /// execute.
    pub fn n_wide_panels(&self) -> usize {
        (0..self.n_panels())
            .filter(|&s| self.panels.part.width(s) > 1)
            .count()
    }

    /// Fraction of factorization flops carried by wide panels (the
    /// dense-kernel share of the numeric phase).
    pub fn dense_flop_share(&self) -> f64 {
        self.dense_flop_share
    }

    /// Worker count baked into the panel schedule.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Number of panel levels (critical-path length of the panel DAG).
    pub fn n_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Average available panel parallelism.
    pub fn avg_panel_parallelism(&self) -> f64 {
        if self.n_levels() == 0 {
            0.0
        } else {
            self.level_panels.len() as f64 / self.n_levels() as f64
        }
    }

    /// Barriers the parallel numeric phase executes after elision.
    pub fn n_barriers(&self) -> usize {
        self.barrier_after.iter().filter(|&&b| b).count()
    }

    fn workspace(&self) -> PanelWorkspace {
        let n = self.plan.n();
        let w = self.max_width;
        PanelWorkspace {
            x: vec![0.0; n * w],
            bt: vec![0.0; w * w],
            cbuf: vec![0.0; self.max_sub_rows * w],
        }
    }

    /// The chunk of level `lv` owned by worker `t`.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    fn chunk(&self, lv: usize, t: usize) -> &[usize] {
        let base = self.level_ptr[lv];
        let o = lv * (self.n_threads + 1);
        let lo = base + self.chunk_bounds[o + t];
        let hi = base + self.chunk_bounds[o + t + 1];
        &self.level_panels[lo..hi]
    }

    /// Execute one panel: the scalar column kernel for singletons, the
    /// dense GETRF/TRSM/GEMM pipeline for wide panels. Returns the
    /// smallest zero-pivot column, or `usize::MAX` when clean; values
    /// are always fully written (IEEE semantics on zero pivots), so
    /// parallel callers record and keep going.
    ///
    /// # Safety
    /// `lx` / `ux` / `sx` must point to the full factor and trapezoid
    /// value arrays. The caller must guarantee that (a) no other thread
    /// accesses this panel's value ranges during the call and (b) every
    /// source panel in the baked schedule has been fully written and
    /// synchronized before the call — in-order serial execution and the
    /// barrier-leveled parallel executor both satisfy this, exactly as
    /// for `LuPlan::column_numeric`.
    unsafe fn panel_numeric(
        &self,
        s: usize,
        a: &CscMatrix,
        ws: &mut PanelWorkspace,
        lx: *mut f64,
        ux: *mut f64,
        sx: *mut f64,
        lane: usize,
        thresh: f64,
        perturbed: &mut Vec<usize>,
    ) -> usize {
        let plan = &self.plan;
        let n = plan.n();
        let f = self.panels.part.first_col[s];
        let w = self.panels.part.width(s);

        if w == 1 {
            // Scalar fallback: the shared per-column kernel, reading
            // and writing the CSC factor arrays directly.
            let x = &mut ws.x[..n];
            return match plan.column_numeric(f, a, x, lx, ux, thresh) {
                PivotStatus::Clean => usize::MAX,
                PivotStatus::Perturbed => {
                    perturbed.push(f);
                    usize::MAX
                }
                PivotStatus::Zero => f,
            };
        }

        // Wide-panel observability: one `panel` span with achieved
        // GFLOP/s vs. the compile-time flop count, and child spans
        // around each dense kernel call. Pure timing — no numeric
        // effect, and a single branch per call site when disabled.
        let prof = plan.profiler().as_ref();
        let enabled = prof.is_enabled();
        let panel_span = if enabled {
            prof.begin(lane, "panel")
        } else {
            None
        };
        let panel_t0 = prof.now_ns();

        let l_ptr = &plan.l_col_ptr;
        let l_rows = &plan.l_row_idx;
        // The panel's baked union row list: under strict nesting this
        // is exactly the leading column's CSC pattern; under relaxed
        // amalgamation it is the union over member columns, and the
        // first `w` entries are always the diagonal run `f..f+w`.
        let rows = self.panels.panel_rows(s);
        let m = rows.len();
        debug_assert_eq!(rows[0] as usize, f, "panel rows start at the diagonal");
        debug_assert!(
            rows[..w]
                .iter()
                .enumerate()
                .all(|(c, &r)| r as usize == f + c),
            "diagonal run leads the union rows"
        );

        // --- Scatter the panel's (ordered) input columns into the
        // dense block accumulator.
        for c in 0..w {
            plan.scatter_a_column(f + c, a, &mut ws.x[c * n..(c + 1) * n]);
        }

        // --- Source-panel updates, ascending (a valid topological
        // order: every dependence edge points to a higher column).
        for &t in &self.upd_panels[self.upd_ptr[s]..self.upd_ptr[s + 1]] {
            let t = t as usize;
            let g = self.panels.part.first_col[t];
            let v = self.panels.part.width(t);
            if v == 1 {
                // Scalar source column: guarded axpy per panel column,
                // values read from the finalized CSC factor.
                let range = l_ptr[g] + 1..l_ptr[g + 1];
                let krows = &l_rows[range.clone()];
                // SAFETY: column g is finalized by the caller's
                // contract and no thread writes it concurrently.
                let kvals = std::slice::from_raw_parts(lx.add(range.start), range.len());
                for c in 0..w {
                    let xc = &mut ws.x[c * n..(c + 1) * n];
                    let xk = xc[g];
                    if xk != 0.0 {
                        for (&r, &val) in krows.iter().zip(kvals) {
                            xc[r as usize] -= val * xk;
                        }
                    }
                }
                continue;
            }
            // Wide source panel: its trapezoid holds the unit-lower
            // diagonal block (strict lower part; U values sit on the
            // diagonal) and the sub-diagonal L rows over the panel's
            // union row list, all finalized. Amalgamation-padded slots
            // hold exact ±0.0, so they contribute nothing to the TRSM
            // or the GEMM.
            let rows_t = self.panels.panel_rows(t);
            let m_t = rows_t.len();
            // SAFETY: panel t precedes s in the schedule — finalized,
            // no concurrent writes.
            let sx_t = std::slice::from_raw_parts(sx.add(self.sx_ptr[t]), m_t * v);
            // Gather the accumulator rows of the source's diagonal
            // block, transposed (targets × source columns): panel diag
            // rows are consecutive (g..g+v) by the nesting rule.
            let bt = &mut ws.bt[..w * v];
            for kk in 0..v {
                for c in 0..w {
                    bt[kk * w + c] = ws.x[c * n + g + kk];
                }
            }
            // Internal solve of the source panel applied to all target
            // columns at once: Bt := Bt · L_dd^{-T}  ⇔  B := L_dd^{-1} B.
            let t0 = if enabled { prof.now_ns() } else { 0 };
            trsm_right_lower_trans_unit(w, v, sx_t, m_t, bt, w);
            if enabled {
                let t1 = prof.now_ns();
                prof.add_span(
                    lane,
                    "trsm",
                    t0,
                    t1 - t0,
                    &[("m", w as f64), ("n", v as f64)],
                );
            }
            // Outer-panel update through dense GEMM, gathered into a
            // contiguous block and scattered back (rows need not be
            // contiguous below the source's diagonal block).
            let m_sub = m_t - v;
            if m_sub > 0 {
                let cbuf = &mut ws.cbuf[..m_sub * w];
                for c in 0..w {
                    let xc = &ws.x[c * n..(c + 1) * n];
                    for (i, &r) in rows_t[v..].iter().enumerate() {
                        cbuf[c * m_sub + i] = xc[r as usize];
                    }
                }
                let t0 = if enabled { prof.now_ns() } else { 0 };
                gemm_nt_sub(m_sub, w, v, &sx_t[v..], m_t, bt, w, cbuf, m_sub);
                if enabled {
                    let t1 = prof.now_ns();
                    let flops = 2.0 * m_sub as f64 * w as f64 * v as f64;
                    prof.add_span(
                        lane,
                        "gemm",
                        t0,
                        t1 - t0,
                        &[
                            ("m", m_sub as f64),
                            ("n", w as f64),
                            ("k", v as f64),
                            ("flops", flops),
                            ("gflops", flops / (t1 - t0).max(1) as f64),
                        ],
                    );
                }
                for c in 0..w {
                    let xc = &mut ws.x[c * n..(c + 1) * n];
                    for (i, &r) in rows_t[v..].iter().enumerate() {
                        xc[r as usize] = cbuf[c * m_sub + i];
                    }
                }
            }
            // Write the solved block back: these are the final U values
            // of the target columns at the source panel's rows.
            for kk in 0..v {
                for c in 0..w {
                    ws.x[c * n + g + kk] = bt[kk * w + c];
                }
            }
        }

        // --- The panel's own dense factorization, in its trapezoid.
        // SAFETY: this worker is the unique owner of panel s.
        let trap = std::slice::from_raw_parts_mut(sx.add(self.sx_ptr[s]), m * w);
        for c in 0..w {
            let xc = &ws.x[c * n..(c + 1) * n];
            for (i, &r) in rows.iter().enumerate() {
                trap[c * m + i] = xc[r as usize];
            }
        }
        let mut first_bad = usize::MAX;
        let t0 = if enabled { prof.now_ns() } else { 0 };
        // `Vec::new` never allocates until a perturbation actually
        // fires, so the clean path costs one stack slot.
        let mut block_perturbed = Vec::new();
        if let Err(c) = getrf_nopiv_perturbed(w, trap, m, thresh, &mut block_perturbed) {
            first_bad = f + c;
        }
        perturbed.extend(block_perturbed.into_iter().map(|c| f + c));
        if enabled {
            let t1 = prof.now_ns();
            prof.add_span(
                lane,
                "getrf",
                t0,
                t1 - t0,
                &[("width", w as f64), ("rows", m as f64)],
            );
        }
        if m > w {
            // Divide the sub-diagonal rows by the panel's U: copy the
            // factored diagonal block aside (TRSM reads U while writing
            // the sub-block of the same buffer).
            let db = &mut ws.bt[..w * w];
            for c in 0..w {
                for r in 0..=c {
                    db[c * w + r] = trap[c * m + r];
                }
            }
            let t0 = if enabled { prof.now_ns() } else { 0 };
            trsm_right_upper(m - w, w, db, w, &mut trap[w..], m);
            if enabled {
                let t1 = prof.now_ns();
                prof.add_span(
                    lane,
                    "trsm",
                    t0,
                    t1 - t0,
                    &[("m", (m - w) as f64), ("n", w as f64)],
                );
            }
        }

        // --- Write back through the fixed CSC layouts and clear the
        // accumulator by pattern (the scalar epilogue, blockwise).
        let u_ptr = &plan.u_col_ptr;
        let u_rows = &plan.u_row_idx;
        for c in 0..w {
            let j = f + c;
            let u_range = u_ptr[j]..u_ptr[j + 1];
            for p in u_range.clone() {
                let r = u_rows[p] as usize;
                let val = if r < f {
                    ws.x[c * n + r]
                } else {
                    trap[c * m + (r - f)]
                };
                *ux.add(p) = val;
            }
            // L write-back walks the column's own CSC pattern and
            // two-pointer-merges it against the panel's union rows
            // (both ascending; the CSC pattern is a subset). Under
            // strict nesting the merge degenerates to the contiguous
            // suffix c+1..m; under relaxed amalgamation it skips the
            // padded slots, which never reach the CSC factor.
            let l_range = l_ptr[j]..l_ptr[j + 1];
            *lx.add(l_range.start) = 1.0;
            let mut ri = c + 1;
            for p in l_range.start + 1..l_range.end {
                let r = l_rows[p];
                while rows[ri] != r {
                    ri += 1;
                }
                *lx.add(p) = trap[c * m + ri];
                ri += 1;
            }
            // The structural pivot is the diagonal of the panel's U.
            if trap[c * m + c] == 0.0 {
                first_bad = first_bad.min(j);
            }
            // Clear: U-pattern rows cover everything above the
            // diagonal (diagonal last), L-pattern rows everything
            // below; positions outside the pattern only ever hold
            // exact zeros.
            let xc = &mut ws.x[c * n..(c + 1) * n];
            for p in u_range {
                xc[u_rows[p] as usize] = 0.0;
            }
            for p in l_range.start + 1..l_range.end {
                xc[l_rows[p] as usize] = 0.0;
            }
        }
        if enabled {
            let dur = prof.now_ns().saturating_sub(panel_t0);
            let fl = self.panel_flops[s] as f64;
            // GFLOP/s == flops / ns numerically.
            let gf = if dur > 0 { fl / dur as f64 } else { 0.0 };
            prof.end_with(
                panel_span,
                &[
                    ("panel", s as f64),
                    ("width", w as f64),
                    ("flops", fl),
                    ("gflops", gf),
                ],
            );
        }
        first_bad
    }

    /// Supernodal numeric factorization. Matches the serial plan to
    /// ~1e-12 (dense kernels reassociate sums; patterns and the
    /// zero-pivot column are identical), and is deterministic at every
    /// thread count — each panel executes one fixed operation sequence
    /// whichever worker runs it.
    pub fn factor(&self, a: &CscMatrix) -> Result<LuFactor, LuPlanError> {
        self.plan.check_pattern(a)?;
        let mut lx = vec![0.0f64; self.plan.l_nnz()];
        let mut ux = vec![0.0f64; self.plan.u_nnz()];
        let mut sx = vec![0.0f64; *self.sx_ptr.last().unwrap_or(&0)];
        let thresh = self.plan.perturb_threshold(a);
        let mut perturbed: Vec<usize> = Vec::new();
        let first_bad = if self.n_threads == 1 {
            self.factor_serial(a, &mut lx, &mut ux, &mut sx, thresh, &mut perturbed)
        } else {
            self.factor_parallel(a, &mut lx, &mut ux, &mut sx, thresh, &mut perturbed)
        };
        if first_bad != usize::MAX {
            return Err(LuPlanError::ZeroPivot { column: first_bad });
        }
        perturbed.sort_unstable();
        Ok(self.plan.finish(
            a,
            lx,
            ux,
            PerturbReport {
                columns: perturbed,
                threshold: thresh,
            },
        ))
    }

    fn factor_serial(
        &self,
        a: &CscMatrix,
        lx: &mut [f64],
        ux: &mut [f64],
        sx: &mut [f64],
        thresh: f64,
        perturbed: &mut Vec<usize>,
    ) -> usize {
        let prof = self.plan.profiler().as_ref();
        let enabled = prof.is_enabled();
        let span = if enabled {
            prof.begin(0, "factor:supernodal")
        } else {
            None
        };
        let mut ws = self.workspace();
        let mut first_bad = usize::MAX;
        let (mut dense, mut scalar) = (0u64, 0u64);
        for s in 0..self.n_panels() {
            // SAFETY: in-order serial execution — every source panel is
            // final, each panel's ranges are written exactly once.
            let bad = unsafe {
                self.panel_numeric(
                    s,
                    a,
                    &mut ws,
                    lx.as_mut_ptr(),
                    ux.as_mut_ptr(),
                    sx.as_mut_ptr(),
                    0,
                    thresh,
                    perturbed,
                )
            };
            first_bad = first_bad.min(bad);
            if enabled {
                if self.panels.part.width(s) > 1 {
                    dense += self.panel_flops[s];
                } else {
                    scalar += self.panel_flops[s];
                }
            }
        }
        if enabled {
            prof.counter("flops.dense").add(dense);
            prof.counter("flops.scalar").add(scalar);
            prof.end_with(span, &[("flops", (dense + scalar) as f64)]);
        }
        first_bad
    }

    #[cfg(feature = "parallel")]
    fn factor_parallel(
        &self,
        a: &CscMatrix,
        lx: &mut [f64],
        ux: &mut [f64],
        sx: &mut [f64],
        thresh: f64,
        perturbed: &mut Vec<usize>,
    ) -> usize {
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
        use std::sync::Mutex;
        let prof = self.plan.profiler().as_ref();
        let enabled = prof.is_enabled();
        let outer = if enabled {
            prof.begin(0, "factor:supernodal")
        } else {
            None
        };
        let n_levels = self.n_levels();
        let shared = SharedPanels {
            lx: lx.as_mut_ptr(),
            ux: ux.as_mut_ptr(),
            sx: sx.as_mut_ptr(),
        };
        let barrier = std::sync::Barrier::new(self.n_threads);
        let first_bad = AtomicUsize::new(usize::MAX);
        // Workers buffer perturbed columns locally and merge once at
        // the end; the caller sorts, so the report is deterministic.
        let all_perturbed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let busy: Vec<AtomicU64> = (0..self.n_threads).map(|_| AtomicU64::new(0)).collect();
        let wait: Vec<AtomicU64> = (0..self.n_threads).map(|_| AtomicU64::new(0)).collect();
        let dense_flops = AtomicU64::new(0);
        let scalar_flops = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..self.n_threads {
                let shared = &shared;
                let barrier = &barrier;
                let first_bad = &first_bad;
                let (busy, wait) = (&busy, &wait);
                let (dense_flops, scalar_flops) = (&dense_flops, &scalar_flops);
                let all_perturbed = &all_perturbed;
                scope.spawn(move || {
                    let mut ws = self.workspace();
                    let worker_t0 = prof.now_ns();
                    let mut my_wait = 0u64;
                    let (mut my_dense, mut my_scalar) = (0u64, 0u64);
                    let mut my_perturbed: Vec<usize> = Vec::new();
                    for lv in 0..n_levels {
                        for &s in self.chunk(lv, t) {
                            // SAFETY: this worker is the unique owner
                            // of panel s (compile-time chunking); every
                            // source panel sits in an earlier level,
                            // finalized either by this worker in
                            // program order (elided barriers only span
                            // same-single-owner levels) or before the
                            // last kept barrier. See SharedPanels.
                            let bad = unsafe {
                                self.panel_numeric(
                                    s,
                                    a,
                                    &mut ws,
                                    shared.lx,
                                    shared.ux,
                                    shared.sx,
                                    t,
                                    thresh,
                                    &mut my_perturbed,
                                )
                            };
                            if bad != usize::MAX {
                                first_bad.fetch_min(bad, AtomicOrdering::Relaxed);
                            }
                            if enabled {
                                if self.panels.part.width(s) > 1 {
                                    my_dense += self.panel_flops[s];
                                } else {
                                    my_scalar += self.panel_flops[s];
                                }
                            }
                        }
                        if self.barrier_after[lv] {
                            if enabled {
                                let w0 = prof.now_ns();
                                barrier.wait();
                                let w1 = prof.now_ns();
                                my_wait += w1 - w0;
                                prof.add_span(t, "barrier", w0, w1 - w0, &[("level", lv as f64)]);
                            } else {
                                barrier.wait();
                            }
                        }
                    }
                    if enabled {
                        let elapsed = prof.now_ns().saturating_sub(worker_t0);
                        busy[t].store(elapsed.saturating_sub(my_wait), AtomicOrdering::Relaxed);
                        wait[t].store(my_wait, AtomicOrdering::Relaxed);
                        dense_flops.fetch_add(my_dense, AtomicOrdering::Relaxed);
                        scalar_flops.fetch_add(my_scalar, AtomicOrdering::Relaxed);
                    }
                    if !my_perturbed.is_empty() {
                        all_perturbed.lock().unwrap().extend(my_perturbed);
                    }
                });
            }
        });
        if enabled {
            for t in 0..self.n_threads {
                prof.counter(&format!("sup.t{t}.busy_ns"))
                    .add(busy[t].load(AtomicOrdering::Relaxed));
                prof.counter(&format!("sup.t{t}.wait_ns"))
                    .add(wait[t].load(AtomicOrdering::Relaxed));
            }
            let dense = dense_flops.into_inner();
            let scalar = scalar_flops.into_inner();
            prof.counter("flops.dense").add(dense);
            prof.counter("flops.scalar").add(scalar);
            prof.end_with(
                outer,
                &[
                    ("threads", self.n_threads as f64),
                    ("levels", n_levels as f64),
                    ("flops", (dense + scalar) as f64),
                ],
            );
        }
        perturbed.extend(all_perturbed.into_inner().unwrap());
        first_bad.into_inner()
    }

    #[cfg(not(feature = "parallel"))]
    fn factor_parallel(
        &self,
        a: &CscMatrix,
        lx: &mut [f64],
        ux: &mut [f64],
        sx: &mut [f64],
        thresh: f64,
        perturbed: &mut Vec<usize>,
    ) -> usize {
        self.factor_serial(a, lx, ux, sx, thresh, perturbed)
    }

    /// Emit the matrix-specialized supernodal C factorization kernel
    /// (the VS-Block artifact for LU): the panel table is embedded and
    /// wide panels call the dense mini-BLAS.
    pub fn emit_c(&self) -> String {
        crate::emit::emit_lu_supernodal_c(&self.panels, self.n_wide_panels(), self.dense_flop_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::{gen, ops};

    fn assert_close(a: &LuFactor, b: &LuFactor, tol: f64, what: &str) {
        assert!(a.l().same_pattern(b.l()), "{what}: L pattern");
        assert!(a.u().same_pattern(b.u()), "{what}: U pattern");
        for (x, y) in a.l().values().iter().zip(b.l().values()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{what}: L {x} vs {y}"
            );
        }
        for (x, y) in a.u().values().iter().zip(b.u().values()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + y.abs()),
                "{what}: U {x} vs {y}"
            );
        }
    }

    #[test]
    fn supernodal_matches_serial_on_grids_and_circuits() {
        for (label, a) in [
            ("convdiff", gen::convection_diffusion_2d(9, 8, 1.5, 3)),
            ("circuit", gen::circuit_unsym(150, 4, 2, 7)),
            ("random", gen::random_unsym(120, 4, 11)),
        ] {
            let serial = LuPlan::build(&a, true, 2).unwrap();
            let f_serial = serial.factor(&a).unwrap();
            for max_panel in [0usize, 4] {
                let sup = SupernodalLuPlan::from_plan(serial.clone(), max_panel, 1);
                let f_sup = sup.factor(&a).unwrap();
                assert_close(
                    &f_sup,
                    &f_serial,
                    1e-12,
                    &format!("{label} cap {max_panel}"),
                );
            }
        }
    }

    #[test]
    fn grid_problems_produce_wide_panels() {
        let a = gen::convection_diffusion_2d(10, 10, 1.0, 5);
        let sup = SupernodalLuPlan::build(&a, true, 2, FillOrdering::Natural, 0, 1).unwrap();
        assert!(sup.n_wide_panels() > 0, "grid fill must block");
        assert!(sup.mean_panel_width() > 1.0);
        assert!(sup.max_panel_width() > 1);
        assert!(sup.dense_flop_share() > 0.0 && sup.dense_flop_share() <= 1.0);
    }

    #[test]
    fn ordered_supernodal_matches_ordered_serial() {
        let a = gen::circuit_unsym(140, 4, 2, 9);
        for ordering in [FillOrdering::Rcm, FillOrdering::Colamd] {
            let serial = LuPlan::build_ordered(&a, true, 2, ordering).unwrap();
            let f_serial = serial.factor(&a).unwrap();
            let sup = SupernodalLuPlan::from_plan(serial, 16, 1);
            let f_sup = sup.factor(&a).unwrap();
            assert_close(&f_sup, &f_serial, 1e-12, &format!("{ordering:?}"));
            // And the solve still answers the original system.
            let n = a.n_cols();
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
            let x = f_sup.solve(&b);
            assert!(ops::rel_residual(&a, &x, &b) < 1e-10, "{ordering:?}");
        }
    }

    #[test]
    #[cfg(feature = "parallel")]
    fn parallel_panels_match_single_thread_bitwise() {
        // Panel execution is a fixed operation sequence per panel, so
        // thread count must not change a single bit.
        let a = gen::convection_diffusion_2d(9, 9, 2.0, 13);
        let one = SupernodalLuPlan::build(&a, true, 2, FillOrdering::Natural, 8, 1).unwrap();
        let f1 = one.factor(&a).unwrap();
        for threads in [2usize, 3, 4] {
            let par = SupernodalLuPlan::from_plan(one.serial().clone(), 8, threads);
            assert_eq!(par.n_threads(), threads);
            let fp = par.factor(&a).unwrap();
            for (x, y) in f1
                .l()
                .values()
                .iter()
                .chain(f1.u().values())
                .zip(fp.l().values().iter().chain(fp.u().values()))
            {
                assert_eq!(x.to_bits(), y.to_bits(), "{threads} threads");
            }
        }
    }

    #[test]
    fn panel_levels_cover_all_panels_and_respect_deps() {
        let a = gen::circuit_unsym(90, 4, 2, 3);
        let sup = SupernodalLuPlan::build(&a, true, 2, FillOrdering::Colamd, 8, 3).unwrap();
        let mut seen = vec![false; sup.n_panels()];
        for lv in 0..sup.n_levels() {
            let mut level: Vec<usize> = Vec::new();
            for t in 0..sup.n_threads() {
                level.extend_from_slice(sup.chunk(lv, t));
            }
            for &s in &level {
                assert!(!seen[s], "panel {s} scheduled twice");
                seen[s] = true;
                for &t in &sup.upd_panels[sup.upd_ptr[s]..sup.upd_ptr[s + 1]] {
                    assert!(seen[t as usize], "source panel {t} must precede {s}");
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all panels scheduled");
        assert!(sup.avg_panel_parallelism() >= 1.0);
        assert!(sup.n_barriers() < sup.n_levels().max(1));
    }

    #[test]
    fn zero_pivot_reported_like_serial() {
        // Zero a diagonal value inside what becomes a wide panel: the
        // supernodal engine must report the same column as serial.
        let n = 6;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            for i in 0..n {
                t.push(i, j, if i == j { 10.0 } else { 1.0 });
            }
        }
        let a0 = t.to_csc().unwrap();
        let serial = LuPlan::build(&a0, true, 2).unwrap();
        let sup = SupernodalLuPlan::from_plan(serial.clone(), 0, 1);
        assert_eq!(sup.n_panels(), 1, "dense matrix is one panel");
        let f_ok = sup.factor(&a0).unwrap();
        assert_close(&f_ok, &serial.factor(&a0).unwrap(), 1e-12, "dense");
        // A singular leading 2x2 block: A[1,1] chosen so the second
        // pivot cancels exactly under the first elimination step.
        let mut a = a0.clone();
        let a_dense = a.to_dense();
        let (a00, a01, a10) = (a_dense[0], a_dense[n], a_dense[1]);
        let idx = a.find(1, 1).unwrap();
        a.values_mut()[idx] = a10 * a01 / a00;
        let serial_err = serial.factor(&a).unwrap_err();
        let sup_err = sup.factor(&a).unwrap_err();
        assert_eq!(serial_err, sup_err);
        assert!(matches!(sup_err, LuPlanError::ZeroPivot { column: 1 }));
    }

    #[test]
    fn singleton_only_patterns_degenerate_to_scalar() {
        // A diagonal matrix never blocks: every panel is a singleton
        // and the engine is exactly the scalar plan.
        let a = CscMatrix::identity(9);
        let sup = SupernodalLuPlan::build(&a, true, 2, FillOrdering::Natural, 0, 2).unwrap();
        assert_eq!(sup.n_wide_panels(), 0);
        assert_eq!(sup.dense_flop_share(), 0.0);
        let f = sup.factor(&a).unwrap();
        assert_eq!(f.solve(&[3.0; 9]), vec![3.0; 9]);
    }

    #[test]
    fn repeated_factorization_reuses_the_panel_schedule() {
        let a0 = gen::convection_diffusion_2d(7, 7, 1.0, 2);
        let sup = SupernodalLuPlan::build(&a0, true, 2, FillOrdering::Natural, 8, 1).unwrap();
        let mut a = a0.clone();
        for round in 1..=3 {
            for v in a.values_mut() {
                *v *= 1.0 + 0.03 / round as f64;
            }
            let serial = LuPlan::build(&a, true, 2).unwrap().factor(&a).unwrap();
            let f = sup.factor(&a).unwrap();
            assert_close(&f, &serial, 1e-12, &format!("round {round}"));
        }
    }

    #[test]
    fn empty_matrix() {
        let a = CscMatrix::zeros(0, 0);
        let sup = SupernodalLuPlan::build(&a, true, 2, FillOrdering::Natural, 0, 2).unwrap();
        assert_eq!(sup.n_panels(), 0);
        assert_eq!(sup.mean_panel_width(), 0.0);
        let f = sup.factor(&a).unwrap();
        assert_eq!(f.l().nnz(), 0);
    }
}
