//! The user-facing Sympiler driver: take a numerical method + a
//! sparsity pattern, run the symbolic inspectors, apply the
//! transformations, and hand back a specialized executable (plan) plus
//! the generated C artifact.

use crate::emit::emit_trisolve_c;
use crate::plan::chol::{CholFactor, CholPlan, CholPlanError};
use crate::plan::lu::{BatchError, LuFactor, LuPlan, LuPlanError, LuWorkspace};
use crate::plan::tri::{TriScratch, TriSolvePlan, TriVariant};
use crate::report::{timed, SymbolicReport};
use sympiler_graph::supernode::supernodes_trisolve;
use sympiler_sparse::{CscMatrix, SparseVec};

pub use sympiler_graph::ordering::Ordering;
pub use sympiler_graph::transversal::PrePivot;

/// Whether the LU pipeline compiles the supernodal (VS-Block) numeric
/// engine — the third execution tier beside the serial and
/// column-parallel plans. See [`SympilerOptions::block_lu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockLu {
    /// Detect panels and engage the supernodal engine when blocking
    /// pays: mean panel width ≥ 2 (at least half the columns sit in
    /// wide panels). Otherwise compile the scalar serial/parallel
    /// plan — the default, mirroring the paper's supernode-size
    /// threshold for VS-Block.
    #[default]
    Auto,
    /// Always compile the supernodal engine (singleton panels still
    /// execute through the scalar column kernel, so this is safe on
    /// any pattern — just pointless when nothing blocks).
    On,
    /// Never block: serial or column-parallel execution only.
    Off,
}

/// Tunable thresholds and switches (paper §4.2).
///
/// The LU pipeline's compile-time knobs compose: a static pre-pivot
/// ([`Self::pre_pivot`]) makes the diagonal usable, a fill-reducing
/// ordering ([`Self::ordering`]) shrinks the factors, and the
/// execution tier ([`Self::n_threads`] / [`Self::block_lu`]) picks the
/// numeric engine — all resolved once per pattern.
///
/// ```
/// use sympiler_core::{Ordering, PrePivot, SympilerLu, SympilerOptions};
///
/// // A saddle-point (KKT) system: its trailing block has no diagonal,
/// // so the default options cannot factor it — but a weighted-matching
/// // pre-pivot composed with COLAMD can.
/// let a = sympiler_sparse::gen::saddle_point_2x2(40, 8, 1);
/// let opts = SympilerOptions {
///     pre_pivot: PrePivot::WeightedMatching,
///     ordering: Ordering::Colamd,
///     ..Default::default()
/// };
/// let lu = SympilerLu::compile(&a, &opts).unwrap();
/// let x = lu.factor(&a).unwrap().solve(&vec![1.0; 48]);
/// assert!(sympiler_sparse::ops::rel_residual(&a, &x, &vec![1.0; 48]) < 1e-10);
/// ```
///
/// The derived `PartialEq` is part of the serving contract: a
/// [`crate::serve::PlanCache`] entry matches a request only when the
/// request's options compare equal to the ones the entry was compiled
/// with (the structural hash alone is not trusted).
#[derive(Debug, Clone, PartialEq)]
pub struct SympilerOptions {
    /// Enable VS-Block (subject to the supernode-size threshold).
    pub vs_block: bool,
    /// Enable VI-Prune.
    pub vi_prune: bool,
    /// Enable the low-level transformations (peeling, unrolled
    /// specialized kernels).
    pub low_level: bool,
    /// Cap on supernode width (0 = unlimited).
    pub max_supernode_width: usize,
    /// VS-Block is skipped when the average participating supernode
    /// size (width × panel rows) is below this. "This parameter is
    /// currently hand-tuned and is set to 160" — the paper's value is
    /// kept as the default.
    pub vs_block_min_avg_size: f64,
    /// Peel reach-set iterations whose column has more than this many
    /// off-diagonal nonzeros (Figure 1e uses 2).
    pub peel_col_count: usize,
    /// Worker threads for the parallel numeric executors (currently
    /// the LU plan's level-scheduled factorization). `1` (the default)
    /// compiles the serial plan; higher values level the column
    /// elimination DAG and bake cost-balanced per-thread chunks.
    /// Ignored when the `parallel` feature is disabled.
    pub n_threads: usize,
    /// Fill-reducing ordering for the LU pipeline, computed once at
    /// inspection time and baked into the plan (applied symmetrically,
    /// `Qᵀ A Q`, so static diagonal pivoting keeps its diagonal).
    /// Defaults to [`Ordering::Natural`] — reorder nothing — because
    /// the compiled pattern contract is per-matrix and callers may
    /// already order upstream; [`Ordering::Colamd`] is the recommended
    /// setting for unordered unsymmetric systems, cutting both fill
    /// (numeric flops) and elimination-DAG depth (what the parallel
    /// executor scales on).
    pub ordering: Ordering,
    /// Supernodal (VS-Block) LU: detect column panels in the predicted
    /// `L` and route the numeric phase through dense GETRF/TRSM/GEMM
    /// kernels panel by panel. [`BlockLu::Auto`] (the default) engages
    /// the engine only when the mean panel width reaches 2 — patterns
    /// that never block keep the cheaper scalar plans. With
    /// `n_threads > 1` the supernodal engine levels the **panel** DAG
    /// instead of the column DAG.
    pub block_lu: BlockLu,
    /// Cap on LU panel width (the supernodal relaxation knob: wider
    /// panels amortize more scalar work into dense kernels but grow
    /// the dense block accumulator, `n × max_panel` doubles per
    /// worker). 0 = unlimited.
    pub max_panel: usize,
    /// Relative fill budget for **relaxed supernode amalgamation**
    /// (CHOLMOD/SuperLU's `relax`, applied to LU panels): adjacent
    /// strictly-nesting panels merge into one wider panel when the
    /// explicit zeros the merged trapezoid must pad stay within
    /// `relax_fill` × the panel's structural nonzeros. Padding lives
    /// only in dense workspace (padded slots compute to exact ±0.0;
    /// the CSC factors are untouched), buying wider panels — more
    /// dense-kernel work per schedule entry — for a bounded amount of
    /// wasted arithmetic. `<= 0.0` disables merging: panels are
    /// bitwise today's strict ones. Default `0.3`.
    pub relax_fill: f64,
    /// Cap on the width an amalgamated panel may grow to (min'd with
    /// `max_panel` when that is nonzero). `< 2` disables merging.
    /// Default `16`.
    pub relax_cols: usize,
    /// Finish MC64: derive row/column equilibration scalings `Dr`/`Dc`
    /// from the weighted-matching dual potentials and fold them into
    /// the plan's baked gather maps — the numeric phase factors
    /// `Qᵀ·P·(Dr·A·Dc)·Q` (every matched diagonal exactly 1, every
    /// entry ≤ 1) at zero per-factorization cost, and solves unscale
    /// transparently in original coordinates. Collapses pivot growth
    /// from ~1e8 to O(1) on zero-diagonal problems, making the strict
    /// verification bar hold under the pattern-only transversal too.
    /// Scalings are computed from the compile-time matrix values (the
    /// static MC64 contract — recompile to re-equilibrate). Default
    /// `false`: factors then stay comparable with unscaled baselines.
    pub mc64_scale: bool,
    /// Static pre-pivoting for the LU pipeline: compute a row
    /// permutation `P` at inspection time (maximum transversal or
    /// MC64-like weighted matching) so `P·A` has a structurally
    /// zero-free — and, for the weighted variant, numerically large —
    /// diagonal, then factor `Qᵀ·P·A·Q`. This is what lets the
    /// static-diagonal-pivot contract cover saddle-point/KKT and
    /// circuit matrices whose diagonals are structurally zero (hard
    /// errors otherwise). Defaults to [`PrePivot::Off`]; structurally
    /// singular inputs fail compilation with a typed error instead of
    /// a numeric-phase zero pivot. Zero per-factorization cost: the
    /// permutation rides the same baked gather maps as the ordering.
    pub pre_pivot: PrePivot,
    /// Attach an enabled [`sympiler_obs::Profiler`] to the compiled LU
    /// plan: compile stages, numeric-phase spans (per-level work,
    /// barriers, dense panel kernels), kernel counters, and
    /// numerical-health gauges all land on one trace, retrievable via
    /// [`SympilerLu::profiler`]. `false` (the default) compiles a
    /// disabled profiler whose hooks are single-branch no-ops — the
    /// numeric phase stays bitwise identical either way (all
    /// instrumentation is observational).
    pub profile: bool,
    /// Static pivot perturbation tolerance (layer 1 of the recovery
    /// ladder, SuperLU_DIST's idea under the static-pivoting
    /// contract): during the numeric phase, a pivot whose magnitude
    /// falls below `pivot_perturb · max|A values|` is replaced by
    /// `±pivot_perturb · max|A values|` and recorded in the factor's
    /// [`crate::plan::lu::PerturbReport`]; factorization continues
    /// instead of failing with a zero pivot. The perturbed factors
    /// solve a *nearby* system — follow with
    /// [`crate::plan::lu::LuFactor::solve_refined`] (or drive through
    /// [`crate::robust::RobustLu`]) to repair the answer. `0.0` (the
    /// default) disables the guard entirely: the numeric phase is
    /// bitwise identical to a build without this feature. A typical
    /// enabled value is `1e-8` (≈√ε).
    pub pivot_perturb: f64,
    /// Escalation policy for [`crate::robust::RobustLu`] (layer 3 of
    /// the recovery ladder) and, when
    /// [`RecoveryPolicy::serve_escalate`] is set, for per-request
    /// retry in [`crate::serve::FactorService`]. Part of the plan-
    /// cache identity like every other option.
    ///
    /// [`RecoveryPolicy::serve_escalate`]: crate::robust::RecoveryPolicy::serve_escalate
    pub recovery: crate::robust::RecoveryPolicy,
}

impl Default for SympilerOptions {
    fn default() -> Self {
        Self {
            vs_block: true,
            vi_prune: true,
            low_level: true,
            max_supernode_width: 64,
            vs_block_min_avg_size: 160.0,
            peel_col_count: 2,
            n_threads: 1,
            ordering: Ordering::Natural,
            block_lu: BlockLu::Auto,
            max_panel: 32,
            relax_fill: 0.3,
            relax_cols: 16,
            mc64_scale: false,
            pre_pivot: PrePivot::Off,
            profile: false,
            pivot_perturb: 0.0,
            recovery: crate::robust::RecoveryPolicy::default(),
        }
    }
}

/// A compiled sparse triangular solve, specialized to one `L` pattern
/// (and values) and one RHS pattern.
#[derive(Debug, Clone)]
pub struct SympilerTriSolve {
    plan: TriSolvePlan,
    reach: Vec<usize>,
    l_col_ptr: Vec<usize>,
    n: usize,
    peel_col_count: usize,
    report: SymbolicReport,
    scratch: TriScratch,
}

impl SympilerTriSolve {
    /// Compile for lower-triangular `l` and RHS pattern `beta`.
    ///
    /// Applies the paper's transformation ordering: VS-Block first
    /// (when the supernode-size threshold admits it), then VI-Prune,
    /// then the enabled low-level transformations.
    pub fn compile(l: &CscMatrix, beta: &[usize], opts: &SympilerOptions) -> Self {
        let mut report = SymbolicReport::default();
        // Inspection: reach-set (VI-Prune set).
        let reach = timed(&mut report, "inspect: reach-set (DFS)", || {
            let mut r = sympiler_graph::reach(l, beta);
            r.sort_unstable();
            r
        });
        report.set_size("reach-set", reach.len());
        // Inspection: block-set + threshold decision.
        let vs_block = if opts.vs_block {
            let start = std::time::Instant::now();
            let part = supernodes_trisolve(l, opts.max_supernode_width);
            let col_counts: Vec<usize> = (0..l.n_cols()).map(|j| l.col_nnz(j)).collect();
            let avg = part.avg_participating_size(&col_counts);
            report.stage("inspect: supernodes (node equiv)", start.elapsed());
            report.set_size("supernodes", part.n_supernodes());
            avg >= opts.vs_block_min_avg_size
        } else {
            false
        };
        let variant = TriVariant {
            vs_block,
            vi_prune: opts.vi_prune,
            low_level: opts.low_level,
        };
        let plan = timed(&mut report, "transform + pack (plan build)", || {
            TriSolvePlan::build(
                l,
                beta,
                variant,
                opts.max_supernode_width,
                opts.peel_col_count,
            )
        });
        Self {
            plan,
            reach,
            l_col_ptr: l.col_ptr().to_vec(),
            n: l.n_cols(),
            peel_col_count: opts.peel_col_count,
            report,
            scratch: TriScratch::default(),
        }
    }

    /// Solve `L x = b` into a zeroed buffer `x` (numeric-only path).
    pub fn solve_into(&mut self, b: &SparseVec, x: &mut [f64]) {
        // Split borrows: plan and scratch are disjoint fields.
        let Self { plan, scratch, .. } = self;
        plan.solve(b, x, scratch);
    }

    /// Solve and return a fresh vector.
    pub fn solve(&mut self, b: &SparseVec) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Zero the entries the previous solve touched (O(|reach|)).
    pub fn reset(&self, x: &mut [f64]) {
        self.plan.reset(x);
    }

    /// The compiled plan.
    pub fn plan(&self) -> &TriSolvePlan {
        &self.plan
    }

    /// The reach set (ascending).
    pub fn reach(&self) -> &[usize] {
        &self.reach
    }

    /// Useful flops of the pruned solve.
    pub fn flops(&self) -> u64 {
        self.plan.flops()
    }

    /// Symbolic (compile-time) report.
    pub fn report(&self) -> &SymbolicReport {
        &self.report
    }

    /// Emit the specialized C source (Figure 1e artifact).
    pub fn emit_c(&self) -> String {
        // The emitter needs column pointers for concrete constants;
        // rebuild a pattern-only matrix view from stored pointers is
        // unnecessary — emit from the recorded reach + col_ptr.
        let n = self.n;
        let col_ptr = &self.l_col_ptr;
        // Build a minimal pattern-only CSC for emission.
        let nnz = *col_ptr.last().unwrap();
        let mut row_idx = vec![0usize; nnz];
        // Row indices are not needed for the emitted structure except
        // to be syntactically valid; reconstruct a canonical shape:
        // diagonal-first rows are unknown here, so emit via the stored
        // pointers only. Use a fabricated strictly-increasing filler.
        for j in 0..n {
            for (k, slot) in row_idx[col_ptr[j]..col_ptr[j + 1]].iter_mut().enumerate() {
                *slot = (j + k).min(n - 1);
            }
        }
        let l = CscMatrix::from_parts_unchecked(n, n, col_ptr.clone(), row_idx, vec![1.0; nnz]);
        emit_trisolve_c(&l, &self.reach, self.peel_col_count)
    }
}

/// A compiled sparse Cholesky, specialized to one SPD pattern.
#[derive(Debug, Clone)]
pub struct SympilerCholesky {
    plan: CholPlan,
}

impl SympilerCholesky {
    /// Compile for the SPD matrix `a` in lower-triangular storage.
    pub fn compile(a_lower: &CscMatrix, opts: &SympilerOptions) -> Result<Self, CholPlanError> {
        let max_width = if opts.vs_block {
            opts.max_supernode_width
        } else {
            1 // width-1 supernodes == non-supernodal execution
        };
        let plan = CholPlan::build(a_lower, max_width, opts.low_level)?;
        Ok(Self { plan })
    }

    /// Numeric factorization (no symbolic work).
    pub fn factor(&self, a_lower: &CscMatrix) -> Result<CholFactor, CholPlanError> {
        self.plan.factor(a_lower)
    }

    /// The compiled plan.
    pub fn plan(&self) -> &CholPlan {
        &self.plan
    }

    /// Exact factorization flops.
    pub fn flops(&self) -> u64 {
        self.plan.flops()
    }

    /// Symbolic (compile-time) report.
    pub fn report(&self) -> &SymbolicReport {
        self.plan.report()
    }

    /// Emit the transformed Cholesky kernel as C (Figure 2 pipeline:
    /// lower, VS-Block, VI-Prune, low-level annotations, codegen) with
    /// this matrix's block-set embedded.
    pub fn emit_c(&self) -> String {
        let mut kernel = crate::lower::lower_cholesky();
        crate::transform::apply_vi_prune(&mut kernel, "pruneSet", "pruneSetSize");
        crate::transform::apply_vs_block(&mut kernel, "dense_potrf", "dense_trsm");
        crate::transform::low_level::annotate_unroll(&mut kernel.body, 4);
        let mut out = String::new();
        let part = self.plan.partition();
        let firsts: Vec<String> = part.first_col.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!(
            "/* Sympiler-generated supernodal Cholesky: {} supernodes */\n",
            part.n_supernodes()
        ));
        out.push_str(&format!(
            "static const int blockSet[{}] = {{{}}};\n",
            firsts.len(),
            firsts.join(", ")
        ));
        out.push_str(&format!(
            "static const int blockSetSize = {};\n\n",
            part.n_supernodes()
        ));
        out.push_str(&crate::emit::emit_kernel_c(&kernel));
        out
    }
}

/// A compiled sparse LU, specialized to one (generally unsymmetric)
/// pattern under static diagonal pivoting — optionally pre-pivoted
/// (row matching) and fill-reduced (column ordering), both baked at
/// compile time.
///
/// One compile, many numeric factorizations:
///
/// ```
/// use sympiler_core::{SympilerLu, SympilerOptions};
///
/// let mut a = sympiler_sparse::gen::circuit_unsym(60, 4, 2, 7);
/// let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
///
/// // Values change, pattern fixed: refactor without symbolic work.
/// for round in 0..3 {
///     for v in a.values_mut() {
///         *v *= 1.0 + 0.01 * round as f64;
///     }
///     let f = lu.factor(&a).unwrap();
///     let b = vec![1.0; 60];
///     let x = f.solve(&b);
///     assert!(sympiler_sparse::ops::rel_residual(&a, &x, &b) < 1e-10);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SympilerLu {
    exec: LuExec,
}

/// The numeric executor selected at compile time by
/// [`SympilerOptions::n_threads`] and [`SympilerOptions::block_lu`] —
/// the three execution tiers of the compiled LU pipeline.
#[derive(Debug, Clone)]
enum LuExec {
    /// Scalar columns, in order.
    Serial(LuPlan),
    /// Scalar columns leveled over the column elimination DAG.
    #[cfg(feature = "parallel")]
    Parallel(crate::plan::lu_parallel::ParallelLuPlan),
    /// Column panels routed through dense kernels, leveled over the
    /// panel DAG (serial when compiled with `n_threads == 1`).
    Supernodal(Box<crate::plan::lu_supernodal::SupernodalLuPlan>),
}

impl SympilerLu {
    /// Compile for the square matrix `a` (full storage). `low_level`
    /// and `peel_col_count` select the peeled update tier exactly like
    /// the triangular-solve pipeline; `block_lu` / `max_panel` control
    /// the supernodal (VS-Block) tier, which routes wide column panels
    /// of the predicted `L` through dense GETRF/TRSM/GEMM kernels.
    /// `pre_pivot` and `ordering` select the
    /// static row pre-pivot and fill-reducing ordering computed at
    /// inspection time and baked into the plan
    /// ([`LuPlan::build_pivoted`]); `factor` still takes
    /// the original matrix, and [`LuFactor::solve`] speaks original
    /// coordinates. With `n_threads > 1` (and the `parallel` feature
    /// on), the numeric phase is additionally leveled over the column
    /// elimination DAG and executed by that many workers — results
    /// stay bitwise identical to the serial plan.
    pub fn compile(a: &CscMatrix, opts: &SympilerOptions) -> Result<Self, LuPlanError> {
        let profiler = std::sync::Arc::new(if opts.profile {
            sympiler_obs::Profiler::enabled()
        } else {
            sympiler_obs::Profiler::disabled()
        });
        let plan = LuPlan::build_profiled(
            a,
            opts.low_level,
            opts.peel_col_count,
            opts.ordering,
            opts.pre_pivot,
            profiler,
        )?
        .with_pivot_perturbation(opts.pivot_perturb);
        let plan = if opts.mc64_scale {
            plan.with_mc64_scaling(a)?
        } else {
            plan
        };
        // Supernodal tier: under `Auto`, engage only when blocking
        // pays (mean panel width ≥ 2 — the VS-Block threshold idea
        // applied to LU). The threshold needs only the O(nnz) panel
        // detection — run with the same relaxation budget the
        // supernodal plan would use, so amalgamated widths count — and
        // the full leveled panel schedule is built just for patterns
        // that actually block.
        let engage = match opts.block_lu {
            BlockLu::Off => false,
            BlockLu::On => true,
            BlockLu::Auto => {
                let panels = sympiler_graph::lu_supernode::supernodes_lu_relaxed_from_parts(
                    plan.n(),
                    &plan.l_col_ptr,
                    &plan.l_row_idx,
                    opts.max_panel,
                    opts.relax_fill,
                    opts.relax_cols,
                );
                let ns = panels.part.n_supernodes();
                ns > 0 && plan.n() as f64 / ns as f64 >= 2.0
            }
        };
        if engage {
            return Ok(Self {
                exec: LuExec::Supernodal(Box::new(
                    crate::plan::lu_supernodal::SupernodalLuPlan::from_plan_relaxed(
                        plan,
                        opts.max_panel,
                        opts.n_threads.max(1),
                        opts.relax_fill,
                        opts.relax_cols,
                    ),
                )),
            });
        }
        Self::compile_scalar(plan, opts)
    }

    /// Wrap an already-compiled plan in the scalar executor the
    /// options select (serial, or column-parallel when `n_threads > 1`
    /// and the `parallel` feature is on).
    fn compile_scalar(plan: LuPlan, opts: &SympilerOptions) -> Result<Self, LuPlanError> {
        #[cfg(feature = "parallel")]
        if opts.n_threads > 1 {
            return Ok(Self {
                exec: LuExec::Parallel(crate::plan::lu_parallel::ParallelLuPlan::from_plan(
                    plan,
                    opts.n_threads,
                )),
            });
        }
        #[cfg(not(feature = "parallel"))]
        let _ = opts;
        Ok(Self {
            exec: LuExec::Serial(plan),
        })
    }

    /// Numeric factorization (no symbolic work): `A = L U`.
    ///
    /// For high-rate callers: [`Self::factor_with`] reuses a
    /// caller-held workspace, [`Self::factor_batch`] amortizes the
    /// compiled tables over a same-pattern batch, and
    /// [`crate::serve::PlanCache`] /
    /// [`crate::serve::FactorService`] layer caching and a thread-pool
    /// front end on top.
    pub fn factor(&self, a: &CscMatrix) -> Result<LuFactor, LuPlanError> {
        match &self.exec {
            LuExec::Serial(plan) => plan.factor(a),
            #[cfg(feature = "parallel")]
            LuExec::Parallel(par) => par.factor(a),
            LuExec::Supernodal(sup) => sup.factor(a),
        }
    }

    /// [`Self::factor`] against a caller-held [`LuWorkspace`] —
    /// bitwise identical results, minus the per-call accumulator
    /// allocation on the serial tier. The parallel and supernodal
    /// executors keep their own per-worker scratch (their numeric
    /// state is already pooled internally), so they accept and ignore
    /// the workspace — one call shape serves all three tiers.
    pub fn factor_with(
        &self,
        a: &CscMatrix,
        ws: &mut LuWorkspace,
    ) -> Result<LuFactor, LuPlanError> {
        match &self.exec {
            LuExec::Serial(plan) => plan.factor_with(a, ws),
            #[cfg(feature = "parallel")]
            LuExec::Parallel(par) => par.factor(a),
            LuExec::Supernodal(sup) => sup.factor(a),
        }
    }

    /// Factor a batch of same-pattern matrices. On the serial tier
    /// this is [`LuPlan::factor_batch`]'s column-interleaved pass —
    /// the compiled schedule streams once per batch column instead of
    /// once per matrix. The parallel and supernodal tiers already
    /// stream their schedules per level/panel across worker threads,
    /// so they factor the batch one matrix at a time through their own
    /// engines. Every tier returns factors bitwise identical to
    /// looping [`Self::factor`], and the batch is all-or-nothing: the
    /// first failure aborts with a [`BatchError`] naming the matrix.
    pub fn factor_batch(&self, mats: &[&CscMatrix]) -> Result<Vec<LuFactor>, BatchError> {
        match &self.exec {
            LuExec::Serial(plan) => plan.factor_batch(mats),
            #[cfg(feature = "parallel")]
            LuExec::Parallel(par) => mats
                .iter()
                .enumerate()
                .map(|(index, a)| par.factor(a).map_err(|error| BatchError { index, error }))
                .collect(),
            LuExec::Supernodal(sup) => mats
                .iter()
                .enumerate()
                .map(|(index, a)| sup.factor(a).map_err(|error| BatchError { index, error }))
                .collect(),
        }
    }

    /// The compiled (serial) plan: symbolic analysis, schedules, flop
    /// counts — shared by every executor.
    pub fn plan(&self) -> &LuPlan {
        match &self.exec {
            LuExec::Serial(plan) => plan,
            #[cfg(feature = "parallel")]
            LuExec::Parallel(par) => par.serial(),
            LuExec::Supernodal(sup) => sup.serial(),
        }
    }

    /// Worker threads the numeric phase was compiled for.
    pub fn n_threads(&self) -> usize {
        match &self.exec {
            LuExec::Serial(_) => 1,
            #[cfg(feature = "parallel")]
            LuExec::Parallel(par) => par.n_threads(),
            LuExec::Supernodal(sup) => sup.n_threads(),
        }
    }

    /// True when the supernodal (VS-Block) engine was compiled in.
    pub fn is_supernodal(&self) -> bool {
        matches!(self.exec, LuExec::Supernodal(_))
    }

    /// The compiled supernodal plan, when the supernodal engine is the
    /// selected executor (panel statistics, panel-DAG schedule).
    pub fn supernodal(&self) -> Option<&crate::plan::lu_supernodal::SupernodalLuPlan> {
        match &self.exec {
            LuExec::Supernodal(sup) => Some(sup),
            _ => None,
        }
    }

    /// Exact factorization flops.
    pub fn flops(&self) -> u64 {
        self.plan().flops()
    }

    /// Resident bytes of the compiled tables for the tier actually
    /// executing — the supernodal tier adds its panel layouts
    /// (amalgamation padding included) and schedules on top of the
    /// scalar plan's tables.
    pub fn table_bytes(&self) -> usize {
        match &self.exec {
            LuExec::Supernodal(sup) => sup.table_bytes(),
            _ => self.plan().table_bytes(),
        }
    }

    /// The ordering strategy compiled into the plan.
    pub fn ordering(&self) -> Ordering {
        self.plan().ordering()
    }

    /// The compiled ordering `Q` (`perm[new] = old`), or `None` for
    /// natural order.
    pub fn col_perm(&self) -> Option<&[usize]> {
        self.plan().col_perm()
    }

    /// The pre-pivoting strategy compiled into the plan.
    pub fn pre_pivot(&self) -> PrePivot {
        self.plan().pre_pivot()
    }

    /// The composed row map (`rperm[new] = old`, pre-pivot and
    /// ordering combined), or `None` when neither knob moved anything.
    pub fn row_perm(&self) -> Option<&[usize]> {
        self.plan().row_perm()
    }

    /// Count of columns whose compiled pivot position is structurally
    /// present in `A` — `n` after any successful pre-pivot. See
    /// [`LuPlan::matched_diagonals`].
    pub fn matched_diagonals(&self) -> usize {
        self.plan().matched_diagonals()
    }

    /// Fill ratio `nnz(L + U) / nnz(A)` of the compiled factorization.
    pub fn fill_ratio(&self) -> f64 {
        self.plan().fill_ratio()
    }

    /// Symbolic (compile-time) report.
    pub fn report(&self) -> &SymbolicReport {
        self.plan().report()
    }

    /// The profiler attached at compile time (disabled unless
    /// [`SympilerOptions::profile`] was set). Snapshot it after one or
    /// more `factor` calls to get the combined compile + numeric trace.
    pub fn profiler(&self) -> &std::sync::Arc<sympiler_obs::Profiler> {
        self.plan().profiler()
    }

    /// Emit the matrix-specialized C factorization kernel: the scalar
    /// Gilbert–Peierls artifact for the serial/parallel tiers, the
    /// VS-Block panel artifact for the supernodal tier.
    pub fn emit_c(&self) -> String {
        match &self.exec {
            LuExec::Supernodal(sup) => sup.emit_c(),
            _ => self.plan().emit_c(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::{gen, rhs};

    #[test]
    fn trisolve_compile_and_solve() {
        let l = gen::random_lower_triangular(60, 3, 1);
        let b = rhs::random_sparse_rhs(60, 0.05, 2);
        let mut ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
        let x = ts.solve(&b);
        let mut expect = b.to_dense();
        sympiler_solvers::trisolve::naive_forward(&l, &mut expect);
        for (p, q) in x.iter().zip(&expect) {
            assert!((p - q).abs() < 1e-11);
        }
        assert!(ts.report().total().as_nanos() > 0);
        assert!(ts.flops() > 0);
    }

    #[test]
    fn trisolve_threshold_disables_vs_block() {
        // A very sparse random L has tiny supernodes; with the paper's
        // 160 threshold VS-Block must be skipped.
        let l = gen::random_lower_triangular(100, 2, 3);
        let b = rhs::random_sparse_rhs(100, 0.04, 4);
        let ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
        assert!(
            !ts.plan().variant().vs_block,
            "threshold must reject VS-Block"
        );
        // Forcing the threshold to zero enables it.
        let opts = SympilerOptions {
            vs_block_min_avg_size: 0.0,
            ..Default::default()
        };
        let ts2 = SympilerTriSolve::compile(&l, b.indices(), &opts);
        assert!(ts2.plan().variant().vs_block);
    }

    #[test]
    fn trisolve_emits_specialized_c() {
        let l = gen::random_lower_triangular(30, 4, 5);
        let b = rhs::random_sparse_rhs(30, 0.1, 6);
        let ts = SympilerTriSolve::compile(&l, b.indices(), &SympilerOptions::default());
        let c = ts.emit_c();
        assert!(c.contains("reachSet"));
        assert!(c.contains("trisolve_specialized"));
    }

    #[test]
    fn cholesky_compile_factor_solve() {
        let a = gen::grid2d_laplacian(7, 7, false, 1);
        let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
        let f = chol.factor(&a).unwrap();
        let b = vec![1.0; 49];
        let x = f.solve(&b);
        let resid = sympiler_sparse::ops::rel_residual_sym_lower(&a, &x, &b);
        assert!(resid < 1e-12);
    }

    #[test]
    fn cholesky_no_vs_block_still_correct() {
        let a = gen::circuit_like(50, 4, 2, 2);
        let opts = SympilerOptions {
            vs_block: false,
            ..Default::default()
        };
        let chol = SympilerCholesky::compile(&a, &opts).unwrap();
        let f = chol.factor(&a).unwrap();
        let l_ref = sympiler_solvers::SimplicialCholesky::analyze(&a)
            .unwrap()
            .factor(&a)
            .unwrap();
        for (p, q) in f.to_csc().values().iter().zip(l_ref.values()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_emits_c_with_blockset() {
        let a = gen::banded_spd(25, 3, 7);
        let chol = SympilerCholesky::compile(&a, &SympilerOptions::default()).unwrap();
        let c = chol.emit_c();
        assert!(c.contains("blockSet"));
        assert!(c.contains("dense_potrf"));
        assert!(c.contains("pruneSet"));
    }

    #[test]
    fn lu_compile_factor_solve() {
        let a = gen::convection_diffusion_2d(6, 6, 1.5, 2);
        let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        let f = lu.factor(&a).unwrap();
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let x = f.solve(&b);
        assert!(sympiler_sparse::ops::rel_residual(&a, &x, &b) < 1e-12);
        assert!(lu.flops() > 0);
        assert!(lu.report().total().as_nanos() > 0);
    }

    #[test]
    fn lu_matches_gplu_baseline() {
        let a = gen::circuit_unsym(40, 4, 2, 6);
        let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        let f = lu.factor(&a).unwrap();
        let base =
            sympiler_solvers::lu::GpLu::factor(&a, sympiler_solvers::lu::Pivoting::None).unwrap();
        assert!(f.l().same_pattern(&base.l));
        for (p, q) in f.u().values().iter().zip(base.u.values()) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_emits_specialized_c() {
        // Pin the scalar tier: under the default relaxation budget the
        // tiny grid amalgamates well enough for Auto to block it.
        let a = gen::convection_diffusion_2d(4, 4, 1.0, 1);
        let opts = SympilerOptions {
            block_lu: BlockLu::Off,
            ..Default::default()
        };
        let lu = SympilerLu::compile(&a, &opts).unwrap();
        let c = lu.emit_c();
        assert!(c.contains("lu_factor_specialized"));
        assert!(c.contains("updateSet"));
    }

    #[test]
    fn default_options_match_paper() {
        let o = SympilerOptions::default();
        assert_eq!(o.vs_block_min_avg_size, 160.0);
        assert_eq!(o.peel_col_count, 2);
        assert!(o.vs_block && o.vi_prune && o.low_level);
        assert_eq!(o.n_threads, 1, "serial numeric phase by default");
        assert_eq!(o.ordering, Ordering::Natural, "no reordering by default");
        assert_eq!(o.block_lu, BlockLu::Auto, "supernodal LU auto-detects");
        assert_eq!(o.max_panel, 32, "panel cap keeps block buffers small");
        assert_eq!(o.relax_fill, 0.3, "CHOLMOD-style relaxation budget");
        assert_eq!(o.relax_cols, 16, "amalgamated panels stay cache-sized");
        assert!(!o.mc64_scale, "factors comparable with unscaled baselines");
        assert_eq!(o.pre_pivot, PrePivot::Off, "no pre-pivot by default");
        assert!(!o.profile, "observability off by default");
        assert_eq!(o.pivot_perturb, 0.0, "perturbation off = bitwise seed");
        let r = &o.recovery;
        assert_eq!(r.berr_tol, 1e-12, "recovery targets full precision");
        assert_eq!(r.max_refine_iters, 10, "bounded refinement");
        assert!(r.allow_refactor, "baseline fallback on by default");
        assert!(!r.serve_escalate, "serving keeps its bitwise contract");
    }

    #[test]
    fn profile_option_attaches_an_enabled_profiler() {
        let a = gen::circuit_unsym(40, 4, 2, 6);
        let lu = SympilerLu::compile(
            &a,
            &SympilerOptions {
                profile: true,
                block_lu: BlockLu::Off,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(lu.profiler().is_enabled());
        let f = lu.factor(&a).unwrap();
        assert!(f.health().is_some(), "profiled factor carries health");
        let snap = lu.profiler().snapshot("t");
        assert_eq!(snap.spans_named("factor:serial").count(), 1);
        assert!(snap.spans.iter().any(|s| s.name.starts_with("compile: ")));
        assert_eq!(snap.counter("flops.scalar"), Some(lu.flops()));
        // Default compile: everything off, factor unprofiled.
        let off = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        assert!(!off.profiler().is_enabled());
        assert!(off.factor(&a).unwrap().health().is_none());
    }

    /// A pattern whose factor blocks heavily: a dense trailing block
    /// appended to a bidiagonal chain — mean panel width well above
    /// the `Auto` threshold.
    fn heavily_blocking_matrix() -> CscMatrix {
        let n = 24;
        let mut t = sympiler_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 10.0);
            if j + 1 < n {
                t.push(j + 1, j, -1.0);
            }
        }
        for j in n / 3..n {
            for i in n / 3..n {
                if i != j && i != j + 1 {
                    t.push(i, j, 0.5);
                }
            }
        }
        t.to_csc().unwrap()
    }

    #[test]
    fn block_lu_knob_selects_the_supernodal_tier() {
        // The dense trailing block pushes mean panel width past the
        // Auto threshold: Auto must engage the supernodal engine, Off
        // must not, and both tiers agree to 1e-12.
        let a = heavily_blocking_matrix();
        let auto = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        assert!(auto.is_supernodal(), "dense trailing block must auto-block");
        let sup = auto.supernodal().unwrap();
        assert!(sup.mean_panel_width() >= 2.0);
        assert!(sup.dense_flop_share() > 0.5, "dense kernels carry the work");
        let off = SympilerLu::compile(
            &a,
            &SympilerOptions {
                block_lu: BlockLu::Off,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!off.is_supernodal());
        assert!(off.supernodal().is_none());
        let f_sup = auto.factor(&a).unwrap();
        let f_off = off.factor(&a).unwrap();
        for (x, y) in f_sup.u().values().iter().zip(f_off.u().values()) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()));
        }
        // A grid pattern blocks too sparsely for Auto under strict
        // nesting (mean width ~1.1) — with relaxation disabled the
        // threshold keeps the scalar plan. The default amalgamation
        // budget merges the near-nesting grid columns past the
        // threshold, so Auto engages — relaxation is exactly what
        // makes such patterns blockable. On forces the engine
        // regardless and stays correct.
        let g = gen::convection_diffusion_2d(8, 8, 1.0, 6);
        let never = SympilerLu::compile(
            &g,
            &SympilerOptions {
                relax_fill: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            !never.is_supernodal(),
            "strict sparse blocking must not engage Auto"
        );
        let relaxed = SympilerLu::compile(&g, &SympilerOptions::default()).unwrap();
        assert!(
            relaxed.is_supernodal(),
            "default amalgamation budget blocks the grid"
        );
        let forced = SympilerLu::compile(
            &g,
            &SympilerOptions {
                block_lu: BlockLu::On,
                relax_fill: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(forced.is_supernodal());
        assert!(forced.supernodal().unwrap().n_wide_panels() > 0);
        let f_forced = forced.factor(&g).unwrap();
        let f_scalar = SympilerLu::compile(
            &g,
            &SympilerOptions {
                block_lu: BlockLu::Off,
                ..Default::default()
            },
        )
        .unwrap()
        .factor(&g)
        .unwrap();
        for (x, y) in f_forced.u().values().iter().zip(f_scalar.u().values()) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn supernodal_emits_vs_block_c() {
        let a = heavily_blocking_matrix();
        let lu = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        assert!(lu.is_supernodal());
        let c = lu.emit_c();
        assert!(c.contains("lu_supernodal_specialized"));
        assert!(c.contains("panelSet"));
        assert!(c.contains("dense_getrf"));
        // The scalar tiers keep the Gilbert–Peierls artifact.
        let off = SympilerLu::compile(
            &a,
            &SympilerOptions {
                block_lu: BlockLu::Off,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(off.emit_c().contains("lu_factor_specialized"));
    }

    #[test]
    fn lu_ordering_knob_cuts_fill_and_keeps_solutions() {
        let a = gen::circuit_unsym(120, 4, 2, 13);
        let n = a.n_cols();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let natural = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        assert!(natural.col_perm().is_none());
        let x_nat = natural.factor(&a).unwrap().solve(&b);
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            let opts = SympilerOptions {
                ordering,
                ..Default::default()
            };
            let lu = SympilerLu::compile(&a, &opts).unwrap();
            assert_eq!(lu.ordering(), ordering);
            assert!(lu.col_perm().is_some());
            assert!(
                lu.fill_ratio() < natural.fill_ratio(),
                "{ordering:?} must reduce fill on the circuit pattern"
            );
            let x = lu.factor(&a).unwrap().solve(&b);
            assert!(sympiler_sparse::ops::rel_residual(&a, &x, &b) < 1e-12);
            for (p, q) in x.iter().zip(&x_nat) {
                assert!((p - q).abs() < 1e-9, "{ordering:?} solution drift");
            }
        }
    }

    #[test]
    #[cfg(feature = "parallel")]
    fn lu_ordering_combines_with_parallel_executor_bitwise() {
        let a = gen::circuit_unsym(90, 4, 2, 17);
        for ordering in [Ordering::Rcm, Ordering::Colamd] {
            let serial = SympilerLu::compile(
                &a,
                &SympilerOptions {
                    ordering,
                    ..Default::default()
                },
            )
            .unwrap();
            let f_s = serial.factor(&a).unwrap();
            for threads in [2usize, 4] {
                let par = SympilerLu::compile(
                    &a,
                    &SympilerOptions {
                        ordering,
                        n_threads: threads,
                        ..Default::default()
                    },
                )
                .unwrap();
                let f_p = par.factor(&a).unwrap();
                for (x, y) in f_s
                    .l()
                    .values()
                    .iter()
                    .chain(f_s.u().values())
                    .zip(f_p.l().values().iter().chain(f_p.u().values()))
                {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{ordering:?} @ {threads}T must stay bitwise serial"
                    );
                }
            }
        }
    }

    #[test]
    #[cfg(feature = "parallel")]
    fn lu_n_threads_knob_selects_parallel_executor() {
        let a = gen::circuit_unsym(60, 4, 2, 8);
        let serial = SympilerLu::compile(&a, &SympilerOptions::default()).unwrap();
        assert_eq!(serial.n_threads(), 1);
        let opts = SympilerOptions {
            n_threads: 4,
            ..Default::default()
        };
        let par = SympilerLu::compile(&a, &opts).unwrap();
        assert_eq!(par.n_threads(), 4);
        // Identical symbolic products and bitwise-identical factors.
        assert_eq!(par.flops(), serial.flops());
        let f_s = serial.factor(&a).unwrap();
        let f_p = par.factor(&a).unwrap();
        for (x, y) in f_s
            .l()
            .values()
            .iter()
            .chain(f_s.u().values())
            .zip(f_p.l().values().iter().chain(f_p.u().values()))
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "thread count must not change bits"
            );
        }
    }
}
