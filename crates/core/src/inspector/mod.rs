//! Symbolic inspectors — the compile-time analyses of Table 1.
//!
//! Every inspector is a triple:
//!
//! | field | meaning (paper §2.2) |
//! |---|---|
//! | *inspection graph* | the graph built from the sparsity pattern (`DG_L`, or etree + `SP(A)`/`ColCount(A)`) |
//! | *inspection strategy* | how it is traversed (DFS, node equivalence, up-traversal) |
//! | *inspection set* | the result guiding a transformation (reach-set / prune-set / block-set) |
//!
//! The four concrete inspectors cover the paper's two kernels × two
//! inspector-guided transformations. "Additional numerical algorithms
//! and transformations can be added to Sympiler, as long as the
//! required inspectors can be described in this manner as well" — the
//! [`SymbolicInspector`] trait is that contract, and the [`lu`]
//! inspector (per-column reach sets for Gilbert–Peierls LU) is the
//! first kernel added through it beyond the paper's two.

pub mod cholesky;
pub mod lu;
pub mod trisolve;

pub use cholesky::{CholBlockSet, CholPruneSets, CholVIPruneInspector, CholVSBlockInspector};
pub use lu::{LuReachSets, LuVIPruneInspector};
pub use trisolve::{TriBlockSet, TriReachSet, TriVIPruneInspector, TriVSBlockInspector};

/// The inspection graph kinds of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectionGraph {
    /// `DG_L` + sparsity pattern of the RHS (triangular solve VI-Prune).
    DependenceGraphWithRhs,
    /// `DG_L` alone (triangular solve VS-Block).
    DependenceGraph,
    /// Elimination tree + sparsity pattern of `A` (Cholesky VI-Prune).
    EtreeWithSpA,
    /// Elimination tree + column counts of `A` (Cholesky VS-Block).
    EtreeWithColCount,
}

/// The inspection strategies of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectionStrategy {
    /// Depth-first search (reach-sets).
    Dfs,
    /// Node equivalence on the dependence graph (supernodes of `L`).
    NodeEquivalence,
    /// Single-node up-traversal of the etree (row patterns).
    SingleNodeUpTraversal,
    /// Up-traversal of the etree with column counts (supernodes).
    UpTraversal,
}

/// Low-level transformations an inspection set can enable (Table 1,
/// last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnabledTransformation {
    LoopDistribution,
    Unroll,
    Peel,
    Vectorize,
    Tile,
}

/// The contract every symbolic inspector satisfies (paper §2.2): given
/// an input pattern it produces an inspection set, and it can describe
/// its own classification for Table-1-style reporting.
pub trait SymbolicInspector {
    /// The inspection set type this inspector produces.
    type Set;
    /// Which graph the inspector builds.
    fn graph(&self) -> InspectionGraph;
    /// How the graph is traversed.
    fn strategy(&self) -> InspectionStrategy;
    /// Low-level transformations the resulting set enables.
    fn enables(&self) -> &'static [EnabledTransformation];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification_is_complete() {
        // The four inspectors must reproduce Table 1's rows exactly.
        let tri_prune = TriVIPruneInspector;
        assert_eq!(tri_prune.graph(), InspectionGraph::DependenceGraphWithRhs);
        assert_eq!(tri_prune.strategy(), InspectionStrategy::Dfs);

        let tri_block = TriVSBlockInspector;
        assert_eq!(tri_block.graph(), InspectionGraph::DependenceGraph);
        assert_eq!(tri_block.strategy(), InspectionStrategy::NodeEquivalence);

        let chol_prune = CholVIPruneInspector;
        assert_eq!(chol_prune.graph(), InspectionGraph::EtreeWithSpA);
        assert_eq!(
            chol_prune.strategy(),
            InspectionStrategy::SingleNodeUpTraversal
        );

        let chol_block = CholVSBlockInspector;
        assert_eq!(chol_block.graph(), InspectionGraph::EtreeWithColCount);
        assert_eq!(chol_block.strategy(), InspectionStrategy::UpTraversal);
    }

    #[test]
    fn table1_enabled_transformations() {
        use EnabledTransformation::*;
        // VI-Prune row: dist, unroll, peel, vectorization.
        for t in [LoopDistribution, Unroll, Peel, Vectorize] {
            assert!(TriVIPruneInspector.enables().contains(&t));
            assert!(CholVIPruneInspector.enables().contains(&t));
        }
        // VS-Block row: tile, unroll, peel, vectorization.
        for t in [Tile, Unroll, Peel, Vectorize] {
            assert!(TriVSBlockInspector.enables().contains(&t));
            assert!(CholVSBlockInspector.enables().contains(&t));
        }
        assert!(!TriVSBlockInspector.enables().contains(&LoopDistribution));
    }
}
