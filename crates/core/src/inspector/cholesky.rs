//! Cholesky inspectors (Table 1, "Cholesky" columns).

use super::{EnabledTransformation, InspectionGraph, InspectionStrategy, SymbolicInspector};
use sympiler_graph::supernode::{supernodes_cholesky, SupernodePartition};
use sympiler_graph::symbolic::{symbolic_cholesky, SymbolicFactor};
use sympiler_sparse::CscMatrix;

/// Inspection set for Cholesky VI-Prune: the per-row prune-sets
/// (`SP(L_j)`, the row sparsity patterns of `L`), which let the update
/// loop of left-looking Cholesky iterate over dependent columns only
/// (paper Figure 4, lines 3–6).
#[derive(Debug, Clone)]
pub struct CholPruneSets {
    /// The full symbolic factorization: row patterns, column patterns,
    /// etree — everything derived from `etree + SP(A)`.
    pub symbolic: SymbolicFactor,
}

/// Inspection set for Cholesky VS-Block: the supernodal block-set.
#[derive(Debug, Clone)]
pub struct CholBlockSet {
    pub partition: SupernodePartition,
}

/// VI-Prune inspector for Cholesky: single-node up-traversal of the
/// etree per nonzero of `SP(A)` (the `ereach` algorithm).
pub struct CholVIPruneInspector;

impl CholVIPruneInspector {
    /// Run the inspection on an SPD matrix in lower storage.
    pub fn inspect(&self, a_lower: &CscMatrix) -> CholPruneSets {
        CholPruneSets {
            symbolic: symbolic_cholesky(a_lower),
        }
    }
}

impl SymbolicInspector for CholVIPruneInspector {
    type Set = CholPruneSets;

    fn graph(&self) -> InspectionGraph {
        InspectionGraph::EtreeWithSpA
    }

    fn strategy(&self) -> InspectionStrategy {
        InspectionStrategy::SingleNodeUpTraversal
    }

    fn enables(&self) -> &'static [EnabledTransformation] {
        &[
            EnabledTransformation::LoopDistribution,
            EnabledTransformation::Unroll,
            EnabledTransformation::Peel,
            EnabledTransformation::Vectorize,
        ]
    }
}

/// VS-Block inspector for Cholesky: up-traversal over
/// `etree + ColCount(A)` applying the column-merge rule of §3.2.
pub struct CholVSBlockInspector;

impl CholVSBlockInspector {
    /// Run the inspection given an already-computed symbolic factor.
    /// `max_width` caps supernode width (0 = unlimited).
    pub fn inspect(&self, symbolic: &SymbolicFactor, max_width: usize) -> CholBlockSet {
        CholBlockSet {
            partition: supernodes_cholesky(symbolic, max_width),
        }
    }
}

impl SymbolicInspector for CholVSBlockInspector {
    type Set = CholBlockSet;

    fn graph(&self) -> InspectionGraph {
        InspectionGraph::EtreeWithColCount
    }

    fn strategy(&self) -> InspectionStrategy {
        InspectionStrategy::UpTraversal
    }

    fn enables(&self) -> &'static [EnabledTransformation] {
        &[
            EnabledTransformation::Tile,
            EnabledTransformation::Unroll,
            EnabledTransformation::Peel,
            EnabledTransformation::Vectorize,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympiler_sparse::gen;

    #[test]
    fn prune_sets_match_symbolic_row_patterns() {
        let a = gen::random_spd(30, 4, 1);
        let sets = CholVIPruneInspector.inspect(&a);
        // Row pattern of row 0 is empty; each pattern is sorted.
        assert!(sets.symbolic.row_pattern(0).is_empty());
        for k in 0..30 {
            let rp = sets.symbolic.row_pattern(k);
            assert!(rp.windows(2).all(|w| w[0] < w[1]));
            assert!(rp.iter().all(|&j| j < k));
        }
    }

    #[test]
    fn block_set_covers_matrix() {
        let a = gen::grid2d_laplacian(6, 6, false, 2);
        let sets = CholVIPruneInspector.inspect(&a);
        let blocks = CholVSBlockInspector.inspect(&sets.symbolic, 0);
        assert_eq!(blocks.partition.n_cols(), 36);
    }

    #[test]
    fn inspectors_are_deterministic() {
        let a = gen::circuit_like(50, 4, 2, 3);
        let s1 = CholVIPruneInspector.inspect(&a);
        let s2 = CholVIPruneInspector.inspect(&a);
        assert_eq!(s1.symbolic.l_row_idx, s2.symbolic.l_row_idx);
        let b1 = CholVSBlockInspector.inspect(&s1.symbolic, 8);
        let b2 = CholVSBlockInspector.inspect(&s2.symbolic, 8);
        assert_eq!(b1.partition, b2.partition);
    }
}
